#include "cache/offline_opt.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sc::cache {

namespace {

void validate_inputs(const workload::Catalog& catalog,
                     const OfflineInputs& inputs) {
  if (inputs.lambda.size() != catalog.size() ||
      inputs.bandwidth.size() != catalog.size()) {
    throw std::invalid_argument("offline inputs size mismatch with catalog");
  }
  for (double b : inputs.bandwidth) {
    if (b <= 0) throw std::invalid_argument("non-positive bandwidth");
  }
  for (double l : inputs.lambda) {
    if (l < 0) throw std::invalid_argument("negative lambda");
  }
}

}  // namespace

FractionalSolution optimal_fractional(const workload::Catalog& catalog,
                                      const OfflineInputs& inputs,
                                      double capacity_bytes) {
  validate_inputs(catalog, inputs);
  const std::size_t n = catalog.size();

  // Candidates: objects whose bandwidth cannot sustain the bit-rate.
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& o = catalog.object(i);
    if (o.bitrate > inputs.bandwidth[i] && inputs.lambda[i] > 0) {
      order.push_back(i);
    }
  }
  // Decreasing lambda / b (the fractional-knapsack density; the per-byte
  // delay reduction of object i is lambda_i / b_i).
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inputs.lambda[a] * inputs.bandwidth[b] >
           inputs.lambda[b] * inputs.bandwidth[a];
  });

  FractionalSolution sol;
  sol.cached_bytes.assign(n, 0.0);
  double remaining = capacity_bytes;
  for (const std::size_t i : order) {
    if (remaining <= 0) break;
    const auto& o = catalog.object(i);
    const double want = (o.bitrate - inputs.bandwidth[i]) * o.duration_s;
    const double take = std::min(want, remaining);
    sol.cached_bytes[i] = take;
    remaining -= take;
  }
  sol.bytes_used = capacity_bytes - std::max(0.0, remaining);
  sol.expected_delay_s = expected_delay(catalog, inputs, sol.cached_bytes);
  return sol;
}

double expected_delay(const workload::Catalog& catalog,
                      const OfflineInputs& inputs,
                      const std::vector<double>& cached_bytes) {
  validate_inputs(catalog, inputs);
  if (cached_bytes.size() != catalog.size()) {
    throw std::invalid_argument("expected_delay: cached_bytes size mismatch");
  }
  const double total_rate =
      std::accumulate(inputs.lambda.begin(), inputs.lambda.end(), 0.0);
  if (total_rate <= 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& o = catalog.object(i);
    const double b = inputs.bandwidth[i];
    const double deficit = o.size_bytes - o.duration_s * b - cached_bytes[i];
    if (deficit > 0) acc += inputs.lambda[i] * deficit / b;
  }
  return acc / total_rate;
}

ValueSolution value_greedy(const workload::Catalog& catalog,
                           const OfflineInputs& inputs,
                           double capacity_bytes) {
  validate_inputs(catalog, inputs);
  const std::size_t n = catalog.size();

  ValueSolution sol;
  sol.selected.assign(n, false);

  // Zero-cost objects (bandwidth sustains the stream) are always in.
  std::vector<std::size_t> costly;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& o = catalog.object(i);
    const double cost = (o.bitrate - inputs.bandwidth[i]) * o.duration_s;
    if (cost <= 0) {
      sol.selected[i] = true;
      sol.total_rate_value += inputs.lambda[i] * o.value;
    } else if (inputs.lambda[i] > 0) {
      costly.push_back(i);
    }
  }

  // Greedy by density lambda * V / cost.
  auto density = [&](std::size_t i) {
    const auto& o = catalog.object(i);
    const double cost = (o.bitrate - inputs.bandwidth[i]) * o.duration_s;
    return inputs.lambda[i] * o.value / cost;
  };
  std::sort(costly.begin(), costly.end(),
            [&](std::size_t a, std::size_t b) { return density(a) > density(b); });

  double remaining = capacity_bytes;
  for (const std::size_t i : costly) {
    const auto& o = catalog.object(i);
    const double cost = (o.bitrate - inputs.bandwidth[i]) * o.duration_s;
    if (cost <= remaining) {
      sol.selected[i] = true;
      sol.total_rate_value += inputs.lambda[i] * o.value;
      remaining -= cost;
      sol.bytes_used += cost;
    }
  }
  return sol;
}

ValueSolution value_exact(const workload::Catalog& catalog,
                          const OfflineInputs& inputs, double capacity_bytes,
                          std::size_t resolution) {
  validate_inputs(catalog, inputs);
  if (resolution == 0) throw std::invalid_argument("value_exact: resolution");
  const std::size_t n = catalog.size();

  ValueSolution sol;
  sol.selected.assign(n, false);

  // Discretize weights onto [0, resolution]; DP over discrete capacity.
  const double unit = capacity_bytes / static_cast<double>(resolution);
  std::vector<std::size_t> items;
  std::vector<std::size_t> weights;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& o = catalog.object(i);
    const double cost = (o.bitrate - inputs.bandwidth[i]) * o.duration_s;
    if (cost <= 0) {
      sol.selected[i] = true;
      sol.total_rate_value += inputs.lambda[i] * o.value;
      continue;
    }
    if (inputs.lambda[i] <= 0) continue;
    // Round weights *up*: the DP solution then never exceeds capacity.
    const auto w = static_cast<std::size_t>(std::ceil(cost / unit));
    if (w > resolution) continue;  // cannot fit alone
    items.push_back(i);
    weights.push_back(w);
  }

  const std::size_t cap = resolution;
  std::vector<double> best(cap + 1, 0.0);
  std::vector<std::vector<bool>> take(items.size(),
                                      std::vector<bool>(cap + 1, false));
  for (std::size_t k = 0; k < items.size(); ++k) {
    const std::size_t i = items[k];
    const double gain = inputs.lambda[i] * catalog.object(i).value;
    const std::size_t w = weights[k];
    for (std::size_t c = cap; c + 1 > w; --c) {  // c >= w without underflow
      const double with = best[c - w] + gain;
      if (with > best[c]) {
        best[c] = with;
        take[k][c] = true;
      }
    }
  }

  // Backtrack.
  std::size_t c = cap;
  for (std::size_t k = items.size(); k-- > 0;) {
    if (take[k][c]) {
      const std::size_t i = items[k];
      sol.selected[i] = true;
      sol.total_rate_value += inputs.lambda[i] * catalog.object(i).value;
      const auto& o = catalog.object(i);
      sol.bytes_used += (o.bitrate - inputs.bandwidth[i]) * o.duration_s;
      c -= weights[k];
    }
  }
  return sol;
}

}  // namespace sc::cache
