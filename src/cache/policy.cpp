#include "cache/policy.h"

#include <sstream>
#include <stdexcept>

namespace sc::cache {

HybridKernel::HybridKernel(double e) : e_(e) {
  if (e < 0.0 || e > 1.0) {
    throw std::invalid_argument("HybridPolicy: e must be in [0, 1]");
  }
}

std::string HybridKernel::name() const {
  std::ostringstream ss;
  ss << "Hybrid(e=" << e_ << ")";
  return ss.str();
}

PbvKernel::PbvKernel(double e) : e_(e) {
  if (e < 0.0 || e > 1.0) {
    throw std::invalid_argument("PbvPolicy: e must be in [0, 1]");
  }
}

std::string PbvKernel::name() const {
  if (e_ == 1.0) return "PB-V";
  std::ostringstream ss;
  ss << "PB-V(e=" << e_ << ")";
  return ss.str();
}

}  // namespace sc::cache
