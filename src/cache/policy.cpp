#include "cache/policy.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sc::cache {

namespace {
/// Slack (bytes) below which size differences are treated as zero. One
/// byte: cache sizes run to ~10^11 bytes, where the double ulp is ~10^-5,
/// so a sub-byte epsilon would be swallowed by rounding (and a sub-byte
/// trim cannot change occupancy anyway).
constexpr double kEps = 1.0;
}  // namespace

UtilityPolicy::UtilityPolicy(const workload::Catalog& catalog,
                             net::BandwidthEstimator& estimator)
    : catalog_(&catalog),
      estimator_(&estimator),
      freq_(catalog.size(), 0.0),
      heap_(catalog.size()) {}

void UtilityPolicy::reset() {
  std::fill(freq_.begin(), freq_.end(), 0.0);
  while (!heap_.empty()) heap_.pop_min();
}

void UtilityPolicy::on_access(ObjectId id, double now_s, PartialStore& store) {
  before_access(id, now_s);
  const StreamObject& obj = catalog_->object(id);
  freq_[id] += 1.0;
  const double bw = estimator_->estimate(obj.path, now_s);
  const double u = utility(obj, freq_[id], bw);
  const double desired =
      std::min(desired_bytes(obj, bw), obj.size_bytes);
  const double have = store.cached(id);

  // Case 1: the policy no longer wants this object (e.g. the bandwidth
  // estimate improved past the bit-rate). Drop any cached prefix.
  if (u <= 0.0 || desired <= kEps) {
    if (have > 0.0) {
      store.erase(id);
      heap_.remove(id);
    }
    return;
  }

  // Case 2: cached more than currently desired (estimate drifted): shrink.
  if (have > desired + kEps) {
    if (integral()) {
      // Integral policies only ever hold whole objects; a shrunken target
      // below the full size means "keep the whole object" semantics no
      // longer apply -- keep it (conservative) and just refresh the key.
      heap_.update(id, u);
      return;
    }
    store.set_cached(id, desired);
    heap_.update(id, u);
    return;
  }

  if (have > 0.0) heap_.update(id, u);

  const double need = desired - have;
  if (need <= kEps) return;

  // Evict strictly-lower-utility victims until the growth fits.
  while (store.free_space() + kEps < need && !heap_.empty()) {
    const ObjectId victim = heap_.min_id();
    if (victim == id) break;  // everything else cached is more valuable
    if (heap_.min_key() >= u) break;
    const double free_before = store.free_space();
    const double victim_bytes = store.cached(victim);
    const double still_needed = need - free_before;
    if (integral() || still_needed >= victim_bytes - kEps) {
      store.erase(victim);
      heap_.remove(victim);
    } else {
      // Partial policies may trim a victim's prefix tail: the remaining
      // shorter prefix keeps the same utility (the key does not depend on
      // the cached amount).
      store.set_cached(victim, victim_bytes - still_needed);
    }
    if (store.free_space() <= free_before) break;  // rounding: no progress
  }

  const double grant = std::min(need, store.free_space());
  if (grant <= kEps) return;
  if (integral() && grant + kEps < need) {
    // All-or-nothing admission for whole-object policies.
    return;
  }
  store.set_cached(id, have + grant);
  heap_.upsert(id, u);
}

HybridPolicy::HybridPolicy(const workload::Catalog& catalog,
                           net::BandwidthEstimator& estimator, double e)
    : UtilityPolicy(catalog, estimator), e_(e) {
  if (e < 0.0 || e > 1.0) {
    throw std::invalid_argument("HybridPolicy: e must be in [0, 1]");
  }
}

std::string HybridPolicy::name() const {
  std::ostringstream ss;
  ss << "Hybrid(e=" << e_ << ")";
  return ss.str();
}

PbvPolicy::PbvPolicy(const workload::Catalog& catalog,
                     net::BandwidthEstimator& estimator, double e)
    : UtilityPolicy(catalog, estimator), e_(e) {
  if (e < 0.0 || e > 1.0) {
    throw std::invalid_argument("PbvPolicy: e must be in [0, 1]");
  }
}

std::string PbvPolicy::name() const {
  if (e_ == 1.0) return "PB-V";
  std::ostringstream ss;
  ss << "PB-V(e=" << e_ << ")";
  return ss.str();
}

double PbvPolicy::utility(const StreamObject& o, double freq,
                          double bandwidth) const {
  const double deficit = (o.bitrate - e_ * bandwidth) * o.duration_s;
  if (deficit <= 0.0) return 0.0;
  return freq * o.value / deficit;
}

LruPolicy::LruPolicy(const workload::Catalog& catalog,
                     net::BandwidthEstimator& estimator)
    : UtilityPolicy(catalog, estimator), last_access_(catalog.size(), 0.0) {}

void LruPolicy::before_access(ObjectId id, double /*now_s*/) {
  clock_ += 1.0;  // logical clock: strictly increasing per access
  last_access_[id] = clock_;
}

void LruPolicy::reset() {
  UtilityPolicy::reset();
  std::fill(last_access_.begin(), last_access_.end(), 0.0);
  clock_ = 0.0;
}

double LruPolicy::utility(const StreamObject& o, double, double) const {
  return last_access_[o.id];
}

}  // namespace sc::cache
