// Cache replacement policies (§2.4 - §2.6 of the paper).
//
// All of the paper's policies share one structure: estimate each object's
// request frequency F_i, consult a bandwidth estimate b_i, compute a
// scalar *utility* (the selection key) and a *desired cached size*
// (whole object for the Integral family, (r_i - b_i) * T_i for the
// Partial family), and keep the highest-utility objects cached using a
// priority queue with O(log n) updates.
//
// The engine is devirtualized: UtilityPolicy<Kernel> implements the
// admission/eviction loop once as a template over a small *kernel* type
// whose utility() / desired_bytes() / kIntegral members are plain
// (non-virtual) and inline into the loop. Per-object data is read
// through the catalog's structure-of-arrays view (workload::CatalogView)
// so an access touches a few contiguous doubles instead of a whole
// StreamObject. Virtual dispatch survives only at the simulator
// boundary (CachePolicy::on_access — one indirect call per request).
//
// The concrete policy names (IfPolicy, PbPolicy, ...) are aliases of
// UtilityPolicy<Kernel> instantiations, constructed exactly as before:
// Policy(catalog, estimator[, e]).
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/min_heap.h"
#include "cache/store.h"
#include "net/estimator.h"
#include "workload/object_catalog.h"

namespace sc::cache {

using workload::CatalogView;
using workload::StreamObject;

/// Default bandwidth under-estimation factor `e` for the Hybrid /
/// PB-V(e) kernels when a spec omits it. Shared by the registry
/// factories and the monomorphized dispatch table (both must agree or
/// their bit-identity contract breaks).
inline constexpr double kDefaultKernelE = 1.0;

/// Point-in-time copy of a policy's learned state, the unit the
/// persistence layer (src/server/persist.h) snapshots and restores. The
/// shape is policy-agnostic: the shared utility-engine state (request
/// frequencies and the priority index's (id, key) pairs) plus an opaque
/// kernel blob (e.g. LRU's recency array). A policy that keeps no state
/// saves an empty snapshot.
struct PolicySnapshot {
  std::vector<double> freq;                       // indexed by ObjectId
  std::vector<std::pair<ObjectId, double>> heap;  // (id, utility key)
  std::vector<double> kernel;                     // kernel-specific extras
};

/// Interface seen by the simulator.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Notify a request for `id` at simulation time `now_s`, *after* the
  /// request was served from the current cache contents. The policy
  /// updates its bookkeeping and may admit, grow, shrink, or evict
  /// objects in `store`.
  virtual void on_access(ObjectId id, double now_s, PartialStore& store) = 0;

  /// Forget all learned state (frequencies, priority queue). The caller
  /// must clear the store as well; policy state and store contents are
  /// kept consistent only through on_access.
  virtual void reset() = 0;

  /// Export learned state for persistence. Default: stateless.
  [[nodiscard]] virtual PolicySnapshot save_state() const { return {}; }

  /// Restore previously exported state; all-or-nothing — returns false
  /// (leaving the policy untouched) when the snapshot does not fit this
  /// policy's shape. The default accepts only an empty snapshot.
  virtual bool load_state(const PolicySnapshot& state) {
    return state.freq.empty() && state.heap.empty() && state.kernel.empty();
  }

  /// Request count this policy has observed for `id` (F_i); 0 for
  /// policies that do not track frequencies. Journal annotation hook.
  [[nodiscard]] virtual double frequency_of(ObjectId) const { return 0.0; }

  /// Current priority-index key for `id`; false when absent. Journal
  /// annotation hook.
  [[nodiscard]] virtual bool index_key(ObjectId, double*) const {
    return false;
  }

  /// Audit hook (sim::StateAuditor): verify the policy's internal
  /// indices are consistent with the store's contents. On failure,
  /// append human-readable reasons to `why` (when non-null) and return
  /// false. Policies without indices are vacuously consistent.
  [[nodiscard]] virtual bool check_consistency(
      const PartialStore&, std::vector<std::string>* /*why*/) const {
    return true;
  }
};

/// Non-template part of the utility engine: learned frequencies, the
/// priority queue, and the SoA catalog view. Hosts the state so the
/// template below stays header-only and small.
class UtilityPolicyBase : public CachePolicy {
 public:
  UtilityPolicyBase(const workload::Catalog& catalog,
                    net::BandwidthEstimator& estimator)
      : catalog_(&catalog),
        view_(catalog.view()),
        estimator_(&estimator),
        freq_(catalog.size(), 0.0),
        heap_(catalog.size()) {}

  void reset() override {
    std::fill(freq_.begin(), freq_.end(), 0.0);
    heap_.clear();
  }

  /// Request count observed for `id` (F_i).
  [[nodiscard]] double frequency(ObjectId id) const { return freq_.at(id); }

  [[nodiscard]] double frequency_of(ObjectId id) const override {
    return id < freq_.size() ? freq_[id] : 0.0;
  }

  [[nodiscard]] bool index_key(ObjectId id, double* key) const override {
    if (id >= freq_.size() || !heap_.contains(id)) return false;
    if (key != nullptr) *key = heap_.key(id);
    return true;
  }

  [[nodiscard]] bool check_consistency(
      const PartialStore& store,
      std::vector<std::string>* why) const override {
    bool ok = true;
    const auto fail = [&](std::string reason) {
      ok = false;
      if (why != nullptr) why->push_back(std::move(reason));
    };
    if (!heap_.check_invariants()) {
      fail("policy heap violates heap/index invariants");
    }
    // The engine pairs every store mutation with a heap mutation, so the
    // heap's id set and the store's cached id set must be identical.
    // Subset + equal cardinality proves set equality without touching
    // the store's private array twice.
    if (heap_.size() != store.object_count()) {
      fail("policy heap size " + std::to_string(heap_.size()) +
           " != cached object count " +
           std::to_string(store.object_count()));
    }
    for (const auto& [id, key] : heap_.entries()) {
      if (!store.contains(id)) {
        fail("heap entry " + std::to_string(id) + " not cached in store");
      }
      if (!std::isfinite(key)) {
        fail("heap key for " + std::to_string(id) + " is not finite");
      }
    }
    for (ObjectId id = 0; id < freq_.size(); ++id) {
      if (!(freq_[id] >= 0.0) || !std::isfinite(freq_[id])) {
        fail("frequency for " + std::to_string(id) + " is negative or NaN");
        break;  // one report is enough; the array is large
      }
    }
    return ok;
  }

 protected:
  /// Re-target the engine at a new catalog + estimator and forget the
  /// shared learned state, reusing the frequency and heap storage.
  /// Protected on purpose: rebinding must go through the derived
  /// UtilityPolicy<Kernel>::rebind, which additionally resets kernel
  /// state (e.g. LRU recency) — calling this half alone through a base
  /// reference would silently carry kernel state across simulations.
  void rebind_base(const workload::Catalog& catalog,
                   net::BandwidthEstimator& estimator) {
    catalog_ = &catalog;
    view_ = catalog.view();
    estimator_ = &estimator;
    freq_.assign(catalog.size(), 0.0);
    heap_.reset(catalog.size());
  }

  [[nodiscard]] const workload::Catalog& catalog() const noexcept {
    return *catalog_;
  }

  const workload::Catalog* catalog_;
  CatalogView view_;
  net::BandwidthEstimator* estimator_;
  std::vector<double> freq_;
  IndexedMinHeap heap_;
};

/// Default no-op hooks; kernels inherit and shadow what they need.
/// Utilities and desired sizes <= 0 mean "do not cache".
struct KernelBase {
  /// Pre-size any per-object kernel state (LRU's recency array).
  void bind(const CatalogView&) {}
  /// Recency bookkeeping before utilities are computed.
  void before_access(ObjectId, double) {}
  /// Forget learned kernel state.
  void reset() {}
  /// Append kernel state to a PolicySnapshot's kernel blob (nothing for
  /// stateless kernels).
  void save(std::vector<double>&) const {}
  /// Restore from a kernel blob; false on shape mismatch. Stateless
  /// kernels accept only an empty blob.
  [[nodiscard]] bool load(const std::vector<double>& blob) {
    return blob.empty();
  }
};

/// IF: Integral Frequency-based caching. Utility F_i, whole objects.
/// Network-oblivious baseline (equivalent to in-cache LFU).
struct IfKernel : KernelBase {
  static constexpr bool kIntegral = true;
  [[nodiscard]] std::string name() const { return "IF"; }
  [[nodiscard]] double utility(const CatalogView&, ObjectId, double freq,
                               double) const {
    return freq;
  }
  [[nodiscard]] double desired_bytes(const CatalogView& v, ObjectId id,
                                     double) const {
    return v.size_bytes[id];
  }
};

/// PB: Partial Bandwidth-based caching (§2.4). Skips objects whose
/// bandwidth already supports streaming (r_i <= b_i); otherwise utility
/// F_i / b_i and cached prefix (r_i - b_i) * T_i.
struct PbKernel : KernelBase {
  static constexpr bool kIntegral = false;
  [[nodiscard]] std::string name() const { return "PB"; }
  [[nodiscard]] double utility(const CatalogView& v, ObjectId id, double freq,
                               double bandwidth) const {
    return v.bitrate[id] <= bandwidth ? 0.0 : freq / bandwidth;
  }
  [[nodiscard]] double desired_bytes(const CatalogView& v, ObjectId id,
                                     double bandwidth) const {
    return (v.bitrate[id] - bandwidth) * v.duration_s[id];
  }
};

/// IB: Integral Bandwidth-based caching (§2.5). Same selection key as PB
/// but caches whole objects (the most conservative over-provisioning).
struct IbKernel : KernelBase {
  static constexpr bool kIntegral = true;
  [[nodiscard]] std::string name() const { return "IB"; }
  [[nodiscard]] double utility(const CatalogView& v, ObjectId id, double freq,
                               double bandwidth) const {
    return v.bitrate[id] <= bandwidth ? 0.0 : freq / bandwidth;
  }
  [[nodiscard]] double desired_bytes(const CatalogView& v, ObjectId id,
                                     double) const {
    return v.size_bytes[id];
  }
};

/// Hybrid(e): PB with the bandwidth *underestimated* by factor e in the
/// sizing rule (§4.3, Fig 9): cached prefix (r_i - e * b_i) * T_i, capped
/// at the object size. e = 1 reproduces PB; e = 0 caches whole objects
/// (IB-like, except objects with abundant bandwidth are still admitted
/// only when space permits, via the low F/b key).
struct HybridKernel : KernelBase {
  static constexpr bool kIntegral = false;
  explicit HybridKernel(double e);
  [[nodiscard]] std::string name() const;
  [[nodiscard]] double e() const noexcept { return e_; }
  [[nodiscard]] double utility(const CatalogView& v, ObjectId id, double freq,
                               double bandwidth) const {
    return v.bitrate[id] <= e_ * bandwidth ? 0.0 : freq / bandwidth;
  }
  [[nodiscard]] double desired_bytes(const CatalogView& v, ObjectId id,
                                     double bandwidth) const {
    return std::min(v.size_bytes[id],
                    (v.bitrate[id] - e_ * bandwidth) * v.duration_s[id]);
  }

 private:
  double e_;
};

/// PB-V: Partial Bandwidth-Value-based caching (§2.6). Greedy key
/// F_i * V_i / (T_i r_i - T_i b_i); cached prefix (r_i - b_i) * T_i so a
/// hit can start instantly. Supports the Fig-12 estimator e the same way
/// Hybrid does.
struct PbvKernel : KernelBase {
  static constexpr bool kIntegral = false;
  explicit PbvKernel(double e = kDefaultKernelE);
  [[nodiscard]] std::string name() const;
  [[nodiscard]] double e() const noexcept { return e_; }
  [[nodiscard]] double utility(const CatalogView& v, ObjectId id, double freq,
                               double bandwidth) const {
    const double deficit =
        (v.bitrate[id] - e_ * bandwidth) * v.duration_s[id];
    if (deficit <= 0.0) return 0.0;
    return freq * v.value[id] / deficit;
  }
  [[nodiscard]] double desired_bytes(const CatalogView& v, ObjectId id,
                                     double bandwidth) const {
    return std::min(v.size_bytes[id],
                    (v.bitrate[id] - e_ * bandwidth) * v.duration_s[id]);
  }

 private:
  double e_;
};

/// IB-V: Integral Bandwidth-Value-based caching (§4.4). Whole objects
/// with key F_i * V_i / (T_i r_i * b_i): prefers low bandwidth, high
/// value, small size. (The paper's typography is ambiguous here; see
/// DESIGN.md §2 and the bench_ablation key-variant study.)
struct IbvKernel : KernelBase {
  static constexpr bool kIntegral = true;
  [[nodiscard]] std::string name() const { return "IB-V"; }
  [[nodiscard]] double utility(const CatalogView& v, ObjectId id, double freq,
                               double bandwidth) const {
    if (v.bitrate[id] <= bandwidth) return 0.0;
    return freq * v.value[id] / (v.size_bytes[id] * bandwidth);
  }
  [[nodiscard]] double desired_bytes(const CatalogView& v, ObjectId id,
                                     double) const {
    return v.size_bytes[id];
  }
};

/// LRU over whole objects (network-oblivious baseline, §3.3).
struct LruKernel : KernelBase {
  static constexpr bool kIntegral = true;
  [[nodiscard]] std::string name() const { return "LRU"; }
  void bind(const CatalogView& v) { last_access_.assign(v.size, 0.0); }
  void before_access(ObjectId id, double /*now_s*/) {
    clock_ += 1.0;  // logical clock: strictly increasing per access
    last_access_[id] = clock_;
  }
  void reset() {
    std::fill(last_access_.begin(), last_access_.end(), 0.0);
    clock_ = 0.0;
  }
  void save(std::vector<double>& blob) const {
    blob.push_back(clock_);
    blob.insert(blob.end(), last_access_.begin(), last_access_.end());
  }
  [[nodiscard]] bool load(const std::vector<double>& blob) {
    if (blob.size() != 1 + last_access_.size()) return false;
    clock_ = blob[0];
    std::copy(blob.begin() + 1, blob.end(), last_access_.begin());
    return true;
  }
  [[nodiscard]] double utility(const CatalogView&, ObjectId id, double,
                               double) const {
    return last_access_[id];
  }
  [[nodiscard]] double desired_bytes(const CatalogView& v, ObjectId id,
                                     double) const {
    return v.size_bytes[id];
  }

 private:
  std::vector<double> last_access_;
  double clock_ = 0.0;
};

/// LFU over whole objects: identical to IF by construction; provided as a
/// named baseline for the metrics discussion in §3.3.
struct LfuKernel : IfKernel {
  [[nodiscard]] std::string name() const { return "LFU"; }
};

/// Shared heap-based engine over a policy kernel. Admission evicts
/// strictly-lower-utility victims only (so the cache never trades better
/// content for worse), and respects whole-object semantics for integral
/// kernels. The kernel calls compile to direct (inlined) code.
template <typename Kernel>
class UtilityPolicy final : public UtilityPolicyBase {
 public:
  template <typename... KernelArgs>
  explicit UtilityPolicy(const workload::Catalog& catalog,
                         net::BandwidthEstimator& estimator,
                         KernelArgs&&... kernel_args)
      : UtilityPolicyBase(catalog, estimator),
        kernel_(std::forward<KernelArgs>(kernel_args)...) {
    kernel_.bind(view_);
  }

  [[nodiscard]] std::string name() const override { return kernel_.name(); }

  void reset() override {
    UtilityPolicyBase::reset();
    kernel_.reset();
  }

  [[nodiscard]] const Kernel& kernel() const noexcept { return kernel_; }

  /// Re-target at a new catalog + estimator and forget all learned
  /// state — the shared engine half (frequencies, heap) and the
  /// kernel's own per-object state (e.g. LRU recency) — reusing every
  /// piece of storage (arena reuse across the simulations one worker
  /// executes). After rebind the policy is indistinguishable from a
  /// freshly constructed one.
  void rebind(const workload::Catalog& catalog,
              net::BandwidthEstimator& estimator) {
    rebind_base(catalog, estimator);
    kernel_.bind(view_);
    kernel_.reset();
  }

  void on_access(ObjectId id, double now_s, PartialStore& store) override {
    access(id, now_s, store, *estimator_);
  }

  [[nodiscard]] PolicySnapshot save_state() const override {
    PolicySnapshot out;
    out.freq = freq_;
    out.heap = heap_.entries();
    kernel_.save(out.kernel);
    return out;
  }

  /// Validate-then-apply: the policy is mutated only after every shape
  /// check passes, so a rejected snapshot leaves it untouched. The heap
  /// is rebuilt by pushing entries in id order — heap-internal layout
  /// (sibling order among equal keys) may differ from the saved
  /// instance, but the (id, key) set is identical, which is all the
  /// engine's semantics depend on.
  bool load_state(const PolicySnapshot& state) override {
    const std::size_t n = freq_.size();
    if (state.freq.size() != n) return false;
    for (const double f : state.freq) {
      if (!(f >= 0.0) || !std::isfinite(f)) return false;
    }
    if (state.heap.size() > n) return false;
    ObjectId prev_plus_one = 0;  // entries() is sorted; ids must be unique
    for (const auto& [id, key] : state.heap) {
      if (id >= n || id + 1 <= prev_plus_one) return false;
      if (!std::isfinite(key)) return false;
      prev_plus_one = id + 1;
    }
    Kernel staged = kernel_;
    if (!staged.load(state.kernel)) return false;
    freq_ = state.freq;
    heap_.reset(n);
    for (const auto& [id, key] : state.heap) heap_.push(id, key);
    kernel_ = std::move(staged);
    return true;
  }

  /// The admission/eviction body, templated over the estimator's static
  /// type. The virtual on_access boundary instantiates it with the
  /// BandwidthEstimator interface; the monomorphized run loop passes the
  /// concrete estimator kernel instead, so the per-request estimate()
  /// call — the last virtual call inside the loop — compiles to direct
  /// inlined code.
  template <typename Estimator>
  void access(ObjectId id, double now_s, PartialStore& store,
              Estimator& estimator) {
    /// Slack (bytes) below which size differences are treated as zero.
    /// One byte: cache sizes run to ~10^11 bytes, where the double ulp
    /// is ~10^-5, so a sub-byte epsilon would be swallowed by rounding
    /// (and a sub-byte trim cannot change occupancy anyway).
    constexpr double kEps = 1.0;

    kernel_.before_access(id, now_s);
    freq_[id] += 1.0;
    const double bw = estimator.estimate(view_.path[id], now_s);
    const double u = kernel_.utility(view_, id, freq_[id], bw);
    const double desired =
        std::min(kernel_.desired_bytes(view_, id, bw), view_.size_bytes[id]);
    const double have = store.cached(id);

    // Case 1: the policy no longer wants this object (e.g. the bandwidth
    // estimate improved past the bit-rate). Drop any cached prefix.
    if (u <= 0.0 || desired <= kEps) {
      if (have > 0.0) {
        store.erase(id);
        heap_.remove(id);
      }
      return;
    }

    // Case 2: cached more than currently desired (estimate drifted):
    // shrink.
    if (have > desired + kEps) {
      if constexpr (Kernel::kIntegral) {
        // Integral policies only ever hold whole objects; a shrunken
        // target below the full size means "keep the whole object"
        // semantics no longer apply -- keep it (conservative) and just
        // refresh the key.
        heap_.update(id, u);
        return;
      }
      store.set_cached(id, desired);
      heap_.update(id, u);
      return;
    }

    if (have > 0.0) heap_.update(id, u);

    const double need = desired - have;
    if (need <= kEps) return;

    // Evict strictly-lower-utility victims until the growth fits.
    while (store.free_space() + kEps < need && !heap_.empty()) {
      const ObjectId victim = heap_.min_id();
      if (victim == id) break;  // everything else cached is more valuable
      if (heap_.min_key() >= u) break;
      const double free_before = store.free_space();
      const double victim_bytes = store.cached(victim);
      const double still_needed = need - free_before;
      if (Kernel::kIntegral || still_needed >= victim_bytes - kEps) {
        store.erase(victim);
        heap_.remove(victim);
      } else {
        // Partial policies may trim a victim's prefix tail: the remaining
        // shorter prefix keeps the same utility (the key does not depend
        // on the cached amount).
        store.set_cached(victim, victim_bytes - still_needed);
      }
      if (store.free_space() <= free_before) break;  // rounding: no progress
    }

    const double grant = std::min(need, store.free_space());
    if (grant <= kEps) return;
    if (Kernel::kIntegral && grant + kEps < need) {
      // All-or-nothing admission for whole-object policies.
      return;
    }
    store.set_cached(id, have + grant);
    heap_.upsert(id, u);
  }

 private:
  Kernel kernel_;
};

using IfPolicy = UtilityPolicy<IfKernel>;
using PbPolicy = UtilityPolicy<PbKernel>;
using IbPolicy = UtilityPolicy<IbKernel>;
using HybridPolicy = UtilityPolicy<HybridKernel>;
using PbvPolicy = UtilityPolicy<PbvKernel>;
using IbvPolicy = UtilityPolicy<IbvKernel>;
using LruPolicy = UtilityPolicy<LruKernel>;
using LfuPolicy = UtilityPolicy<LfuKernel>;

}  // namespace sc::cache
