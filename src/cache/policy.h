// Cache replacement policies (§2.4 - §2.6 of the paper).
//
// All of the paper's policies share one structure: estimate each object's
// request frequency F_i, consult a bandwidth estimate b_i, compute a
// scalar *utility* (the selection key) and a *desired cached size*
// (whole object for the Integral family, (r_i - b_i) * T_i for the
// Partial family), and keep the highest-utility objects cached using a
// priority queue with O(log n) updates. UtilityPolicy implements that
// engine once; the concrete policies (IF, PB, IB, Hybrid, PB-V, IB-V,
// LRU, LFU) specialize utility() / desired_bytes() / integral().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/min_heap.h"
#include "cache/store.h"
#include "net/estimator.h"
#include "workload/object_catalog.h"

namespace sc::cache {

using workload::StreamObject;

/// Interface seen by the simulator.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Notify a request for `id` at simulation time `now_s`, *after* the
  /// request was served from the current cache contents. The policy
  /// updates its bookkeeping and may admit, grow, shrink, or evict
  /// objects in `store`.
  virtual void on_access(ObjectId id, double now_s, PartialStore& store) = 0;

  /// Forget all learned state (frequencies, priority queue). The caller
  /// must clear the store as well; policy state and store contents are
  /// kept consistent only through on_access.
  virtual void reset() = 0;
};

/// Shared heap-based engine. Admission evicts strictly-lower-utility
/// victims only (so the cache never trades better content for worse), and
/// respects whole-object semantics for integral policies.
class UtilityPolicy : public CachePolicy {
 public:
  UtilityPolicy(const workload::Catalog& catalog,
                net::BandwidthEstimator& estimator);

  void on_access(ObjectId id, double now_s, PartialStore& store) final;
  void reset() override;

  /// Request count observed for `id` (F_i).
  [[nodiscard]] double frequency(ObjectId id) const { return freq_.at(id); }

 protected:
  /// Called at the start of on_access, before utilities are computed
  /// (hook for recency bookkeeping such as LRU's logical clock).
  virtual void before_access(ObjectId /*id*/, double /*now_s*/) {}

  /// Selection key; larger = keep. Values <= 0 mean "do not cache".
  [[nodiscard]] virtual double utility(const StreamObject& o, double freq,
                                       double bandwidth) const = 0;

  /// Bytes the policy wants cached for this object (prefix size).
  /// Values <= 0 mean "do not cache".
  [[nodiscard]] virtual double desired_bytes(const StreamObject& o,
                                             double bandwidth) const = 0;

  /// Whole-object admission/eviction (Integral family)?
  [[nodiscard]] virtual bool integral() const = 0;

  [[nodiscard]] const workload::Catalog& catalog() const noexcept {
    return *catalog_;
  }

 private:
  const workload::Catalog* catalog_;
  net::BandwidthEstimator* estimator_;
  std::vector<double> freq_;
  IndexedMinHeap heap_;
};

/// IF: Integral Frequency-based caching. Utility F_i, whole objects.
/// Network-oblivious baseline (equivalent to in-cache LFU).
class IfPolicy final : public UtilityPolicy {
 public:
  using UtilityPolicy::UtilityPolicy;
  [[nodiscard]] std::string name() const override { return "IF"; }

 protected:
  [[nodiscard]] double utility(const StreamObject&, double freq,
                               double) const override {
    return freq;
  }
  [[nodiscard]] double desired_bytes(const StreamObject& o,
                                     double) const override {
    return o.size_bytes;
  }
  [[nodiscard]] bool integral() const override { return true; }
};

/// PB: Partial Bandwidth-based caching (§2.4). Skips objects whose
/// bandwidth already supports streaming (r_i <= b_i); otherwise utility
/// F_i / b_i and cached prefix (r_i - b_i) * T_i.
class PbPolicy final : public UtilityPolicy {
 public:
  using UtilityPolicy::UtilityPolicy;
  [[nodiscard]] std::string name() const override { return "PB"; }

 protected:
  [[nodiscard]] double utility(const StreamObject& o, double freq,
                               double bandwidth) const override {
    return o.bitrate <= bandwidth ? 0.0 : freq / bandwidth;
  }
  [[nodiscard]] double desired_bytes(const StreamObject& o,
                                     double bandwidth) const override {
    return (o.bitrate - bandwidth) * o.duration_s;
  }
  [[nodiscard]] bool integral() const override { return false; }
};

/// IB: Integral Bandwidth-based caching (§2.5). Same selection key as PB
/// but caches whole objects (the most conservative over-provisioning).
class IbPolicy final : public UtilityPolicy {
 public:
  using UtilityPolicy::UtilityPolicy;
  [[nodiscard]] std::string name() const override { return "IB"; }

 protected:
  [[nodiscard]] double utility(const StreamObject& o, double freq,
                               double bandwidth) const override {
    return o.bitrate <= bandwidth ? 0.0 : freq / bandwidth;
  }
  [[nodiscard]] double desired_bytes(const StreamObject& o,
                                     double) const override {
    return o.size_bytes;
  }
  [[nodiscard]] bool integral() const override { return true; }
};

/// Hybrid(e): PB with the bandwidth *underestimated* by factor e in the
/// sizing rule (§4.3, Fig 9): cached prefix (r_i - e * b_i) * T_i, capped
/// at the object size. e = 1 reproduces PB; e = 0 caches whole objects
/// (IB-like, except objects with abundant bandwidth are still admitted
/// only when space permits, via the low F/b key).
class HybridPolicy final : public UtilityPolicy {
 public:
  HybridPolicy(const workload::Catalog& catalog,
               net::BandwidthEstimator& estimator, double e);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double e() const noexcept { return e_; }

 protected:
  [[nodiscard]] double utility(const StreamObject& o, double freq,
                               double bandwidth) const override {
    return o.bitrate <= e_ * bandwidth ? 0.0 : freq / bandwidth;
  }
  [[nodiscard]] double desired_bytes(const StreamObject& o,
                                     double bandwidth) const override {
    return std::min(o.size_bytes,
                    (o.bitrate - e_ * bandwidth) * o.duration_s);
  }
  [[nodiscard]] bool integral() const override { return false; }

 private:
  double e_;
};

/// PB-V: Partial Bandwidth-Value-based caching (§2.6). Greedy key
/// F_i * V_i / (T_i r_i - T_i b_i); cached prefix (r_i - b_i) * T_i so a
/// hit can start instantly. Supports the Fig-12 estimator e the same way
/// Hybrid does.
class PbvPolicy final : public UtilityPolicy {
 public:
  PbvPolicy(const workload::Catalog& catalog,
            net::BandwidthEstimator& estimator, double e = 1.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double e() const noexcept { return e_; }

 protected:
  [[nodiscard]] double utility(const StreamObject& o, double freq,
                               double bandwidth) const override;
  [[nodiscard]] double desired_bytes(const StreamObject& o,
                                     double bandwidth) const override {
    return std::min(o.size_bytes,
                    (o.bitrate - e_ * bandwidth) * o.duration_s);
  }
  [[nodiscard]] bool integral() const override { return false; }

 private:
  double e_;
};

/// IB-V: Integral Bandwidth-Value-based caching (§4.4). Whole objects
/// with key F_i * V_i / (T_i r_i * b_i): prefers low bandwidth, high
/// value, small size. (The paper's typography is ambiguous here; see
/// DESIGN.md §2 and the bench_ablation key-variant study.)
class IbvPolicy final : public UtilityPolicy {
 public:
  using UtilityPolicy::UtilityPolicy;
  [[nodiscard]] std::string name() const override { return "IB-V"; }

 protected:
  [[nodiscard]] double utility(const StreamObject& o, double freq,
                               double bandwidth) const override {
    if (o.bitrate <= bandwidth) return 0.0;
    return freq * o.value / (o.size_bytes * bandwidth);
  }
  [[nodiscard]] double desired_bytes(const StreamObject& o,
                                     double) const override {
    return o.size_bytes;
  }
  [[nodiscard]] bool integral() const override { return true; }
};

/// LRU over whole objects (network-oblivious baseline, §3.3).
class LruPolicy final : public UtilityPolicy {
 public:
  LruPolicy(const workload::Catalog& catalog,
            net::BandwidthEstimator& estimator);

  [[nodiscard]] std::string name() const override { return "LRU"; }
  void reset() override;

 protected:
  void before_access(ObjectId id, double now_s) override;
  [[nodiscard]] double utility(const StreamObject& o, double,
                               double) const override;
  [[nodiscard]] double desired_bytes(const StreamObject& o,
                                     double) const override {
    return o.size_bytes;
  }
  [[nodiscard]] bool integral() const override { return true; }

 private:
  std::vector<double> last_access_;
  double clock_ = 0.0;
};

/// LFU over whole objects: identical to IF by construction; provided as a
/// named baseline for the metrics discussion in §3.3.
class LfuPolicy final : public UtilityPolicy {
 public:
  using UtilityPolicy::UtilityPolicy;
  [[nodiscard]] std::string name() const override { return "LFU"; }

 protected:
  [[nodiscard]] double utility(const StreamObject&, double freq,
                               double) const override {
    return freq;
  }
  [[nodiscard]] double desired_bytes(const StreamObject& o,
                                     double) const override {
    return o.size_bytes;
  }
  [[nodiscard]] bool integral() const override { return true; }
};

}  // namespace sc::cache
