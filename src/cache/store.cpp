#include "cache/store.h"

#include <stdexcept>

namespace sc::cache {

PartialStore::PartialStore(double capacity_bytes) : capacity_(capacity_bytes) {
  if (capacity_bytes < 0) {
    throw std::invalid_argument("PartialStore: negative capacity");
  }
}

double PartialStore::cached(ObjectId id) const {
  const auto it = cached_.find(id);
  return it == cached_.end() ? 0.0 : it->second;
}

void PartialStore::set_cached(ObjectId id, double bytes) {
  if (bytes < 0) {
    throw std::invalid_argument("PartialStore::set_cached: negative size");
  }
  const double current = cached(id);
  const double delta = bytes - current;
  // Tolerate one byte of floating-point slack: occupancy runs to ~10^11
  // bytes, where double rounding swallows sub-byte differences.
  if (delta > free_space() + 1.0) {
    throw std::length_error("PartialStore::set_cached: over capacity");
  }
  if (bytes == 0.0) {
    cached_.erase(id);
  } else {
    cached_[id] = bytes;
  }
  used_ += delta;
  if (used_ < 0) used_ = 0;  // guard accumulated rounding
}

void PartialStore::erase(ObjectId id) {
  const auto it = cached_.find(id);
  if (it == cached_.end()) return;
  used_ -= it->second;
  if (used_ < 0) used_ = 0;
  cached_.erase(it);
}

void PartialStore::clear() {
  cached_.clear();
  used_ = 0.0;
}

}  // namespace sc::cache
