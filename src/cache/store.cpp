#include "cache/store.h"

#include <stdexcept>

namespace sc::cache {

PartialStore::PartialStore(double capacity_bytes) : capacity_(capacity_bytes) {
  if (capacity_bytes < 0) {
    throw std::invalid_argument("PartialStore: negative capacity");
  }
}

void PartialStore::reserve(std::size_t max_objects) {
  if (max_objects > cached_.size()) cached_.resize(max_objects, 0.0);
}

void PartialStore::set_cached(ObjectId id, double bytes) {
  if (bytes < 0) {
    throw std::invalid_argument("PartialStore::set_cached: negative size");
  }
  const double current = cached(id);
  const double delta = bytes - current;
  // Tolerate one byte of floating-point slack: occupancy runs to ~10^11
  // bytes, where double rounding swallows sub-byte differences.
  if (delta > free_space() + 1.0) {
    throw std::length_error("PartialStore::set_cached: over capacity");
  }
  if (bytes == 0.0) {
    erase(id);
    return;
  }
  if (id >= cached_.size()) cached_.resize(id + 1, 0.0);
  if (current == 0.0) ++count_;
  cached_[id] = bytes;
  used_ += delta;
  if (used_ < 0) used_ = 0;  // guard accumulated rounding
  if (log_ != nullptr) log_->push_back(StoreChange{id, bytes});
}

void PartialStore::erase(ObjectId id) {
  if (id >= cached_.size() || cached_[id] == 0.0) return;
  used_ -= cached_[id];
  if (used_ < 0) used_ = 0;
  cached_[id] = 0.0;
  --count_;
  if (log_ != nullptr) log_->push_back(StoreChange{id, 0.0});
}

void PartialStore::clear() {
  cached_.assign(cached_.size(), 0.0);
  used_ = 0.0;
  count_ = 0;
}

void PartialStore::reset(double capacity_bytes) {
  if (capacity_bytes < 0) {
    throw std::invalid_argument("PartialStore: negative capacity");
  }
  capacity_ = capacity_bytes;
  clear();
}

std::vector<std::pair<ObjectId, double>> PartialStore::contents() const {
  std::vector<std::pair<ObjectId, double>> out;
  out.reserve(count_);
  for (ObjectId id = 0; id < cached_.size(); ++id) {
    if (cached_[id] > 0.0) out.emplace_back(id, cached_[id]);
  }
  return out;
}

}  // namespace sc::cache
