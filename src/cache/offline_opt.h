// Offline (static, full-knowledge) cache population (§2.3 and §2.6).
//
// With known request rates lambda_i and bandwidths b_i:
//   * Delay objective: fractional knapsack -- cache objects in decreasing
//     lambda_i / b_i, each up to (r_i - b_i) * T_i. Provably optimal.
//   * Value objective: 0/1 knapsack (NP-hard) -- the paper's greedy caches
//     by lambda_i * V_i / (T_i r_i - T_i b_i); an exact DP solver is
//     provided for small instances so tests can bound the greedy gap.
#pragma once

#include <cstddef>
#include <vector>

#include "workload/object_catalog.h"

namespace sc::cache {

/// Input: per-object request rates and path bandwidths (same indexing as
/// the catalog).
struct OfflineInputs {
  std::vector<double> lambda;     // requests/second (or any rate proxy)
  std::vector<double> bandwidth;  // bytes/second
};

struct FractionalSolution {
  std::vector<double> cached_bytes;  // x_i
  /// Expected service delay per request under the solution, weighted by
  /// lambda (the paper's objective).
  double expected_delay_s = 0.0;
  double bytes_used = 0.0;
};

/// §2.3: optimal static partial caching for the delay objective.
[[nodiscard]] FractionalSolution optimal_fractional(
    const workload::Catalog& catalog, const OfflineInputs& inputs,
    double capacity_bytes);

/// Mean service delay per request for arbitrary cache contents x (same
/// weighting as optimal_fractional's objective; used to compare policies
/// against the offline optimum).
[[nodiscard]] double expected_delay(const workload::Catalog& catalog,
                                    const OfflineInputs& inputs,
                                    const std::vector<double>& cached_bytes);

struct ValueSolution {
  std::vector<bool> selected;
  double total_rate_value = 0.0;  // sum of lambda_i * V_i over selection
  double bytes_used = 0.0;
};

/// §2.6 greedy: select objects by lambda_i V_i / [T_i r_i - T_i b_i]+,
/// caching [T_i(r_i - b_i)]+ bytes each (objects with abundant bandwidth
/// cost zero bytes and are always selected).
[[nodiscard]] ValueSolution value_greedy(const workload::Catalog& catalog,
                                         const OfflineInputs& inputs,
                                         double capacity_bytes);

/// Exact 0/1 knapsack for the value objective via dynamic programming on
/// discretized weights. Intended for small instances (tests); cost is
/// O(n * resolution).
[[nodiscard]] ValueSolution value_exact(const workload::Catalog& catalog,
                                        const OfflineInputs& inputs,
                                        double capacity_bytes,
                                        std::size_t resolution = 2000);

}  // namespace sc::cache
