// Fine-grain segment bookkeeping for partial objects (§2.7).
//
// The paper restricts cached content to *prefixes* so that joint delivery
// needs no interval bookkeeping, but notes the alternative of fine-grain
// segments. This module provides both pieces a segment-granular proxy
// needs:
//   * SegmentMap    - a bitmap over fixed-size segments of one object,
//                     with prefix queries and hole detection;
//   * SegmentedStore- a capacity-bounded store of SegmentMaps that
//                     quantizes the byte-granular policy decisions onto
//                     segment boundaries (what a disk-backed proxy
//                     actually allocates).
// The bench_ablation segment study quantifies the internal-fragmentation
// cost of segment size against the byte-granular PartialStore.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "workload/object_catalog.h"

namespace sc::cache {

using workload::ObjectId;

/// Bitmap over the fixed-size segments of one object.
class SegmentMap {
 public:
  /// `object_bytes` is the full object size; the last segment may be
  /// shorter than `segment_bytes`.
  SegmentMap(double object_bytes, double segment_bytes);

  [[nodiscard]] std::size_t segment_count() const noexcept {
    return present_.size();
  }
  [[nodiscard]] double segment_bytes() const noexcept {
    return segment_bytes_;
  }
  [[nodiscard]] double object_bytes() const noexcept { return object_bytes_; }

  /// Size in bytes of segment `i` (the tail segment may be short).
  [[nodiscard]] double bytes_of_segment(std::size_t i) const;

  [[nodiscard]] bool has(std::size_t i) const { return present_.at(i); }

  /// Mark segment present/absent; returns the byte delta (+size, -size,
  /// or 0 if unchanged).
  double set(std::size_t i, bool present);

  /// Bytes currently present.
  [[nodiscard]] double bytes_present() const noexcept { return bytes_; }

  /// Length in bytes of the contiguous prefix (what joint prefix
  /// delivery can use).
  [[nodiscard]] double contiguous_prefix_bytes() const;

  /// Number of "holes": maximal runs of absent segments strictly between
  /// present ones. Zero for pure prefixes.
  [[nodiscard]] std::size_t hole_count() const;

  /// Grow/shrink the *prefix* to at least/at most `bytes` (rounded up to
  /// whole segments when growing, down when shrinking). Returns the byte
  /// delta. Segments beyond the prefix are untouched.
  double resize_prefix(double bytes);

 private:
  double object_bytes_;
  double segment_bytes_;
  double bytes_ = 0.0;
  std::vector<bool> present_;
};

/// Capacity-bounded store of per-object SegmentMaps. The interface
/// mirrors PartialStore's byte-granular contract so policies can drive
/// either; internally every allocation is quantized to whole segments.
class SegmentedStore {
 public:
  /// `catalog` supplies object sizes; must outlive the store.
  SegmentedStore(double capacity_bytes, double segment_bytes,
                 const workload::Catalog& catalog);

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] double used() const noexcept { return used_; }
  [[nodiscard]] double free_space() const noexcept {
    return capacity_ - used_;
  }
  [[nodiscard]] double segment_bytes() const noexcept {
    return segment_bytes_;
  }
  [[nodiscard]] std::size_t object_count() const noexcept {
    return maps_.size();
  }

  /// Usable cached prefix of `id` in bytes (contiguous from offset 0).
  [[nodiscard]] double cached_prefix(ObjectId id) const;

  /// Total bytes held for `id` (>= cached_prefix when holes exist).
  [[nodiscard]] double cached_total(ObjectId id) const;

  /// Set the cached prefix to approximately `bytes` (rounded up to whole
  /// segments, capped at object size and capacity). Throws
  /// std::length_error if the rounded request does not fit. Returns the
  /// actual bytes now held.
  double set_prefix(ObjectId id, double bytes);

  /// Drop the object entirely.
  void erase(ObjectId id);

  /// Internal fragmentation: bytes held beyond what byte-granular
  /// storage of the same prefixes would hold.
  [[nodiscard]] double fragmentation_bytes() const;

  [[nodiscard]] const std::unordered_map<ObjectId, SegmentMap>& contents()
      const noexcept {
    return maps_;
  }

 private:
  double capacity_;
  double segment_bytes_;
  const workload::Catalog* catalog_;
  double used_ = 0.0;
  double requested_ = 0.0;  // byte-granular total actually asked for
  std::unordered_map<ObjectId, SegmentMap> maps_;
  std::unordered_map<ObjectId, double> requested_bytes_;
};

}  // namespace sc::cache
