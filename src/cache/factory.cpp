#include "cache/factory.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace sc::cache {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kIF: return "IF";
    case PolicyKind::kPB: return "PB";
    case PolicyKind::kIB: return "IB";
    case PolicyKind::kHybrid: return "Hybrid";
    case PolicyKind::kPBV: return "PB-V";
    case PolicyKind::kIBV: return "IB-V";
    case PolicyKind::kLRU: return "LRU";
    case PolicyKind::kLFU: return "LFU";
  }
  return "?";
}

std::string spec_for(PolicyKind kind, const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::kIF: return "if";
    case PolicyKind::kPB: return "pb";
    case PolicyKind::kIB: return "ib";
    case PolicyKind::kLRU: return "lru";
    case PolicyKind::kLFU: return "lfu";
    case PolicyKind::kIBV: return "ibv";
    case PolicyKind::kHybrid:
    case PolicyKind::kPBV: {
      std::string spec = kind == PolicyKind::kHybrid ? "hybrid" : "pbv";
      if (kind == PolicyKind::kHybrid || params.e != 1.0) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), ":e=%.17g", params.e);
        spec += buffer;
      }
      return spec;
    }
  }
  throw std::invalid_argument("spec_for: unknown kind");
}

PolicyKind parse_policy_kind(const std::string& name) {
  std::string up(name);
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (up == "IF") return PolicyKind::kIF;
  if (up == "PB") return PolicyKind::kPB;
  if (up == "IB") return PolicyKind::kIB;
  if (up == "HYBRID") return PolicyKind::kHybrid;
  if (up == "PB-V" || up == "PBV") return PolicyKind::kPBV;
  if (up == "IB-V" || up == "IBV") return PolicyKind::kIBV;
  if (up == "LRU") return PolicyKind::kLRU;
  if (up == "LFU") return PolicyKind::kLFU;
  throw std::invalid_argument("unknown policy name: " + name);
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind,
                                         const workload::Catalog& catalog,
                                         net::BandwidthEstimator& estimator,
                                         const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::kIF:
      return std::make_unique<IfPolicy>(catalog, estimator);
    case PolicyKind::kPB:
      return std::make_unique<PbPolicy>(catalog, estimator);
    case PolicyKind::kIB:
      return std::make_unique<IbPolicy>(catalog, estimator);
    case PolicyKind::kHybrid:
      return std::make_unique<HybridPolicy>(catalog, estimator, params.e);
    case PolicyKind::kPBV:
      return std::make_unique<PbvPolicy>(catalog, estimator, params.e);
    case PolicyKind::kIBV:
      return std::make_unique<IbvPolicy>(catalog, estimator);
    case PolicyKind::kLRU:
      return std::make_unique<LruPolicy>(catalog, estimator);
    case PolicyKind::kLFU:
      return std::make_unique<LfuPolicy>(catalog, estimator);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace sc::cache
