// Partial-object cache store.
//
// Tracks, for every object, how many bytes of its *prefix* are cached
// (x_i in the paper), under a hard capacity constraint. The paper (§2.7)
// restricts partial caching to prefixes so that joint cache+origin
// delivery needs no interval bookkeeping; the store models exactly that.
//
// Object ids are dense (the catalog assigns id == index), so the store
// keeps prefix sizes in a flat array indexed by id: every lookup and
// update is one bounds-checked array access, and the per-request hot
// path performs no hashing and no allocation once the array has grown to
// the largest id seen (reserve() up front makes it allocation-free from
// the first request).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "workload/object_catalog.h"

namespace sc::cache {

using workload::ObjectId;

/// One observed store mutation: the cached prefix of `id` became exactly
/// `bytes` (0 means the object was erased). Appended to an attached
/// change log by set_cached/erase — the persistence layer's journal
/// feed (src/server/persist.h). clear()/reset() do not log: they are
/// lifecycle operations the owner already knows about.
struct StoreChange {
  ObjectId id = 0;
  double bytes = 0.0;
};
using StoreChangeLog = std::vector<StoreChange>;

class PartialStore {
 public:
  explicit PartialStore(double capacity_bytes);

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] double used() const noexcept { return used_; }
  [[nodiscard]] double free_space() const noexcept { return capacity_ - used_; }

  /// Pre-size the id array (e.g. to the catalog size) so the hot path
  /// never reallocates.
  void reserve(std::size_t max_objects);

  /// Cached prefix bytes of object `id` (0 if absent).
  [[nodiscard]] double cached(ObjectId id) const noexcept {
    return id < cached_.size() ? cached_[id] : 0.0;
  }

  [[nodiscard]] bool contains(ObjectId id) const noexcept {
    return cached(id) > 0.0;
  }

  /// Number of objects with a non-empty cached prefix.
  [[nodiscard]] std::size_t object_count() const noexcept { return count_; }

  /// Set the cached prefix of `id` to exactly `bytes` (grow or shrink).
  /// Throws std::invalid_argument on negative sizes and std::length_error
  /// if growth would exceed capacity (accounting untouched on throw).
  void set_cached(ObjectId id, double bytes);

  /// Remove the object entirely. No-op if absent.
  void erase(ObjectId id);

  /// Drop everything (keeps the id array's storage).
  void clear();

  /// Drop everything and adopt a new capacity (arena reuse across
  /// simulations). Equivalent to constructing PartialStore(capacity)
  /// except the id array's storage is kept.
  void reset(double capacity_bytes);

  /// Snapshot of (id, cached bytes) pairs, sorted by id. Materialized on
  /// each call; intended for tests and reporting, not the hot path.
  [[nodiscard]] std::vector<std::pair<ObjectId, double>> contents() const;

  /// Attach (or detach, with nullptr) a change log: every subsequent
  /// set_cached/erase appends the object's new cached size to `log`.
  /// Null by default, which keeps the simulator's hot path exactly one
  /// predictable branch away from the pre-listener code — the golden
  /// CSVs and the allocation regression tests pin that inertness.
  void set_change_log(StoreChangeLog* log) noexcept { log_ = log; }

 private:
  double capacity_;
  double used_ = 0.0;
  std::size_t count_ = 0;
  std::vector<double> cached_;  // indexed by ObjectId; 0 means absent
  StoreChangeLog* log_ = nullptr;
};

}  // namespace sc::cache
