// Partial-object cache store.
//
// Tracks, for every object, how many bytes of its *prefix* are cached
// (x_i in the paper), under a hard capacity constraint. The paper (§2.7)
// restricts partial caching to prefixes so that joint cache+origin
// delivery needs no interval bookkeeping; the store models exactly that.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "workload/object_catalog.h"

namespace sc::cache {

using workload::ObjectId;

class PartialStore {
 public:
  explicit PartialStore(double capacity_bytes);

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] double used() const noexcept { return used_; }
  [[nodiscard]] double free_space() const noexcept { return capacity_ - used_; }

  /// Cached prefix bytes of object `id` (0 if absent).
  [[nodiscard]] double cached(ObjectId id) const;

  [[nodiscard]] bool contains(ObjectId id) const {
    return cached_.find(id) != cached_.end();
  }

  /// Number of objects with a non-empty cached prefix.
  [[nodiscard]] std::size_t object_count() const noexcept {
    return cached_.size();
  }

  /// Set the cached prefix of `id` to exactly `bytes` (grow or shrink).
  /// Throws std::invalid_argument on negative sizes and std::length_error
  /// if growth would exceed capacity.
  void set_cached(ObjectId id, double bytes);

  /// Remove the object entirely. No-op if absent.
  void erase(ObjectId id);

  /// Drop everything.
  void clear();

  /// Iteration over (id, cached bytes).
  [[nodiscard]] const std::unordered_map<ObjectId, double>& contents()
      const noexcept {
    return cached_;
  }

 private:
  double capacity_;
  double used_ = 0.0;
  std::unordered_map<ObjectId, double> cached_;
};

}  // namespace sc::cache
