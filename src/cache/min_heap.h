// Addressable binary min-heap keyed by double utilities.
//
// The paper (§2.4) calls for a priority queue over cached objects keyed by
// utility, with O(log n) updates when an access changes an object's
// utility. std::priority_queue cannot re-key, so this heap maintains a
// handle (slot id -> heap position) index supporting push / update /
// remove / pop-min, each O(log n).
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sc::cache {

/// Min-heap over dense ids [0, capacity) with updatable keys.
class IndexedMinHeap {
 public:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  explicit IndexedMinHeap(std::size_t id_capacity)
      : pos_(id_capacity, kNpos) {
    // Every id can be present at most once, so reserving id_capacity
    // makes push() allocation-free for the heap's whole lifetime.
    heap_.reserve(id_capacity);
  }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] bool contains(std::size_t id) const {
    return pos_.at(id) != kNpos;
  }

  /// Key of a contained id.
  [[nodiscard]] double key(std::size_t id) const {
    const std::size_t p = pos_.at(id);
    if (p == kNpos) throw std::out_of_range("IndexedMinHeap::key: absent id");
    return heap_[p].key;
  }

  /// Insert id with key; id must not already be present.
  void push(std::size_t id, double key) {
    if (contains(id)) {
      throw std::logic_error("IndexedMinHeap::push: id already present");
    }
    heap_.push_back(Entry{key, id});
    pos_[id] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }

  /// Change the key of a contained id (either direction).
  void update(std::size_t id, double key) {
    const std::size_t p = pos_.at(id);
    if (p == kNpos) {
      throw std::out_of_range("IndexedMinHeap::update: absent id");
    }
    const double old = heap_[p].key;
    heap_[p].key = key;
    if (key < old) {
      sift_up(p);
    } else if (key > old) {
      sift_down(p);
    }
  }

  /// Insert or re-key.
  void upsert(std::size_t id, double key) {
    if (contains(id)) {
      update(id, key);
    } else {
      push(id, key);
    }
  }

  /// Id with the minimum key.
  [[nodiscard]] std::size_t min_id() const {
    if (empty()) throw std::out_of_range("IndexedMinHeap::min_id: empty");
    return heap_[0].id;
  }

  [[nodiscard]] double min_key() const {
    if (empty()) throw std::out_of_range("IndexedMinHeap::min_key: empty");
    return heap_[0].key;
  }

  /// Remove and return the minimum-key id.
  std::size_t pop_min() {
    const std::size_t id = min_id();
    remove(id);
    return id;
  }

  /// Drop every entry in O(size) (vs. O(n log n) for repeated pop_min),
  /// keeping the backing storage for reuse.
  void clear() noexcept {
    for (const Entry& e : heap_) pos_[e.id] = kNpos;
    heap_.clear();
  }

  /// Re-initialize for a (possibly different) id capacity, reusing the
  /// backing storage: after reset the heap is indistinguishable from a
  /// freshly constructed IndexedMinHeap(id_capacity).
  void reset(std::size_t id_capacity) {
    heap_.clear();
    pos_.assign(id_capacity, kNpos);
    heap_.reserve(id_capacity);
  }

  /// Remove an arbitrary contained id.
  void remove(std::size_t id) {
    const std::size_t p = pos_.at(id);
    if (p == kNpos) {
      throw std::out_of_range("IndexedMinHeap::remove: absent id");
    }
    const std::size_t last = heap_.size() - 1;
    if (p != last) {
      swap_entries(p, last);
      heap_.pop_back();
      pos_[id] = kNpos;
      // The moved entry may need to go either way.
      sift_up(p);
      sift_down(p);
    } else {
      heap_.pop_back();
      pos_[id] = kNpos;
    }
  }

  /// Every (id, key) entry, sorted by id (deterministic order for
  /// snapshots). Materialized per call; audit/persistence hook, not for
  /// hot paths.
  [[nodiscard]] std::vector<std::pair<std::size_t, double>> entries() const {
    std::vector<std::pair<std::size_t, double>> out;
    out.reserve(heap_.size());
    for (const Entry& e : heap_) out.emplace_back(e.id, e.key);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Validate the heap property and index consistency (test hook).
  [[nodiscard]] bool check_invariants() const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (heap_[i].key < heap_[(i - 1) / 2].key) return false;
    }
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (pos_[heap_[i].id] != i) return false;
    }
    std::size_t present = 0;
    for (const std::size_t p : pos_) {
      if (p != kNpos) ++present;
    }
    return present == heap_.size();
  }

 private:
  struct Entry {
    double key;
    std::size_t id;
  };

  void swap_entries(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].id] = a;
    pos_[heap_[b].id] = b;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[i].key >= heap_[parent].key) break;
      swap_entries(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t smallest = i;
      if (l < n && heap_[l].key < heap_[smallest].key) smallest = l;
      if (r < n && heap_[r].key < heap_[smallest].key) smallest = r;
      if (smallest == i) break;
      swap_entries(i, smallest);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;
};

}  // namespace sc::cache
