// Policy construction by name/kind, shared by the simulator, examples,
// and bench harnesses.
#pragma once

#include <memory>
#include <string>

#include "cache/policy.h"

namespace sc::cache {

enum class PolicyKind {
  kIF,
  kPB,
  kIB,
  kHybrid,  // requires params.e
  kPBV,
  kIBV,
  kLRU,
  kLFU,
};

struct PolicyParams {
  /// Bandwidth under-estimation factor for Hybrid / PB-V(e) (Figs 9, 12).
  double e = 1.0;
};

[[nodiscard]] std::string to_string(PolicyKind kind);

/// Parse "IF", "PB", "IB", "Hybrid", "PB-V", "IB-V", "LRU", "LFU"
/// (case-insensitive). Throws std::invalid_argument for unknown names.
[[nodiscard]] PolicyKind parse_policy_kind(const std::string& name);

/// Instantiate a policy. `catalog` and `estimator` must outlive it.
[[nodiscard]] std::unique_ptr<CachePolicy> make_policy(
    PolicyKind kind, const workload::Catalog& catalog,
    net::BandwidthEstimator& estimator, const PolicyParams& params = {});

}  // namespace sc::cache
