// Policy construction by enum kind.
//
// DEPRECATED: new code should construct policies from spec strings
// through core::registry ("pb", "hybrid:e=0.5", ...), which also covers
// estimators and scenarios and is extensible without editing this
// switch. The enum API remains as a thin wrapper — the registry's
// built-in policy factories delegate here, so both paths construct
// identical objects.
#pragma once

#include <memory>
#include <string>

#include "cache/policy.h"

namespace sc::cache {

enum class PolicyKind {
  kIF,
  kPB,
  kIB,
  kHybrid,  // requires params.e
  kPBV,
  kIBV,
  kLRU,
  kLFU,
};

struct PolicyParams {
  /// Bandwidth under-estimation factor for Hybrid / PB-V(e) (Figs 9, 12).
  double e = 1.0;
};

[[nodiscard]] std::string to_string(PolicyKind kind);

/// Registry spec string equivalent to (kind, params), e.g.
/// (kHybrid, {e: 0.5}) -> "hybrid:e=0.5"; bridges the deprecated enum
/// API onto the spec API.
[[nodiscard]] std::string spec_for(PolicyKind kind,
                                   const PolicyParams& params = {});

/// Parse "IF", "PB", "IB", "Hybrid", "PB-V", "IB-V", "LRU", "LFU"
/// (case-insensitive). Throws std::invalid_argument for unknown names.
[[nodiscard, deprecated(
    "resolve a spec string through core::registry instead")]] PolicyKind
parse_policy_kind(const std::string& name);

/// Instantiate a policy. `catalog` and `estimator` must outlive it.
[[nodiscard, deprecated(
    "construct through core::registry::make_policy(spec, ...) "
    "instead")]] std::unique_ptr<CachePolicy>
make_policy(PolicyKind kind, const workload::Catalog& catalog,
            net::BandwidthEstimator& estimator,
            const PolicyParams& params = {});

}  // namespace sc::cache
