#include "cache/segments.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sc::cache {

SegmentMap::SegmentMap(double object_bytes, double segment_bytes)
    : object_bytes_(object_bytes), segment_bytes_(segment_bytes) {
  if (object_bytes <= 0) {
    throw std::invalid_argument("SegmentMap: object_bytes must be > 0");
  }
  if (segment_bytes <= 0) {
    throw std::invalid_argument("SegmentMap: segment_bytes must be > 0");
  }
  const auto n =
      static_cast<std::size_t>(std::ceil(object_bytes / segment_bytes));
  present_.assign(std::max<std::size_t>(n, 1), false);
}

double SegmentMap::bytes_of_segment(std::size_t i) const {
  if (i >= present_.size()) {
    throw std::out_of_range("SegmentMap::bytes_of_segment");
  }
  if (i + 1 < present_.size()) return segment_bytes_;
  const double tail =
      object_bytes_ - segment_bytes_ * static_cast<double>(present_.size() - 1);
  return tail > 0 ? tail : segment_bytes_;
}

double SegmentMap::set(std::size_t i, bool present) {
  if (i >= present_.size()) throw std::out_of_range("SegmentMap::set");
  if (present_[i] == present) return 0.0;
  present_[i] = present;
  const double delta = (present ? 1.0 : -1.0) * bytes_of_segment(i);
  bytes_ += delta;
  return delta;
}

double SegmentMap::contiguous_prefix_bytes() const {
  double bytes = 0.0;
  for (std::size_t i = 0; i < present_.size(); ++i) {
    if (!present_[i]) break;
    bytes += bytes_of_segment(i);
  }
  return bytes;
}

std::size_t SegmentMap::hole_count() const {
  std::size_t holes = 0;
  bool in_hole = false;
  bool seen_present = false;
  for (const bool p : present_) {
    if (p) {
      if (in_hole && seen_present) ++holes;
      in_hole = false;
      seen_present = true;
    } else if (seen_present) {
      in_hole = true;
    }
  }
  return holes;
}

double SegmentMap::resize_prefix(double bytes) {
  bytes = std::clamp(bytes, 0.0, object_bytes_);
  // Target: the smallest whole-segment prefix covering `bytes`.
  const auto want = static_cast<std::size_t>(
      std::ceil(bytes / segment_bytes_ - 1e-12));
  double delta = 0.0;
  for (std::size_t i = 0; i < present_.size(); ++i) {
    delta += set(i, i < want);
  }
  return delta;
}

SegmentedStore::SegmentedStore(double capacity_bytes, double segment_bytes,
                               const workload::Catalog& catalog)
    : capacity_(capacity_bytes),
      segment_bytes_(segment_bytes),
      catalog_(&catalog) {
  if (capacity_bytes < 0) {
    throw std::invalid_argument("SegmentedStore: negative capacity");
  }
  if (segment_bytes <= 0) {
    throw std::invalid_argument("SegmentedStore: segment_bytes must be > 0");
  }
}

double SegmentedStore::cached_prefix(ObjectId id) const {
  const auto it = maps_.find(id);
  return it == maps_.end() ? 0.0 : it->second.contiguous_prefix_bytes();
}

double SegmentedStore::cached_total(ObjectId id) const {
  const auto it = maps_.find(id);
  return it == maps_.end() ? 0.0 : it->second.bytes_present();
}

double SegmentedStore::set_prefix(ObjectId id, double bytes) {
  const auto& obj = catalog_->object(id);
  bytes = std::clamp(bytes, 0.0, obj.size_bytes);

  auto it = maps_.find(id);
  if (it == maps_.end()) {
    if (bytes <= 0) return 0.0;
    it = maps_.emplace(id, SegmentMap(obj.size_bytes, segment_bytes_)).first;
  }
  // Dry-run the delta before committing, to enforce capacity.
  const double current = it->second.bytes_present();
  const auto want_segments = static_cast<std::size_t>(
      std::ceil(bytes / segment_bytes_ - 1e-12));
  double target = 0.0;
  for (std::size_t i = 0; i < it->second.segment_count() && i < want_segments;
       ++i) {
    target += it->second.bytes_of_segment(i);
  }
  const double delta = target - current;
  if (delta > free_space() + 1.0) {
    if (current <= 0) maps_.erase(it);
    throw std::length_error("SegmentedStore::set_prefix: over capacity");
  }

  requested_ += bytes - requested_bytes_[id];
  requested_bytes_[id] = bytes;
  used_ += it->second.resize_prefix(bytes);
  if (it->second.bytes_present() <= 0) {
    maps_.erase(it);
    requested_ -= requested_bytes_[id];
    requested_bytes_.erase(id);
  }
  if (used_ < 0) used_ = 0;
  return cached_total(id);
}

void SegmentedStore::erase(ObjectId id) {
  const auto it = maps_.find(id);
  if (it == maps_.end()) return;
  used_ -= it->second.bytes_present();
  if (used_ < 0) used_ = 0;
  maps_.erase(it);
  const auto rit = requested_bytes_.find(id);
  if (rit != requested_bytes_.end()) {
    requested_ -= rit->second;
    requested_bytes_.erase(rit);
  }
}

double SegmentedStore::fragmentation_bytes() const {
  return std::max(0.0, used_ - requested_);
}

}  // namespace sc::cache
