#include "stats/distributions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sc::stats {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0 || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable: weights must be finite, >= 0");
    }
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("AliasTable: zero total mass");

  // Vose's method: scale masses to mean 1, then pair each under-full
  // bucket with an over-full donor.
  prob_.assign(n, 1.0);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alias_[i] = i;
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    const std::size_t l = large.back();
    small.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (rounding) keep prob 1.0: they never divert to an alias.
}

namespace {

std::vector<double> zipf_weights(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfLike: n must be positive");
  if (alpha < 0) throw std::invalid_argument("ZipfLike: alpha must be >= 0");
  std::vector<double> w(n);
  for (std::size_t r = 1; r <= n; ++r) {
    w[r - 1] = std::pow(static_cast<double>(r), -alpha);
  }
  return w;
}

}  // namespace

ZipfLike::ZipfLike(std::size_t n, double alpha)
    : n_(n), alpha_(alpha), alias_(zipf_weights(n, alpha)) {
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    sum += std::pow(static_cast<double>(r), -alpha);
    cdf_[r - 1] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfLike::sample_cdf(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfLike::pmf(std::size_t rank) const {
  if (rank == 0 || rank > n_) throw std::out_of_range("ZipfLike::pmf: rank");
  const double p = cdf_[rank - 1];
  const double prev = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return p - prev;
}

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma < 0) throw std::invalid_argument("Lognormal: sigma must be >= 0");
}

double Lognormal::sample(util::Rng& rng) const {
  return rng.lognormal(mu_, sigma_);
}

double Lognormal::mean() const { return std::exp(mu_ + sigma_ * sigma_ / 2); }

double Lognormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2 * mu_ + s2);
}

Exponential::Exponential(double rate) : rate_(rate) {
  if (rate <= 0) throw std::invalid_argument("Exponential: rate must be > 0");
}

double Exponential::sample(util::Rng& rng) const {
  return rng.exponential(rate_);
}

Pareto::Pareto(double scale, double shape) : scale_(scale), shape_(shape) {
  if (scale <= 0 || shape <= 0) {
    throw std::invalid_argument("Pareto: scale and shape must be > 0");
  }
}

double Pareto::sample(util::Rng& rng) const {
  // Inverse transform: x = x_m / U^{1/a}.
  double u = rng.uniform();
  if (u <= 0.0) u = 1e-300;
  return scale_ / std::pow(u, 1.0 / shape_);
}

double Pareto::mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return shape_ * scale_ / (shape_ - 1.0);
}

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (hi < lo) throw std::invalid_argument("Uniform: hi < lo");
}

double Uniform::sample(util::Rng& rng) const { return rng.uniform(lo_, hi_); }

}  // namespace sc::stats
