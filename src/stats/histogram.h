// Fixed-width histogram accumulation, used both for building empirical
// bandwidth models (Fig 2/3/4 shapes) and for reporting measured
// distributions in the bench harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sc::stats {

/// Fixed-bin histogram over [lo, hi); samples outside the range are
/// clamped into the first/last bin so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double v, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Weighted count in bin i.
  [[nodiscard]] double count(std::size_t i) const { return counts_.at(i); }

  /// Center of bin i.
  [[nodiscard]] double center(std::size_t i) const {
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
  }

  /// Left edge of bin i.
  [[nodiscard]] double edge(std::size_t i) const {
    return lo_ + static_cast<double>(i) * width_;
  }

  /// Empirical CDF evaluated at bin right-edges; last value is 1.
  [[nodiscard]] std::vector<double> cdf() const;

  /// Fraction of mass strictly below x (linear within bins).
  [[nodiscard]] double fraction_below(double x) const;

  /// Mean of the binned samples (bin centers weighted by count).
  [[nodiscard]] double mean() const;

  /// Coefficient of variation of the binned samples.
  [[nodiscard]] double cov() const;

  /// Multi-line ASCII bar rendering (one row per bin, normalized width).
  [[nodiscard]] std::string ascii(int max_bar = 50,
                                  std::size_t max_rows = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace sc::stats
