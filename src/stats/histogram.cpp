#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sc::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(double v, double weight) {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((v - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

std::vector<double> Histogram::cdf() const {
  std::vector<double> out(bins(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < bins(); ++i) {
    acc += counts_[i];
    out[i] = total_ > 0 ? acc / total_ : 0.0;
  }
  if (total_ > 0) out.back() = 1.0;
  return out;
}

double Histogram::fraction_below(double x) const {
  if (total_ <= 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double pos = (x - lo_) / width_;
  const auto full = static_cast<std::size_t>(std::floor(pos));
  double acc = 0.0;
  for (std::size_t i = 0; i < full && i < bins(); ++i) acc += counts_[i];
  if (full < bins()) {
    acc += counts_[full] * (pos - static_cast<double>(full));
  }
  return acc / total_;
}

double Histogram::mean() const {
  if (total_ <= 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < bins(); ++i) acc += counts_[i] * center(i);
  return acc / total_;
}

double Histogram::cov() const {
  if (total_ <= 0) return 0.0;
  const double m = mean();
  if (m == 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < bins(); ++i) {
    const double d = center(i) - m;
    acc += counts_[i] * d * d;
  }
  return std::sqrt(acc / total_) / m;
}

std::string Histogram::ascii(int max_bar, std::size_t max_rows) const {
  std::ostringstream out;
  const std::size_t stride = std::max<std::size_t>(1, bins() / max_rows);
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  if (peak <= 0) return "(empty histogram)\n";
  char buf[64];
  for (std::size_t i = 0; i < bins(); i += stride) {
    double c = 0.0;
    for (std::size_t j = i; j < std::min(i + stride, bins()); ++j)
      c += counts_[j];
    const double group_peak = peak * static_cast<double>(stride);
    const int len = static_cast<int>(
        std::lround(c / group_peak * static_cast<double>(max_bar)));
    std::snprintf(buf, sizeof(buf), "%10.2f |", edge(i));
    out << buf << std::string(static_cast<std::size_t>(len), '#') << ' '
        << static_cast<long long>(std::lround(c)) << '\n';
  }
  return out.str();
}

}  // namespace sc::stats
