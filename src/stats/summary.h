// Online and batch summary statistics (mean, variance, CoV, percentiles,
// autocorrelation). Used by the metrics module and the bench harnesses.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace sc::stats {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples.
class RunningStats {
 public:
  void add(double v) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double cov() const noexcept;  // stddev / mean
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample vector (linear interpolation between order
/// statistics). p in [0, 100]. Sorts a copy; O(n log n).
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// The latency summary every serving-side report uses: p50/p95/p99 via
/// the same interpolation as percentile(), plus mean and extrema. One
/// sort for all five figures. Shared by bench_service, the proxy
/// daemon's stats endpoint, and the sweep benches'
/// --latency-percentiles reporting.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Summarize a sample vector (empty input -> all-zero summary, no
/// throw: serving loops may legitimately record nothing). Sorts the
/// vector in place — callers done with their samples avoid a copy;
/// pass an explicit copy to keep the original order.
[[nodiscard]] LatencySummary summarize_latencies(std::vector<double>& values);

/// Mean of a vector (0 for empty input).
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// Coefficient of variation of a vector.
[[nodiscard]] double cov_of(const std::vector<double>& values);

/// Lag-k autocorrelation of a series (0 if insufficient data). Used to
/// verify the generated bandwidth time-series has short-range correlation
/// as in Fig 4's measured paths.
[[nodiscard]] double autocorrelation(const std::vector<double>& series,
                                     std::size_t lag);

/// Kolmogorov-Smirnov statistic: sup_x |F_empirical(x) - F(x)| for the
/// given samples against a reference CDF. Used by tests to check that
/// samplers follow their analytic distributions. Sorts a copy.
[[nodiscard]] double ks_statistic(std::vector<double> samples,
                                  const std::function<double(double)>& cdf);

}  // namespace sc::stats
