// Parametric distributions used by the workload generator and bandwidth
// models: Zipf-like (discrete, finite support), lognormal, exponential,
// Pareto, and uniform. All sample through sc::util::Rng for determinism.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sc::stats {

/// O(1) sampling from an arbitrary finite discrete distribution via the
/// alias method (Vose's stable construction). Build is O(n); every
/// sample consumes exactly one uniform draw and does two array reads —
/// no binary search, no allocation.
class AliasTable {
 public:
  /// `weights` are unnormalized non-negative masses; at least one must
  /// be positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Sample an index in [0, size()).
  [[nodiscard]] std::size_t sample(util::Rng& rng) const {
    // One uniform split into (bucket, acceptance) parts.
    const double scaled = rng.uniform() * static_cast<double>(prob_.size());
    std::size_t bucket = static_cast<std::size_t>(scaled);
    if (bucket >= prob_.size()) bucket = prob_.size() - 1;  // u ~ 1 edge
    const double frac = scaled - static_cast<double>(bucket);
    return frac < prob_[bucket] ? bucket : alias_[bucket];
  }

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;         // acceptance threshold per bucket
  std::vector<std::size_t> alias_;   // overflow target per bucket
};

/// Zipf-like popularity over ranks 1..N: P(rank r) ∝ r^-alpha.
///
/// This is the popularity model of the paper (§3.2): "the relative
/// popularity of an object is proportional to r^-alpha", default
/// alpha = 0.73. sample() is O(1) via a precomputed alias table;
/// sample_cdf() keeps the original O(log N) inverse-CDF backend for
/// paired-distribution tests. Both consume exactly one uniform draw per
/// sample, so downstream draws stay aligned across backends; the *rank*
/// produced for a given draw differs (the alias method is not an
/// inversion), which changed generated traces once when the alias
/// backend became the default — see docs/PERF.md.
class ZipfLike {
 public:
  ZipfLike(std::size_t n, double alpha);

  /// Sample a rank in [1, n] in O(1).
  [[nodiscard]] std::size_t sample(util::Rng& rng) const {
    return alias_.sample(rng) + 1;
  }

  /// Original inverse-CDF sampling (O(log n) binary search). Same
  /// distribution as sample(); kept as the reference backend.
  [[nodiscard]] std::size_t sample_cdf(util::Rng& rng) const;

  /// Probability of the given rank (1-based).
  [[nodiscard]] double pmf(std::size_t rank) const;

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  std::size_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[r-1] = P(rank <= r)
  AliasTable alias_;
};

/// Lognormal distribution: exp(N(mu, sigma^2)).
///
/// The paper draws object durations (in minutes) from Lognormal(3.85, 0.56).
class Lognormal {
 public:
  Lognormal(double mu, double sigma);

  [[nodiscard]] double sample(util::Rng& rng) const;

  /// Analytic mean: exp(mu + sigma^2 / 2).
  [[nodiscard]] double mean() const;

  /// Analytic variance.
  [[nodiscard]] double variance() const;

  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Exponential inter-arrival times (Poisson request arrivals, §3.2).
class Exponential {
 public:
  explicit Exponential(double rate);

  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double mean() const noexcept { return 1.0 / rate_; }

 private:
  double rate_;
};

/// Pareto distribution with scale x_m and shape a (heavy-tailed sizes;
/// used in sensitivity experiments beyond the paper's base workload).
class Pareto {
 public:
  Pareto(double scale, double shape);

  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double mean() const;  // infinite if shape <= 1
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double shape() const noexcept { return shape_; }

 private:
  double scale_;
  double shape_;
};

/// Continuous uniform on [lo, hi] (object values V_i ~ U[$1, $10], §4.4).
class Uniform {
 public:
  Uniform(double lo, double hi);

  [[nodiscard]] double sample(util::Rng& rng) const;
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double mean() const noexcept { return 0.5 * (lo_ + hi_); }

 private:
  double lo_;
  double hi_;
};

}  // namespace sc::stats
