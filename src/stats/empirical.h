// Empirical distributions defined by (bin, weight) tables with
// inverse-transform sampling. The bandwidth base and variability models
// (Fig 2, Fig 3, Fig 4 of the paper) are instances of this class.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/histogram.h"
#include "util/rng.h"

namespace sc::stats {

/// One bin of an empirical distribution: mass `weight` spread uniformly
/// over [lo, hi).
struct EmpiricalBin {
  double lo;
  double hi;
  double weight;
};

/// Piecewise-uniform empirical distribution with O(log n) sampling.
class EmpiricalDistribution {
 public:
  /// Construct from bins. Weights need not be normalized. Bins must be
  /// non-overlapping and sorted by `lo`.
  explicit EmpiricalDistribution(std::vector<EmpiricalBin> bins);

  /// Construct from a populated Histogram (each bin becomes uniform mass).
  static EmpiricalDistribution from_histogram(const Histogram& h);

  /// Inverse-transform sample.
  [[nodiscard]] double sample(util::Rng& rng) const;

  /// Deterministic quantile (u in [0,1]).
  [[nodiscard]] double quantile(double u) const;

  /// CDF at x.
  [[nodiscard]] double cdf(double x) const;

  /// Analytic mean of the piecewise-uniform density.
  [[nodiscard]] double mean() const;

  /// Analytic coefficient of variation.
  [[nodiscard]] double cov() const;

  [[nodiscard]] const std::vector<EmpiricalBin>& bins() const noexcept {
    return bins_;
  }

  [[nodiscard]] double min() const { return bins_.front().lo; }
  [[nodiscard]] double max() const { return bins_.back().hi; }

  /// Rescale support by a constant factor (e.g. unit conversion); weights
  /// are preserved.
  [[nodiscard]] EmpiricalDistribution scaled(double factor) const;

 private:
  std::vector<EmpiricalBin> bins_;
  std::vector<double> cum_;  // normalized cumulative weights
  double total_weight_;
};

}  // namespace sc::stats
