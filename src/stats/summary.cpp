#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sc::stats {

void RunningStats::add(double v) noexcept {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cov() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LatencySummary summarize_latencies(std::vector<double>& values) {
  LatencySummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  // Same interpolated order statistic as percentile(), but on the
  // already-sorted vector so all three cuts share one sort.
  const auto cut = [&values](double p) {
    if (values.size() == 1) return values[0];
    const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  s.p50 = cut(50.0);
  s.p95 = cut(95.0);
  s.p99 = cut(99.0);
  return s;
}

double mean_of(const std::vector<double>& values) {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.mean();
}

double cov_of(const std::vector<double>& values) {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.cov();
}

double ks_statistic(std::vector<double> samples,
                    const std::function<double(double)>& cdf) {
  if (samples.empty()) throw std::invalid_argument("ks_statistic: empty");
  if (!cdf) throw std::invalid_argument("ks_statistic: null cdf");
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  double sup = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    sup = std::max({sup, std::abs(f - lo), std::abs(f - hi)});
  }
  return sup;
}

double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  if (series.size() <= lag + 1) return 0.0;
  RunningStats rs;
  for (double v : series) rs.add(v);
  const double m = rs.mean();
  const double var = rs.variance();
  if (var == 0.0) return 0.0;
  double acc = 0.0;
  const std::size_t n = series.size() - lag;
  for (std::size_t i = 0; i < n; ++i) {
    acc += (series[i] - m) * (series[i + lag] - m);
  }
  return acc / (static_cast<double>(series.size()) * var);
}

}  // namespace sc::stats
