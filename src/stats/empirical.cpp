#include "stats/empirical.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sc::stats {

EmpiricalDistribution::EmpiricalDistribution(std::vector<EmpiricalBin> bins)
    : bins_(std::move(bins)) {
  if (bins_.empty()) {
    throw std::invalid_argument("EmpiricalDistribution: no bins");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto& b = bins_[i];
    if (!(b.hi > b.lo)) {
      throw std::invalid_argument("EmpiricalDistribution: empty bin range");
    }
    if (b.weight < 0) {
      throw std::invalid_argument("EmpiricalDistribution: negative weight");
    }
    if (i > 0 && b.lo < bins_[i - 1].hi) {
      throw std::invalid_argument(
          "EmpiricalDistribution: bins overlap or unsorted");
    }
    total += b.weight;
  }
  if (total <= 0) {
    throw std::invalid_argument("EmpiricalDistribution: zero total weight");
  }
  total_weight_ = total;
  cum_.resize(bins_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    acc += bins_[i].weight / total;
    cum_[i] = acc;
  }
  cum_.back() = 1.0;
}

EmpiricalDistribution EmpiricalDistribution::from_histogram(
    const Histogram& h) {
  std::vector<EmpiricalBin> bins;
  bins.reserve(h.bins());
  for (std::size_t i = 0; i < h.bins(); ++i) {
    if (h.count(i) <= 0) continue;
    // Use edge(i + 1) (not edge(i) + width) so adjacent bins share the
    // exact same boundary value despite floating-point rounding.
    bins.push_back({h.edge(i), h.edge(i + 1), h.count(i)});
  }
  if (bins.empty()) {
    throw std::invalid_argument("from_histogram: histogram is empty");
  }
  return EmpiricalDistribution(std::move(bins));
}

double EmpiricalDistribution::quantile(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  const auto i = static_cast<std::size_t>(it - cum_.begin());
  const auto& b = bins_[std::min(i, bins_.size() - 1)];
  const double clo = i > 0 ? cum_[i - 1] : 0.0;
  const double chi = cum_[std::min(i, cum_.size() - 1)];
  const double frac = chi > clo ? (u - clo) / (chi - clo) : 0.0;
  return b.lo + frac * (b.hi - b.lo);
}

double EmpiricalDistribution::sample(util::Rng& rng) const {
  return quantile(rng.uniform());
}

double EmpiricalDistribution::cdf(double x) const {
  if (x <= bins_.front().lo) return 0.0;
  if (x >= bins_.back().hi) return 1.0;
  double acc = 0.0;
  for (const auto& b : bins_) {
    if (x >= b.hi) {
      acc += b.weight;
    } else if (x > b.lo) {
      acc += b.weight * (x - b.lo) / (b.hi - b.lo);
      break;
    } else {
      break;
    }
  }
  return acc / total_weight_;
}

double EmpiricalDistribution::mean() const {
  double acc = 0.0;
  for (const auto& b : bins_) acc += b.weight * 0.5 * (b.lo + b.hi);
  return acc / total_weight_;
}

double EmpiricalDistribution::cov() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  // E[X^2] for a uniform piece on [lo,hi] is (lo^2 + lo*hi + hi^2)/3.
  double ex2 = 0.0;
  for (const auto& b : bins_) {
    ex2 += b.weight * (b.lo * b.lo + b.lo * b.hi + b.hi * b.hi) / 3.0;
  }
  ex2 /= total_weight_;
  const double var = std::max(0.0, ex2 - m * m);
  return std::sqrt(var) / m;
}

EmpiricalDistribution EmpiricalDistribution::scaled(double factor) const {
  if (factor <= 0) throw std::invalid_argument("scaled: factor must be > 0");
  std::vector<EmpiricalBin> bins;
  bins.reserve(bins_.size());
  for (const auto& b : bins_) {
    bins.push_back({b.lo * factor, b.hi * factor, b.weight});
  }
  return EmpiricalDistribution(std::move(bins));
}

}  // namespace sc::stats
