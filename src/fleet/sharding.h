// Client→proxy assignment for the edge-fleet simulation (src/fleet/).
//
// A fleet cell routes every request of the shared trace to exactly one
// of its N proxies. The assignment is a *pure function* of
// (request index, object id, config, seed) — no mutable routing state —
// so fleet results stay bit-identical for every thread count and replay,
// exactly like the rest of the engine. Three registry-style modes:
//
//   hash[:vnodes=K]     Consistent hashing on the object id over a ring
//                       with K virtual nodes per proxy (the headline
//                       CDN mode): each object's whole request stream
//                       lands on one proxy, so per-proxy working sets
//                       shrink by ~N while Zipf head objects make the
//                       load uneven — K trades balance against ring
//                       size (docs/FLEET.md quantifies the bound).
//   affinity[:clients=C]  Client-affinity routing: requests are
//                       attributed to a synthetic population of C
//                       clients (hashed from the request index), and
//                       each client is pinned to one proxy. Every proxy
//                       sees the full object mix (no content locality),
//                       modeling DNS/anycast stickiness.
//   random              Seed-deterministic uniform per-request spray;
//                       the no-locality baseline.
//
// The spec grammar is the shared util::Spec grammar, nested comma-free
// inside a fleet spec: `fleet:sharding=hash:vnodes=64`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/object_catalog.h"

namespace sc::fleet {

struct ShardingConfig {
  enum class Mode { kHash, kAffinity, kRandom };

  Mode mode = Mode::kHash;
  /// Virtual nodes per proxy on the consistent-hash ring (hash mode).
  std::size_t vnodes = 64;
  /// Synthetic client population size (affinity mode).
  std::size_t clients = 4096;

  /// Parse "hash[:vnodes=K]" / "affinity[:clients=C]" / "random".
  /// Throws util::SpecError (with did-you-mean) on anything else.
  [[nodiscard]] static ShardingConfig parse(const std::string& text);

  /// Canonical spec string; parse() of the result reproduces the config.
  [[nodiscard]] std::string to_string() const;
};

/// A sharding config compiled against one fleet run: the consistent-hash
/// ring / client pin table are built once, and proxy_for() is a pure
/// const lookup (thread-safe, allocation-free).
class Sharder {
 public:
  /// Build the assignment for `n_proxies` proxies. `seed` fixes the ring
  /// point / client hash salts (use a tag-keyed fork of the run's root
  /// stream so replications differ but engines agree).
  void compile(const ShardingConfig& config, std::size_t n_proxies,
               std::uint64_t seed);

  /// The proxy serving request number `request_index` for `object`.
  [[nodiscard]] std::uint32_t proxy_for(std::size_t request_index,
                                        workload::ObjectId object)
      const noexcept;

 private:
  struct RingPoint {
    std::uint64_t point = 0;
    std::uint32_t proxy = 0;
  };

  ShardingConfig config_{};
  std::size_t n_proxies_ = 1;
  std::uint64_t seed_ = 0;
  /// hash mode: ring points sorted by point (clockwise successor lookup).
  std::vector<RingPoint> ring_;
  /// affinity mode: client index -> proxy pin.
  std::vector<std::uint32_t> client_proxy_;
};

}  // namespace sc::fleet
