#include "fleet/sharding.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"
#include "util/spec.h"

namespace sc::fleet {

namespace {

const std::vector<std::string>& mode_names() {
  static const std::vector<std::string> names = {"hash", "affinity",
                                                 "random"};
  return names;
}

}  // namespace

ShardingConfig ShardingConfig::parse(const std::string& text) {
  ShardingConfig config;
  if (text.empty()) return config;
  const util::Spec spec = util::Spec::parse(text);
  if (spec.name == "hash") {
    config.mode = Mode::kHash;
    spec.require_only({"vnodes"});
    const long long vnodes = spec.get_int("vnodes", 64);
    if (vnodes < 1 || vnodes > 4096) {
      throw util::SpecError("sharding spec \"" + text +
                            "\": vnodes must be in [1, 4096]");
    }
    config.vnodes = static_cast<std::size_t>(vnodes);
  } else if (spec.name == "affinity") {
    config.mode = Mode::kAffinity;
    spec.require_only({"clients"});
    const long long clients = spec.get_int("clients", 4096);
    if (clients < 1 || clients > (1ll << 24)) {
      throw util::SpecError("sharding spec \"" + text +
                            "\": clients must be in [1, 2^24]");
    }
    config.clients = static_cast<std::size_t>(clients);
  } else if (spec.name == "random") {
    config.mode = Mode::kRandom;
    spec.require_only({});
  } else {
    std::string msg = "unknown sharding mode \"" + spec.name +
                      "\" (valid: " + util::join(mode_names());
    if (const auto near = util::closest_match(spec.name, mode_names())) {
      msg += "; did you mean \"" + *near + "\"?";
    }
    throw util::SpecError(msg + ")");
  }
  return config;
}

std::string ShardingConfig::to_string() const {
  switch (mode) {
    case Mode::kHash:
      return "hash:vnodes=" + std::to_string(vnodes);
    case Mode::kAffinity:
      return "affinity:clients=" + std::to_string(clients);
    case Mode::kRandom:
      break;
  }
  return "random";
}

void Sharder::compile(const ShardingConfig& config, std::size_t n_proxies,
                      std::uint64_t seed) {
  if (n_proxies == 0) {
    throw std::invalid_argument("Sharder: n_proxies == 0");
  }
  config_ = config;
  n_proxies_ = n_proxies;
  seed_ = seed;
  ring_.clear();
  client_proxy_.clear();
  switch (config.mode) {
    case ShardingConfig::Mode::kHash: {
      ring_.reserve(n_proxies * config.vnodes);
      for (std::size_t p = 0; p < n_proxies; ++p) {
        for (std::size_t v = 0; v < config.vnodes; ++v) {
          // splitmix64 of (seed, proxy, vnode): well-spread fixed ring
          // points, identical for every engine and thread count.
          const std::uint64_t h = util::splitmix64(
              seed ^ util::splitmix64(0x9E3779B97F4A7C15ull * (p + 1) +
                                      0xBF58476D1CE4E5B9ull * (v + 1)));
          ring_.push_back(RingPoint{h, static_cast<std::uint32_t>(p)});
        }
      }
      std::sort(ring_.begin(), ring_.end(),
                [](const RingPoint& a, const RingPoint& b) {
                  return a.point < b.point ||
                         (a.point == b.point && a.proxy < b.proxy);
                });
      break;
    }
    case ShardingConfig::Mode::kAffinity: {
      client_proxy_.resize(config.clients);
      for (std::size_t c = 0; c < config.clients; ++c) {
        client_proxy_[c] = static_cast<std::uint32_t>(
            util::splitmix64(seed ^ (0xD1342543DE82EF95ull * (c + 1))) %
            n_proxies);
      }
      break;
    }
    case ShardingConfig::Mode::kRandom:
      break;
  }
}

std::uint32_t Sharder::proxy_for(std::size_t request_index,
                                 workload::ObjectId object) const noexcept {
  if (n_proxies_ <= 1) return 0;
  switch (config_.mode) {
    case ShardingConfig::Mode::kHash: {
      // Clockwise successor on the ring: the first point >= the object's
      // hash, wrapping to the first point past the top.
      const std::uint64_t h =
          util::splitmix64(seed_ ^ util::splitmix64(object + 1));
      const auto it = std::lower_bound(
          ring_.begin(), ring_.end(), h,
          [](const RingPoint& rp, std::uint64_t key) { return rp.point < key; });
      return it != ring_.end() ? it->proxy : ring_.front().proxy;
    }
    case ShardingConfig::Mode::kAffinity: {
      const std::size_t client =
          util::splitmix64(seed_ ^ (0x94D049BB133111EBull * (request_index + 1))) %
          client_proxy_.size();
      return client_proxy_[client];
    }
    case ShardingConfig::Mode::kRandom:
      break;
  }
  return static_cast<std::uint32_t>(
      util::splitmix64(seed_ ^ (0x2545F4914F6CDD1Dull * (request_index + 1))) %
      n_proxies_);
}

}  // namespace sc::fleet
