#include "fleet/fleet.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/registry.h"
#include "sim/run_loop.h"
#include "util/spec.h"

namespace sc::fleet {

FleetConfig FleetConfig::parse(const std::string& text) {
  const util::Spec spec = util::Spec::parse(text);
  if (spec.name != "fleet") {
    std::string msg =
        "unknown fleet spec \"" + spec.name + "\" (valid: fleet";
    if (const auto near = util::closest_match(spec.name, {"fleet"})) {
      msg += "; did you mean \"" + *near + "\"?";
    }
    throw util::SpecError(msg + ")");
  }
  spec.require_only({"proxies", "regions", "sharding", "uplink_mbps",
                     "burst_mb", "coop", "peer_latency_ms"});
  FleetConfig config;
  const long long proxies = spec.get_int("proxies", 16);
  if (proxies < 1 || proxies > 4096) {
    throw util::SpecError("fleet spec \"" + text +
                          "\": proxies must be in [1, 4096]");
  }
  config.proxies = static_cast<std::size_t>(proxies);
  const long long regions = spec.get_int("regions", 1);
  if (regions < 1 || static_cast<std::size_t>(regions) > config.proxies) {
    throw util::SpecError("fleet spec \"" + text +
                          "\": regions must be in [1, proxies]");
  }
  config.regions = static_cast<std::size_t>(regions);
  config.sharding = ShardingConfig::parse(spec.get_string("sharding", ""));
  config.uplink_mbps = spec.get_double("uplink_mbps", 0.0);
  if (config.uplink_mbps < 0) {
    throw util::SpecError("fleet spec \"" + text +
                          "\": uplink_mbps must be >= 0 (0 = unlimited)");
  }
  config.burst_mb = spec.get_double("burst_mb", 8.0);
  if (config.burst_mb <= 0) {
    throw util::SpecError("fleet spec \"" + text +
                          "\": burst_mb must be > 0");
  }
  config.coop = spec.get_bool("coop", false);
  const double peer_latency_ms = spec.get_double("peer_latency_ms", 2.0);
  if (peer_latency_ms < 0) {
    throw util::SpecError("fleet spec \"" + text +
                          "\": peer_latency_ms must be >= 0");
  }
  config.peer_latency_s = peer_latency_ms / 1000.0;
  return config;
}

std::string FleetConfig::to_string() const {
  std::string out = "fleet:proxies=" + std::to_string(proxies) +
                    ",regions=" + std::to_string(regions) +
                    ",sharding=" + sharding.to_string();
  char buf[64];
  std::snprintf(buf, sizeof buf, ",uplink_mbps=%g,burst_mb=%g", uplink_mbps,
                burst_mb);
  out += buf;
  if (coop) out += ",coop=1";
  std::snprintf(buf, sizeof buf, ",peer_latency_ms=%g",
                peer_latency_s * 1000.0);
  out += buf;
  return out;
}

FleetResult run_fleet(const workload::RequestStream& stream,
                      const FleetConfig& fleet,
                      const sim::SimulationConfig& config,
                      std::shared_ptr<const net::PathModel> path_model,
                      const stats::EmpiricalDistribution* base,
                      const stats::EmpiricalDistribution* ratio) {
  const std::size_t n = fleet.proxies;
  if (n == 0) throw std::invalid_argument("run_fleet: proxies == 0");
  if (stream.num_requests() == 0) {
    throw std::invalid_argument("run_fleet: empty request trace");
  }
  if (config.cache_capacity_bytes < 0) {
    throw std::invalid_argument("run_fleet: negative cache capacity");
  }
  if (path_model == nullptr && (base == nullptr || ratio == nullptr)) {
    throw std::invalid_argument("run_fleet: null path model");
  }

  const workload::Catalog& catalog = stream.catalog();
  const std::size_t total_requests = stream.num_requests();
  const std::size_t n_objects = catalog.size();
  const workload::CatalogView view = catalog.view();

  // Root RNG and path model exactly as sim::Simulator::run_fallback —
  // every fork below is tag-keyed (const), so fork order cannot perturb
  // any stream and the N == 1 inertness oracle holds.
  util::Rng rng(config.seed);
  std::shared_ptr<const net::PathModel> model = std::move(path_model);
  if (model == nullptr) {
    model = std::make_shared<const net::PathModel>(
        n_objects, *base, *ratio, config.path_config, rng.fork("paths"));
  }
  for (std::size_t i = 0; i < view.size; ++i) {
    if (view.path[i] >= model->size()) {
      throw std::out_of_range("run_fleet: object path id " +
                              std::to_string(view.path[i]) +
                              " outside the path model");
    }
  }
  net::PathSampler paths(model);
  const bool constant_bw = model->mode() == net::VariationMode::kConstant;
  const double* path_means = model->means().data();

  // Per-proxy decision machinery: each proxy is a full copy of the
  // single-cell stack (store + policy + estimator + observation queue +
  // kernel), built through the registry. Proxy 0's estimator stream is
  // the single-cell tag ("estimator"); peers get distinct tag-keyed
  // streams so replications stay independent across the fleet.
  const double per_proxy_capacity =
      config.cache_capacity_bytes / static_cast<double>(n);
  std::vector<std::unique_ptr<net::BandwidthEstimator>> estimators;
  std::vector<std::unique_ptr<cache::CachePolicy>> policies;
  std::vector<cache::PartialStore> stores;
  std::vector<sim::ObservationQueue> events(n);
  estimators.reserve(n);
  policies.reserve(n);
  stores.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    std::string tag = "estimator";
    if (p > 0) tag += "#" + std::to_string(p);
    estimators.push_back(core::registry::make_estimator(
        config.estimator, *model, rng.fork(tag)));
    policies.push_back(core::registry::make_policy(config.policy, catalog,
                                                   *estimators[p]));
    stores.emplace_back(per_proxy_capacity);
    stores[p].reserve(n_objects);
    events[p].reserve(64);
  }
  using Kernel = sim::DecisionKernel<cache::CachePolicy,
                                     net::BandwidthEstimator>;
  std::vector<Kernel> kernels;
  kernels.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    kernels.emplace_back(*policies[p], *estimators[p], stores[p], events[p]);
  }
  const bool estimator_observes = kernels[0].observes();

  // Scoped fault schedules: every proxy compiles the same plan from the
  // same tag-keyed seed (identical timing), but for its own
  // FaultScope{proxy, region} — a window tagged @region0 survives
  // compilation only on region 0's proxies.
  std::vector<net::FaultSchedule> fault_store;
  const bool have_faults = !config.fault.empty();
  if (have_faults) {
    const std::uint64_t fault_seed = rng.fork("faults").seed();
    fault_store.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      fault_store[p].compile(
          config.fault, model->size(), fault_seed,
          net::FaultScope{static_cast<std::uint32_t>(p), fleet.region_of(p)});
      kernels[p].set_faults(&fault_store[p]);
    }
  }

  sim::MetricsCollector metrics;
  const auto warm_count = static_cast<std::size_t>(
      static_cast<double>(total_requests) * config.warmup_fraction);

  const bool interactive = config.interactivity.enabled();
  if (interactive && config.viewing.enabled) {
    throw std::invalid_argument(
        "run_fleet: ViewingConfig and a non-full interactivity model "
        "cannot be combined; use the interactivity spec alone");
  }
  util::Rng viewing_rng = rng.fork("viewing");
  util::Rng session_rng = rng.fork("session");

  sim::DeliveryTable pre;
  build_delivery_table(view, constant_bw ? path_means : nullptr, pre);

  std::vector<std::vector<sim::InFlightStream>> in_flight;
  if (config.patching.enabled) {
    in_flight.assign(n, std::vector<sim::InFlightStream>(n_objects));
  }

  // The fleet couplings, each inert by flag: routing (n == 1 pins proxy
  // 0 before the sharder is consulted), the shared uplink bucket
  // (uplink_mbps == 0), and peer cooperation (coop == 0).
  Sharder sharder;
  sharder.compile(fleet.sharding, n, rng.fork("sharding").seed());
  UplinkBucket uplink(fleet.uplink_mbps * 125000.0, fleet.burst_mb * 1.0e6);
  const bool uplink_on = uplink.enabled();
  const bool coop = fleet.coop && n > 1;

  std::vector<ProxyStats> per_proxy(n);
  double t_first = 0.0;
  double t_last = 0.0;

  workload::RequestCursor cursor;
  cursor.bind(stream, config.stream_chunk);
  while (const workload::RequestBlock* block = cursor.next()) {
    for (std::size_t i = 0; i < block->size; ++i) {
      const std::size_t idx = block->first + i;
      const double now_s = block->time_s[i];
      if (idx == 0) t_first = now_s;
      t_last = now_s;

      const workload::ObjectId id = block->object[i];
      const std::uint32_t p = n > 1 ? sharder.proxy_for(idx, id) : 0;
      Kernel& decisions = kernels[p];
      decisions.tick(now_s);

      const double duration_s = view.duration_s[id];
      const double bitrate = view.bitrate[id];
      const double size_bytes = view.size_bytes[id];
      double bw, db;
      if (constant_bw) {
        bw = pre.bw[id];
        db = pre.db[id];
      } else {
        bw = paths.sample_bandwidth(view.path[id], now_s);
        db = duration_s * bw;
      }
      double fault_scale = 1.0;
      if (have_faults) {
        fault_scale = fault_store[p].bandwidth_scale(view.path[id], now_s);
        if (fault_scale > 0.0 && fault_scale != 1.0) {
          bw *= fault_scale;
          db = duration_s * bw;
        }
      }
      const double cached_before = decisions.cached(id);
      double request_bytes = size_bytes;
      sim::ServiceOutcome outcome;
      if (fault_scale > 0.0) {
        outcome = sim::deliver_precomputed(size_bytes, pre.dr[id], db, bw,
                                           cached_before);
      } else {
        outcome = sim::deliver_cache_only(size_bytes, cached_before);
      }

      double viewed_fraction = 1.0;
      double session_s = duration_s;
      if (interactive) {
        viewed_fraction = sim::sample_viewed_fraction(
            config.interactivity, duration_s, block->view_s[i], session_rng);
        if (viewed_fraction < 1.0) {
          session_s = viewed_fraction * duration_s;
          const double viewed_bytes = session_s * bitrate;
          request_bytes = viewed_bytes;
          if (fault_scale > 0.0) {
            outcome = sim::deliver(session_s, bitrate, viewed_bytes, bw,
                                   std::min(cached_before, viewed_bytes));
          } else {
            outcome = sim::deliver_cache_only(
                viewed_bytes, std::min(cached_before, viewed_bytes));
          }
        }
      }

      if (config.viewing.enabled) {
        double fraction = 1.0;
        if (viewing_rng.uniform() >= config.viewing.complete_probability) {
          fraction = viewing_rng.uniform(config.viewing.min_fraction, 1.0);
        }
        const double viewed = fraction * size_bytes;
        request_bytes = viewed;
        outcome.bytes_from_cache = std::min(outcome.bytes_from_cache, viewed);
        outcome.bytes_from_origin =
            fault_scale > 0.0
                ? std::max(0.0, viewed - outcome.bytes_from_cache)
                : 0.0;
        outcome.origin_transfer_s = outcome.bytes_from_origin > 0
                                        ? outcome.bytes_from_origin / bw
                                        : 0.0;
      }

      // Cooperation: the largest peer prefix extends this proxy's own —
      // both are prefixes of the same object, so the peer contributes
      // only the part beyond what the local cache already served. Peer
      // bytes are backbone-free shared traffic (they never cross the
      // uplink) at one peer hop of extra prefetch wait; startup
      // immediacy is the local §2.2 outcome either way. Outages are not
      // bypassed: a cache-only request has bytes_from_origin == 0.
      double peer_extra = 0.0;
      if (coop && outcome.bytes_from_origin > 0) {
        double best = 0.0;
        for (std::size_t q = 0; q < n; ++q) {
          if (q == p) continue;
          best = std::max(best, stores[q].cached(id));
        }
        peer_extra = std::min(outcome.bytes_from_origin,
                              std::max(0.0, best - outcome.bytes_from_cache));
        if (peer_extra > 0.0) {
          outcome.bytes_shared += peer_extra;
          outcome.bytes_from_origin -= peer_extra;
          outcome.origin_transfer_s = outcome.bytes_from_origin > 0
                                          ? outcome.bytes_from_origin / bw
                                          : 0.0;
          if (outcome.delay_s > 0.0) outcome.delay_s += fleet.peer_latency_s;
        }
      }

      if (config.patching.enabled && outcome.bytes_from_origin > 0) {
        sim::InFlightStream& flight = in_flight[p][id];
        if (now_s < flight.end) {
          const double remaining_shareable =
              std::min(size_bytes, bitrate * (flight.end - now_s));
          const double shared = std::min(outcome.bytes_from_origin,
                                         std::max(0.0, remaining_shareable));
          outcome.bytes_shared += shared;
          outcome.bytes_from_origin -= shared;
          outcome.origin_transfer_s = outcome.bytes_from_origin > 0
                                          ? outcome.bytes_from_origin / bw
                                          : 0.0;
        }
        if (outcome.bytes_from_origin > 0) {
          flight.start = now_s;
          flight.end = now_s + session_s;
        }
      }

      // Shared finite uplink: what still has to cross the backbone
      // drains the fleet-wide token bucket; a drained bucket queues the
      // transfer, stretching it (and the throughput passive estimators
      // observe) and delaying playout — the cross-proxy coupling.
      if (uplink_on && outcome.bytes_from_origin > 0) {
        const double wait_s = uplink.acquire(now_s, outcome.bytes_from_origin);
        if (wait_s > 0.0) {
          outcome.delay_s += wait_s;
          outcome.immediate = false;
          outcome.origin_transfer_s += wait_s;
          outcome.origin_throughput =
              outcome.bytes_from_origin / outcome.origin_transfer_s;
        }
      }

      const bool measured = idx >= warm_count;
      if (measured) {
        metrics.record(outcome, view.value[id]);
        ProxyStats& ps = per_proxy[p];
        ++ps.requests;
        if (cached_before > 0.0) ++ps.hits;
        ps.origin_bytes += outcome.bytes_from_origin;
        if (peer_extra > 0.0) {
          ++ps.peer_assisted;
          ps.peer_bytes += peer_extra;
        }
        if (have_faults && fault_scale <= 0.0) {
          const double denied = request_bytes - outcome.bytes_from_cache;
          metrics.record_denied(denied);
          ++ps.denied_requests;
          ps.denied_bytes += denied;
        }
        if (interactive) {
          metrics.record_session(viewed_fraction, viewed_fraction < 1.0);
        }
      }

      if (estimator_observes && outcome.bytes_from_origin > 0) {
        decisions.record_transfer(view.path[id], outcome.origin_throughput,
                                  now_s + outcome.origin_transfer_s);
      }

      if (fault_scale > 0.0) {
        const double cached_after = decisions.admit(id, now_s);
        if (measured && cached_after > cached_before) {
          const double fill = cached_after - cached_before;
          metrics.record_fill(fill);
          per_proxy[p].fill_bytes += fill;
        }
      }
    }
  }
  for (std::size_t p = 0; p < n; ++p) kernels[p].drain();

  FleetResult result;
  result.aggregate.policy_name = policies[0]->name();
  result.aggregate.metrics = metrics;
  result.aggregate.warmup_requests = warm_count;
  result.aggregate.measured_requests = total_requests - warm_count;
  for (std::size_t p = 0; p < n; ++p) {
    result.aggregate.final_occupancy_bytes += stores[p].used();
    result.aggregate.final_cached_objects += stores[p].object_count();
    result.aggregate.estimator_overhead_packets +=
        estimators[p]->overhead_packets();
  }
  result.per_proxy = std::move(per_proxy);

  std::uint64_t max_requests = 0;
  std::uint64_t sum_requests = 0;
  std::uint64_t peer_assisted = 0;
  for (const ProxyStats& ps : result.per_proxy) {
    max_requests = std::max(max_requests, ps.requests);
    sum_requests += ps.requests;
    peer_assisted += ps.peer_assisted;
  }
  if (sum_requests > 0) {
    result.load_imbalance = static_cast<double>(max_requests) *
                            static_cast<double>(n) /
                            static_cast<double>(sum_requests);
    result.peer_hit_ratio = static_cast<double>(peer_assisted) /
                            static_cast<double>(sum_requests);
  }
  if (uplink_on && t_last > t_first) {
    result.uplink_utilization =
        uplink.total_bytes() /
        (fleet.uplink_mbps * 125000.0 * (t_last - t_first));
  }
  return result;
}

}  // namespace sc::fleet
