// Edge-fleet simulation: N independent partial-caching proxies sharing
// one origin (the ROADMAP's "edge-fleet scale" item).
//
// The paper evaluates a single cache in front of bottlenecked paths; its
// deployment target is a CDN-style edge of many proxies. A fleet cell
// instantiates N copies of the existing decision machinery — each proxy
// wraps the clock-agnostic sim::DecisionKernel with its own byte-budget
// cache::PartialStore, registry-built policy, and estimator — and routes
// every request of the shared workload::RequestStream through a
// client→proxy assignment layer (fleet/sharding.h). Three fleet-only
// couplings sit on top, each flag-gated so a trivial fleet degenerates
// to the single-cell simulator:
//
//   * Shared origin uplink: every proxy's misses drain one token bucket
//     (`uplink_mbps` refill, `burst_mb` depth) layered over the §2.2
//     path model. A drained bucket delays the origin stream, lowering
//     the throughput passive estimators observe — origin congestion
//     couples the proxies, which single-cell sweeps cannot express.
//   * Cross-proxy cooperation (`coop=1`): before paying the origin for
//     a miss remainder, a proxy serves what it can from the largest
//     peer prefix at a per-hop latency penalty; peer bytes count as
//     shared (backbone-free) traffic and never cross the uplink.
//   * Scoped fault plans (net/fault.h): each proxy compiles the cell's
//     FaultPlan for its own net::FaultScope{proxy, region}, so
//     `outage=...@region0` takes down exactly the proxies of region 0
//     (regions partition proxies into contiguous equal blocks).
//
// Determinism contract: one fleet run is a single sequential pass over
// the request stream (the shared token bucket must be drained in global
// arrival order), a pure function of (stream, config, seed). Grid
// parallelism comes from core::SweepRunner running fleet *cells*
// concurrently — results are bit-identical at every --threads, and a
// 10⁸-request fleet stays O(stream_chunk) in memory.
//
// Inertness oracle (tests/test_fleet.cpp): a single-proxy fleet with no
// uplink, no cooperation, and an unscoped fault plan executes the exact
// expression stream of sim/run_loop.h's virtual fallback — every field
// of the aggregate result is identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/sharding.h"
#include "net/path_process.h"
#include "sim/simulator.h"
#include "stats/empirical.h"

namespace sc::fleet {

/// One fleet cell's shape, parsed from the registry-style spec
/// `fleet:proxies=16,regions=4,sharding=hash:vnodes=64,uplink_mbps=200,
/// burst_mb=8,coop=1,peer_latency_ms=2`.
struct FleetConfig {
  std::size_t proxies = 16;
  /// Fault-scope regions; proxies are partitioned into `regions`
  /// contiguous equal blocks (region_of). Must be in [1, proxies].
  std::size_t regions = 1;
  ShardingConfig sharding{};
  /// Shared origin uplink refill rate in megabits/second; 0 disables
  /// the token bucket entirely (infinite uplink, the inert default).
  double uplink_mbps = 0.0;
  /// Token-bucket depth in megabytes (only meaningful with a finite
  /// uplink).
  double burst_mb = 8.0;
  /// Peer hit lookup before origin miss.
  bool coop = false;
  /// Per-hop latency charged when any peer bytes are used (seconds).
  double peer_latency_s = 0.002;

  /// Parse a fleet spec string. Throws util::SpecError (with
  /// did-you-mean) on unknown names/parameters and invalid values.
  [[nodiscard]] static FleetConfig parse(const std::string& text);

  /// Canonical spec string; parse() of the result reproduces the config.
  [[nodiscard]] std::string to_string() const;

  /// Region of proxy `p`: contiguous equal blocks, e.g. 8 proxies x 2
  /// regions -> proxies 0-3 are region 0, proxies 4-7 region 1.
  [[nodiscard]] std::uint32_t region_of(std::size_t proxy) const noexcept {
    return static_cast<std::uint32_t>(proxy * regions / proxies);
  }
};

/// The shared origin uplink: a token bucket refilled at `rate` bytes/s
/// up to `burst` bytes. acquire() is called in global request-arrival
/// order (time only moves forward), consumes the transfer's bytes, and
/// returns the extra seconds the transfer waits for tokens it drained
/// past the bucket.
class UplinkBucket {
 public:
  UplinkBucket(double rate_bytes_per_s, double burst_bytes)
      : rate_(rate_bytes_per_s),
        burst_(burst_bytes),
        tokens_(burst_bytes) {}

  [[nodiscard]] bool enabled() const noexcept { return rate_ > 0.0; }

  /// Consume `bytes` at `now_s`; returns the queueing delay (0 when the
  /// bucket covers the transfer).
  double acquire(double now_s, double bytes) {
    if (rate_ <= 0.0 || bytes <= 0.0) return 0.0;
    if (now_s > last_s_) {
      tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
      last_s_ = now_s;
    }
    total_bytes_ += bytes;
    if (tokens_ >= bytes) {
      tokens_ -= bytes;
      return 0.0;
    }
    const double deficit = bytes - tokens_;
    tokens_ = 0.0;
    return deficit / rate_;
  }

  /// Total bytes that crossed the uplink (for utilization reporting).
  [[nodiscard]] double total_bytes() const noexcept { return total_bytes_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_s_ = 0.0;
  double total_bytes_ = 0.0;
};

/// Per-proxy load diagnostics, accumulated over the measured window
/// (same window as the aggregate §3.3 metrics).
struct ProxyStats {
  std::uint64_t requests = 0;
  /// Requests that found any locally cached prefix.
  std::uint64_t hits = 0;
  /// Requests that used any peer bytes (cooperation).
  std::uint64_t peer_assisted = 0;
  std::uint64_t denied_requests = 0;
  double denied_bytes = 0.0;
  double origin_bytes = 0.0;
  double peer_bytes = 0.0;
  double fill_bytes = 0.0;
};

struct FleetResult {
  /// Request-order aggregate over the whole fleet; for a single-proxy
  /// inert fleet this equals the single-cell SimulationResult
  /// field-for-field.
  sim::SimulationResult aggregate;
  std::vector<ProxyStats> per_proxy;
  /// Origin bytes / (uplink rate x trace time span); 0 with an infinite
  /// uplink. Can exceed 1: demand beyond the refill rate is queued, not
  /// dropped.
  double uplink_utilization = 0.0;
  /// max/mean of per-proxy measured request counts (1.0 = perfectly
  /// balanced).
  double load_imbalance = 1.0;
  /// Fraction of measured requests that used any peer bytes.
  double peer_hit_ratio = 0.0;
};

/// Run one fleet cell over `stream`. `config` supplies the per-proxy
/// component specs, the *aggregate* cache budget
/// (cache_capacity_bytes / proxies per proxy), interactivity/viewing/
/// patching extensions, the fault plan, and the run seed. `path_model`
/// may be null, in which case the model is drawn from the seed exactly
/// as sim::Simulator does (`base`/`ratio` must then be non-null).
[[nodiscard]] FleetResult run_fleet(
    const workload::RequestStream& stream, const FleetConfig& fleet,
    const sim::SimulationConfig& config,
    std::shared_ptr<const net::PathModel> path_model,
    const stats::EmpiricalDistribution* base,
    const stats::EmpiricalDistribution* ratio);

}  // namespace sc::fleet
