// Deterministic fault injection for the network half of the system.
//
// The paper evaluates its utility policies under well-behaved path
// processes; a production cache also has to survive the network
// misbehaving. This header defines one fault model shared verbatim by
// the simulator (sim/run_loop.h) and the live proxy daemon
// (server/origin.h), so "which policy degrades gracefully under a
// 10-minute origin outage" is answerable in both worlds from the same
// spec string:
//
//   fault:outage=120+60,degrade=300+120x0.25,blackout=150+90,
//         flap=600+300@20
//
// Four independent fault families, each a list of timed windows on the
// run's clock (simulated seconds in the simulator, wall seconds since
// engine start in the daemon):
//
//   outage=START+DUR[/START+DUR...]
//       Full origin outage: every path's bandwidth is zero inside the
//       window. Requests can only be served from the cached prefix.
//   degrade=START+DURxSCALE[@PATH][/...]
//       Bandwidth degradation: inside the window, affected paths
//       deliver SCALE x their sampled bandwidth (0 < SCALE < 1). An
//       optional @PATH restricts the window to one path id; omitted
//       means every path. Overlapping windows multiply.
//   blackout=START+DUR[/...]
//       Estimator observation blackout: completion observations whose
//       due time falls inside the window are dropped before reaching
//       the estimator (the measurement plane failing independently of
//       the data plane).
//   flap=START+DUR@PERIOD[/...]
//       Path flapping: inside the window each path alternates up/down
//       with the given period (50% duty cycle), with a deterministic
//       per-path phase derived from the schedule seed — paths do not
//       flap in lockstep, but the same (plan, seed, path) always flaps
//       identically.
//
// Fleet scopes (src/fleet/): every window accepts an optional trailing
// scope suffix restricting it to one proxy or one region of a
// multi-proxy fleet:
//
//   outage=120+60@region0        only proxies in fleet region 0
//   outage=120+60@proxy3         only fleet proxy 3
//   flap=600+300@20@r1           (@rK / @pK short forms; flap's scope
//                                 is the second @, after the period)
//
// A schedule is compiled *for* one fleet member via FaultScope; scoped
// windows whose scope does not match the compiling member are dropped
// at compile time, so queries stay exactly as cheap as before. The
// default FaultScope (a standalone, non-fleet simulation) matches no
// scoped window — a region-targeted outage is inert outside a fleet.
// This is what makes `outage=...@region` express correlated regional
// outages: every proxy of the region shares the window verbatim,
// everyone else never sees it.
//
// Determinism contract: a FaultPlan is pure parsed data; compiling it
// into a FaultSchedule uses only (plan, n_paths, seed, scope), so every
// engine, thread count, and replay of the same replication sees the
// identical event timeline. An EMPTY plan is provably inert — callers
// skip the fault hooks entirely when plan.empty(), so the golden CSVs
// stay byte-identical (enforced by tests/test_fault.cpp and the
// golden-CSV ctests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/path_process.h"

namespace sc::net {

/// One timed fault window [start_s, start_s + duration_s).
struct FaultWindow {
  /// Which fleet members the window applies to (kGlobal = everyone,
  /// including standalone non-fleet runs).
  enum class Scope : std::uint8_t { kGlobal, kRegion, kProxy };

  double start_s = 0.0;
  double duration_s = 0.0;
  /// Bandwidth multiplier inside the window (degrade family only;
  /// outage/blackout windows keep the default 0).
  double scale = 0.0;
  /// Affected path, or kAllPaths (degrade family only).
  std::uint32_t path = kAllPaths;
  /// Up/down alternation period (flap family only).
  double period_s = 0.0;
  Scope scope = Scope::kGlobal;
  /// Region or proxy index when scope != kGlobal.
  std::uint32_t scope_id = 0;

  static constexpr std::uint32_t kAllPaths = 0xFFFFFFFFu;

  [[nodiscard]] bool contains(double now_s) const noexcept {
    return now_s >= start_s && now_s < start_s + duration_s;
  }
};

/// Identity of the fleet member a FaultSchedule is compiled for. The
/// default (kStandalone everywhere) is a non-fleet run: it matches only
/// unscoped windows, keeping region/proxy-targeted plans inert in the
/// single-cell simulator and the daemon.
struct FaultScope {
  static constexpr std::uint32_t kStandalone = 0xFFFFFFFFu;
  std::uint32_t proxy = kStandalone;
  std::uint32_t region = kStandalone;

  [[nodiscard]] bool matches(const FaultWindow& w) const noexcept {
    switch (w.scope) {
      case FaultWindow::Scope::kRegion:
        return region != kStandalone && region == w.scope_id;
      case FaultWindow::Scope::kProxy:
        return proxy != kStandalone && proxy == w.scope_id;
      case FaultWindow::Scope::kGlobal:
        break;
    }
    return true;
  }
};

/// A parsed, immutable fault specification. Pure data: carries no
/// per-run state and is cheap to copy into SimulationConfig /
/// OriginConfig. Parse errors (unknown names or parameters, malformed
/// windows) raise util::SpecError with did-you-mean suggestions,
/// matching every other component spec in the registry.
class FaultPlan {
 public:
  /// Parse a fault spec string. "", "none", and "fault" (no params) all
  /// yield the empty plan.
  [[nodiscard]] static FaultPlan parse(const std::string& text);

  /// True when the plan injects nothing; callers use this to skip the
  /// fault hooks entirely (the inertness guarantee).
  [[nodiscard]] bool empty() const noexcept {
    return outages_.empty() && degrades_.empty() && blackouts_.empty() &&
           flaps_.empty();
  }

  [[nodiscard]] const std::vector<FaultWindow>& outages() const noexcept {
    return outages_;
  }
  [[nodiscard]] const std::vector<FaultWindow>& degrades() const noexcept {
    return degrades_;
  }
  [[nodiscard]] const std::vector<FaultWindow>& blackouts() const noexcept {
    return blackouts_;
  }
  [[nodiscard]] const std::vector<FaultWindow>& flaps() const noexcept {
    return flaps_;
  }

  /// The subset of this plan visible to one fleet member: windows
  /// scoped to a different region/proxy are removed. FaultSchedule's
  /// compile() applies this, so scope filtering costs nothing at query
  /// time.
  [[nodiscard]] FaultPlan scoped_to(const FaultScope& scope) const;

  /// Canonical spec string ("none" for the empty plan); parse() of the
  /// result reproduces the plan.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FaultWindow> outages_;
  std::vector<FaultWindow> degrades_;
  std::vector<FaultWindow> blackouts_;
  std::vector<FaultWindow> flaps_;
};

/// A plan compiled against one run: per-path flap phases are fixed by
/// (seed, path), so queries are pure functions of (path, now_s).
/// Queries are O(windows) linear scans — plans hold a handful of
/// windows, and scanning four short arrays beats any index for that
/// size. Thread-safe after compile() (all queries are const).
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Compile `plan` for a run over `n_paths` paths. `seed` fixes the
  /// flap phases; use the run's fault stream
  /// (Rng(run_seed).fork("faults").seed()) so every engine derives the
  /// identical schedule. `scope` identifies the fleet member being
  /// compiled for: windows scoped to a different proxy/region are
  /// dropped here, so queries never pay for them. The default scope is
  /// a standalone run, which keeps scoped windows inert.
  void compile(const FaultPlan& plan, std::size_t n_paths,
               std::uint64_t seed, FaultScope scope = {});

  /// Reset to the empty schedule (every query returns "no fault").
  void clear();

  [[nodiscard]] bool empty() const noexcept { return plan_.empty(); }

  /// True when `path` cannot reach the origin at `now_s`: a full outage
  /// window is active, or a flap window has the path in its down phase.
  [[nodiscard]] bool origin_down(PathId path, double now_s) const;

  /// Bandwidth multiplier for `path` at `now_s`: 0 when origin_down,
  /// else the product of every active degrade window affecting the
  /// path, else 1.
  [[nodiscard]] double bandwidth_scale(PathId path, double now_s) const;

  /// True when estimator completion observations due at `now_s` are
  /// dropped.
  [[nodiscard]] bool blackout(double now_s) const;

  /// Earliest time >= now_s at which no outage/flap window is active
  /// anywhere (used by soak harnesses to bound recovery checks).
  [[nodiscard]] double next_all_clear(double now_s) const;

 private:
  FaultPlan plan_;
  /// Per-path flap phase in [0, 1), derived from (seed, path).
  std::vector<double> flap_phase_;
};

}  // namespace sc::net
