// Unit conventions for the whole library.
//
// Internally everything is expressed in **bytes** and **bytes/second** as
// doubles. The paper's exhibits use KB/s and GB; these constants convert at
// reporting boundaries only, so there is exactly one place where "KB" is
// defined (the paper's 48 KB/s bit-rate and ~790 GB corpus are consistent
// with binary units).
#pragma once

namespace sc::net {

inline constexpr double kKB = 1024.0;               // bytes
inline constexpr double kMB = 1024.0 * kKB;         // bytes
inline constexpr double kGB = 1024.0 * kMB;         // bytes

/// Convert bytes -> KB (for printing paper-style axes).
[[nodiscard]] constexpr double to_kb(double bytes) { return bytes / kKB; }
/// Convert KB -> bytes.
[[nodiscard]] constexpr double from_kb(double kb) { return kb * kKB; }
/// Convert bytes -> GB.
[[nodiscard]] constexpr double to_gb(double bytes) { return bytes / kGB; }
/// Convert GB -> bytes.
[[nodiscard]] constexpr double from_gb(double gb) { return gb * kGB; }

}  // namespace sc::net
