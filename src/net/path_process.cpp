#include "net/path_process.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace sc::net {

Ar1RatioProcess::Ar1RatioProcess(double phi, double sigma, double floor_ratio,
                                 double ceil_ratio)
    : phi_(phi), sigma_(sigma), floor_(floor_ratio), ceil_(ceil_ratio) {
  if (phi < 0 || phi >= 1) {
    throw std::invalid_argument("Ar1RatioProcess: phi must be in [0, 1)");
  }
  if (sigma < 0) throw std::invalid_argument("Ar1RatioProcess: sigma < 0");
  if (!(ceil_ratio > floor_ratio) || floor_ratio <= 0) {
    throw std::invalid_argument("Ar1RatioProcess: bad clamp bounds");
  }
}

double Ar1RatioProcess::step(util::Rng& rng) {
  const double innovation =
      sigma_ * std::sqrt(1.0 - phi_ * phi_) * rng.normal(0.0, 1.0);
  value_ = 1.0 + phi_ * (value_ - 1.0) + innovation;
  value_ = std::clamp(value_, floor_, ceil_);
  return value_;
}

PathModel::PathModel(std::size_t n_paths,
                     const stats::EmpiricalDistribution& base,
                     const stats::EmpiricalDistribution& ratio,
                     PathModelConfig config, util::Rng rng)
    : config_(config), ratio_(ratio), sampler_rng_(std::move(rng)) {
  if (n_paths == 0) throw std::invalid_argument("PathModel: n_paths == 0");
  means_.reserve(n_paths);
  for (std::size_t i = 0; i < n_paths; ++i) {
    means_.push_back(base.sample(sampler_rng_));
  }
  // Unit mean => stddev == CoV. Precomputed even outside kTimeSeries so
  // samplers never need the ratio bins at construction.
  ar1_sigma_ = ratio_.cov();
}

namespace {
const PathModel& require_model(const std::shared_ptr<const PathModel>& m) {
  if (m == nullptr) throw std::invalid_argument("PathSampler: null model");
  return *m;
}
}  // namespace

PathSampler::PathSampler(std::shared_ptr<const PathModel> model)
    : model_(std::move(model)), rng_(require_model(model_).sampler_rng()) {
  rebuild_series();
}

void PathSampler::rebind(std::shared_ptr<const PathModel> model) {
  model_ = std::move(model);
  rng_ = require_model(model_).sampler_rng();
  rebuild_series();
}

void PathSampler::rebuild_series() {
  // One implementation for construction and rebinding keeps the arena
  // bit-identity contract (rebound == fresh) trivially true; clear() +
  // reserve() keep the storage so steady-state rebinds allocate nothing.
  series_.clear();
  const PathModelConfig& config = model_->config();
  if (config.mode == VariationMode::kTimeSeries) {
    const std::size_t n = model_->size();
    series_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      series_.push_back(TimeSeriesState{
          Ar1RatioProcess(config.ar1_phi, model_->ar1_sigma(),
                          config.min_ratio, config.max_ratio),
          0.0});
    }
  }
}

double PathSampler::sample_bandwidth(PathId path, double now_s) {
  const PathModelConfig& config = model_->config();
  const double mean = model_->mean_bandwidth(path);
  switch (config.mode) {
    case VariationMode::kConstant:
      return mean;
    case VariationMode::kIidRatio: {
      const double r = std::clamp(model_->ratio().sample(rng_),
                                  config.min_ratio, config.max_ratio);
      return mean * r;
    }
    case VariationMode::kTimeSeries: {
      auto& st = series_.at(path);
      // Advance the AR(1) chain by however many whole timesteps elapsed.
      const double elapsed = now_s - st.last_step_time;
      const auto steps =
          static_cast<long long>(std::floor(elapsed / config.timestep_s));
      for (long long k = 0; k < std::min<long long>(steps, 1024); ++k) {
        st.process.step(rng_);
      }
      if (steps > 0) {
        st.last_step_time += static_cast<double>(steps) * config.timestep_s;
      }
      return mean * st.process.current();
    }
  }
  throw std::logic_error("PathSampler: unknown variation mode");
}

}  // namespace sc::net
