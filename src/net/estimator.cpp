#include "net/estimator.h"

#include <stdexcept>

namespace sc::net {

PassiveEwmaEstimator::PassiveEwmaEstimator(std::size_t n_paths, double alpha,
                                           double prior)
    : alpha_(alpha), prior_(prior), estimates_(n_paths, -1.0) {
  if (alpha <= 0 || alpha > 1) {
    throw std::invalid_argument("PassiveEwmaEstimator: alpha must be (0, 1]");
  }
  if (prior <= 0) {
    throw std::invalid_argument("PassiveEwmaEstimator: prior must be > 0");
  }
}

void PassiveEwmaEstimator::observe(PathId path, double throughput,
                                   double /*now_s*/) {
  if (throughput <= 0) return;
  double& e = estimates_.at(path);
  if (e <= 0) {
    e = throughput;
    ++observed_count_;
  } else {
    e = alpha_ * throughput + (1.0 - alpha_) * e;
  }
}

double PassiveEwmaEstimator::estimate(PathId path, double /*now_s*/) {
  const double e = estimates_.at(path);
  return e > 0 ? e : prior_;
}

LastSampleEstimator::LastSampleEstimator(std::size_t n_paths, double prior)
    : prior_(prior), last_(n_paths, -1.0) {
  if (prior <= 0) {
    throw std::invalid_argument("LastSampleEstimator: prior must be > 0");
  }
}

void LastSampleEstimator::observe(PathId path, double throughput,
                                  double /*now_s*/) {
  if (throughput > 0) last_.at(path) = throughput;
}

double LastSampleEstimator::estimate(PathId path, double /*now_s*/) {
  const double e = last_.at(path);
  return e > 0 ? e : prior_;
}

ActiveProbeEstimator::ActiveProbeEstimator(const ProbeModel& model,
                                           double reprobe_interval_s,
                                           util::Rng rng)
    : model_(&model),
      reprobe_interval_s_(reprobe_interval_s),
      rng_(std::move(rng)),
      cached_(model.size(), -1.0),
      probe_time_(model.size(), -1.0) {
  if (reprobe_interval_s <= 0) {
    throw std::invalid_argument("ActiveProbeEstimator: interval must be > 0");
  }
}

ActiveProbeEstimator::ActiveProbeEstimator(std::unique_ptr<ProbeModel> model,
                                           double reprobe_interval_s,
                                           util::Rng rng)
    : owned_model_(std::move(model)),
      model_(owned_model_.get()),
      reprobe_interval_s_(reprobe_interval_s),
      rng_(std::move(rng)),
      cached_(owned_model_ ? owned_model_->size() : 0, -1.0),
      probe_time_(owned_model_ ? owned_model_->size() : 0, -1.0) {
  if (!owned_model_) {
    throw std::invalid_argument("ActiveProbeEstimator: null probe model");
  }
  if (reprobe_interval_s <= 0) {
    throw std::invalid_argument("ActiveProbeEstimator: interval must be > 0");
  }
}

double ActiveProbeEstimator::estimate(PathId path, double now_s) {
  double& cached = cached_.at(path);
  double& when = probe_time_.at(path);
  if (cached <= 0 || now_s - when >= reprobe_interval_s_) {
    const ProbeResult r = model_->probe(path, rng_);
    cached = r.estimated_bandwidth;
    when = now_s;
    overhead_packets_ += r.packets_sent;
  }
  return cached;
}

}  // namespace sc::net
