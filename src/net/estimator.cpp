#include "net/estimator.h"

#include <stdexcept>

namespace sc::net {

EwmaKernel::EwmaKernel(std::size_t n_paths, double alpha, double prior)
    : alpha_(alpha), prior_(prior), estimates_(n_paths, -1.0) {
  if (alpha <= 0 || alpha > 1) {
    throw std::invalid_argument("PassiveEwmaEstimator: alpha must be (0, 1]");
  }
  if (prior <= 0) {
    throw std::invalid_argument("PassiveEwmaEstimator: prior must be > 0");
  }
}

LastSampleKernel::LastSampleKernel(std::size_t n_paths, double prior)
    : prior_(prior), last_(n_paths, -1.0) {
  if (prior <= 0) {
    throw std::invalid_argument("LastSampleEstimator: prior must be > 0");
  }
}

ProbeKernel::ProbeKernel(const ProbeModel& model, double reprobe_interval_s,
                         util::Rng rng)
    : model_(&model),
      reprobe_interval_s_(reprobe_interval_s),
      rng_(std::move(rng)),
      cached_(model.size(), -1.0),
      probe_time_(model.size(), -1.0) {
  if (reprobe_interval_s <= 0) {
    throw std::invalid_argument("ActiveProbeEstimator: interval must be > 0");
  }
}

ProbeKernel::ProbeKernel(std::unique_ptr<ProbeModel> model,
                         double reprobe_interval_s, util::Rng rng)
    : owned_model_(std::move(model)),
      model_(owned_model_.get()),
      reprobe_interval_s_(reprobe_interval_s),
      rng_(std::move(rng)),
      cached_(owned_model_ ? owned_model_->size() : 0, -1.0),
      probe_time_(owned_model_ ? owned_model_->size() : 0, -1.0) {
  if (!owned_model_) {
    throw std::invalid_argument("ActiveProbeEstimator: null probe model");
  }
  if (reprobe_interval_s <= 0) {
    throw std::invalid_argument("ActiveProbeEstimator: interval must be > 0");
  }
}

void ProbeKernel::rebind(std::unique_ptr<ProbeModel> model, util::Rng rng) {
  if (!model) {
    throw std::invalid_argument("ActiveProbeEstimator: null probe model");
  }
  owned_model_ = std::move(model);
  model_ = owned_model_.get();
  rng_ = std::move(rng);
  cached_.assign(model_->size(), -1.0);
  probe_time_.assign(model_->size(), -1.0);
  overhead_packets_ = 0;
}

}  // namespace sc::net
