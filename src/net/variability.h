// Bandwidth variability (sample-to-mean ratio) models.
//
// The paper models time variation of a path's bandwidth as the product of
// the path's mean and a random *ratio*:
//   - Fig 3: ratio distribution derived from NLANR logs — high variability
//     (~70% of mass in [0.5, 1.5], tail to 3x; CoV ~ 0.5).
//   - Fig 4: ratios measured on three real Internet paths from Boston
//     University — much lower variability (per-path CoV ~ 0.1 - 0.35).
//
// Every model here is normalized so that E[ratio] = 1, which preserves the
// per-path mean bandwidth when ratios multiply it.
#pragma once

#include <string>

#include "stats/empirical.h"

namespace sc::net {

/// Identifier for one of the paper's three measured Internet paths (Fig 4).
enum class MeasuredPath {
  kInria,     // INRIA, France (138.96.64.17)  - lowest variability
  kTaiwan,    // Taiwan (140.114.71.23)        - highest of the three
  kHongKong,  // Hong Kong (143.89.40.4)       - intermediate
};

[[nodiscard]] std::string to_string(MeasuredPath path);

/// Ratio model reconstructed from NLANR logs (Fig 3): unit mean,
/// high coefficient of variation (~0.5).
[[nodiscard]] stats::EmpiricalDistribution nlanr_variability_model();

/// Ratio model for one measured Internet path (Fig 4): unit mean, low
/// coefficient of variation (INRIA ~0.12, Taiwan ~0.35, Hong Kong ~0.25).
[[nodiscard]] stats::EmpiricalDistribution measured_path_model(
    MeasuredPath path);

/// Pooled Fig-4 model: mixture of the three measured paths (used when a
/// simulation wants a single "low variability" setting, as in Fig 8/11).
[[nodiscard]] stats::EmpiricalDistribution measured_variability_model();

/// Degenerate ratio model: always exactly 1 (the paper's constant-
/// bandwidth assumption, Figs 5/6/10).
[[nodiscard]] stats::EmpiricalDistribution constant_variability_model();

/// Rescale an arbitrary unit-mean ratio model so its support is scaled
/// toward/away from 1 by `spread` (spread = 0 collapses to constant,
/// 1 = unchanged, >1 exaggerates variability). Mean stays 1.
[[nodiscard]] stats::EmpiricalDistribution with_spread(
    const stats::EmpiricalDistribution& ratio_model, double spread);

}  // namespace sc::net
