// Per-path bandwidth processes.
//
// Each cache<->origin path has a fixed *mean* bandwidth drawn from a base
// model (Fig 2) and an instantaneous bandwidth obtained by multiplying the
// mean by a variability ratio. Three variation modes are supported:
//
//   kConstant   - ratio == 1 (the paper's constant-bandwidth assumption).
//   kIidRatio   - a fresh independent ratio per sample (the paper's
//                 variable-bandwidth methodology, §4.3).
//   kTimeSeries - an AR(1) ratio process refreshed on a fixed timestep,
//                 matching the 4-minute sampling of the measured paths in
//                 Fig 4 (our extension; the paper's figures use kIidRatio).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/empirical.h"
#include "util/rng.h"

namespace sc::net {

using PathId = std::size_t;

enum class VariationMode { kConstant, kIidRatio, kTimeSeries };

/// First-order autoregressive ratio process with unit mean:
///   r_{k+1} = 1 + phi * (r_k - 1) + sigma * sqrt(1 - phi^2) * z_k.
/// The stationary standard deviation is `sigma`; values are clamped to
/// [floor, ceil] to keep bandwidth positive and bounded.
class Ar1RatioProcess {
 public:
  Ar1RatioProcess(double phi, double sigma, double floor_ratio,
                  double ceil_ratio);

  /// Advance one step and return the new ratio.
  double step(util::Rng& rng);

  [[nodiscard]] double current() const noexcept { return value_; }
  [[nodiscard]] double phi() const noexcept { return phi_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double phi_;
  double sigma_;
  double floor_;
  double ceil_;
  double value_ = 1.0;
};

/// Configuration of a PathTable.
struct PathTableConfig {
  VariationMode mode = VariationMode::kConstant;
  /// AR(1) lag-1 autocorrelation (kTimeSeries only).
  double ar1_phi = 0.7;
  /// Ratio refresh period in seconds (kTimeSeries only). The paper's
  /// measured paths were sampled every 4 minutes.
  double timestep_s = 240.0;
  /// Clamp bounds for ratios (all modes).
  double min_ratio = 0.05;
  double max_ratio = 4.0;
};

/// The table of all cache<->origin paths in a simulation: per-path mean
/// bandwidth plus instantaneous sampling under the configured mode.
class PathTable {
 public:
  /// Draw `n_paths` means from `base` and configure variability from the
  /// unit-mean `ratio` model.
  PathTable(std::size_t n_paths, const stats::EmpiricalDistribution& base,
            const stats::EmpiricalDistribution& ratio, PathTableConfig config,
            util::Rng rng);

  [[nodiscard]] std::size_t size() const noexcept { return means_.size(); }

  /// True long-run mean bandwidth of a path (bytes/second). This is the
  /// quantity an *oracle* estimator would report.
  [[nodiscard]] double mean_bandwidth(PathId path) const;

  /// Instantaneous bandwidth at simulation time `now_s` (bytes/second).
  [[nodiscard]] double sample_bandwidth(PathId path, double now_s);

  [[nodiscard]] VariationMode mode() const noexcept { return config_.mode; }
  [[nodiscard]] const PathTableConfig& config() const noexcept {
    return config_;
  }

 private:
  struct TimeSeriesState {
    Ar1RatioProcess process;
    double last_step_time = 0.0;
  };

  PathTableConfig config_;
  stats::EmpiricalDistribution ratio_;
  std::vector<double> means_;
  std::vector<TimeSeriesState> series_;  // kTimeSeries only
  util::Rng rng_;
};

}  // namespace sc::net
