// Per-path bandwidth processes.
//
// Each cache<->origin path has a fixed *mean* bandwidth drawn from a base
// model (Fig 2) and an instantaneous bandwidth obtained by multiplying the
// mean by a variability ratio. Three variation modes are supported:
//
//   kConstant   - ratio == 1 (the paper's constant-bandwidth assumption).
//   kIidRatio   - a fresh independent ratio per sample (the paper's
//                 variable-bandwidth methodology, §4.3).
//   kTimeSeries - an AR(1) ratio process refreshed on a fixed timestep,
//                 matching the 4-minute sampling of the measured paths in
//                 Fig 4 (our extension; the paper's figures use kIidRatio).
//
// The state is split so sweeps can share the expensive part:
//
//   PathModel   - immutable: the drawn per-path means, the ratio model,
//                 and the configuration. Built once per replication and
//                 shared across every sweep cell via shared_ptr<const>
//                 (the paired-seed design makes the means a function of
//                 the replication seed only — see docs/PERF.md).
//   PathSampler - cheap per-simulation state: the variability RNG stream
//                 and the AR(1) chains. Constructed from a model in O(n)
//                 with no distribution sampling.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "stats/empirical.h"
#include "util/rng.h"

namespace sc::net {

using PathId = std::size_t;

enum class VariationMode { kConstant, kIidRatio, kTimeSeries };

/// First-order autoregressive ratio process with unit mean:
///   r_{k+1} = 1 + phi * (r_k - 1) + sigma * sqrt(1 - phi^2) * z_k.
/// The stationary standard deviation is `sigma`; values are clamped to
/// [floor, ceil] to keep bandwidth positive and bounded.
class Ar1RatioProcess {
 public:
  Ar1RatioProcess(double phi, double sigma, double floor_ratio,
                  double ceil_ratio);

  /// Advance one step and return the new ratio.
  double step(util::Rng& rng);

  [[nodiscard]] double current() const noexcept { return value_; }
  [[nodiscard]] double phi() const noexcept { return phi_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double phi_;
  double sigma_;
  double floor_;
  double ceil_;
  double value_ = 1.0;
};

/// Configuration of a PathModel.
struct PathModelConfig {
  VariationMode mode = VariationMode::kConstant;
  /// AR(1) lag-1 autocorrelation (kTimeSeries only).
  double ar1_phi = 0.7;
  /// Ratio refresh period in seconds (kTimeSeries only). The paper's
  /// measured paths were sampled every 4 minutes.
  double timestep_s = 240.0;
  /// Clamp bounds for ratios (all modes).
  double min_ratio = 0.05;
  double max_ratio = 4.0;
};

/// The immutable part of a path table: per-path mean bandwidths drawn
/// once from the base model, plus the ratio model and configuration.
/// Thread-safe to share (const) across concurrent simulations.
class PathModel {
 public:
  /// Draw `n_paths` means from `base` and configure variability from the
  /// unit-mean `ratio` model. The RNG state left after drawing the means
  /// is snapshotted so every PathSampler continues the exact stream a
  /// monolithic construction would have used (bit-identical results).
  PathModel(std::size_t n_paths, const stats::EmpiricalDistribution& base,
            const stats::EmpiricalDistribution& ratio, PathModelConfig config,
            util::Rng rng);

  [[nodiscard]] std::size_t size() const noexcept { return means_.size(); }

  /// True long-run mean bandwidth of a path (bytes/second). This is the
  /// quantity an *oracle* estimator would report.
  [[nodiscard]] double mean_bandwidth(PathId path) const {
    return means_.at(path);
  }

  /// Contiguous per-path means (SoA access for estimator setup).
  [[nodiscard]] const std::vector<double>& means() const noexcept {
    return means_;
  }

  [[nodiscard]] VariationMode mode() const noexcept { return config_.mode; }
  [[nodiscard]] const PathModelConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const stats::EmpiricalDistribution& ratio() const noexcept {
    return ratio_;
  }

  /// Stationary AR(1) sigma (the ratio model's CoV; unit mean => CoV ==
  /// stddev). Precomputed so samplers start without touching the bins.
  [[nodiscard]] double ar1_sigma() const noexcept { return ar1_sigma_; }

  /// RNG state immediately after the mean draws; PathSampler copies it.
  [[nodiscard]] const util::Rng& sampler_rng() const noexcept {
    return sampler_rng_;
  }

 private:
  PathModelConfig config_;
  stats::EmpiricalDistribution ratio_;
  std::vector<double> means_;
  double ar1_sigma_ = 0.0;
  util::Rng sampler_rng_;
};

/// Per-simulation mutable sampling state over a shared immutable model:
/// the variability RNG stream plus (kTimeSeries only) the AR(1) chains.
class PathSampler {
 public:
  explicit PathSampler(std::shared_ptr<const PathModel> model);

  /// Restart over a (possibly different) model, reusing the AR(1) chain
  /// storage: after rebind the sampler draws exactly the stream a freshly
  /// constructed PathSampler(model) would draw.
  void rebind(std::shared_ptr<const PathModel> model);

  [[nodiscard]] const PathModel& model() const noexcept { return *model_; }
  [[nodiscard]] std::size_t size() const noexcept { return model_->size(); }
  [[nodiscard]] double mean_bandwidth(PathId path) const {
    return model_->mean_bandwidth(path);
  }

  /// Instantaneous bandwidth at simulation time `now_s` (bytes/second).
  [[nodiscard]] double sample_bandwidth(PathId path, double now_s);

 private:
  struct TimeSeriesState {
    Ar1RatioProcess process;
    double last_step_time = 0.0;
  };

  /// (Re)build the AR(1) chains from the current model — shared by the
  /// constructor and rebind() so the two can never drift apart.
  void rebuild_series();

  std::shared_ptr<const PathModel> model_;
  util::Rng rng_;
  std::vector<TimeSeriesState> series_;  // kTimeSeries only
};

}  // namespace sc::net
