// Proxy-log bandwidth analysis (§3.1 of the paper).
//
// The paper derives its bandwidth models from NLANR proxy-cache access
// logs: for every *miss* larger than 200 KB it computes a bandwidth
// sample as object size / connection duration, builds the base-bandwidth
// histogram (Fig 2), and — grouping samples by origin server — the
// sample-to-mean ratio distribution (Fig 3). This module implements that
// pipeline for Squid-format access logs, plus a synthetic log writer so
// the pipeline can be exercised without the (unavailable) 2001 logs.
//
// Squid native access.log format (one request per line):
//   timestamp elapsed_ms client code/status bytes method URL rfc931 peer type
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/path_process.h"
#include "stats/empirical.h"
#include "util/rng.h"

namespace sc::net {

/// One parsed access-log entry.
struct LogRecord {
  double timestamp_s = 0.0;   // Unix time, seconds
  double elapsed_s = 0.0;     // connection duration
  std::string client;         // anonymized client host
  std::string result_code;    // e.g. "TCP_MISS/200"
  double bytes = 0.0;         // response size
  std::string method;         // GET, ...
  std::string url;
};

/// Parse one Squid-format line. Returns nullopt for malformed lines
/// (parsers of real logs must tolerate junk) — never throws.
[[nodiscard]] std::optional<LogRecord> parse_squid_line(
    const std::string& line);

/// Origin host of a URL ("http://media.example.com:8080/a/b.rm" ->
/// "media.example.com"). Empty string if the URL has no recognizable host.
[[nodiscard]] std::string server_of_url(const std::string& url);

/// One bandwidth sample attributed to an origin server.
struct BandwidthSample {
  std::string server;
  double bytes_per_s = 0.0;
  double timestamp_s = 0.0;
};

struct LogAnalysisConfig {
  /// Samples below this size are discarded: short transfers measure
  /// slow-start, not available bandwidth (paper: 200 KB).
  double min_bytes = 200.0 * 1024.0;
  /// Only misses reach the origin; hits measure the proxy, not the path.
  bool misses_only = true;
  /// Minimum connection duration to avoid divide-by-noise.
  double min_elapsed_s = 0.1;
  /// Servers with fewer samples than this are excluded from the
  /// sample-to-mean ratio model (a mean of one sample is meaningless).
  std::size_t min_samples_per_server = 3;
};

/// Streaming analyzer: feed lines or records, then extract the Fig-2 and
/// Fig-3 style models.
class LogAnalyzer {
 public:
  explicit LogAnalyzer(LogAnalysisConfig config = {});

  /// Feed one raw log line; returns true if it yielded a sample.
  bool add_line(const std::string& line);

  /// Feed a parsed record; returns true if it passed the filters.
  bool add_record(const LogRecord& record);

  /// Feed an entire log file. Returns the number of samples extracted.
  std::size_t add_file(const std::filesystem::path& path);

  [[nodiscard]] const std::vector<BandwidthSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t lines_seen() const noexcept { return lines_; }
  [[nodiscard]] std::size_t lines_rejected() const noexcept {
    return rejected_;
  }

  /// Fig-2 analogue: empirical distribution of all bandwidth samples
  /// (bytes/second), binned into `bins` equal slots over the observed
  /// range. Throws std::logic_error if no samples were collected.
  [[nodiscard]] stats::EmpiricalDistribution base_model(
      std::size_t bins = 100) const;

  /// Fig-3 analogue: distribution of sample / per-server-mean ratios,
  /// normalized to unit mean. Only servers with at least
  /// `min_samples_per_server` samples contribute.
  [[nodiscard]] stats::EmpiricalDistribution ratio_model(
      std::size_t bins = 60) const;

  /// Per-server mean bandwidth (bytes/second), for inspection.
  [[nodiscard]] std::unordered_map<std::string, double> server_means() const;

 private:
  LogAnalysisConfig config_;
  std::vector<BandwidthSample> samples_;
  std::size_t lines_ = 0;
  std::size_t rejected_ = 0;
};

/// Parameters for synthetic log generation.
struct SyntheticLogConfig {
  std::size_t num_requests = 20000;
  std::size_t num_servers = 200;
  double start_time_s = 987033600.0;  // 2001-04-12, the paper's log window
  double arrival_rate_per_s = 2.0;
  /// Mix of object sizes: most web objects are small; a fraction are the
  /// large (> min_bytes) transfers the analyzer keeps.
  double large_fraction = 0.35;
  double small_bytes_lo = 2.0 * 1024.0;
  double small_bytes_hi = 150.0 * 1024.0;
  double large_bytes_lo = 250.0 * 1024.0;
  double large_bytes_hi = 8.0 * 1024.0 * 1024.0;
  double miss_fraction = 0.7;  // the rest are TCP_HITs (served locally)
  double hit_bytes_per_s = 5.0 * 1024.0 * 1024.0;  // LAN-speed hits
};

/// Write a synthetic Squid-format log whose miss transfers draw their
/// bandwidth from `paths` (server i <-> path i mod paths.size()). Returns
/// the number of lines written. This gives the analysis pipeline a ground
/// truth to be validated against (see tests and the proxy_log_study
/// example).
std::size_t write_synthetic_log(const std::filesystem::path& path,
                                PathSampler& paths,
                                const SyntheticLogConfig& config,
                                util::Rng& rng);

}  // namespace sc::net
