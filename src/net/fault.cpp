#include "net/fault.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/rng.h"
#include "util/spec.h"

namespace sc::net {

namespace {

const std::vector<std::string>& fault_param_names() {
  static const std::vector<std::string> names = {"outage", "degrade",
                                                 "blackout", "flap"};
  return names;
}

/// Parse a strict double from an entire token (no trailing junk).
double parse_number(const std::string& token, const std::string& context) {
  if (token.empty()) {
    throw util::SpecError("fault spec: " + context + ": empty number");
  }
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw util::SpecError("fault spec: " + context + ": \"" + token +
                          "\" is not a number");
  }
  return v;
}

/// Split `text` on `sep`, keeping empty segments (they are errors the
/// window parser reports with context).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(sep, begin);
    if (pos == std::string::npos) {
      out.push_back(text.substr(begin));
      return out;
    }
    out.push_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

/// Parse one `START+DUR` core; the remainder (after DUR) is returned
/// for family-specific suffixes.
FaultWindow parse_window_core(const std::string& token,
                              const std::string& family, std::string* rest) {
  const std::size_t plus = token.find('+');
  if (plus == std::string::npos) {
    throw util::SpecError("fault spec: " + family + " window \"" + token +
                          "\" must be START+DUR (e.g. 120+60)");
  }
  FaultWindow w;
  w.start_s = parse_number(token.substr(0, plus), family + " window start");
  // DUR runs until the first family-specific delimiter (x or @).
  std::size_t end = plus + 1;
  while (end < token.size() && token[end] != 'x' && token[end] != '@') ++end;
  w.duration_s = parse_number(token.substr(plus + 1, end - plus - 1),
                              family + " window duration");
  if (w.start_s < 0) {
    throw util::SpecError("fault spec: " + family + " window \"" + token +
                          "\": start must be >= 0");
  }
  if (w.duration_s <= 0) {
    throw util::SpecError("fault spec: " + family + " window \"" + token +
                          "\": duration must be > 0");
  }
  if (rest != nullptr) *rest = token.substr(end);
  return w;
}

/// Parse one `@...` scope segment (the text after the '@'): region<K>,
/// r<K>, proxy<K>, or p<K>. Returns false when the segment is not a
/// scope at all (e.g. a degrade @PATH digit string), throws when it
/// starts like a scope but is malformed.
bool parse_scope_segment(const std::string& text, const std::string& family,
                         const std::string& token, FaultWindow* w) {
  FaultWindow::Scope scope = FaultWindow::Scope::kGlobal;
  std::size_t prefix = 0;
  if (text.rfind("region", 0) == 0) {
    scope = FaultWindow::Scope::kRegion;
    prefix = 6;
  } else if (text.rfind("proxy", 0) == 0) {
    scope = FaultWindow::Scope::kProxy;
    prefix = 5;
  } else if (!text.empty() && text[0] == 'r') {
    scope = FaultWindow::Scope::kRegion;
    prefix = 1;
  } else if (!text.empty() && text[0] == 'p') {
    scope = FaultWindow::Scope::kProxy;
    prefix = 1;
  } else {
    return false;
  }
  const double id = parse_number(text.substr(prefix), family + " scope");
  if (id < 0 ||
      id != static_cast<double>(static_cast<std::uint32_t>(id))) {
    throw util::SpecError("fault spec: " + family + " window \"" + token +
                          "\": scope \"@" + text +
                          "\" must be @region<K>/@r<K> or @proxy<K>/@p<K> "
                          "with a non-negative integer K");
  }
  w->scope = scope;
  w->scope_id = static_cast<std::uint32_t>(id);
  return true;
}

std::vector<FaultWindow> parse_outage_like(const std::string& value,
                                           const std::string& family) {
  std::vector<FaultWindow> windows;
  for (const std::string& token : split(value, '/')) {
    std::string rest;
    FaultWindow w = parse_window_core(token, family, &rest);
    if (!rest.empty() &&
        !(rest[0] == '@' &&
          parse_scope_segment(rest.substr(1), family, token, &w))) {
      throw util::SpecError("fault spec: " + family + " window \"" + token +
                            "\": unexpected trailing \"" + rest + "\"");
    }
    windows.push_back(w);
  }
  return windows;
}

std::vector<FaultWindow> parse_degrades(const std::string& value) {
  std::vector<FaultWindow> windows;
  for (const std::string& token : split(value, '/')) {
    std::string rest;
    FaultWindow w = parse_window_core(token, "degrade", &rest);
    if (rest.empty() || rest[0] != 'x') {
      throw util::SpecError("fault spec: degrade window \"" + token +
                            "\" must be START+DURxSCALE[@PATH] "
                            "(e.g. 300+120x0.25)");
    }
    const std::size_t at = rest.find('@');
    w.scale = parse_number(rest.substr(1, at == std::string::npos
                                              ? std::string::npos
                                              : at - 1),
                           "degrade scale");
    if (w.scale <= 0 || w.scale >= 1) {
      throw util::SpecError("fault spec: degrade window \"" + token +
                            "\": scale must be in (0, 1) — use outage= for "
                            "a full cut");
    }
    // After the scale: up to two '@' segments, in either order — a
    // digit-leading @PATH and/or a @SCOPE (region/proxy).
    bool have_path = false;
    for (const std::string& seg :
         at == std::string::npos ? std::vector<std::string>{}
                                 : split(rest.substr(at + 1), '@')) {
      if (!seg.empty() && seg[0] >= '0' && seg[0] <= '9') {
        const double path = parse_number(seg, "degrade path");
        if (have_path || path < 0 ||
            path != static_cast<double>(static_cast<std::uint32_t>(path))) {
          throw util::SpecError("fault spec: degrade window \"" + token +
                                "\": @PATH must be a non-negative integer");
        }
        w.path = static_cast<std::uint32_t>(path);
        have_path = true;
      } else if (!parse_scope_segment(seg, "degrade", token, &w)) {
        throw util::SpecError("fault spec: degrade window \"" + token +
                              "\": unexpected \"@" + seg + "\"");
      }
    }
    windows.push_back(w);
  }
  return windows;
}

std::vector<FaultWindow> parse_flaps(const std::string& value) {
  std::vector<FaultWindow> windows;
  for (const std::string& token : split(value, '/')) {
    std::string rest;
    FaultWindow w = parse_window_core(token, "flap", &rest);
    if (rest.empty() || rest[0] != '@') {
      throw util::SpecError("fault spec: flap window \"" + token +
                            "\" must be START+DUR@PERIOD (e.g. 600+300@20)");
    }
    // The period runs to the optional second '@' (the scope).
    const std::size_t at2 = rest.find('@', 1);
    w.period_s = parse_number(
        rest.substr(1, at2 == std::string::npos ? std::string::npos : at2 - 1),
        "flap period");
    if (w.period_s <= 0) {
      throw util::SpecError("fault spec: flap window \"" + token +
                            "\": period must be > 0");
    }
    if (at2 != std::string::npos &&
        !parse_scope_segment(rest.substr(at2 + 1), "flap", token, &w)) {
      throw util::SpecError("fault spec: flap window \"" + token +
                            "\": unexpected trailing \"" + rest.substr(at2) +
                            "\"");
    }
    windows.push_back(w);
  }
  return windows;
}

void append_windows(std::string& out, const char* key,
                    const std::vector<FaultWindow>& windows, bool degrade,
                    bool flap) {
  if (windows.empty()) return;
  out += out.empty() ? ":" : ",";
  out += key;
  out += '=';
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const FaultWindow& w = windows[i];
    if (i > 0) out += '/';
    char buf[96];
    std::snprintf(buf, sizeof buf, "%g+%g", w.start_s, w.duration_s);
    out += buf;
    if (degrade) {
      std::snprintf(buf, sizeof buf, "x%g", w.scale);
      out += buf;
      if (w.path != FaultWindow::kAllPaths) {
        std::snprintf(buf, sizeof buf, "@%u", w.path);
        out += buf;
      }
    }
    if (flap) {
      std::snprintf(buf, sizeof buf, "@%g", w.period_s);
      out += buf;
    }
    if (w.scope != FaultWindow::Scope::kGlobal) {
      std::snprintf(buf, sizeof buf, "@%c%u",
                    w.scope == FaultWindow::Scope::kRegion ? 'r' : 'p',
                    w.scope_id);
      out += buf;
    }
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  if (text.empty()) return plan;
  const util::Spec spec = util::Spec::parse(text);
  if (spec.name == "none") {
    if (!spec.params.empty()) {
      throw util::SpecError("fault spec \"" + text +
                            "\": \"none\" takes no parameters");
    }
    return plan;
  }
  if (spec.name != "fault") {
    std::string msg = "unknown fault spec \"" + spec.name +
                      "\" (valid: fault, none";
    if (const auto near =
            util::closest_match(spec.name, {"fault", "none"})) {
      msg += "; did you mean \"" + *near + "\"?";
    }
    throw util::SpecError(msg + ")");
  }
  for (const auto& [key, value] : spec.params) {
    if (key == "outage") {
      plan.outages_ = parse_outage_like(value, "outage");
    } else if (key == "degrade") {
      plan.degrades_ = parse_degrades(value);
    } else if (key == "blackout") {
      plan.blackouts_ = parse_outage_like(value, "blackout");
    } else if (key == "flap") {
      plan.flaps_ = parse_flaps(value);
    } else {
      std::string msg = "fault spec \"" + text + "\": unknown parameter \"" +
                        key + "\" (valid: " +
                        util::join(fault_param_names());
      if (const auto near = util::closest_match(key, fault_param_names())) {
        msg += "; did you mean \"" + *near + "\"?";
      }
      throw util::SpecError(msg + ")");
    }
  }
  return plan;
}

FaultPlan FaultPlan::scoped_to(const FaultScope& scope) const {
  const auto filter = [&scope](const std::vector<FaultWindow>& in) {
    std::vector<FaultWindow> kept;
    for (const FaultWindow& w : in) {
      if (scope.matches(w)) kept.push_back(w);
    }
    return kept;
  };
  FaultPlan out;
  out.outages_ = filter(outages_);
  out.degrades_ = filter(degrades_);
  out.blackouts_ = filter(blackouts_);
  out.flaps_ = filter(flaps_);
  return out;
}

std::string FaultPlan::to_string() const {
  if (empty()) return "none";
  std::string params;
  append_windows(params, "outage", outages_, false, false);
  append_windows(params, "degrade", degrades_, true, false);
  append_windows(params, "blackout", blackouts_, false, false);
  append_windows(params, "flap", flaps_, false, true);
  return "fault" + params;
}

void FaultSchedule::compile(const FaultPlan& plan, std::size_t n_paths,
                            std::uint64_t seed, FaultScope scope) {
  plan_ = plan.scoped_to(scope);
  flap_phase_.clear();
  if (plan_.flaps().empty()) return;
  flap_phase_.resize(n_paths);
  for (std::size_t p = 0; p < n_paths; ++p) {
    // splitmix64 of (seed, path): a fixed per-path phase in [0, 1) that
    // depends on nothing but the schedule seed — identical for every
    // engine and thread count, different across replications.
    const std::uint64_t h =
        util::splitmix64(seed ^ (0x9E3779B97F4A7C15ull * (p + 1)));
    flap_phase_[p] =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  }
}

void FaultSchedule::clear() {
  plan_ = FaultPlan{};
  flap_phase_.clear();
}

bool FaultSchedule::origin_down(PathId path, double now_s) const {
  for (const FaultWindow& w : plan_.outages()) {
    if (w.contains(now_s)) return true;
  }
  for (const FaultWindow& w : plan_.flaps()) {
    if (!w.contains(now_s)) continue;
    const double phase =
        path < flap_phase_.size() ? flap_phase_[path] : 0.0;
    // Square wave with 50% duty: down during the first half of each
    // period, shifted by the path's phase.
    const double t = (now_s - w.start_s) / w.period_s + phase;
    if (t - std::floor(t) < 0.5) return true;
  }
  return false;
}

double FaultSchedule::bandwidth_scale(PathId path, double now_s) const {
  if (origin_down(path, now_s)) return 0.0;
  double scale = 1.0;
  for (const FaultWindow& w : plan_.degrades()) {
    if (!w.contains(now_s)) continue;
    if (w.path != FaultWindow::kAllPaths && w.path != path) continue;
    scale *= w.scale;
  }
  return scale;
}

bool FaultSchedule::blackout(double now_s) const {
  for (const FaultWindow& w : plan_.blackouts()) {
    if (w.contains(now_s)) return true;
  }
  return false;
}

double FaultSchedule::next_all_clear(double now_s) const {
  double clear = now_s;
  for (const FaultWindow& w : plan_.outages()) {
    if (w.contains(clear) || w.start_s >= clear) {
      clear = std::max(clear, w.start_s + w.duration_s);
    }
  }
  for (const FaultWindow& w : plan_.flaps()) {
    if (w.contains(clear) || w.start_s >= clear) {
      clear = std::max(clear, w.start_s + w.duration_s);
    }
  }
  return clear;
}

}  // namespace sc::net
