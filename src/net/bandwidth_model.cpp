#include "net/bandwidth_model.h"

#include <stdexcept>

#include "net/units.h"

namespace sc::net {

stats::EmpiricalDistribution nlanr_base_model() {
  // Piecewise-uniform reconstruction of Fig 2 (units: KB/s, converted to
  // bytes/s below). Mass fractions pinned to the published CDF anchors:
  //   CDF(50 KB/s)  = 0.02 + 0.07 + 0.12 + 0.16 = 0.37  (paper: 37%)
  //   CDF(100 KB/s) = 0.37 + 0.10 + 0.09        = 0.56  (paper: 56%)
  // with a long high-bandwidth tail past 450 KB/s as in the published
  // histogram. The sub-50 KB/s band rises toward 50 KB/s but keeps real
  // mass at slow paths: the per-object bandwidth deficit (r - b) * T of
  // that band is what partial caching spends cache space on, and the
  // paper's PB curves keep improving to the largest cache size -- which
  // requires the aggregate deficit to be comparable to the largest cache
  // (~17% of the corpus). Absolute delays land ~3-4x above the paper's;
  // see EXPERIMENTS.md for the calibration discussion.
  std::vector<stats::EmpiricalBin> bins = {
      {10.0, 20.0, 0.02},  {20.0, 30.0, 0.07},   {30.0, 40.0, 0.12},
      {40.0, 50.0, 0.16},  {50.0, 75.0, 0.10},   {75.0, 100.0, 0.09},
      {100.0, 150.0, 0.12}, {150.0, 200.0, 0.10}, {200.0, 250.0, 0.08},
      {250.0, 300.0, 0.06}, {300.0, 350.0, 0.04}, {350.0, 400.0, 0.02},
      {400.0, 450.0, 0.015}, {450.0, 600.0, 0.005},
  };
  for (auto& b : bins) {
    b.lo = from_kb(b.lo);
    b.hi = from_kb(b.hi);
  }
  return stats::EmpiricalDistribution(std::move(bins));
}

stats::EmpiricalDistribution abundant_base_model(double bytes_per_second) {
  if (bytes_per_second <= 0) {
    throw std::invalid_argument("abundant_base_model: rate must be > 0");
  }
  return stats::EmpiricalDistribution(
      {{bytes_per_second * 0.999, bytes_per_second * 1.001, 1.0}});
}

stats::EmpiricalDistribution uniform_base_model(double lo, double hi) {
  return stats::EmpiricalDistribution({{lo, hi, 1.0}});
}

}  // namespace sc::net
