// Active bandwidth probing substrate (§2.7 of the paper).
//
// The paper notes that for TCP-friendly streaming transports the available
// bandwidth tracks TCP throughput, which the Padhye/Firoiu/Towsley/Kurose
// model approximates as
//
//     bw  ≈  MSS / (RTT * sqrt(2p/3))
//
// where p is the packet loss rate. We invert this model to assign each
// path a latent (RTT, loss) pair consistent with its true mean bandwidth,
// and a probe then *measures* those quantities with realistic estimation
// noise: RTT from a small number of round-trip samples, loss from a finite
// probe train. The resulting estimate error shrinks as the probe train
// grows, letting experiments study measurement quality vs. overhead.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sc::net {

/// Latent network characteristics of one path.
struct PathNetworkState {
  double rtt_s = 0.1;      // round-trip time, seconds
  double loss_rate = 0.0;  // packet loss probability in (0, 1)
};

struct ProbeConfig {
  double mss_bytes = 1460.0;  // TCP maximum segment size
  std::size_t train_packets = 200;  // packets per probing train
  std::size_t rtt_samples = 4;      // ping samples per probe
  double rtt_noise_cov = 0.1;       // per-sample RTT jitter (CoV)
  double min_rtt_s = 0.01;          // assignment floor
  double max_rtt_s = 0.4;           // assignment ceiling
};

/// Result of one active probe.
struct ProbeResult {
  double estimated_bandwidth = 0.0;  // bytes/second
  double measured_rtt_s = 0.0;
  double measured_loss = 0.0;
  std::size_t packets_sent = 0;  // probing overhead
};

/// TCP-throughput model: bytes/second given MSS, RTT and loss rate.
[[nodiscard]] double tcp_throughput(double mss_bytes, double rtt_s,
                                    double loss_rate);

/// Invert the TCP model: loss rate that yields `bandwidth` at given RTT.
[[nodiscard]] double loss_for_bandwidth(double bandwidth, double mss_bytes,
                                        double rtt_s);

/// Assigns latent (RTT, loss) to paths and simulates probe trains.
class ProbeModel {
 public:
  /// `mean_bandwidths` are the true per-path means (bytes/second); each
  /// path gets an RTT drawn uniformly from [min_rtt, max_rtt] and the loss
  /// rate implied by the TCP model.
  ProbeModel(const std::vector<double>& mean_bandwidths, ProbeConfig config,
             util::Rng rng);

  /// Simulate one probe of `path`; returns a noisy bandwidth estimate and
  /// the probing overhead incurred.
  [[nodiscard]] ProbeResult probe(std::size_t path, util::Rng& rng) const;

  [[nodiscard]] const PathNetworkState& state(std::size_t path) const {
    return states_.at(path);
  }
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] const ProbeConfig& config() const noexcept { return config_; }

 private:
  ProbeConfig config_;
  std::vector<PathNetworkState> states_;
};

}  // namespace sc::net
