// Bandwidth estimators (§2.7): how the cache learns b_i for each path.
//
// The caching policies never see the true path means directly; they consult
// a BandwidthEstimator. Implementations:
//   OracleEstimator      - returns the true long-run mean (the paper's
//                          idealized setting used in its simulations).
//   PassiveEwmaEstimator - exponentially-weighted average of observed
//                          per-transfer throughput (passive measurement).
//   LastSampleEstimator  - most recent observed throughput only.
//   ActiveProbeEstimator - probes via the TCP-throughput model with a
//                          configurable re-probe interval (active
//                          measurement with overhead accounting).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/path_process.h"
#include "net/probe.h"
#include "util/rng.h"

namespace sc::net {

/// Interface through which cache policies learn per-path bandwidth.
class BandwidthEstimator {
 public:
  virtual ~BandwidthEstimator() = default;

  /// Record the throughput (bytes/second) of a completed transfer on
  /// `path` finishing at simulation time `now_s`.
  virtual void observe(PathId path, double throughput, double now_s) = 0;

  /// Whether observe() has any effect. Purely active / oracle schemes
  /// return false so the simulator can skip scheduling per-transfer
  /// completion events entirely (their delivery order is the only thing
  /// the events control, and a no-op observer cannot tell).
  [[nodiscard]] virtual bool uses_observations() const { return true; }

  /// Current estimate for `path` (bytes/second); must be positive.
  [[nodiscard]] virtual double estimate(PathId path, double now_s) = 0;

  /// Cumulative measurement overhead in packets (0 for passive schemes).
  [[nodiscard]] virtual std::size_t overhead_packets() const { return 0; }
};

/// Knows the true per-path mean (upper bound on estimator quality).
/// Consults the immutable PathModel only, so one shared model can feed
/// any number of concurrent estimators.
class OracleEstimator final : public BandwidthEstimator {
 public:
  explicit OracleEstimator(const PathModel& paths) : paths_(&paths) {}
  /// Convenience for pre-split call sites holding a PathTable.
  explicit OracleEstimator(const PathTable& paths) : paths_(&paths.model()) {}

  void observe(PathId, double, double) override {}
  [[nodiscard]] bool uses_observations() const override { return false; }
  [[nodiscard]] double estimate(PathId path, double) override {
    return paths_->mean_bandwidth(path);
  }

 private:
  const PathModel* paths_;
};

/// Passive EWMA over observed transfer throughput.
class PassiveEwmaEstimator final : public BandwidthEstimator {
 public:
  /// `alpha` is the weight of the newest observation; `prior` is returned
  /// for paths never observed (bytes/second).
  PassiveEwmaEstimator(std::size_t n_paths, double alpha, double prior);

  void observe(PathId path, double throughput, double now_s) override;
  [[nodiscard]] double estimate(PathId path, double now_s) override;

  [[nodiscard]] std::size_t observed_paths() const noexcept {
    return observed_count_;
  }

 private:
  double alpha_;
  double prior_;
  std::vector<double> estimates_;  // <= 0 means "never observed"
  std::size_t observed_count_ = 0;
};

/// Remembers only the most recent sample per path.
class LastSampleEstimator final : public BandwidthEstimator {
 public:
  LastSampleEstimator(std::size_t n_paths, double prior);

  void observe(PathId path, double throughput, double now_s) override;
  [[nodiscard]] double estimate(PathId path, double now_s) override;

 private:
  double prior_;
  std::vector<double> last_;
};

/// Probes a path actively when its estimate is older than
/// `reprobe_interval_s`; otherwise serves the cached probe result.
class ActiveProbeEstimator final : public BandwidthEstimator {
 public:
  ActiveProbeEstimator(const ProbeModel& model, double reprobe_interval_s,
                       util::Rng rng);

  /// Owning variant: keeps `model` alive for the estimator's lifetime
  /// (used by registry factories, which have no place to park the model).
  ActiveProbeEstimator(std::unique_ptr<ProbeModel> model,
                       double reprobe_interval_s, util::Rng rng);

  void observe(PathId, double, double) override {}  // purely active
  [[nodiscard]] bool uses_observations() const override { return false; }
  [[nodiscard]] double estimate(PathId path, double now_s) override;
  [[nodiscard]] std::size_t overhead_packets() const override {
    return overhead_packets_;
  }

 private:
  std::unique_ptr<ProbeModel> owned_model_;  // null when non-owning
  const ProbeModel* model_;
  double reprobe_interval_s_;
  util::Rng rng_;
  std::vector<double> cached_;
  std::vector<double> probe_time_;
  std::size_t overhead_packets_ = 0;
};

}  // namespace sc::net
