// Bandwidth estimators (§2.7): how the cache learns b_i for each path.
//
// The caching policies never see the true path means directly; they consult
// a bandwidth estimator. Each scheme is implemented twice over one body:
//
//   *Kernel structs  - non-virtual, header-inline state machines
//                      (OracleKernel, EwmaKernel, LastSampleKernel,
//                      ProbeKernel). The monomorphized simulation engine
//                      (sim/arena.h) instantiates its request loop over a
//                      kernel type, so estimate()/observe() compile to
//                      direct inlined code and the "does this estimator
//                      consume completion events?" question resolves at
//                      compile time via Kernel::kUsesObservations.
//   KernelEstimator<Kernel> - the virtual adapter implementing the
//                      BandwidthEstimator boundary interface for the
//                      fallback path and for user code that holds
//                      estimators behind the interface. The familiar
//                      class names (OracleEstimator, PassiveEwmaEstimator,
//                      LastSampleEstimator, ActiveProbeEstimator) are
//                      final adapters with their historical constructor
//                      signatures.
//
// Schemes:
//   OracleEstimator      - returns the true long-run mean (the paper's
//                          idealized setting used in its simulations).
//   PassiveEwmaEstimator - exponentially-weighted average of observed
//                          per-transfer throughput (passive measurement).
//   LastSampleEstimator  - most recent observed throughput only.
//   ActiveProbeEstimator - probes via the TCP-throughput model with a
//                          configurable re-probe interval (active
//                          measurement with overhead accounting).
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/path_process.h"
#include "net/probe.h"
#include "util/rng.h"

namespace sc::net {

/// Spec-parameter defaults, shared by the registry's estimator
/// factories (core/registry.cpp) and the monomorphized dispatch table
/// (sim/monomorphize.cpp). Both construction paths must use identical
/// defaults for bare specs or their bit-identity contract breaks —
/// keep the single source of truth here.
namespace estimator_defaults {
inline constexpr double kEwmaAlpha = 0.3;
inline constexpr double kPriorKbps = 50.0;
inline constexpr double kProbeIntervalS = 3600.0;
}  // namespace estimator_defaults

/// Interface through which cache policies learn per-path bandwidth.
class BandwidthEstimator {
 public:
  virtual ~BandwidthEstimator() = default;

  /// Record the throughput (bytes/second) of a completed transfer on
  /// `path` finishing at simulation time `now_s`.
  virtual void observe(PathId path, double throughput, double now_s) = 0;

  /// Whether observe() has any effect. Purely active / oracle schemes
  /// return false so the simulator can skip scheduling per-transfer
  /// completion events entirely (their delivery order is the only thing
  /// the events control, and a no-op observer cannot tell).
  [[nodiscard]] virtual bool uses_observations() const { return true; }

  /// Current estimate for `path` (bytes/second); must be positive.
  [[nodiscard]] virtual double estimate(PathId path, double now_s) = 0;

  /// Cumulative measurement overhead in packets (0 for passive schemes).
  [[nodiscard]] virtual std::size_t overhead_packets() const { return 0; }

  /// Export learned state as a flat double blob for persistence
  /// (src/server/persist.h). Stateless schemes export nothing.
  [[nodiscard]] virtual std::vector<double> save_state() const { return {}; }

  /// Restore previously exported state; false (estimator untouched) on
  /// shape mismatch. The default accepts only an empty blob.
  virtual bool load_state(const std::vector<double>& blob) {
    return blob.empty();
  }
};

// ---------------------------------------------------------------------
// Non-virtual kernels. Every kernel provides observe / estimate /
// overhead_packets, the kUsesObservations constant, and a rebind()
// that re-initializes it for a fresh simulation (arena reuse): after
// rebind a kernel is bit-identical to a newly constructed one.

/// Knows the true per-path mean (upper bound on estimator quality).
/// Consults the immutable PathModel only, so one shared model can feed
/// any number of concurrent estimators.
class OracleKernel {
 public:
  static constexpr bool kUsesObservations = false;

  explicit OracleKernel(const PathModel& paths) : paths_(&paths) {}

  void observe(PathId, double, double) {}
  [[nodiscard]] double estimate(PathId path, double) const {
    return paths_->mean_bandwidth(path);
  }
  [[nodiscard]] std::size_t overhead_packets() const { return 0; }

  /// Re-point at a new replication's model.
  void rebind(const PathModel& paths) { paths_ = &paths; }

  [[nodiscard]] std::vector<double> save_state() const { return {}; }
  [[nodiscard]] bool load_state(const std::vector<double>& blob) {
    return blob.empty();
  }

 private:
  const PathModel* paths_;
};

/// Passive EWMA over observed transfer throughput.
class EwmaKernel {
 public:
  static constexpr bool kUsesObservations = true;

  /// `alpha` is the weight of the newest observation; `prior` is returned
  /// for paths never observed (bytes/second).
  EwmaKernel(std::size_t n_paths, double alpha, double prior);

  void observe(PathId path, double throughput, double /*now_s*/) {
    if (throughput <= 0) return;
    double& e = estimates_.at(path);
    if (e <= 0) {
      e = throughput;
      ++observed_count_;
    } else {
      e = alpha_ * throughput + (1.0 - alpha_) * e;
    }
  }
  [[nodiscard]] double estimate(PathId path, double /*now_s*/) const {
    const double e = estimates_.at(path);
    return e > 0 ? e : prior_;
  }
  [[nodiscard]] std::size_t overhead_packets() const { return 0; }

  [[nodiscard]] std::size_t observed_paths() const noexcept {
    return observed_count_;
  }

  /// Forget every observation (storage reused).
  void rebind(std::size_t n_paths) {
    estimates_.assign(n_paths, -1.0);
    observed_count_ = 0;
  }

  /// Per-path estimates (<= 0 encodes "never observed"); observed_count_
  /// is derived, so the blob is just the array.
  [[nodiscard]] std::vector<double> save_state() const { return estimates_; }
  [[nodiscard]] bool load_state(const std::vector<double>& blob) {
    if (blob.size() != estimates_.size()) return false;
    estimates_ = blob;
    observed_count_ = 0;
    for (const double e : estimates_) {
      if (e > 0) ++observed_count_;
    }
    return true;
  }

 private:
  double alpha_;
  double prior_;
  std::vector<double> estimates_;  // <= 0 means "never observed"
  std::size_t observed_count_ = 0;
};

/// Remembers only the most recent sample per path.
class LastSampleKernel {
 public:
  static constexpr bool kUsesObservations = true;

  LastSampleKernel(std::size_t n_paths, double prior);

  void observe(PathId path, double throughput, double /*now_s*/) {
    if (throughput > 0) last_.at(path) = throughput;
  }
  [[nodiscard]] double estimate(PathId path, double /*now_s*/) const {
    const double e = last_.at(path);
    return e > 0 ? e : prior_;
  }
  [[nodiscard]] std::size_t overhead_packets() const { return 0; }

  void rebind(std::size_t n_paths) { last_.assign(n_paths, -1.0); }

  [[nodiscard]] std::vector<double> save_state() const { return last_; }
  [[nodiscard]] bool load_state(const std::vector<double>& blob) {
    if (blob.size() != last_.size()) return false;
    last_ = blob;
    return true;
  }

 private:
  double prior_;
  std::vector<double> last_;
};

/// Probes a path actively when its estimate is older than
/// `reprobe_interval_s`; otherwise serves the cached probe result.
class ProbeKernel {
 public:
  static constexpr bool kUsesObservations = false;

  ProbeKernel(const ProbeModel& model, double reprobe_interval_s,
              util::Rng rng);

  /// Owning variant: keeps `model` alive for the kernel's lifetime (used
  /// by registry factories, which have no place to park the model).
  ProbeKernel(std::unique_ptr<ProbeModel> model, double reprobe_interval_s,
              util::Rng rng);

  void observe(PathId, double, double) {}  // purely active
  [[nodiscard]] double estimate(PathId path, double now_s) {
    double& cached = cached_.at(path);
    double& when = probe_time_.at(path);
    if (cached <= 0 || now_s - when >= reprobe_interval_s_) {
      const ProbeResult r = model_->probe(path, rng_);
      cached = r.estimated_bandwidth;
      when = now_s;
      overhead_packets_ += r.packets_sent;
    }
    return cached;
  }
  [[nodiscard]] std::size_t overhead_packets() const {
    return overhead_packets_;
  }

  /// Swap in a fresh probe model (new replication's path means) and
  /// measurement stream; probe caches and overhead restart from zero.
  void rebind(std::unique_ptr<ProbeModel> model, util::Rng rng);

  /// Blob layout: cached estimates, probe timestamps, overhead count.
  /// The probe RNG is deliberately not captured: after a restore, paths
  /// whose cached probe is still fresh serve it unchanged, and stale
  /// paths simply re-probe with new draws — overhead accounting stays
  /// cumulative either way.
  [[nodiscard]] std::vector<double> save_state() const {
    std::vector<double> blob;
    blob.reserve(2 * cached_.size() + 1);
    blob.insert(blob.end(), cached_.begin(), cached_.end());
    blob.insert(blob.end(), probe_time_.begin(), probe_time_.end());
    blob.push_back(static_cast<double>(overhead_packets_));
    return blob;
  }
  [[nodiscard]] bool load_state(const std::vector<double>& blob) {
    const std::size_t n = cached_.size();
    if (blob.size() != 2 * n + 1) return false;
    const double overhead = blob.back();
    if (!(overhead >= 0)) return false;
    std::copy(blob.begin(), blob.begin() + n, cached_.begin());
    std::copy(blob.begin() + n, blob.begin() + 2 * n, probe_time_.begin());
    overhead_packets_ = static_cast<std::size_t>(overhead);
    return true;
  }

 private:
  std::unique_ptr<ProbeModel> owned_model_;  // null when non-owning
  const ProbeModel* model_;
  double reprobe_interval_s_;
  util::Rng rng_;
  std::vector<double> cached_;
  std::vector<double> probe_time_;
  std::size_t overhead_packets_ = 0;
};

// ---------------------------------------------------------------------
// Virtual boundary adapters.

/// Implements the BandwidthEstimator interface over a kernel. Holding a
/// concrete adapter (the final classes below) devirtualizes every call;
/// the monomorphized engine bypasses the adapter entirely and talks to
/// kernel() directly.
template <typename Kernel>
class KernelEstimator : public BandwidthEstimator {
 public:
  /// Forwarding constructor, constrained so a single same-type argument
  /// still selects the normal copy/move constructors (an unconstrained
  /// template would hijack non-const copy construction and try to build
  /// the kernel from the adapter).
  template <typename... Args,
            typename = std::enable_if_t<
                !(sizeof...(Args) == 1 &&
                  (std::is_same_v<std::decay_t<Args>, KernelEstimator> &&
                   ...))>>
  explicit KernelEstimator(Args&&... args)
      : kernel_(std::forward<Args>(args)...) {}

  void observe(PathId path, double throughput, double now_s) override {
    kernel_.observe(path, throughput, now_s);
  }
  [[nodiscard]] bool uses_observations() const override {
    return Kernel::kUsesObservations;
  }
  [[nodiscard]] double estimate(PathId path, double now_s) override {
    return kernel_.estimate(path, now_s);
  }
  [[nodiscard]] std::size_t overhead_packets() const override {
    return kernel_.overhead_packets();
  }
  [[nodiscard]] std::vector<double> save_state() const override {
    return kernel_.save_state();
  }
  bool load_state(const std::vector<double>& blob) override {
    return kernel_.load_state(blob);
  }

  [[nodiscard]] Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] const Kernel& kernel() const noexcept { return kernel_; }

 private:
  Kernel kernel_;
};

class OracleEstimator final : public KernelEstimator<OracleKernel> {
 public:
  explicit OracleEstimator(const PathModel& paths) : KernelEstimator(paths) {}
};

class PassiveEwmaEstimator final : public KernelEstimator<EwmaKernel> {
 public:
  PassiveEwmaEstimator(std::size_t n_paths, double alpha, double prior)
      : KernelEstimator(n_paths, alpha, prior) {}
  [[nodiscard]] std::size_t observed_paths() const noexcept {
    return kernel().observed_paths();
  }
};

class LastSampleEstimator final : public KernelEstimator<LastSampleKernel> {
 public:
  LastSampleEstimator(std::size_t n_paths, double prior)
      : KernelEstimator(n_paths, prior) {}
};

class ActiveProbeEstimator final : public KernelEstimator<ProbeKernel> {
 public:
  ActiveProbeEstimator(const ProbeModel& model, double reprobe_interval_s,
                       util::Rng rng)
      : KernelEstimator(model, reprobe_interval_s, std::move(rng)) {}
  /// Owning variant: keeps `model` alive for the estimator's lifetime
  /// (used by registry factories, which have no place to park the model).
  ActiveProbeEstimator(std::unique_ptr<ProbeModel> model,
                       double reprobe_interval_s, util::Rng rng)
      : KernelEstimator(std::move(model), reprobe_interval_s,
                        std::move(rng)) {}
};

}  // namespace sc::net
