#include "net/probe.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sc::net {

double tcp_throughput(double mss_bytes, double rtt_s, double loss_rate) {
  if (rtt_s <= 0) throw std::invalid_argument("tcp_throughput: rtt <= 0");
  if (loss_rate <= 0) {
    // Loss-free path: model as capped by a very large window; callers
    // should treat this as "not loss-limited".
    return mss_bytes * 1e4 / rtt_s;
  }
  return mss_bytes / (rtt_s * std::sqrt(2.0 * loss_rate / 3.0));
}

double loss_for_bandwidth(double bandwidth, double mss_bytes, double rtt_s) {
  if (bandwidth <= 0 || mss_bytes <= 0 || rtt_s <= 0) {
    throw std::invalid_argument("loss_for_bandwidth: non-positive input");
  }
  const double x = mss_bytes / (bandwidth * rtt_s);
  return std::clamp(1.5 * x * x, 1e-6, 0.5);
}

ProbeModel::ProbeModel(const std::vector<double>& mean_bandwidths,
                       ProbeConfig config, util::Rng rng)
    : config_(config) {
  if (mean_bandwidths.empty()) {
    throw std::invalid_argument("ProbeModel: no paths");
  }
  states_.reserve(mean_bandwidths.size());
  for (const double bw : mean_bandwidths) {
    if (bw <= 0) throw std::invalid_argument("ProbeModel: bandwidth <= 0");
    PathNetworkState st;
    st.rtt_s = rng.uniform(config_.min_rtt_s, config_.max_rtt_s);
    st.loss_rate = loss_for_bandwidth(bw, config_.mss_bytes, st.rtt_s);
    // Very slow paths can demand a loss rate past the 0.5 clamp; shorten
    // the RTT until (RTT, loss) reproduces the true mean through the TCP
    // model, keeping the latent state self-consistent.
    const double implied =
        tcp_throughput(config_.mss_bytes, st.rtt_s, st.loss_rate);
    if (implied > bw * 1.0001) {
      st.rtt_s = config_.mss_bytes /
                 (bw * std::sqrt(2.0 * st.loss_rate / 3.0));
    }
    states_.push_back(st);
  }
}

ProbeResult ProbeModel::probe(std::size_t path, util::Rng& rng) const {
  const auto& st = states_.at(path);
  ProbeResult result;

  // RTT estimate: mean of a few jittered round-trip samples.
  double rtt_acc = 0.0;
  for (std::size_t i = 0; i < config_.rtt_samples; ++i) {
    const double jitter =
        std::max(0.1, 1.0 + rng.normal(0.0, config_.rtt_noise_cov));
    rtt_acc += st.rtt_s * jitter;
  }
  result.measured_rtt_s = rtt_acc / static_cast<double>(config_.rtt_samples);

  // Loss estimate: empirical frequency over a finite probe train. With a
  // small train and small p the estimate is coarse -- exactly the
  // overhead/accuracy trade-off §2.7 describes.
  std::size_t lost = 0;
  for (std::size_t i = 0; i < config_.train_packets; ++i) {
    if (rng.uniform() < st.loss_rate) ++lost;
  }
  result.measured_loss =
      std::max(static_cast<double>(lost), 0.5) /  // avoid zero-loss blowup
      static_cast<double>(config_.train_packets);
  result.packets_sent = config_.train_packets + config_.rtt_samples;
  result.estimated_bandwidth = tcp_throughput(
      config_.mss_bytes, result.measured_rtt_s, result.measured_loss);
  return result;
}

}  // namespace sc::net
