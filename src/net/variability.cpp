#include "net/variability.h"

#include <algorithm>
#include <stdexcept>

namespace sc::net {

namespace {

/// Scale support so the distribution has exactly unit mean.
stats::EmpiricalDistribution normalized_to_unit_mean(
    stats::EmpiricalDistribution d) {
  const double m = d.mean();
  if (m <= 0) throw std::logic_error("ratio model has non-positive mean");
  return d.scaled(1.0 / m);
}

}  // namespace

std::string to_string(MeasuredPath path) {
  switch (path) {
    case MeasuredPath::kInria: return "INRIA,France (138.96.64.17)";
    case MeasuredPath::kTaiwan: return "Taiwan (140.114.71.23)";
    case MeasuredPath::kHongKong: return "Hong Kong (143.89.40.4)";
  }
  return "?";
}

stats::EmpiricalDistribution nlanr_variability_model() {
  // Reconstruction of Fig 3: mode slightly below 1, ~70% of mass in
  // [0.5, 1.5], visible tail out to 3x the mean. Normalized to unit mean.
  return normalized_to_unit_mean(stats::EmpiricalDistribution({
      {0.05, 0.25, 0.04},
      {0.25, 0.50, 0.10},
      {0.50, 0.75, 0.17},
      {0.75, 1.00, 0.22},
      {1.00, 1.25, 0.18},
      {1.25, 1.50, 0.12},
      {1.50, 1.75, 0.07},
      {1.75, 2.00, 0.04},
      {2.00, 2.50, 0.04},
      {2.50, 3.00, 0.02},
  }));
}

stats::EmpiricalDistribution measured_path_model(MeasuredPath path) {
  // Reconstructions of the Fig-4 ratio histograms. The paper's
  // observation (2) is that all three have much lower variability than
  // the NLANR model; observation (1) is that INRIA < HongKong < Taiwan.
  // The Fig-4 histograms are sharply peaked at the mean: the INRIA panel
  // puts ~120 of its samples in a single ratio bin. The reconstructions
  // below preserve that tightness (CoV ~ 0.06 / 0.13 / 0.24); the paper's
  // Fig 8/9 conclusions -- PB best at this variability level, moderate e
  // best under NLANR variability -- only emerge when the measured-path
  // model is this much calmer than Fig 3 (CoV ~ 0.5).
  switch (path) {
    case MeasuredPath::kInria:
      // Tight concentration around the mean (CoV ~ 0.06).
      return normalized_to_unit_mean(stats::EmpiricalDistribution({
          {0.85, 0.90, 0.06},
          {0.90, 0.95, 0.20},
          {0.95, 1.00, 0.26},
          {1.00, 1.05, 0.26},
          {1.05, 1.10, 0.16},
          {1.10, 1.20, 0.06},
      }));
    case MeasuredPath::kTaiwan:
      // Broadest of the three, mildly right-skewed (CoV ~ 0.21); the
      // published histogram keeps nearly all mass above 0.5x the mean.
      return normalized_to_unit_mean(stats::EmpiricalDistribution({
          {0.55, 0.70, 0.06},
          {0.70, 0.85, 0.22},
          {0.85, 1.00, 0.28},
          {1.00, 1.15, 0.22},
          {1.15, 1.35, 0.12},
          {1.35, 1.60, 0.07},
          {1.60, 1.90, 0.03},
      }));
    case MeasuredPath::kHongKong:
      // Intermediate (CoV ~ 0.13).
      return normalized_to_unit_mean(stats::EmpiricalDistribution({
          {0.70, 0.80, 0.05},
          {0.80, 0.90, 0.15},
          {0.90, 1.00, 0.30},
          {1.00, 1.10, 0.28},
          {1.10, 1.20, 0.15},
          {1.20, 1.35, 0.05},
          {1.35, 1.50, 0.02},
      }));
  }
  throw std::invalid_argument("measured_path_model: unknown path");
}

stats::EmpiricalDistribution measured_variability_model() {
  // Equal-weight mixture of the three measured paths, expressed as the
  // union of their (disjointified) bins. Building the mixture by sampling
  // would lose determinism; instead merge bin tables on a common grid.
  const auto paths = {MeasuredPath::kInria, MeasuredPath::kTaiwan,
                      MeasuredPath::kHongKong};
  constexpr double kLo = 0.0, kHi = 2.5;
  constexpr std::size_t kBins = 50;
  stats::Histogram grid(kLo, kHi, kBins);
  for (const auto p : paths) {
    const auto model = measured_path_model(p);
    for (const auto& b : model.bins()) {
      // Deposit this bin's mass across the grid proportionally.
      const double step = (b.hi - b.lo) / 8.0;
      for (int k = 0; k < 8; ++k) {
        grid.add(b.lo + (k + 0.5) * step, b.weight / 8.0);
      }
    }
  }
  return normalized_to_unit_mean(
      stats::EmpiricalDistribution::from_histogram(grid));
}

stats::EmpiricalDistribution constant_variability_model() {
  return stats::EmpiricalDistribution({{0.9999, 1.0001, 1.0}});
}

stats::EmpiricalDistribution with_spread(
    const stats::EmpiricalDistribution& ratio_model, double spread) {
  if (spread < 0) throw std::invalid_argument("with_spread: spread < 0");
  if (spread < 1e-9) return constant_variability_model();
  std::vector<stats::EmpiricalBin> bins;
  bins.reserve(ratio_model.bins().size());
  for (const auto& b : ratio_model.bins()) {
    double lo = 1.0 + spread * (b.lo - 1.0);
    double hi = 1.0 + spread * (b.hi - 1.0);
    if (hi <= 0.0) continue;  // entire bin maps below zero: drop
    lo = std::max(lo, 0.0);
    bins.push_back({lo, hi, b.weight});
  }
  if (bins.empty()) return constant_variability_model();
  stats::EmpiricalDistribution out{std::move(bins)};
  // Re-normalize: clamping at zero can shift the mean slightly.
  const double m = out.mean();
  return m > 0 ? out.scaled(1.0 / m) : constant_variability_model();
}

}  // namespace sc::net
