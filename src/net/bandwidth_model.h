// Base (per-path mean) bandwidth models.
//
// The paper's simulations draw the mean bandwidth of each cache<->origin
// path from the distribution observed in NLANR proxy-cache logs (Fig 2):
// 4 KB/s-binned histogram with 37% of samples below 50 KB/s and 56% below
// 100 KB/s, and a long tail past 450 KB/s. We do not have the raw log, so
// `nlanr_base_model()` reconstructs a piecewise-uniform distribution that
// matches the published CDF anchors and histogram shape (see DESIGN.md §4,
// substitution table).
#pragma once

#include "stats/empirical.h"

namespace sc::net {

/// Empirical per-path mean bandwidth distribution (bytes/second) matching
/// the NLANR Fig-2 shape. Anchors: P(bw < 50 KB/s) = 0.37,
/// P(bw < 100 KB/s) = 0.56; support ~[4, 600] KB/s.
[[nodiscard]] stats::EmpiricalDistribution nlanr_base_model();

/// A degenerate high-bandwidth model (every path faster than any object
/// bit-rate). Useful for tests that isolate non-network behaviour.
[[nodiscard]] stats::EmpiricalDistribution abundant_base_model(
    double bytes_per_second);

/// Uniform base model on [lo, hi] bytes/second (sensitivity experiments).
[[nodiscard]] stats::EmpiricalDistribution uniform_base_model(double lo,
                                                              double hi);

}  // namespace sc::net
