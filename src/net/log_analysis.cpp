#include "net/log_analysis.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "stats/histogram.h"

namespace sc::net {

std::optional<LogRecord> parse_squid_line(const std::string& line) {
  std::istringstream in(line);
  LogRecord r;
  double elapsed_ms = 0.0;
  if (!(in >> r.timestamp_s >> elapsed_ms >> r.client >> r.result_code >>
        r.bytes >> r.method >> r.url)) {
    return std::nullopt;
  }
  if (r.timestamp_s < 0 || elapsed_ms < 0 || r.bytes < 0) return std::nullopt;
  r.elapsed_s = elapsed_ms / 1000.0;
  return r;
}

std::string server_of_url(const std::string& url) {
  // Skip "scheme://", then take up to the next '/', stripping ":port".
  std::size_t host_start = 0;
  const auto scheme = url.find("://");
  if (scheme != std::string::npos) host_start = scheme + 3;
  if (host_start >= url.size()) return {};
  const auto host_end = url.find('/', host_start);
  std::string host = url.substr(host_start, host_end == std::string::npos
                                                ? std::string::npos
                                                : host_end - host_start);
  const auto colon = host.find(':');
  if (colon != std::string::npos) host.resize(colon);
  return host;
}

LogAnalyzer::LogAnalyzer(LogAnalysisConfig config) : config_(config) {}

bool LogAnalyzer::add_line(const std::string& line) {
  ++lines_;
  const auto record = parse_squid_line(line);
  if (!record) {
    ++rejected_;
    return false;
  }
  --lines_;  // add_record counts it again
  return add_record(*record);
}

bool LogAnalyzer::add_record(const LogRecord& record) {
  ++lines_;
  const bool is_miss =
      record.result_code.rfind("TCP_MISS", 0) == 0 ||
      record.result_code.rfind("TCP_REFRESH_MISS", 0) == 0;
  if (config_.misses_only && !is_miss) {
    ++rejected_;
    return false;
  }
  if (record.bytes < config_.min_bytes ||
      record.elapsed_s < config_.min_elapsed_s) {
    ++rejected_;
    return false;
  }
  const std::string server = server_of_url(record.url);
  if (server.empty()) {
    ++rejected_;
    return false;
  }
  samples_.push_back(BandwidthSample{server, record.bytes / record.elapsed_s,
                                     record.timestamp_s});
  return true;
}

std::size_t LogAnalyzer::add_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("LogAnalyzer: cannot open " + path.string());
  }
  std::size_t added = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && add_line(line)) ++added;
  }
  return added;
}

stats::EmpiricalDistribution LogAnalyzer::base_model(std::size_t bins) const {
  if (samples_.empty()) {
    throw std::logic_error("LogAnalyzer::base_model: no samples");
  }
  double lo = samples_.front().bytes_per_s, hi = lo;
  for (const auto& s : samples_) {
    lo = std::min(lo, s.bytes_per_s);
    hi = std::max(hi, s.bytes_per_s);
  }
  if (hi <= lo) hi = lo * 1.01 + 1.0;
  stats::Histogram h(lo, hi, bins);
  for (const auto& s : samples_) h.add(s.bytes_per_s);
  return stats::EmpiricalDistribution::from_histogram(h);
}

std::unordered_map<std::string, double> LogAnalyzer::server_means() const {
  std::unordered_map<std::string, std::pair<double, std::size_t>> acc;
  for (const auto& s : samples_) {
    auto& [sum, n] = acc[s.server];
    sum += s.bytes_per_s;
    ++n;
  }
  std::unordered_map<std::string, double> means;
  means.reserve(acc.size());
  for (const auto& [server, sn] : acc) {
    means[server] = sn.first / static_cast<double>(sn.second);
  }
  return means;
}

stats::EmpiricalDistribution LogAnalyzer::ratio_model(std::size_t bins) const {
  std::unordered_map<std::string, std::pair<double, std::size_t>> acc;
  for (const auto& s : samples_) {
    auto& [sum, n] = acc[s.server];
    sum += s.bytes_per_s;
    ++n;
  }
  std::vector<double> ratios;
  for (const auto& s : samples_) {
    const auto& [sum, n] = acc[s.server];
    if (n < config_.min_samples_per_server) continue;
    const double mean = sum / static_cast<double>(n);
    if (mean > 0) ratios.push_back(s.bytes_per_s / mean);
  }
  if (ratios.empty()) {
    throw std::logic_error(
        "LogAnalyzer::ratio_model: no server has enough samples");
  }
  const double hi = std::max(1.5, *std::max_element(ratios.begin(),
                                                    ratios.end())) *
                    1.001;
  stats::Histogram h(0.0, hi, bins);
  for (const double r : ratios) h.add(r);
  auto model = stats::EmpiricalDistribution::from_histogram(h);
  const double m = model.mean();
  return m > 0 ? model.scaled(1.0 / m) : model;
}

std::size_t write_synthetic_log(const std::filesystem::path& path,
                                PathSampler& paths,
                                const SyntheticLogConfig& config,
                                util::Rng& rng) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_synthetic_log: cannot open " +
                             path.string());
  }
  double now = config.start_time_s;
  std::size_t written = 0;
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    now += rng.exponential(config.arrival_rate_per_s);
    const auto server_idx =
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.num_servers) - 1));
    const PathId path_id = server_idx % paths.size();

    const bool large = rng.uniform() < config.large_fraction;
    const double bytes =
        large ? rng.uniform(config.large_bytes_lo, config.large_bytes_hi)
              : rng.uniform(config.small_bytes_lo, config.small_bytes_hi);
    const bool miss = rng.uniform() < config.miss_fraction;
    const double bw = miss ? paths.sample_bandwidth(path_id, now)
                           : config.hit_bytes_per_s;
    const double elapsed_ms = bytes / bw * 1000.0;

    out << std::fixed << now << ' '
        << static_cast<long long>(std::lround(elapsed_ms)) << " client-"
        << (i % 37) << ' ' << (miss ? "TCP_MISS/200" : "TCP_HIT/200") << ' '
        << static_cast<long long>(std::lround(bytes)) << " GET http://server-"
        << server_idx << ".example.net/media/obj" << i << ".rm - DIRECT/-"
        << " video/x-pn-realvideo\n";
    ++written;
  }
  if (!out) {
    throw std::runtime_error("write_synthetic_log: write failed");
  }
  return written;
}

}  // namespace sc::net
