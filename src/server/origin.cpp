#include "server/origin.h"

#include <utility>

#include "core/registry.h"
#include "util/rng.h"

namespace sc::server {

namespace {

std::shared_ptr<const net::PathModel> build_model(std::size_t n_paths,
                                                  const std::string& scenario,
                                                  std::uint64_t seed) {
  const core::Scenario s = core::registry::make_scenario(scenario);
  net::PathModelConfig config;
  config.mode = s.mode;
  util::Rng rng(seed);
  return std::make_shared<const net::PathModel>(n_paths, s.base, s.ratio,
                                                config, rng.fork("paths"));
}

}  // namespace

SimulatedOrigin::SimulatedOrigin(std::size_t n_paths,
                                 const OriginConfig& config,
                                 std::uint64_t seed)
    : config_(config),
      model_(build_model(n_paths, config.scenario, seed)),
      sampler_(model_) {
  // The same tag-keyed seed derivation the simulator uses, so a daemon
  // and a simulation sharing (plan, seed) flap identically.
  faults_.compile(net::FaultPlan::parse(config.fault), n_paths,
                  util::Rng(seed).fork("faults").seed());
}

}  // namespace sc::server
