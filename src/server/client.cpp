#include "server/client.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/wire.h"

namespace sc::server {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ProxyClient: " + what);
}

}  // namespace

ProxyClient::ProxyClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    fail("bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("connect " + host + ": " + err);
  }
  // Mirror of the daemon's TCP_NODELAY: small request frames would
  // otherwise sit in Nagle's buffer waiting for the delayed ACK.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

ProxyClient::ProxyClient(ProxyClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

ProxyClient::~ProxyClient() { close(); }

void ProxyClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ProxyClient::GetReply ProxyClient::get(std::uint64_t object,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  if (fd_ < 0) fail("get on closed client");
  std::vector<std::uint8_t> frame;
  frame.reserve(wire::kGetRequestSize);
  wire::encode_get(frame, wire::GetRequest{object, offset, length});
  if (!wire::write_frame(fd_, frame.data(), frame.size())) {
    fail("get: write failed");
  }
  std::vector<std::uint8_t> body;
  if (!wire::read_frame(fd_, body) || body.empty()) {
    fail("get: no response");
  }
  GetReply reply;
  reply.status = body[0];
  if (reply.status != wire::kOk) return reply;
  if (body.size() != wire::kGetResponseHeader + length) {
    fail("get: malformed response");
  }
  reply.cache_bytes = wire::get_u64(body.data() + 1);
  reply.origin_bytes = wire::get_u64(body.data() + 9);
  reply.delay_s = wire::get_f64(body.data() + 17);
  reply.data.assign(body.begin() +
                        static_cast<std::ptrdiff_t>(wire::kGetResponseHeader),
                    body.end());
  return reply;
}

ProxyClient::StatReply ProxyClient::stat(std::uint64_t object) {
  if (fd_ < 0) fail("stat on closed client");
  std::vector<std::uint8_t> frame;
  frame.push_back(wire::kOpStat);
  wire::put_u64(frame, object);
  if (!wire::write_frame(fd_, frame.data(), frame.size())) {
    fail("stat: write failed");
  }
  std::vector<std::uint8_t> body;
  if (!wire::read_frame(fd_, body) || body.empty()) {
    fail("stat: no response");
  }
  StatReply reply;
  reply.status = body[0];
  if (reply.status != wire::kOk) return reply;
  if (body.size() != wire::kStatResponseSize) fail("stat: malformed response");
  reply.size_bytes = wire::get_u64(body.data() + 1);
  reply.cached_bytes = wire::get_u64(body.data() + 9);
  return reply;
}

std::string ProxyClient::stats() {
  if (fd_ < 0) fail("stats on closed client");
  const std::uint8_t op = wire::kOpStats;
  if (!wire::write_frame(fd_, &op, 1)) fail("stats: write failed");
  std::vector<std::uint8_t> body;
  if (!wire::read_frame(fd_, body) || body.empty() ||
      body[0] != wire::kOk) {
    fail("stats: no response");
  }
  return std::string(body.begin() + 1, body.end());
}

std::string ProxyClient::audit() {
  if (fd_ < 0) fail("audit on closed client");
  const std::uint8_t op = wire::kOpAudit;
  if (!wire::write_frame(fd_, &op, 1)) fail("audit: write failed");
  std::vector<std::uint8_t> body;
  if (!wire::read_frame(fd_, body) || body.empty() ||
      body[0] != wire::kOk) {
    fail("audit: no response");
  }
  return std::string(body.begin() + 1, body.end());
}

}  // namespace sc::server
