// The daemon's stand-in for upstream origin servers.
//
// The live proxy needs something on the far side of the backbone. A
// SimulatedOrigin reuses the exact bandwidth machinery the simulator
// trusts: a registry scenario spec ("constant", "nlanr", "measured",
// "timeseries:path=...") builds an immutable net::PathModel whose
// per-path means play the role of each origin's path bandwidth, and a
// net::PathSampler draws the instantaneous value per fetch. The origin
// converts a fetch of N bytes at bandwidth b into a *wall-clock* stall
// of `latency_s + time_scale * (N / b)` seconds, which the serving
// thread sleeps outside the engine lock — so cache hits answer at
// memory speed while misses pay a tunable, bandwidth-proportional
// upstream penalty, and passive estimators observe real completion
// times. time_scale defaults to 0 (latency-only): simulated transfer
// times are minutes long, and replaying them 1:1 would make every
// bench run take hours.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/fault.h"
#include "net/path_process.h"

namespace sc::server {

struct OriginConfig {
  /// Registry bandwidth scenario spec; drives per-path mean draws and
  /// the variability mode, exactly as in the simulator.
  std::string scenario = "constant";
  /// Fixed per-fetch wall latency in seconds (connection setup / RTT).
  double latency_s = 0.0;
  /// Wall seconds slept per *simulated* transfer second (N / b). 0
  /// keeps fetches latency-only.
  double time_scale = 0.0;
  /// Deterministic fault plan on the daemon's wall clock (net/fault.h;
  /// the same spec grammar the simulator sweeps). Outage/flap windows
  /// zero the sampled bandwidth, degrade windows scale it, blackout
  /// windows drop estimator observations. "" / "none" injects nothing.
  std::string fault;
};

class SimulatedOrigin {
 public:
  /// Build the path model from `config.scenario` with one path per
  /// catalog object (the paper's per-object origin path), seeded the
  /// same way the simulator seeds its paths: Rng(seed).fork("paths").
  SimulatedOrigin(std::size_t n_paths, const OriginConfig& config,
                  std::uint64_t seed);

  [[nodiscard]] const net::PathModel& model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const OriginConfig& config() const noexcept {
    return config_;
  }

  /// Instantaneous bandwidth of `path` at engine time `now_s`
  /// (bytes/second, simulated units), scaled by any active fault
  /// window — 0 while the origin is unreachable. Mutates sampler state
  /// — callers serialize (the engine invokes this under its lock).
  /// The sampler draw happens even when the path is down so the
  /// post-recovery bandwidth stream is the identical sequence a
  /// fault-free run would have produced.
  [[nodiscard]] double bandwidth(net::PathId path, double now_s) {
    const double bw = sampler_.sample_bandwidth(path, now_s);
    return faults_.empty() ? bw : bw * faults_.bandwidth_scale(path, now_s);
  }

  /// True when `path` can reach this origin at `now_s` (always true
  /// without a fault plan).
  [[nodiscard]] bool available(net::PathId path, double now_s) const {
    return faults_.empty() || !faults_.origin_down(path, now_s);
  }

  /// The compiled fault schedule (empty without a plan). Stable address
  /// for the engine's kernel hookup (blackout filtering).
  [[nodiscard]] const net::FaultSchedule& faults() const noexcept {
    return faults_;
  }

  /// Wall-clock stall for fetching `bytes` at `bandwidth` from this
  /// origin. Pure; the caller sleeps it outside any lock.
  [[nodiscard]] double wall_delay_s(double bytes, double bandwidth) const {
    const double transfer_s = bandwidth > 0 ? bytes / bandwidth : 0.0;
    return config_.latency_s + config_.time_scale * transfer_s;
  }

 private:
  OriginConfig config_;
  std::shared_ptr<const net::PathModel> model_;
  net::PathSampler sampler_;
  net::FaultSchedule faults_;
};

}  // namespace sc::server
