#include "server/persist.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "server/wire.h"

namespace sc::server::persist {

namespace {

constexpr std::array<char, 8> kSnapshotMagic = {'S', 'C', 'S', 'N',
                                                'A', 'P', '1', '\0'};
constexpr std::array<char, 8> kJournalMagic = {'S', 'C', 'J', 'R',
                                               'N', 'L', '1', '\0'};
constexpr std::uint32_t kFormatVersion = 1;

/// Journal record frame: id(8) bytes(8) freq(8) key(8) in_heap(1) crc(4).
constexpr std::size_t kRecordSize = 37;
/// Journal header: magic(8) version(4) snapshot_sequence(8) crc(4).
constexpr std::size_t kJournalHeaderSize = 24;

/// Upper bound on a snapshot file we are willing to load (corrupt
/// length fields must not trigger gigabyte allocations).
constexpr long kMaxSnapshotBytes = 1L << 30;

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Bounds-checked little-endian reader over a parsed byte range. Every
/// accessor degrades to "ok() == false" instead of reading past the
/// end, so corrupt length fields cannot walk off the buffer.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : p_(data), left_(size) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t left() const noexcept { return left_; }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    const std::uint32_t v = wire::get_u32(p_ - 4);
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    return wire::get_u64(p_ - 8);
  }
  double f64() {
    if (!take(8)) return 0.0;
    return wire::get_f64(p_ - 8);
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || n > left_) {
      ok_ = false;
      return {};
    }
    std::string out(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    left_ -= n;
    return out;
  }
  /// Element count for an array of `elem_size`-byte elements; fails when
  /// the remaining bytes cannot possibly hold that many (the allocation
  /// guard for corrupt counts).
  std::uint64_t count(std::size_t elem_size) {
    const std::uint64_t n = u64();
    if (!ok_ || n > left_ / elem_size) {
      ok_ = false;
      return 0;
    }
    return n;
  }
  bool magic(const std::array<char, 8>& expect) {
    if (!take(8)) return false;
    if (std::memcmp(p_ - 8, expect.data(), 8) != 0) ok_ = false;
    return ok_;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || left_ < n) {
      ok_ = false;
      return false;
    }
    p_ += n;
    left_ -= n;
    return true;
  }

  const std::uint8_t* p_;
  std::size_t left_;
  bool ok_ = true;
};

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  wire::put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> serialize_snapshot(const SnapshotState& state,
                                             std::uint64_t sequence) {
  std::vector<std::uint8_t> out;
  out.reserve(128 + 16 * state.store.size() + 8 * state.policy.freq.size() +
              16 * state.policy.heap.size() + 8 * state.policy.kernel.size() +
              8 * state.estimator.size());
  out.insert(out.end(), kSnapshotMagic.begin(), kSnapshotMagic.end());
  wire::put_u32(out, kFormatVersion);
  wire::put_u64(out, sequence);
  wire::put_f64(out, state.engine_now_s);
  wire::put_u64(out, state.objects);
  wire::put_u64(out, state.seed);
  put_str(out, state.policy_spec);
  put_str(out, state.estimator_spec);
  wire::put_f64(out, state.capacity_bytes);
  wire::put_u64(out, state.store.size());
  for (const auto& [id, bytes] : state.store) {
    wire::put_u64(out, id);
    wire::put_f64(out, bytes);
  }
  wire::put_u64(out, state.policy.freq.size());
  for (const double f : state.policy.freq) wire::put_f64(out, f);
  wire::put_u64(out, state.policy.heap.size());
  for (const auto& [id, key] : state.policy.heap) {
    wire::put_u64(out, id);
    wire::put_f64(out, key);
  }
  wire::put_u64(out, state.policy.kernel.size());
  for (const double v : state.policy.kernel) wire::put_f64(out, v);
  wire::put_u64(out, state.estimator.size());
  for (const double v : state.estimator) wire::put_f64(out, v);
  wire::put_u32(out, crc32(out.data(), out.size()));
  return out;
}

/// Parse + validate one snapshot image; nullopt on any defect.
std::optional<SnapshotState> parse_snapshot(const std::uint8_t* data,
                                            std::size_t size) {
  if (size < 12) return std::nullopt;
  const std::uint32_t stored_crc = wire::get_u32(data + size - 4);
  if (crc32(data, size - 4) != stored_crc) return std::nullopt;

  Cursor c(data, size - 4);
  if (!c.magic(kSnapshotMagic)) return std::nullopt;
  if (c.u32() != kFormatVersion) return std::nullopt;

  SnapshotState s;
  s.sequence = c.u64();
  s.engine_now_s = c.f64();
  s.objects = c.u64();
  s.seed = c.u64();
  s.policy_spec = c.str();
  s.estimator_spec = c.str();
  s.capacity_bytes = c.f64();

  const std::uint64_t n_store = c.count(16);
  if (!c.ok() || n_store > s.objects) return std::nullopt;
  s.store.reserve(n_store);
  for (std::uint64_t i = 0; i < n_store; ++i) {
    const std::uint64_t id = c.u64();
    const double bytes = c.f64();
    if (id >= s.objects) return std::nullopt;
    s.store.emplace_back(static_cast<workload::ObjectId>(id), bytes);
  }
  const std::uint64_t n_freq = c.count(8);
  if (!c.ok() || (n_freq != 0 && n_freq != s.objects)) return std::nullopt;
  s.policy.freq.reserve(n_freq);
  for (std::uint64_t i = 0; i < n_freq; ++i) s.policy.freq.push_back(c.f64());
  const std::uint64_t n_heap = c.count(16);
  if (!c.ok() || n_heap > s.objects) return std::nullopt;
  s.policy.heap.reserve(n_heap);
  for (std::uint64_t i = 0; i < n_heap; ++i) {
    const std::uint64_t id = c.u64();
    const double key = c.f64();
    if (id >= s.objects) return std::nullopt;
    s.policy.heap.emplace_back(static_cast<workload::ObjectId>(id), key);
  }
  const std::uint64_t n_kernel = c.count(8);
  if (!c.ok()) return std::nullopt;
  s.policy.kernel.reserve(n_kernel);
  for (std::uint64_t i = 0; i < n_kernel; ++i) {
    s.policy.kernel.push_back(c.f64());
  }
  const std::uint64_t n_est = c.count(8);
  if (!c.ok()) return std::nullopt;
  s.estimator.reserve(n_est);
  for (std::uint64_t i = 0; i < n_est; ++i) s.estimator.push_back(c.f64());

  if (!c.ok() || c.left() != 0) return std::nullopt;
  return s;
}

/// Read a whole file; nullopt when missing, unreadable, or implausibly
/// large.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0 || size > kMaxSnapshotBytes) {
    std::fclose(f);
    return std::nullopt;
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  const std::size_t got = size == 0 ? 0 : std::fread(data.data(), 1,
                                                     data.size(), f);
  std::fclose(f);
  if (got != data.size()) return std::nullopt;
  return data;
}

/// Write `data` to `path` atomically: tmp file + fsync + rename + parent
/// directory fsync. The destination either keeps its old content or
/// holds the complete new image — never a torn mix.
bool atomic_write(const std::string& dir, const std::string& path,
                  const std::vector<std::uint8_t>& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // persist the rename itself
    ::close(dfd);
  }
  return true;
}

void encode_record(std::vector<std::uint8_t>& out,
                   const JournalRecord& record) {
  out.clear();
  wire::put_u64(out, record.id);
  wire::put_f64(out, record.bytes);
  wire::put_f64(out, record.freq);
  wire::put_f64(out, record.key);
  out.push_back(record.in_heap ? 1 : 0);
  wire::put_u32(out, crc32(out.data(), out.size()));
}

/// Decode one record frame; false on CRC mismatch (torn tail).
bool decode_record(const std::uint8_t* frame, JournalRecord& record) {
  const std::uint32_t stored = wire::get_u32(frame + kRecordSize - 4);
  if (crc32(frame, kRecordSize - 4) != stored) return false;
  record.id = wire::get_u64(frame);
  record.bytes = wire::get_f64(frame + 8);
  record.freq = wire::get_f64(frame + 16);
  record.key = wire::get_f64(frame + 24);
  record.in_heap = frame[32] != 0;
  return true;
}

std::vector<std::uint8_t> journal_header(std::uint64_t snapshot_sequence) {
  std::vector<std::uint8_t> out;
  out.reserve(kJournalHeaderSize);
  out.insert(out.end(), kJournalMagic.begin(), kJournalMagic.end());
  wire::put_u32(out, kFormatVersion);
  wire::put_u64(out, snapshot_sequence);
  wire::put_u32(out, crc32(out.data(), out.size()));
  return out;
}

/// Replay a journal onto dense per-id state arrays. Returns the number
/// of records applied (stopping at the first torn/corrupt frame);
/// `header_sequence` reports the journal's snapshot pairing (nullopt on
/// a missing/corrupt header, in which case nothing is replayed).
std::size_t replay_journal(const std::string& path,
                           std::uint64_t expect_sequence,
                           std::uint64_t objects,
                           std::vector<double>& bytes_by_id,
                           std::vector<double>& freq_by_id,
                           std::vector<double>& key_by_id,
                           std::vector<std::uint8_t>& in_heap_by_id,
                           bool* header_ok, std::size_t* valid_bytes) {
  *header_ok = false;
  *valid_bytes = 0;
  const auto data = read_file(path);
  if (!data || data->size() < kJournalHeaderSize) return 0;
  const std::uint8_t* p = data->data();
  const std::uint32_t stored = wire::get_u32(p + kJournalHeaderSize - 4);
  if (crc32(p, kJournalHeaderSize - 4) != stored) return 0;
  if (std::memcmp(p, kJournalMagic.data(), 8) != 0) return 0;
  if (wire::get_u32(p + 8) != kFormatVersion) return 0;
  if (wire::get_u64(p + 12) != expect_sequence) return 0;
  *header_ok = true;

  std::size_t applied = 0;
  std::size_t off = kJournalHeaderSize;
  while (off + kRecordSize <= data->size()) {
    JournalRecord r;
    if (!decode_record(p + off, r)) break;  // torn tail: discard the rest
    off += kRecordSize;
    if (r.id >= objects) continue;  // stale record for another config
    bytes_by_id[r.id] = r.bytes;
    if (r.id < freq_by_id.size()) freq_by_id[r.id] = r.freq;
    key_by_id[r.id] = r.key;
    in_heap_by_id[r.id] = r.in_heap ? 1 : 0;
    ++applied;
  }
  *valid_bytes = off;  // end of the last intact record frame
  return applied;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const std::uint32_t* table = crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Persistence::Persistence(PersistConfig config) : config_(std::move(config)) {
  if (config_.enabled()) {
    // Best-effort: recover()/write_snapshot() report failures themselves.
    ::mkdir(config_.dir.c_str(), 0755);
  }
}

Persistence::~Persistence() {
  std::lock_guard<std::mutex> lock(mu_);
  close_journal_locked();
}

std::string Persistence::snapshot_path(int slot) const {
  return config_.dir + (slot == 0 ? "/snap-A.scs" : "/snap-B.scs");
}

std::string Persistence::journal_path(int slot) const {
  return config_.dir + (slot == 0 ? "/journal-A.scj" : "/journal-B.scj");
}

bool Persistence::open_journal_locked(int slot, bool truncate) {
  close_journal_locked();
  journal_ = std::fopen(journal_path(slot).c_str(), truncate ? "wb" : "ab");
  if (journal_ == nullptr) return false;
  if (truncate) {
    const auto header = journal_header(sequence_);
    if (std::fwrite(header.data(), 1, header.size(), journal_) !=
            header.size() ||
        std::fflush(journal_) != 0) {
      close_journal_locked();
      return false;
    }
  }
  return true;
}

void Persistence::close_journal_locked() {
  if (journal_ != nullptr) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
}

std::optional<SnapshotState> Persistence::recover(RecoveryInfo* info) {
  std::lock_guard<std::mutex> lock(mu_);
  RecoveryInfo local;
  if (info == nullptr) info = &local;
  *info = RecoveryInfo{};
  if (!config_.enabled()) {
    info->detail = "persistence disabled";
    return std::nullopt;
  }

  std::optional<SnapshotState> best;
  int best_slot = -1;
  for (int slot = 0; slot < 2; ++slot) {
    const auto data = read_file(snapshot_path(slot));
    if (!data) continue;
    auto parsed = parse_snapshot(data->data(), data->size());
    if (!parsed) continue;
    if (!best || parsed->sequence > best->sequence) {
      best = std::move(parsed);
      best_slot = slot;
    }
  }
  if (!best) {
    info->detail = "no valid snapshot; cold start";
    active_slot_ = 0;
    sequence_ = 1;
    return std::nullopt;
  }

  // Replay the paired journal over dense per-id arrays (last-writer-wins
  // by construction: records carry absolute values).
  const std::uint64_t n = best->objects;
  std::vector<double> bytes_by_id(n, 0.0);
  std::vector<double> key_by_id(n, 0.0);
  std::vector<std::uint8_t> in_heap_by_id(n, 0);
  std::vector<double> freq_by_id = best->policy.freq;  // may be empty
  for (const auto& [id, b] : best->store) bytes_by_id[id] = b;
  for (const auto& [id, k] : best->policy.heap) {
    key_by_id[id] = k;
    in_heap_by_id[id] = 1;
  }
  bool header_ok = false;
  std::size_t valid_bytes = 0;
  const std::size_t applied = replay_journal(
      journal_path(best_slot), best->sequence, n, bytes_by_id, freq_by_id,
      key_by_id, in_heap_by_id, &header_ok, &valid_bytes);

  best->store.clear();
  best->policy.heap.clear();
  for (std::uint64_t id = 0; id < n; ++id) {
    if (bytes_by_id[id] > 0.0) {
      best->store.emplace_back(static_cast<workload::ObjectId>(id),
                               bytes_by_id[id]);
    }
    if (in_heap_by_id[id] != 0) {
      best->policy.heap.emplace_back(static_cast<workload::ObjectId>(id),
                                     key_by_id[id]);
    }
  }
  best->policy.freq = std::move(freq_by_id);

  sequence_ = best->sequence + 1;
  active_slot_ = 1 - best_slot;  // next snapshot goes to the other slot

  // Keep appending to the recovered journal (absolute records make this
  // correct); if its header was unusable, start it over so future
  // appends have a valid anchor.
  if (header_ok) {
    // A torn tail was discarded during replay; chop it off the file too
    // so new appends extend the *valid* prefix rather than landing
    // after garbage that would mask them from the next recovery.
    ::truncate(journal_path(best_slot).c_str(),
               static_cast<off_t>(valid_bytes));
    open_journal_locked(best_slot, /*truncate=*/false);
  } else {
    // Rewrite paired journal for the *recovered* snapshot's sequence.
    const std::uint64_t next = sequence_;
    sequence_ = best->sequence;
    open_journal_locked(best_slot, /*truncate=*/true);
    sequence_ = next;
  }

  info->warm = true;
  info->sequence = best->sequence;
  info->journal_records = applied;
  info->detail = "warm start from snapshot seq " +
                 std::to_string(best->sequence) + " + " +
                 std::to_string(applied) + " journal records";
  return best;
}

void Persistence::begin_snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.enabled()) return;
  // Rotate the journal to the slot the upcoming commit will write. If
  // the rotation fails we keep journaling to the previous file, whose
  // records stay harmless (their sequence no longer matches the next
  // snapshot, so they are ignored on recovery — losing deltas, never
  // correctness).
  open_journal_locked(active_slot_, /*truncate=*/true);
}

bool Persistence::commit_snapshot(const SnapshotState& state) {
  // Serialize under the lock (cheap), but release it for the fsync-heavy
  // atomic write: append() shares this mutex and is called under the
  // engine's decision lock, which must never wait on disk. A single
  // snapshot writer at a time is the caller's contract (the engine
  // serializes flushes), so slot/sequence cannot change mid-commit.
  std::vector<std::uint8_t> image;
  int slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!config_.enabled()) return false;
    image = serialize_snapshot(state, sequence_);
    slot = active_slot_;
  }
  if (!atomic_write(config_.dir, snapshot_path(slot), image)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ++sequence_;
  active_slot_ = 1 - slot;
  ++snapshots_written_;
  return true;
}

bool Persistence::write_snapshot(const SnapshotState& state) {
  begin_snapshot();
  return commit_snapshot(state);
}

void Persistence::append(const JournalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ == nullptr) return;
  std::vector<std::uint8_t> frame;
  encode_record(frame, record);
  if (std::fwrite(frame.data(), 1, frame.size(), journal_) != frame.size()) {
    // Disk trouble: stop journaling (recovery falls back to the last
    // snapshot); the next successful snapshot re-establishes a journal.
    close_journal_locked();
    return;
  }
  std::fflush(journal_);
  ++records_appended_;
}

std::uint64_t Persistence::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_written_;
}

std::uint64_t Persistence::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_appended_;
}

std::uint64_t Persistence::next_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sequence_;
}

}  // namespace sc::server::persist
