#include "server/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/registry.h"
#include "server/wire.h"
#include "sim/delivery.h"
#include "util/rng.h"

namespace sc::server {

workload::Catalog ServiceEngine::make_catalog(std::size_t objects,
                                              std::uint64_t seed) {
  workload::CatalogConfig cfg;
  cfg.num_objects = objects;
  util::Rng root(seed);
  util::Rng catalog_rng = root.fork("catalog");
  return workload::Catalog::generate(cfg, catalog_rng);
}

ServiceEngine::ServiceEngine(ServiceConfig config)
    : config_(std::move(config)),
      catalog_(make_catalog(config_.objects, config_.seed)),
      origin_(catalog_.size(), config_.origin, config_.seed),
      estimator_(core::registry::make_estimator(
          config_.estimator, origin_.model(),
          util::Rng(config_.seed).fork("estimator"))),
      policy_(core::registry::make_policy(config_.policy, catalog_,
                                          *estimator_)),
      store_(config_.cache_capacity_bytes > 0
                 ? config_.cache_capacity_bytes
                 : config_.cache_fraction * catalog_.total_bytes()),
      start_(std::chrono::steady_clock::now()) {
  store_.reserve(catalog_.size());
  kernel_.emplace(*policy_, *estimator_, store_, events_);
}

std::uint64_t ServiceEngine::object_size(workload::ObjectId id) const {
  return static_cast<std::uint64_t>(catalog_.object(id).size_bytes);
}

std::uint64_t ServiceEngine::cached_bytes(workload::ObjectId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::uint64_t>(std::floor(store_.cached(id)));
}

double ServiceEngine::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ServeResult ServiceEngine::serve_range(std::uint64_t object,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  ServeResult res;
  if (object >= catalog_.size()) {
    res.status = wire::kBadObject;
    return res;
  }
  const workload::StreamObject& obj = catalog_.object(object);
  const std::uint64_t size = object_size(object);
  if (length > wire::kMaxGetLength || offset > size ||
      size - offset < length) {
    res.status = wire::kBadRange;
    return res;
  }

  const double now = now_s();
  const std::lock_guard<std::mutex> lock(mu_);
  // Deliver estimator observations that came due since the last entry.
  kernel_->tick(now);

  const double cached_prefix = kernel_->cached(object);
  const double cached_in_range =
      std::clamp(std::floor(cached_prefix) - static_cast<double>(offset), 0.0,
                 static_cast<double>(length));
  res.cache_bytes = static_cast<std::uint64_t>(cached_in_range);
  res.origin_bytes = length - res.cache_bytes;

  if (length > 0) {
    // The §2.2 delivery model over the requested range: the range plays
    // out for length / r_i seconds, its "cached prefix" is the part the
    // store covers, the rest streams at the path's instantaneous
    // bandwidth (simulated units, as everywhere else).
    const double bw = origin_.bandwidth(obj.path, now);
    const sim::ServiceOutcome outcome = sim::deliver(
        static_cast<double>(length) / obj.bitrate, obj.bitrate,
        static_cast<double>(length), bw, static_cast<double>(res.cache_bytes));
    res.delay_s = outcome.delay_s;
    metrics_.record(outcome, obj.value);
    if (res.origin_bytes > 0) {
      res.origin_wall_s =
          origin_.wall_delay_s(static_cast<double>(res.origin_bytes), bw);
      // Passive estimators learn the transfer's throughput when it
      // completes — at a *wall-clock* time here, drained by tick().
      if (kernel_->observes()) {
        kernel_->record_transfer(obj.path, outcome.origin_throughput,
                                 now + res.origin_wall_s);
      }
    }
  }

  // offset == 0 opens a session for this object: that is the "access"
  // the paper's policies count. Continuation chunks (offset > 0) serve
  // bytes but do not re-run admission, so a session streamed as N
  // ranges updates frequencies and utilities once, like one simulated
  // request.
  if (offset == 0) {
    const double after = kernel_->admit(object, now);
    if (after > cached_prefix) {
      metrics_.record_fill(after - cached_prefix);
    }
  }
  res.status = wire::kOk;
  return res;
}

void ServiceEngine::end_session(workload::ObjectId object,
                                std::uint64_t high_water) {
  if (object >= catalog_.size()) return;
  const std::uint64_t size = object_size(object);
  const double fraction =
      size > 0 ? std::min(1.0, static_cast<double>(high_water) /
                                   static_cast<double>(size))
               : 1.0;
  const std::lock_guard<std::mutex> lock(mu_);
  ++sessions_;
  metrics_.record_session(fraction, fraction < 1.0);
}

void ServiceEngine::tick() {
  const double now = now_s();
  const std::lock_guard<std::mutex> lock(mu_);
  kernel_->tick(now);
}

ServiceStats ServiceEngine::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.requests = metrics_.requests();
  s.hit_ratio = metrics_.hit_ratio();
  s.byte_hit_ratio = metrics_.traffic_reduction_ratio();
  s.mean_delay_s = metrics_.average_delay_s();
  s.occupancy_bytes = store_.used();
  s.cached_objects = store_.object_count();
  s.capacity_bytes = store_.capacity();
  s.sessions = sessions_;
  s.mean_viewed_fraction = metrics_.average_viewed_fraction();
  s.estimator_overhead_packets = estimator_->overhead_packets();
  return s;
}

std::string ServiceEngine::stats_json() const {
  const ServiceStats s = snapshot();
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"requests\": %zu, \"hit_ratio\": %.6f, "
                "\"byte_hit_ratio\": %.6f, \"mean_delay_s\": %.6f, "
                "\"occupancy_bytes\": %.0f, \"cached_objects\": %zu, "
                "\"capacity_bytes\": %.0f, \"sessions\": %zu, "
                "\"mean_viewed_fraction\": %.6f, "
                "\"estimator_overhead_packets\": %zu}",
                s.requests, s.hit_ratio, s.byte_hit_ratio, s.mean_delay_s,
                s.occupancy_bytes, s.cached_objects, s.capacity_bytes,
                s.sessions, s.mean_viewed_fraction,
                s.estimator_overhead_packets);
  return std::string(buf);
}

}  // namespace sc::server
