#include "server/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "core/registry.h"
#include "server/wire.h"
#include "sim/delivery.h"
#include "util/rng.h"

namespace sc::server {

workload::Catalog ServiceEngine::make_catalog(std::size_t objects,
                                              std::uint64_t seed) {
  workload::CatalogConfig cfg;
  cfg.num_objects = objects;
  util::Rng root(seed);
  util::Rng catalog_rng = root.fork("catalog");
  return workload::Catalog::generate(cfg, catalog_rng);
}

ServiceEngine::ServiceEngine(ServiceConfig config)
    : config_(std::move(config)),
      catalog_(make_catalog(config_.objects, config_.seed)),
      origin_(catalog_.size(), config_.origin, config_.seed),
      estimator_(core::registry::make_estimator(
          config_.estimator, origin_.model(),
          util::Rng(config_.seed).fork("estimator"))),
      policy_(core::registry::make_policy(config_.policy, catalog_,
                                          *estimator_)),
      store_(config_.cache_capacity_bytes > 0
                 ? config_.cache_capacity_bytes
                 : config_.cache_fraction * catalog_.total_bytes()),
      start_(std::chrono::steady_clock::now()) {
  store_.reserve(catalog_.size());
  kernel_.emplace(*policy_, *estimator_, store_, events_);
  // Wall-clock estimator blackouts: the kernel drops observations due
  // inside a blackout window, exactly as in the simulator. The empty
  // schedule is never attached, keeping the fault-free tick path
  // untouched.
  if (!origin_.faults().empty()) {
    kernel_->set_faults(&origin_.faults());
  }
}

std::uint64_t ServiceEngine::object_size(workload::ObjectId id) const {
  return static_cast<std::uint64_t>(catalog_.object(id).size_bytes);
}

std::uint64_t ServiceEngine::cached_bytes(workload::ObjectId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::uint64_t>(std::floor(store_.cached(id)));
}

double ServiceEngine::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ServeResult ServiceEngine::serve_range(std::uint64_t object,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  ServeResult res = serve_range_once(object, offset, length, false);
  // Bounded exponential-backoff retries on a down origin. The sleeps
  // happen here — on the calling connection's thread, with the engine
  // lock released — so retries never serialize other requests.
  double backoff = config_.retry_backoff_s;
  for (std::size_t attempt = 0;
       res.status == wire::kOriginDown && attempt < config_.max_retries;
       ++attempt) {
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    backoff = std::min(backoff * 2.0, config_.retry_backoff_max_s);
    res = serve_range_once(object, offset, length, true);
  }
  return res;
}

ServeResult ServiceEngine::serve_range_once(std::uint64_t object,
                                            std::uint64_t offset,
                                            std::uint64_t length,
                                            bool is_retry) {
  ServeResult res;
  if (object >= catalog_.size()) {
    res.status = wire::kBadObject;
    return res;
  }
  const workload::StreamObject& obj = catalog_.object(object);
  const std::uint64_t size = object_size(object);
  if (length > wire::kMaxGetLength || offset > size ||
      size - offset < length) {
    res.status = wire::kBadRange;
    return res;
  }

  const double now = now_s();
  const std::lock_guard<std::mutex> lock(mu_);
  if (is_retry) ++origin_retries_;
  // Deliver estimator observations that came due since the last entry.
  kernel_->tick(now);

  const double cached_prefix = kernel_->cached(object);
  const double cached_in_range =
      std::clamp(std::floor(cached_prefix) - static_cast<double>(offset), 0.0,
                 static_cast<double>(length));
  res.cache_bytes = static_cast<std::uint64_t>(cached_in_range);
  res.origin_bytes = length - res.cache_bytes;

  const bool origin_up = origin_.available(obj.path, now);
  if (res.origin_bytes > 0 && !origin_up) {
    // The range needs upstream bytes the path cannot deliver. Typed
    // transient failure — no outcome is recorded (nothing was served),
    // no admission runs (the origin cannot back a fill).
    ++origin_down_;
    res.status = wire::kOriginDown;
    return res;
  }

  if (length > 0) {
    // The §2.2 delivery model over the requested range: the range plays
    // out for length / r_i seconds, its "cached prefix" is the part the
    // store covers, the rest streams at the path's instantaneous
    // bandwidth (simulated units, as everywhere else). Degrade windows
    // scale `bw` inside origin_.bandwidth(); outages were handled
    // above, so bw > 0 whenever origin bytes are needed.
    const double bw = origin_.bandwidth(obj.path, now);
    if (res.origin_bytes > 0) {
      const double wall_s =
          origin_.wall_delay_s(static_cast<double>(res.origin_bytes), bw);
      if (config_.origin_timeout_s > 0 && wall_s > config_.origin_timeout_s) {
        // A stall this long (e.g. a heavy degrade window) is treated as
        // an unreachable origin rather than pinning the thread.
        ++origin_timeouts_;
        ++origin_down_;
        res.status = wire::kOriginDown;
        return res;
      }
      res.origin_wall_s = wall_s;
    }
    // A fully-cached range during an outage has bw == 0; deliver()
    // requires bw > 0, so the cache-only form covers it (quality 1,
    // immediate — the prefix covers the whole range).
    const sim::ServiceOutcome outcome =
        bw > 0 ? sim::deliver(static_cast<double>(length) / obj.bitrate,
                              obj.bitrate, static_cast<double>(length), bw,
                              static_cast<double>(res.cache_bytes))
               : sim::deliver_cache_only(static_cast<double>(length),
                                         static_cast<double>(res.cache_bytes));
    res.delay_s = outcome.delay_s;
    metrics_.record(outcome, obj.value);
    if (!origin_up) ++degraded_hits_;  // fully-cached kOk during an outage
    if (res.origin_bytes > 0) {
      // Passive estimators learn the transfer's throughput when it
      // completes — at a *wall-clock* time here, drained by tick().
      if (kernel_->observes()) {
        kernel_->record_transfer(obj.path, outcome.origin_throughput,
                                 now + res.origin_wall_s);
      }
    }
  }

  // offset == 0 opens a session for this object: that is the "access"
  // the paper's policies count. Continuation chunks (offset > 0) serve
  // bytes but do not re-run admission, so a session streamed as N
  // ranges updates frequencies and utilities once, like one simulated
  // request. While the origin is down no admission runs — it could not
  // back the fill traffic a grown prefix implies.
  if (offset == 0 && origin_up) {
    const double after = kernel_->admit(object, now);
    if (after > cached_prefix) {
      metrics_.record_fill(after - cached_prefix);
    }
  }
  res.status = wire::kOk;
  return res;
}

void ServiceEngine::end_session(workload::ObjectId object,
                                std::uint64_t high_water) {
  if (object >= catalog_.size()) return;
  const std::uint64_t size = object_size(object);
  const double fraction =
      size > 0 ? std::min(1.0, static_cast<double>(high_water) /
                                   static_cast<double>(size))
               : 1.0;
  const std::lock_guard<std::mutex> lock(mu_);
  ++sessions_;
  metrics_.record_session(fraction, fraction < 1.0);
}

void ServiceEngine::tick() {
  const double now = now_s();
  const std::lock_guard<std::mutex> lock(mu_);
  kernel_->tick(now);
}

ServiceStats ServiceEngine::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.requests = metrics_.requests();
  s.hit_ratio = metrics_.hit_ratio();
  s.byte_hit_ratio = metrics_.traffic_reduction_ratio();
  s.mean_delay_s = metrics_.average_delay_s();
  s.occupancy_bytes = store_.used();
  s.cached_objects = store_.object_count();
  s.capacity_bytes = store_.capacity();
  s.sessions = sessions_;
  s.mean_viewed_fraction = metrics_.average_viewed_fraction();
  s.estimator_overhead_packets = estimator_->overhead_packets();
  s.origin_down = origin_down_;
  s.origin_retries = origin_retries_;
  s.origin_timeouts = origin_timeouts_;
  s.degraded_hits = degraded_hits_;
  return s;
}

std::string ServiceEngine::stats_json() const {
  const ServiceStats s = snapshot();
  char buf[768];
  std::snprintf(buf, sizeof buf,
                "{\"requests\": %zu, \"hit_ratio\": %.6f, "
                "\"byte_hit_ratio\": %.6f, \"mean_delay_s\": %.6f, "
                "\"occupancy_bytes\": %.0f, \"cached_objects\": %zu, "
                "\"capacity_bytes\": %.0f, \"sessions\": %zu, "
                "\"mean_viewed_fraction\": %.6f, "
                "\"estimator_overhead_packets\": %zu, "
                "\"origin_down\": %zu, \"origin_retries\": %zu, "
                "\"origin_timeouts\": %zu, \"degraded_hits\": %zu}",
                s.requests, s.hit_ratio, s.byte_hit_ratio, s.mean_delay_s,
                s.occupancy_bytes, s.cached_objects, s.capacity_bytes,
                s.sessions, s.mean_viewed_fraction,
                s.estimator_overhead_packets, s.origin_down, s.origin_retries,
                s.origin_timeouts, s.degraded_hits);
  return std::string(buf);
}

}  // namespace sc::server
