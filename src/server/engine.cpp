#include "server/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "core/registry.h"
#include "server/wire.h"
#include "sim/delivery.h"
#include "util/rng.h"

namespace sc::server {

workload::Catalog ServiceEngine::make_catalog(std::size_t objects,
                                              std::uint64_t seed) {
  workload::CatalogConfig cfg;
  cfg.num_objects = objects;
  util::Rng root(seed);
  util::Rng catalog_rng = root.fork("catalog");
  return workload::Catalog::generate(cfg, catalog_rng);
}

ServiceEngine::ServiceEngine(ServiceConfig config)
    : config_(std::move(config)),
      catalog_(make_catalog(config_.objects, config_.seed)),
      origin_(catalog_.size(), config_.origin, config_.seed),
      estimator_(core::registry::make_estimator(
          config_.estimator, origin_.model(),
          util::Rng(config_.seed).fork("estimator"))),
      policy_(core::registry::make_policy(config_.policy, catalog_,
                                          *estimator_)),
      store_(config_.cache_capacity_bytes > 0
                 ? config_.cache_capacity_bytes
                 : config_.cache_fraction * catalog_.total_bytes()),
      start_(std::chrono::steady_clock::now()),
      persistence_(config_.persist) {
  store_.reserve(catalog_.size());
  kernel_.emplace(*policy_, *estimator_, store_, events_);
  // Wall-clock estimator blackouts: the kernel drops observations due
  // inside a blackout window, exactly as in the simulator. The empty
  // schedule is never attached, keeping the fault-free tick path
  // untouched.
  if (!origin_.faults().empty()) {
    kernel_->set_faults(&origin_.faults());
  }
  if (persistence_.enabled()) {
    try_recover();
    // Listen for store mutations only from here on: recovery's own
    // set_cached calls are not journal-worthy (the snapshot already
    // holds them), and with persistence disabled the listener is never
    // attached at all — the serving path stays inert.
    store_.set_change_log(&changes_);
    // Anchor the journal: cold or warm, the next crash recovers from
    // this image plus whatever the journal accumulates after it.
    flush_snapshot();
    last_snapshot_s_ = now_s();
  }
}

void ServiceEngine::try_recover() {
  persist::RecoveryInfo info;
  auto state = persistence_.recover(&info);
  recovery_detail_ = info.detail;
  if (!state) return;

  // The snapshot must describe THIS configuration; a daemon restarted
  // with different parameters starts cold rather than importing state
  // that means something else.
  if (state->objects != catalog_.size() || state->seed != config_.seed ||
      state->policy_spec != config_.policy ||
      state->estimator_spec != config_.estimator ||
      std::fabs(state->capacity_bytes - store_.capacity()) > 0.5) {
    recovery_detail_ = "snapshot config mismatch; cold start";
    return;
  }

  const auto cold_reset = [this](const std::string& why) {
    store_.clear();
    policy_->reset();
    warm_start_ = false;
    recovery_detail_ = why + "; cold start";
  };

  try {
    for (const auto& [id, bytes] : state->store) {
      store_.set_cached(id, bytes);
    }
  } catch (const std::exception& e) {
    cold_reset(std::string("recovered store rejected (") + e.what() + ")");
    return;
  }
  if (!policy_->load_state(state->policy)) {
    cold_reset("recovered policy state rejected");
    return;
  }
  // Full integrity audit before trusting anything (the daemon
  // additionally refuses to accept connections on a failed audit).
  const sim::AuditReport report =
      sim::StateAuditor::audit(store_, policy_.get(), &events_,
                               catalog_.size());
  if (!report.ok()) {
    cold_reset("recovered state failed audit: " + report.to_string());
    return;
  }
  // Estimator last: by now everything else is known-good, so a rejected
  // estimator blob costs the whole warm start but never leaves a
  // half-loaded mix.
  if (!estimator_->load_state(state->estimator)) {
    cold_reset("recovered estimator state rejected");
    return;
  }
  clock_offset_ = state->engine_now_s;
  warm_start_ = true;
}

void ServiceEngine::journal_changes() {
  // Deduplicate last-writer-wins: records are absolute, so only the
  // final state of each touched object matters. An admission touches a
  // handful of objects, so the quadratic scan never sees a large n.
  for (std::size_t i = 0; i < changes_.size(); ++i) {
    bool last = true;
    for (std::size_t j = i + 1; j < changes_.size(); ++j) {
      if (changes_[j].id == changes_[i].id) {
        last = false;
        break;
      }
    }
    if (!last) continue;
    const workload::ObjectId id = changes_[i].id;
    persist::JournalRecord r;
    r.id = id;
    r.bytes = store_.cached(id);
    r.freq = policy_->frequency_of(id);
    double key = 0.0;
    r.in_heap = policy_->index_key(id, &key);
    r.key = key;
    persistence_.append(r);
  }
  changes_.clear();
}

sim::AuditReport ServiceEngine::audit() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sim::StateAuditor::audit(store_, policy_.get(), &events_,
                                  catalog_.size());
}

void ServiceEngine::flush_snapshot() {
  if (!persistence_.enabled()) return;
  // One snapshot writer at a time; ordered before mu_ (never the other
  // way around).
  const std::lock_guard<std::mutex> snap(snap_mu_);
  persist::SnapshotState state;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    state.objects = catalog_.size();
    state.seed = config_.seed;
    state.policy_spec = config_.policy;
    state.estimator_spec = config_.estimator;
    state.capacity_bytes = store_.capacity();
    state.engine_now_s = now_s();
    state.store = store_.contents();
    state.policy = policy_->save_state();
    state.estimator = estimator_->save_state();
    // Rotate the journal while still holding mu_: every mutation after
    // this instant journals into the file paired with this snapshot.
    persistence_.begin_snapshot();
  }
  // The fsync-heavy write happens with mu_ released; concurrent serves
  // keep going and their (absolute) journal records replay cleanly on
  // top of the captured image.
  persistence_.commit_snapshot(state);
}

void ServiceEngine::maybe_snapshot() {
  if (!persistence_.enabled()) return;
  const double now = now_s();
  if (now - last_snapshot_s_ < config_.persist.snapshot_interval_s) return;
  last_snapshot_s_ = now;
  flush_snapshot();
}

std::uint64_t ServiceEngine::object_size(workload::ObjectId id) const {
  return static_cast<std::uint64_t>(catalog_.object(id).size_bytes);
}

std::uint64_t ServiceEngine::cached_bytes(workload::ObjectId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::uint64_t>(std::floor(store_.cached(id)));
}

double ServiceEngine::now_s() const {
  // clock_offset_ resumes the decision clock where a recovered snapshot
  // left it (0 on a cold start); set once before serving begins.
  return clock_offset_ +
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
             .count();
}

ServeResult ServiceEngine::serve_range(std::uint64_t object,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  ServeResult res = serve_range_once(object, offset, length, false);
  // Bounded exponential-backoff retries on a down origin. The sleeps
  // happen here — on the calling connection's thread, with the engine
  // lock released — so retries never serialize other requests.
  double backoff = config_.retry_backoff_s;
  for (std::size_t attempt = 0;
       res.status == wire::kOriginDown && attempt < config_.max_retries;
       ++attempt) {
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    backoff = std::min(backoff * 2.0, config_.retry_backoff_max_s);
    res = serve_range_once(object, offset, length, true);
  }
  return res;
}

ServeResult ServiceEngine::serve_range_once(std::uint64_t object,
                                            std::uint64_t offset,
                                            std::uint64_t length,
                                            bool is_retry) {
  ServeResult res;
  if (object >= catalog_.size()) {
    res.status = wire::kBadObject;
    return res;
  }
  const workload::StreamObject& obj = catalog_.object(object);
  const std::uint64_t size = object_size(object);
  if (length > wire::kMaxGetLength || offset > size ||
      size - offset < length) {
    res.status = wire::kBadRange;
    return res;
  }

  const double now = now_s();
  const std::lock_guard<std::mutex> lock(mu_);
  if (is_retry) ++origin_retries_;
  // Deliver estimator observations that came due since the last entry.
  kernel_->tick(now);

  const double cached_prefix = kernel_->cached(object);
  const double cached_in_range =
      std::clamp(std::floor(cached_prefix) - static_cast<double>(offset), 0.0,
                 static_cast<double>(length));
  res.cache_bytes = static_cast<std::uint64_t>(cached_in_range);
  res.origin_bytes = length - res.cache_bytes;

  const bool origin_up = origin_.available(obj.path, now);
  if (res.origin_bytes > 0 && !origin_up) {
    // The range needs upstream bytes the path cannot deliver. Typed
    // transient failure — no outcome is recorded (nothing was served),
    // no admission runs (the origin cannot back a fill).
    ++origin_down_;
    res.status = wire::kOriginDown;
    return res;
  }

  if (length > 0) {
    // The §2.2 delivery model over the requested range: the range plays
    // out for length / r_i seconds, its "cached prefix" is the part the
    // store covers, the rest streams at the path's instantaneous
    // bandwidth (simulated units, as everywhere else). Degrade windows
    // scale `bw` inside origin_.bandwidth(); outages were handled
    // above, so bw > 0 whenever origin bytes are needed.
    const double bw = origin_.bandwidth(obj.path, now);
    if (res.origin_bytes > 0) {
      const double wall_s =
          origin_.wall_delay_s(static_cast<double>(res.origin_bytes), bw);
      if (config_.origin_timeout_s > 0 && wall_s > config_.origin_timeout_s) {
        // A stall this long (e.g. a heavy degrade window) is treated as
        // an unreachable origin rather than pinning the thread.
        ++origin_timeouts_;
        ++origin_down_;
        res.status = wire::kOriginDown;
        return res;
      }
      res.origin_wall_s = wall_s;
    }
    // A fully-cached range during an outage has bw == 0; deliver()
    // requires bw > 0, so the cache-only form covers it (quality 1,
    // immediate — the prefix covers the whole range).
    const sim::ServiceOutcome outcome =
        bw > 0 ? sim::deliver(static_cast<double>(length) / obj.bitrate,
                              obj.bitrate, static_cast<double>(length), bw,
                              static_cast<double>(res.cache_bytes))
               : sim::deliver_cache_only(static_cast<double>(length),
                                         static_cast<double>(res.cache_bytes));
    res.delay_s = outcome.delay_s;
    metrics_.record(outcome, obj.value);
    if (!origin_up) ++degraded_hits_;  // fully-cached kOk during an outage
    if (res.origin_bytes > 0) {
      // Passive estimators learn the transfer's throughput when it
      // completes — at a *wall-clock* time here, drained by tick().
      if (kernel_->observes()) {
        kernel_->record_transfer(obj.path, outcome.origin_throughput,
                                 now + res.origin_wall_s);
      }
    }
  }

  // offset == 0 opens a session for this object: that is the "access"
  // the paper's policies count. Continuation chunks (offset > 0) serve
  // bytes but do not re-run admission, so a session streamed as N
  // ranges updates frequencies and utilities once, like one simulated
  // request. While the origin is down no admission runs — it could not
  // back the fill traffic a grown prefix implies.
  if (offset == 0 && origin_up) {
    const double after = kernel_->admit(object, now);
    if (after > cached_prefix) {
      metrics_.record_fill(after - cached_prefix);
    }
    // Non-empty only when the persistence listener is attached: with
    // persistence disabled this is a single empty-vector branch.
    if (!changes_.empty()) journal_changes();
  }
  res.status = wire::kOk;
  return res;
}

void ServiceEngine::end_session(workload::ObjectId object,
                                std::uint64_t high_water) {
  if (object >= catalog_.size()) return;
  const std::uint64_t size = object_size(object);
  const double fraction =
      size > 0 ? std::min(1.0, static_cast<double>(high_water) /
                                   static_cast<double>(size))
               : 1.0;
  const std::lock_guard<std::mutex> lock(mu_);
  ++sessions_;
  metrics_.record_session(fraction, fraction < 1.0);
}

void ServiceEngine::tick() {
  const double now = now_s();
  const std::lock_guard<std::mutex> lock(mu_);
  kernel_->tick(now);
}

ServiceStats ServiceEngine::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.requests = metrics_.requests();
  s.hit_ratio = metrics_.hit_ratio();
  s.byte_hit_ratio = metrics_.traffic_reduction_ratio();
  s.mean_delay_s = metrics_.average_delay_s();
  s.occupancy_bytes = store_.used();
  s.cached_objects = store_.object_count();
  s.capacity_bytes = store_.capacity();
  s.sessions = sessions_;
  s.mean_viewed_fraction = metrics_.average_viewed_fraction();
  s.estimator_overhead_packets = estimator_->overhead_packets();
  s.origin_down = origin_down_;
  s.origin_retries = origin_retries_;
  s.origin_timeouts = origin_timeouts_;
  s.degraded_hits = degraded_hits_;
  s.warm_start = warm_start_;
  s.snapshots_written =
      static_cast<std::size_t>(persistence_.snapshots_written());
  s.journal_records =
      static_cast<std::size_t>(persistence_.records_appended());
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
  return s;
}

std::string ServiceEngine::stats_json() const {
  const ServiceStats s = snapshot();
  char buf[1024];
  std::snprintf(buf, sizeof buf,
                "{\"requests\": %zu, \"hit_ratio\": %.6f, "
                "\"byte_hit_ratio\": %.6f, \"mean_delay_s\": %.6f, "
                "\"occupancy_bytes\": %.0f, \"cached_objects\": %zu, "
                "\"capacity_bytes\": %.0f, \"sessions\": %zu, "
                "\"mean_viewed_fraction\": %.6f, "
                "\"estimator_overhead_packets\": %zu, "
                "\"origin_down\": %zu, \"origin_retries\": %zu, "
                "\"origin_timeouts\": %zu, \"degraded_hits\": %zu, "
                "\"uptime_s\": %.3f, \"warm_start\": %s, "
                "\"snapshots_written\": %zu, \"journal_records\": %zu}",
                s.requests, s.hit_ratio, s.byte_hit_ratio, s.mean_delay_s,
                s.occupancy_bytes, s.cached_objects, s.capacity_bytes,
                s.sessions, s.mean_viewed_fraction,
                s.estimator_overhead_packets, s.origin_down, s.origin_retries,
                s.origin_timeouts, s.degraded_hits, s.uptime_s,
                s.warm_start ? "true" : "false", s.snapshots_written,
                s.journal_records);
  return std::string(buf);
}

}  // namespace sc::server
