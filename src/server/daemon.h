// The TCP front of the serving engine.
//
// ProxyDaemon binds a loopback-reachable listening socket, accepts
// connections on a poll-based accept loop, and serves each connection
// from its own thread speaking the wire protocol (server/wire.h). A
// ticker thread drives ServiceEngine::tick() on a fixed wall-clock
// period so estimator state ages even across idle stretches.
//
// Threading model: thread-per-connection. The engine serializes every
// decision behind its single mutex; connection threads only contend for
// the microseconds a decision takes, then sleep origin stalls and do
// socket IO unlocked. Shutdown is cooperative — every blocking point
// (accept, idle reads) is a poll with a short timeout that re-checks
// the stop flag, and receive/send timeouts on connection sockets bound
// how long a mid-frame peer can hold a thread — so stop() joins every
// thread and closes every fd it opened (the loopback integration test
// asserts no fd leaks across a full start/serve/stop cycle).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "server/engine.h"

namespace sc::server {

struct DaemonConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port() after start()).
  std::uint16_t port = 0;
  /// Wall-clock period of the estimator ticker.
  double tick_interval_s = 0.1;
  int listen_backlog = 64;
  /// Disconnect a connection that has sent no complete frame for this
  /// many wall seconds (0 disables). Bounds how long an idle or wedged
  /// client can hold a connection thread + fd; a client mid-request is
  /// unaffected because activity resets on every frame.
  double idle_timeout_s = 0.0;
};

class ProxyDaemon {
 public:
  explicit ProxyDaemon(ServiceEngine& engine, DaemonConfig config = {});
  ~ProxyDaemon();

  ProxyDaemon(const ProxyDaemon&) = delete;
  ProxyDaemon& operator=(const ProxyDaemon&) = delete;

  /// Bind, listen, and spawn the accept + ticker threads. Throws
  /// std::runtime_error when the socket cannot be set up.
  void start();

  /// Stop accepting, join every thread, close every fd. Idempotent;
  /// also run by the destructor.
  void stop();

  /// The bound TCP port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Connections accepted so far.
  [[nodiscard]] std::size_t connections_accepted() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void ticker_loop();
  void handle_connection(int fd);

  ServiceEngine& engine_;
  DaemonConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::atomic<std::size_t> connections_{0};
  std::thread accept_thread_;
  std::thread ticker_thread_;
  std::mutex conn_mu_;  // guards conn_threads_
  std::vector<std::thread> conn_threads_;
  std::mutex tick_mu_;  // pairs with tick_cv_ for prompt shutdown
  std::condition_variable tick_cv_;
};

}  // namespace sc::server
