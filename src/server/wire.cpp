#include "server/wire.h"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace sc::server::wire {

namespace {

/// Write exactly `n` bytes, absorbing partial writes and EINTR.
/// MSG_NOSIGNAL turns a write to a half-closed peer into EPIPE instead
/// of a process-killing SIGPIPE — an abruptly-closed client must never
/// take the daemon down (the caller sees `false` and drops the
/// connection).
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    done += static_cast<std::size_t>(w);
  }
  return true;
}

/// Read exactly `n` bytes; false on EOF or a hard error.
bool read_all(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, data + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, const std::uint8_t* body, std::size_t n) {
  std::uint8_t header[4];
  const auto len = static_cast<std::uint32_t>(n);
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  return write_all(fd, header, sizeof header) && write_all(fd, body, n);
}

bool read_frame(int fd, std::vector<std::uint8_t>& body) {
  std::uint8_t header[4];
  if (!read_all(fd, header, sizeof header)) return false;
  const std::uint32_t len = get_u32(header);
  if (len > kMaxFrame) return false;
  body.resize(len);
  return len == 0 || read_all(fd, body.data(), len);
}

}  // namespace sc::server::wire
