// Deterministic object payloads.
//
// The cache layer (cache::PartialStore) is an accounting structure: it
// tracks how many prefix bytes of each object are cached, not the bytes
// themselves — exactly what the paper's model needs, since a CBR
// stream's content is irrelevant to every caching decision. The daemon
// still must ship *verifiable* bytes, so object content is a pure
// function of (object id, byte offset): the origin, the proxy, and any
// client independently compute the identical stream, and a response is
// byte-checkable end-to-end without anyone storing data
// (tests/test_server.cpp asserts ranges match across sources).
//
// Byte `o` of object `i` is a lane of splitmix64 keyed by (i, o / 8):
// cheap (one multiply-xor chain per 8 bytes), stateless, and
// offset-addressable — a range can start anywhere without generating
// the prefix before it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sc::server {

/// splitmix64 finalizer: a bijective 64-bit mix with full avalanche.
[[nodiscard]] inline constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The 8-byte content block covering object bytes [8k, 8k + 8).
[[nodiscard]] inline constexpr std::uint64_t payload_block(
    std::uint64_t object, std::uint64_t block) {
  return mix64(mix64(object + 1) ^ block);
}

/// One content byte of `object` at `offset`.
[[nodiscard]] inline constexpr std::uint8_t payload_byte(
    std::uint64_t object, std::uint64_t offset) {
  return static_cast<std::uint8_t>(payload_block(object, offset >> 3) >>
                                   ((offset & 7) * 8));
}

/// Fill `out[0, n)` with object bytes [offset, offset + n).
inline void fill_payload(std::uint64_t object, std::uint64_t offset,
                         std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  // Leading bytes up to the next block boundary, then whole blocks.
  while (i < n && ((offset + i) & 7) != 0) {
    out[i] = payload_byte(object, offset + i);
    ++i;
  }
  while (n - i >= 8) {
    std::uint64_t block = payload_block(object, (offset + i) >> 3);
    for (int b = 0; b < 8; ++b) {
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(block >> (8 * b));
    }
    i += 8;
  }
  while (i < n) {
    out[i] = payload_byte(object, offset + i);
    ++i;
  }
}

}  // namespace sc::server
