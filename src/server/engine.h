// The live serving engine: the paper's decision kernel under a wall
// clock and a lock.
//
// ServiceEngine owns one instance of everything a cache node needs —
// catalog, partial-prefix store, registry-built policy and bandwidth
// estimator, deferred-observation queue, simulated origin, metrics —
// and exposes the daemon-facing operations:
//
//   serve_range()  answer GET [off, off + len) of an object: split the
//                  range into cached-prefix and origin bytes, run the
//                  §2.2 delivery math for the range, feed the
//                  estimator's completion observation, and (on a
//                  session-opening request, offset == 0) run the
//                  policy's admission/eviction decision.
//   end_session()  map a closed connection's per-object streaming run
//                  onto the session metrics (viewed fraction,
//                  truncation).
//   tick()         deliver due estimator observations at the current
//                  wall time — the daemon's ticker calls this so
//                  EWMA/probe estimators age on real seconds even when
//                  no requests arrive.
//
// Lock discipline (see docs/SERVER.md): one mutex guards every decision
// structure (store, policy, estimator, event queue, sampler, metrics).
// Decision work per request is microseconds, so a single lock
// outperforms anything finer at daemon scale; crucially, NO blocking
// work happens under it — origin stalls are returned as a duration the
// serving thread sleeps after unlocking, and socket IO never touches
// the engine.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cache/policy.h"
#include "cache/store.h"
#include "net/estimator.h"
#include "server/origin.h"
#include "server/persist.h"
#include "sim/decision.h"
#include "sim/metrics.h"
#include "sim/state_auditor.h"
#include "workload/object_catalog.h"

namespace sc::server {

struct ServiceConfig {
  /// Catalog shape: `objects` objects generated from `seed` (the
  /// workload::CatalogConfig defaults — Table 1's corpus). A client
  /// with the same two values reconstructs the identical catalog, so
  /// it can issue valid ranges without a metadata exchange (STAT
  /// exists for clients that prefer to ask).
  std::size_t objects = 2000;
  std::uint64_t seed = 42;
  /// Registry spec strings, exactly as on every bench/example binary.
  std::string policy = "pb";
  std::string estimator = "oracle";
  /// Cache capacity as a fraction of the catalog's actual total size;
  /// `cache_capacity_bytes > 0` overrides it with an absolute size.
  double cache_fraction = 0.02;
  double cache_capacity_bytes = 0.0;
  OriginConfig origin{};
  /// Per-attempt origin fetch timeout (wall seconds; 0 disables): an
  /// attempt whose upstream stall would exceed it fails as kOriginDown
  /// instead of pinning the connection thread for the full stall.
  double origin_timeout_s = 0.0;
  /// Bounded retries when an attempt finds the origin unreachable:
  /// serve_range re-tries up to `max_retries` times with exponential
  /// backoff (retry_backoff_s doubling up to retry_backoff_max_s),
  /// sleeping OUTSIDE the engine lock between attempts. Only after the
  /// last attempt does the client see kOriginDown.
  std::size_t max_retries = 3;
  double retry_backoff_s = 0.05;
  double retry_backoff_max_s = 1.0;
  /// Crash-safe persistence (docs/SERVER.md, "Persistence & recovery").
  /// An empty dir (the default) disables it entirely: no change
  /// listener on the store, no journal, no snapshots — the serving path
  /// is then exactly the pre-persistence code.
  persist::PersistConfig persist{};
};

/// Everything the wire layer needs to answer one GET.
struct ServeResult {
  std::uint8_t status = 0;         // wire::kOk / kBadObject / kBadRange
  std::uint64_t cache_bytes = 0;   // range bytes covered by the prefix
  std::uint64_t origin_bytes = 0;  // range bytes fetched upstream
  double delay_s = 0.0;            // §2.2 prefetch delay of the range
  /// Wall-clock upstream stall; the caller sleeps this OUTSIDE the
  /// engine lock before writing the response.
  double origin_wall_s = 0.0;
};

/// A consistent point-in-time copy of the serving counters.
struct ServiceStats {
  std::size_t requests = 0;
  double hit_ratio = 0.0;           // GETs with any cached prefix
  double byte_hit_ratio = 0.0;      // bytes from cache / bytes requested
  double mean_delay_s = 0.0;
  double occupancy_bytes = 0.0;
  std::size_t cached_objects = 0;
  double capacity_bytes = 0.0;
  std::size_t sessions = 0;
  double mean_viewed_fraction = 1.0;
  std::size_t estimator_overhead_packets = 0;
  /// Fault/recovery counters (all 0 without a fault plan; docs/CHAOS.md).
  std::size_t origin_down = 0;      // attempts that found the origin down
  std::size_t origin_retries = 0;   // retry attempts made
  std::size_t origin_timeouts = 0;  // attempts over origin_timeout_s
  std::size_t degraded_hits = 0;    // fully-cached kOk while origin down
  /// Persistence counters (all 0 / false without a persist dir).
  bool warm_start = false;          // recovered state at startup
  std::size_t snapshots_written = 0;
  std::size_t journal_records = 0;
  double uptime_s = 0.0;            // wall seconds since construction
};

class ServiceEngine {
 public:
  explicit ServiceEngine(ServiceConfig config);

  /// The catalog both ends of the protocol derive sizes from.
  [[nodiscard]] const workload::Catalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

  /// Deterministic catalog construction shared by the daemon and any
  /// in-process client (bench_service): same (objects, seed) ->
  /// byte-identical catalog.
  [[nodiscard]] static workload::Catalog make_catalog(std::size_t objects,
                                                      std::uint64_t seed);

  /// Servable size of an object on the wire: its whole-byte size.
  [[nodiscard]] std::uint64_t object_size(workload::ObjectId id) const;

  /// Currently cached whole bytes of an object's prefix (the STAT op).
  [[nodiscard]] std::uint64_t cached_bytes(workload::ObjectId id) const;

  /// Seconds since engine construction (the engine's wall clock; every
  /// decision timestamp is in these units).
  [[nodiscard]] double now_s() const;

  /// Serve GET object bytes [offset, offset + length). Validates the
  /// range, runs the decision kernel under the lock, and returns the
  /// byte split plus the upstream stall to sleep outside it. `length`
  /// of zero is valid (a probe); ranges beyond the object or above
  /// wire::kMaxGetLength are rejected.
  ///
  /// Degradation contract under an origin fault (docs/CHAOS.md): a
  /// range the cached prefix fully covers is served kOk regardless of
  /// origin health; a range needing origin bytes is retried with
  /// bounded exponential backoff (ServiceConfig) and, only when every
  /// attempt finds the origin down or over-timeout, fails with the
  /// typed wire::kOriginDown status. Backoff sleeps happen on the
  /// calling thread outside the engine lock.
  [[nodiscard]] ServeResult serve_range(std::uint64_t object,
                                        std::uint64_t offset,
                                        std::uint64_t length);

  /// A connection finished streaming `object` after fetching bytes up
  /// to `high_water` (its largest offset + length). Records the
  /// session's viewed fraction against the session metrics.
  void end_session(workload::ObjectId object, std::uint64_t high_water);

  /// Deliver estimator observations due at the current wall time.
  void tick();

  [[nodiscard]] ServiceStats snapshot() const;

  /// The STATS endpoint's body: `snapshot()` as a small JSON object.
  [[nodiscard]] std::string stats_json() const;

  /// Whether startup recovered state from a snapshot (STATS warm_start).
  [[nodiscard]] bool warm_start() const noexcept { return warm_start_; }
  /// Human-readable recovery outcome (operator log line).
  [[nodiscard]] const std::string& recovery_detail() const noexcept {
    return recovery_detail_;
  }

  /// Run a full integrity audit (sim::StateAuditor) over the live
  /// decision state, under the engine lock. The AUDIT wire frame and
  /// the daemon's accept-gate both come through here.
  [[nodiscard]] sim::AuditReport audit() const;

  /// Write a snapshot now (graceful shutdown, tests). No-op when
  /// persistence is disabled. Deliberately NOT called from the
  /// destructor: a SIGKILLed process must recover from the periodic
  /// snapshot + journal alone, and tests pin that property.
  void flush_snapshot();

  /// Write a snapshot if the configured interval elapsed since the last
  /// one. Called from the daemon's ticker thread.
  void maybe_snapshot();

 private:
  using Kernel =
      sim::DecisionKernel<cache::CachePolicy, net::BandwidthEstimator>;

  /// One serve attempt (no retries; `is_retry` only tags the counter).
  [[nodiscard]] ServeResult serve_range_once(std::uint64_t object,
                                             std::uint64_t offset,
                                             std::uint64_t length,
                                             bool is_retry);

  /// Attempt warm recovery from the persist directory (constructor
  /// helper). Any failure degrades to a clean cold start.
  void try_recover();

  /// Journal the store mutations accumulated in changes_ (called under
  /// mu_ right after an admission decision). Records carry the FINAL
  /// post-decision state of each touched object, deduplicated
  /// last-writer-wins.
  void journal_changes();

  ServiceConfig config_;
  workload::Catalog catalog_;
  SimulatedOrigin origin_;
  std::unique_ptr<net::BandwidthEstimator> estimator_;
  std::unique_ptr<cache::CachePolicy> policy_;
  cache::PartialStore store_;
  sim::ObservationQueue events_;
  std::optional<Kernel> kernel_;
  sim::MetricsCollector metrics_;
  std::size_t sessions_ = 0;
  // Fault/recovery counters, guarded by mu_ like every other counter.
  std::size_t origin_down_ = 0;
  std::size_t origin_retries_ = 0;
  std::size_t origin_timeouts_ = 0;
  std::size_t degraded_hits_ = 0;
  std::chrono::steady_clock::time_point start_;
  persist::Persistence persistence_;
  /// Store change listener buffer; attached to store_ only when
  /// persistence is enabled, drained by journal_changes(). Guarded by
  /// mu_ (the store only mutates under it).
  cache::StoreChangeLog changes_;
  bool warm_start_ = false;
  std::string recovery_detail_;
  /// Added to the wall clock so the decision clock continues from the
  /// recovered engine_now_s instead of restarting at zero (probe
  /// freshness and observation due-times stay monotone across
  /// restarts).
  double clock_offset_ = 0.0;
  /// Ticker-thread-only snapshot pacing state (no lock needed).
  double last_snapshot_s_ = 0.0;
  /// Serializes snapshot writers (flush vs. periodic). Ordered BEFORE
  /// mu_: flush_snapshot takes snap_mu_, then mu_ briefly to capture
  /// state, then writes with both released.
  std::mutex snap_mu_;
  mutable std::mutex mu_;
};

}  // namespace sc::server
