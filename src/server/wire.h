// The proxy daemon's wire protocol: length-prefixed binary frames with
// range-GET semantics over a byte stream (TCP or any connected socket).
//
// Every message — request or response — is one frame:
//
//   u32  body length N (little-endian)   | N bytes body
//
// The first body byte is the opcode (requests) or status (responses);
// all integers are little-endian, doubles are IEEE-754 bit patterns in
// a u64. Three request ops:
//
//   GET   op=1 | u64 object | u64 offset | u64 length
//         -> status | u64 cache_bytes | u64 origin_bytes | f64 delay_s
//            | `length` payload bytes                       (on kOk)
//         Serve object bytes [offset, offset + length). cache_bytes of
//         the range were covered by the cached prefix, origin_bytes
//         came from upstream; delay_s is the §2.2 prefetch delay of the
//         range under the estimator's current bandwidth belief.
//
//   STAT  op=2 | u64 object
//         -> status | u64 size_bytes | u64 cached_bytes    (on kOk)
//         The object's servable size and currently cached prefix.
//
//   STATS op=3
//         -> status | UTF-8 JSON object (server-lifetime counters)
//
//   AUDIT op=4
//         -> status | UTF-8 JSON object {"ok": bool, "checks": N,
//            "violations": [...]} — a full sim::StateAuditor pass over
//            the live decision state, run under the engine lock.
//
// Error responses are a lone status byte. The protocol is deliberately
// minimal: framing is explicit so a reader never scans for delimiters,
// and every field is fixed-width so both ends parse with pointer
// arithmetic. See docs/SERVER.md for the full specification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace sc::server::wire {

// Request opcodes.
inline constexpr std::uint8_t kOpGet = 1;
inline constexpr std::uint8_t kOpStat = 2;
inline constexpr std::uint8_t kOpStats = 3;
inline constexpr std::uint8_t kOpAudit = 4;

// Response status codes.
inline constexpr std::uint8_t kOk = 0;
inline constexpr std::uint8_t kBadObject = 1;  // unknown object id
inline constexpr std::uint8_t kBadRange = 2;   // range outside the object
inline constexpr std::uint8_t kBadRequest = 3; // malformed frame / opcode
/// The range needed origin bytes but the upstream path is unreachable
/// (outage / timeout) and bounded retries were exhausted. Transient:
/// the same request succeeds once the origin recovers, and
/// fully-cached ranges keep answering kOk throughout (graceful
/// degradation; see docs/CHAOS.md).
inline constexpr std::uint8_t kOriginDown = 4;

/// Largest range one GET may request. Bounds per-connection buffer
/// growth; clients fetch bigger extents as successive ranges.
inline constexpr std::uint64_t kMaxGetLength = 1u << 20;  // 1 MiB

/// Largest frame either side accepts (a GET response: header + payload).
/// A peer announcing more is protocol-broken and gets disconnected.
inline constexpr std::size_t kMaxFrame = kMaxGetLength + 64;

// Sizes of the fixed-width message layouts.
inline constexpr std::size_t kGetRequestSize = 1 + 3 * 8;
inline constexpr std::size_t kGetResponseHeader = 1 + 2 * 8 + 8;
inline constexpr std::size_t kStatRequestSize = 1 + 8;
inline constexpr std::size_t kStatResponseSize = 1 + 2 * 8;

// --- little-endian field encoding (byte-order independent) -----------

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] inline double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// --- message bodies --------------------------------------------------

struct GetRequest {
  std::uint64_t object = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// Append a GET request body to `out` (framing is the transport's job).
inline void encode_get(std::vector<std::uint8_t>& out, const GetRequest& r) {
  out.push_back(kOpGet);
  put_u64(out, r.object);
  put_u64(out, r.offset);
  put_u64(out, r.length);
}

/// Decode a GET request body; false when the body is not a well-formed
/// GET (wrong size or opcode).
[[nodiscard]] inline bool decode_get(const std::uint8_t* body, std::size_t n,
                                     GetRequest& r) {
  if (n != kGetRequestSize || body[0] != kOpGet) return false;
  r.object = get_u64(body + 1);
  r.offset = get_u64(body + 9);
  r.length = get_u64(body + 17);
  return true;
}

// --- framed socket IO ------------------------------------------------

/// Write one frame (u32 length + body) to a connected socket, retrying
/// partial writes and EINTR. False on any hard error (peer gone).
[[nodiscard]] bool write_frame(int fd, const std::uint8_t* body,
                               std::size_t n);

/// Read one frame body into `body` (replacing its contents). Returns
/// false on clean EOF before a frame starts, on a hard read error, or on
/// a frame longer than kMaxFrame.
[[nodiscard]] bool read_frame(int fd, std::vector<std::uint8_t>& body);

}  // namespace sc::server::wire
