// Crash-safe persistence for the live proxy's cache state.
//
// Layout inside the persist directory (PersistConfig::dir):
//
//   snap-A.scs / snap-B.scs   dual snapshot slots, written alternately
//   journal-A.scj / journal-B.scj   delta journal paired with each slot
//
// A *snapshot* is a versioned, CRC32-checksummed binary image of the
// whole decision state: store contents, policy snapshot (frequencies +
// priority-index keys + kernel blob), and estimator blob, tagged with
// the configuration it belongs to (objects / seed / policy spec /
// estimator spec / capacity). Snapshots are written atomically
// (tmp + fsync + rename + directory fsync) on a background interval and
// on graceful shutdown; alternating two slots means a crash *during* a
// snapshot write still leaves the previous complete snapshot intact.
//
// Between snapshots, every store mutation is appended to the journal
// paired with the latest snapshot slot. Journal records carry ABSOLUTE
// values (the object's new cached size / frequency / index key), so
// replay is last-writer-wins and idempotent: replaying a prefix of the
// journal reconstructs a state the system actually passed through, and
// appending to the same journal after a warm recovery is correct
// without truncation games. Each record is individually CRC-framed;
// recovery replays until the first bad frame and discards the torn
// tail. Appends are fflush()ed per record: a SIGKILL of the process
// loses nothing (the data is in page cache), while a whole-machine
// crash loses at most the un-fsynced tail — which the CRC framing
// detects and discards cleanly.
//
// Recovery picks the valid snapshot slot with the highest sequence
// number, replays its journal, and hands the resulting SnapshotState to
// the engine, which validates it against its own configuration and runs
// a full sim::StateAuditor pass before serving. *Any* failure — missing
// files, bad magic, CRC mismatch, shape mismatch, failed audit —
// degrades to a cold start; corruption can cost warmth, never
// correctness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cache/policy.h"
#include "workload/object_catalog.h"

namespace sc::server::persist {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`,
/// continuing from `seed` (pass the previous return value to checksum
/// incrementally; start from the default).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

struct PersistConfig {
  /// Directory for snapshot + journal files. Empty disables persistence
  /// entirely: no listener, no journal, no snapshot thread — provably
  /// inert.
  std::string dir;
  /// Background snapshot cadence (seconds of wall time).
  double snapshot_interval_s = 30.0;

  [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

/// Everything a snapshot captures. The header fields identify the
/// configuration the state belongs to; the engine refuses to warm-start
/// from a snapshot whose header does not match its own config.
struct SnapshotState {
  // -- configuration tag --
  std::uint64_t objects = 0;
  std::uint64_t seed = 0;
  std::string policy_spec;
  std::string estimator_spec;
  double capacity_bytes = 0.0;
  // -- state --
  std::uint64_t sequence = 0;   // monotone across snapshots
  double engine_now_s = 0.0;    // decision clock at capture time
  std::vector<std::pair<workload::ObjectId, double>> store;  // (id, bytes)
  cache::PolicySnapshot policy;
  std::vector<double> estimator;
};

/// One journaled store mutation, with enough policy context to rebuild
/// the priority index on replay. Absolute values throughout: `bytes` is
/// the object's new cached size (0 = erased), `freq`/`key` the policy's
/// current frequency and index key for the object, `in_heap` whether
/// the index currently holds it.
struct JournalRecord {
  std::uint64_t id = 0;
  double bytes = 0.0;
  double freq = 0.0;
  double key = 0.0;
  bool in_heap = false;
};

/// Why the last recover() came up empty (or partial). For STATS and
/// operator logs.
struct RecoveryInfo {
  bool warm = false;
  std::uint64_t sequence = 0;
  std::size_t journal_records = 0;  // replayed
  std::string detail;               // human-readable outcome
};

class Persistence {
 public:
  explicit Persistence(PersistConfig config);
  ~Persistence();

  Persistence(const Persistence&) = delete;
  Persistence& operator=(const Persistence&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }
  [[nodiscard]] const PersistConfig& config() const noexcept {
    return config_;
  }

  /// Load the newest valid snapshot and replay its journal. Returns
  /// nullopt on a cold start (no/invalid snapshots); `info` always
  /// explains what happened. After a successful recover() the journal
  /// of the recovered slot is reopened for appending, so subsequent
  /// append() calls extend the same history.
  std::optional<SnapshotState> recover(RecoveryInfo* info);

  /// Phase 1 of a snapshot, called while the caller still holds its
  /// decision lock: rotate the journal to the next slot's (truncated)
  /// file so that every append after this instant lands in the journal
  /// paired with the snapshot about to be committed. Cheap — one small
  /// buffered write, no fsync.
  void begin_snapshot();

  /// Phase 2: atomically write `state` (captured before begin_snapshot
  /// returned) to the slot begin_snapshot rotated to, then advance the
  /// sequence. Slow (fsync); call with the decision lock RELEASED —
  /// appends interleaving with the write are safe because journal
  /// records are absolute. Returns false on I/O failure (the daemon
  /// keeps running; the previous slot's snapshot remains authoritative
  /// and this slot's journal records are ignored on recovery).
  bool commit_snapshot(const SnapshotState& state);

  /// begin + commit in one call (tests, single-threaded callers).
  bool write_snapshot(const SnapshotState& state);

  /// Append one record to the current journal (no-op until a snapshot
  /// or recovery established a journal). fflush()ed per record.
  void append(const JournalRecord& record);

  /// Total snapshots successfully written since construction.
  [[nodiscard]] std::uint64_t snapshots_written() const;
  /// Total journal records appended since construction.
  [[nodiscard]] std::uint64_t records_appended() const;
  /// Sequence number the next snapshot will carry.
  [[nodiscard]] std::uint64_t next_sequence() const;

  /// Snapshot slot paths (slot 0 = A, 1 = B); exposed for tests and the
  /// corruption fuzzer.
  [[nodiscard]] std::string snapshot_path(int slot) const;
  [[nodiscard]] std::string journal_path(int slot) const;

 private:
  bool open_journal_locked(int slot, bool truncate);
  void close_journal_locked();

  PersistConfig config_;
  mutable std::mutex mu_;
  std::FILE* journal_ = nullptr;
  int active_slot_ = 0;       // slot the *next* snapshot writes to
  std::uint64_t sequence_ = 1;  // sequence the next snapshot carries
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t records_appended_ = 0;
};

}  // namespace sc::server::persist
