// Minimal blocking client for the proxy daemon's wire protocol. One
// ProxyClient is one TCP connection (and therefore one session run per
// object, per the daemon's session mapping); it is not thread-safe —
// concurrent load generators open one client per worker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sc::server {

class ProxyClient {
 public:
  /// Connect to the daemon at host:port (host is a dotted-quad IPv4
  /// address, e.g. "127.0.0.1"). Throws std::runtime_error on failure.
  ProxyClient(const std::string& host, std::uint16_t port);
  ~ProxyClient();

  ProxyClient(const ProxyClient&) = delete;
  ProxyClient& operator=(const ProxyClient&) = delete;
  ProxyClient(ProxyClient&& other) noexcept;

  struct GetReply {
    std::uint8_t status = 0;
    std::uint64_t cache_bytes = 0;
    std::uint64_t origin_bytes = 0;
    double delay_s = 0.0;
    std::vector<std::uint8_t> data;
  };

  struct StatReply {
    std::uint8_t status = 0;
    std::uint64_t size_bytes = 0;
    std::uint64_t cached_bytes = 0;
  };

  /// Issue one range GET. Throws std::runtime_error on transport or
  /// framing failure; protocol-level rejections come back in `status`.
  [[nodiscard]] GetReply get(std::uint64_t object, std::uint64_t offset,
                             std::uint64_t length);

  [[nodiscard]] StatReply stat(std::uint64_t object);

  /// The server's STATS JSON blob.
  [[nodiscard]] std::string stats();

  /// Run a server-side integrity audit (the AUDIT op); returns its JSON
  /// report {"ok": ..., "checks": ..., "violations": [...]}.
  [[nodiscard]] std::string audit();

  /// Close the connection early (the destructor does this too). The
  /// daemon finalizes this connection's streaming session on close.
  void close();

 private:
  int fd_ = -1;
};

}  // namespace sc::server
