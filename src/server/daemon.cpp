#include "server/daemon.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/payload.h"
#include "server/wire.h"

namespace sc::server {

namespace {

/// Poll timeout for every cooperative-shutdown wait point.
constexpr int kPollMs = 200;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ProxyDaemon: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

ProxyDaemon::ProxyDaemon(ServiceEngine& engine, DaemonConfig config)
    : engine_(engine), config_(config) {}

ProxyDaemon::~ProxyDaemon() { stop(); }

void ProxyDaemon::start() {
  if (started_) throw std::runtime_error("ProxyDaemon: already started");
  // Accept-gate: the daemon never serves from unaudited state. A cold
  // start passes trivially; a warm (recovered) start must prove every
  // invariant — occupancy, policy index, pending observations — before
  // the first connection is possible. ServiceEngine::try_recover already
  // degrades bad recoveries to cold starts, so a failure here means a
  // genuine in-memory inconsistency worth refusing to serve.
  {
    const sim::AuditReport report = engine_.audit();
    if (!report.ok()) {
      throw std::runtime_error("ProxyDaemon: pre-serve " + report.to_string());
    }
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    fail("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    fail("listen");
  }

  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
  ticker_thread_ = std::thread([this] { ticker_loop(); });
}

void ProxyDaemon::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  tick_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (ticker_thread_.joinable()) ticker_thread_.join();
  // Connection threads observe stop_ at their next poll timeout.
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void ProxyDaemon::accept_loop() {
  // Log fd exhaustion once per episode, not once per rejected accept —
  // a saturated daemon must not also saturate its log.
  bool fd_exhaustion_logged = false;
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, kPollMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (r == 0) continue;
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      // accept() failures must never kill the accept loop: a peer that
      // aborted mid-handshake (ECONNABORTED) or a signal (EINTR) is
      // routine, and fd exhaustion (EMFILE/ENFILE) is an overload
      // condition to ride out — back off so existing connections can
      // finish and return their fds, then keep accepting.
      if (errno == EMFILE || errno == ENFILE) {
        if (!fd_exhaustion_logged) {
          fd_exhaustion_logged = true;
          std::fprintf(stderr,
                       "ProxyDaemon: accept: %s (fd exhaustion; backing off "
                       "until connections drain)\n",
                       std::strerror(errno));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      continue;
    }
    fd_exhaustion_logged = false;
    // Bound how long a stalled peer can pin a thread mid-frame; the
    // idle case waits in poll(), not read(), so this only fires on
    // genuinely wedged connections.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    // Request/response framing with small request frames: without
    // TCP_NODELAY, Nagle + delayed ACK turns every exchange into a
    // ~40ms stall on loopback.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void ProxyDaemon::ticker_loop() {
  std::unique_lock<std::mutex> lock(tick_mu_);
  const auto interval = std::chrono::duration<double>(
      std::max(config_.tick_interval_s, 1e-3));
  while (!stop_.load(std::memory_order_relaxed)) {
    tick_cv_.wait_for(lock, interval, [this] {
      return stop_.load(std::memory_order_relaxed);
    });
    if (stop_.load(std::memory_order_relaxed)) return;
    engine_.tick();
    // Periodic snapshots ride the ticker (no-op without a persist dir).
    engine_.maybe_snapshot();
  }
}

void ProxyDaemon::handle_connection(int fd) {
  std::vector<std::uint8_t> body;
  std::vector<std::uint8_t> reply;
  // Per-connection session state: a contiguous run of GETs for one
  // object is one streaming session (engine.h's offset == 0 contract).
  bool streaming = false;
  std::uint64_t session_object = 0;
  std::uint64_t high_water = 0;
  auto last_activity = std::chrono::steady_clock::now();

  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, kPollMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) {
      // Idle: no frame pending. Disconnect silent connections after
      // the configured timeout so they cannot hold a thread + fd
      // forever (the client sees a clean close and reconnects).
      if (config_.idle_timeout_s > 0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        last_activity)
                  .count() > config_.idle_timeout_s) {
        break;
      }
      continue;
    }
    if (!wire::read_frame(fd, body)) break;
    last_activity = std::chrono::steady_clock::now();

    reply.clear();
    if (body.empty()) {
      reply.push_back(wire::kBadRequest);
    } else if (body[0] == wire::kOpGet) {
      wire::GetRequest req;
      if (!wire::decode_get(body.data(), body.size(), req)) {
        reply.push_back(wire::kBadRequest);
      } else {
        const ServeResult res =
            engine_.serve_range(req.object, req.offset, req.length);
        if (res.status != wire::kOk) {
          reply.push_back(res.status);
        } else {
          if (streaming && session_object != req.object) {
            engine_.end_session(session_object, high_water);
            high_water = 0;
          }
          streaming = true;
          session_object = req.object;
          high_water = std::max(high_water, req.offset + req.length);
          // The upstream stall happens here — outside the engine lock,
          // on this connection's thread only.
          if (res.origin_wall_s > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(res.origin_wall_s));
          }
          reply.reserve(wire::kGetResponseHeader + req.length);
          reply.push_back(wire::kOk);
          wire::put_u64(reply, res.cache_bytes);
          wire::put_u64(reply, res.origin_bytes);
          wire::put_f64(reply, res.delay_s);
          const std::size_t header = reply.size();
          reply.resize(header + req.length);
          fill_payload(req.object, req.offset, reply.data() + header,
                       req.length);
        }
      }
    } else if (body[0] == wire::kOpStat) {
      if (body.size() != wire::kStatRequestSize) {
        reply.push_back(wire::kBadRequest);
      } else {
        const std::uint64_t object = wire::get_u64(body.data() + 1);
        if (object >= engine_.catalog().size()) {
          reply.push_back(wire::kBadObject);
        } else {
          reply.push_back(wire::kOk);
          wire::put_u64(reply, engine_.object_size(object));
          wire::put_u64(reply, engine_.cached_bytes(object));
        }
      }
    } else if (body[0] == wire::kOpStats) {
      const std::string json = engine_.stats_json();
      reply.push_back(wire::kOk);
      reply.insert(reply.end(), json.begin(), json.end());
    } else if (body[0] == wire::kOpAudit) {
      const std::string json = engine_.audit().to_json();
      reply.push_back(wire::kOk);
      reply.insert(reply.end(), json.begin(), json.end());
    } else {
      reply.push_back(wire::kBadRequest);
    }
    if (!wire::write_frame(fd, reply.data(), reply.size())) break;
  }

  if (streaming) engine_.end_session(session_object, high_water);
  ::close(fd);
}

}  // namespace sc::server
