#include "core/sweep.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/registry.h"
#include "fleet/fleet.h"
#include "sim/arena.h"
#include "stats/summary.h"
#include "util/thread_pool.h"

namespace sc::core {

namespace {

/// Raw per-replication measurements, reduced into AveragedMetrics in run
/// order (the fold order matters for floating-point bit-identity).
struct RunOutcome {
  double traffic = 0.0;
  double delay = 0.0;
  double quality = 0.0;
  double value = 0.0;
  double hit = 0.0;
  double immediate = 0.0;
  double fill = 0.0;
  double occupancy = 0.0;
  double denied_requests = 0.0;
  double denied_bytes = 0.0;
  // Fleet cells only (0 / 1 / 0 otherwise).
  double uplink_utilization = 0.0;
  double load_imbalance = 1.0;
  double peer_hit_ratio = 0.0;
};

RunOutcome extract_outcome(const sim::SimulationResult& r) {
  RunOutcome out;
  out.traffic = r.metrics.traffic_reduction_ratio();
  out.delay = r.metrics.average_delay_s();
  out.quality = r.metrics.average_quality();
  out.value = r.metrics.total_added_value();
  out.hit = r.metrics.hit_ratio();
  out.immediate = r.metrics.immediate_ratio();
  out.fill = r.metrics.fill_bytes();
  out.occupancy = r.final_occupancy_bytes;
  out.denied_requests = static_cast<double>(r.metrics.denied_requests());
  out.denied_bytes = r.metrics.denied_bytes();
  return out;
}

/// One simulation over an already-built request stream. A pure function
/// of (stream, seeds, config): safe to run from any thread in any order
/// (cursors carry all iteration state, so concurrent simulations can
/// share one stream). `path_model` may be null, in which case the
/// engine draws its own (bit-identical by the PathModel RNG-snapshot
/// contract). `arena` is the executing worker's private engine cache:
/// the monomorphized path reuses its components and run state across
/// every simulation the worker executes (`sim_config.path_config.mode`
/// was already resolved against the scenario by SweepRunner::run).
/// Out-of-table specs and monomorphize == false take the
/// virtual-fallback Simulator, fresh construction per simulation,
/// exactly as before arenas existed.
RunOutcome simulate_one(const workload::RequestStream& stream,
                        const Scenario& scenario,
                        const sim::SimulationConfig& sim_config,
                        std::uint64_t path_seed,
                        std::shared_ptr<const net::PathModel> path_model,
                        sim::SimulationArena& arena,
                        const fleet::FleetConfig* fleet_config) {
  if (fleet_config != nullptr) {
    // Fleet cells run the sequential multi-proxy loop (fleet/fleet.h):
    // one shared-uplink pass per replication, same shared stream and
    // path model, seeds derived exactly as below.
    sim::SimulationConfig config = sim_config;
    config.seed = path_seed;
    const fleet::FleetResult fr = fleet::run_fleet(
        stream, *fleet_config, config, std::move(path_model), &scenario.base,
        &scenario.ratio);
    RunOutcome out = extract_outcome(fr.aggregate);
    out.uplink_utilization = fr.uplink_utilization;
    out.load_imbalance = fr.load_imbalance;
    out.peer_hit_ratio = fr.peer_hit_ratio;
    return out;
  }
  if (sim_config.monomorphize) {
    if (sim::MonoEngineBase* engine =
            sim::acquire_mono_engine(arena, sim_config)) {
      sim::MonoRunContext context;
      context.stream = &stream;
      context.model = std::move(path_model);
      context.base = &scenario.base;
      context.ratio = &scenario.ratio;
      context.config = &sim_config;
      context.seed = path_seed;
      return extract_outcome(engine->run(context));
    }
  }
  sim::SimulationConfig config = sim_config;
  config.seed = path_seed;
  config.monomorphize = false;  // the dispatch decision was already made
  sim::SimulationResult r;
  if (path_model != nullptr) {
    r = sim::Simulator(stream, std::move(path_model), config).run();
  } else {
    r = sim::Simulator(stream, scenario.base, scenario.ratio, config).run();
  }
  return extract_outcome(r);
}

/// The per-replication seed stream, identical to the original serial
/// run_experiment derivation: every cell with the same run index shares
/// one workload seed and one path seed (the paired-seed design).
util::Rng run_rng(std::uint64_t base_seed, std::size_t run_index) {
  return util::Rng(util::splitmix64(base_seed + 0x9e37 * run_index));
}

AveragedMetrics reduce(const RunOutcome* outcomes, std::size_t runs) {
  stats::RunningStats traffic, delay, quality, value, hit, immediate, fill,
      occupancy, denied_requests, denied_bytes, uplink, imbalance, peer;
  for (std::size_t r = 0; r < runs; ++r) {
    const RunOutcome& o = outcomes[r];
    traffic.add(o.traffic);
    delay.add(o.delay);
    quality.add(o.quality);
    value.add(o.value);
    hit.add(o.hit);
    immediate.add(o.immediate);
    fill.add(o.fill);
    occupancy.add(o.occupancy);
    denied_requests.add(o.denied_requests);
    denied_bytes.add(o.denied_bytes);
    uplink.add(o.uplink_utilization);
    imbalance.add(o.load_imbalance);
    peer.add(o.peer_hit_ratio);
  }

  AveragedMetrics m;
  m.runs = runs;
  m.traffic_reduction = traffic.mean();
  m.traffic_reduction_sd = traffic.stddev();
  m.delay_s = delay.mean();
  m.delay_s_sd = delay.stddev();
  m.quality = quality.mean();
  m.quality_sd = quality.stddev();
  m.added_value = value.mean();
  m.added_value_sd = value.stddev();
  m.hit_ratio = hit.mean();
  m.immediate_ratio = immediate.mean();
  m.fill_bytes = fill.mean();
  m.occupancy_bytes = occupancy.mean();
  m.denied_requests = denied_requests.mean();
  m.denied_bytes = denied_bytes.mean();
  m.uplink_utilization = uplink.mean();
  m.load_imbalance = imbalance.mean();
  m.peer_hit_ratio = peer.mean();
  return m;
}

}  // namespace

SweepRunner::SweepRunner(ExperimentConfig base, Scenario scenario)
    : base_(std::move(base)), scenario_(std::move(scenario)) {
  if (base_.runs == 0) {
    throw std::invalid_argument("SweepRunner: runs == 0");
  }
}

std::vector<AveragedMetrics> SweepRunner::run(
    const std::vector<SweepCell>& cells, SweepStats* stats) const {
  if (stats != nullptr) *stats = SweepStats{};
  if (cells.empty()) return {};
  const std::size_t runs = base_.runs;

  // Resolve each cell against the base config, validating specs eagerly
  // so a typo fails here rather than inside a pool task. Each *distinct*
  // policy spec is validated once (cells repeat a handful of policies
  // across fractions/alphas, and a validation parse allocates).
  std::vector<sim::SimulationConfig> sims(cells.size());
  std::vector<std::shared_ptr<const fleet::FleetConfig>> fleets(cells.size());
  std::vector<double> cell_alpha(cells.size());
  std::vector<const std::string*> validated;
  const auto validate_policy_once = [&validated](const std::string& spec) {
    for (const std::string* seen : validated) {
      if (*seen == spec) return;
    }
    registry::validate(registry::Kind::kPolicy, spec);
    validated.push_back(&spec);
  };
  // Trace replay: one immutable request stream, loaded when the
  // scenario was made, shared by every cell and replication (no
  // generation at all). A materialized `replay` workload is wrapped in
  // a replay stream; `scenario_.stream` (trace:...,stream=1) is used
  // as-is and re-reads the file chunk-wise inside each simulation.
  std::shared_ptr<const workload::RequestStream> fixed = scenario_.stream;
  if (fixed == nullptr && scenario_.replay != nullptr) {
    fixed = std::make_shared<const workload::RequestStream>(
        workload::RequestStream::replay(scenario_.replay));
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    sims[c] = base_.sim;
    // Resolve the scenario's variation mode up front so simulation tasks
    // can reference the cell config without copying it per replication.
    sims[c].path_config.mode = scenario_.mode;
    if (!cells[c].policy.empty()) sims[c].policy = cells[c].policy;
    validate_policy_once(sims[c].policy);
    if (cells[c].cache_fraction >= 0) {
      // A replayed catalog has a known actual size; the synthetic path
      // keeps the paper's expected-corpus x-axis convention.
      sims[c].cache_capacity_bytes =
          fixed != nullptr
              ? cells[c].cache_fraction * fixed->catalog().total_bytes()
              : capacity_for_fraction(base_.workload.catalog,
                                      cells[c].cache_fraction);
    }
    if (!cells[c].interactivity.empty()) {
      sims[c].interactivity =
          sim::InteractivityConfig::parse(cells[c].interactivity);
    }
    if (!cells[c].fault.empty()) {
      sims[c].fault = net::FaultPlan::parse(cells[c].fault);
    }
    if (!cells[c].fleet.empty()) {
      fleets[c] = std::make_shared<const fleet::FleetConfig>(
          fleet::FleetConfig::parse(cells[c].fleet));
    }
    cell_alpha[c] = cells[c].zipf_alpha >= 0 ? cells[c].zipf_alpha
                                             : base_.workload.trace.zipf_alpha;
  }
  registry::validate(registry::Kind::kEstimator, base_.sim.estimator);

  // Distinct alphas, in order of first appearance; each (alpha, run)
  // workload is generated exactly once and shared by every cell.
  std::vector<double> alphas;
  std::vector<std::size_t> alpha_of_cell(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::size_t a = 0;
    while (a < alphas.size() && alphas[a] != cell_alpha[c]) ++a;
    if (a == alphas.size()) alphas.push_back(cell_alpha[c]);
    alpha_of_cell[c] = a;
  }

  std::vector<std::uint64_t> path_seeds(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    path_seeds[r] = run_rng(base_.base_seed, r).fork("paths").seed();
  }

  // Workload materialization policy (see ExperimentConfig::streaming):
  // short traces are cheaper to generate once per (alpha, run) and
  // replay from memory; long traces become regenerating streams whose
  // simulations re-derive the identical sequence in O(chunk) memory.
  const bool materialize =
      base_.streaming == workload::StreamingMode::kMaterialize ||
      (base_.streaming == workload::StreamingMode::kAuto &&
       base_.workload.trace.num_requests <= workload::kAutoStreamThreshold);
  std::vector<std::shared_ptr<const workload::RequestStream>> streams(
      fixed != nullptr ? 0 : alphas.size() * runs);
  const auto generate = [&](std::size_t task) {
    const std::size_t a = task / runs;
    const std::size_t r = task % runs;
    workload::WorkloadConfig wcfg = base_.workload;
    wcfg.trace.zipf_alpha = alphas[a];
    util::Rng workload_rng = run_rng(base_.base_seed, r).fork("workload");
    if (materialize) {
      streams[task] = std::make_shared<const workload::RequestStream>(
          workload::RequestStream::replay(
              std::make_shared<const workload::Workload>(
                  workload::generate_workload(wcfg, workload_rng))));
    } else {
      // The catalog consumes the head of the workload stream exactly as
      // generate_workload would; the stream snapshots the post-catalog
      // state so cursors regenerate the byte-identical request tail.
      auto catalog = std::make_shared<const workload::Catalog>(
          workload::Catalog::generate(wcfg.catalog, workload_rng));
      streams[task] = std::make_shared<const workload::RequestStream>(
          workload::RequestStream::synthetic(std::move(catalog), wcfg.trace,
                                             std::move(workload_rng)));
    }
  };

  // One immutable path model per replication, shared by every cell: the
  // per-path mean draws depend only on (base_seed, r) and the scenario,
  // never on the cell's policy, alpha, or cache fraction. A disabled
  // toggle leaves the vector null and every simulation draws its own —
  // bit-identical by construction (regression-tested in test_sweep.cpp).
  const bool share_models = base_.share_path_models;
  std::vector<std::shared_ptr<const net::PathModel>> path_models(
      share_models ? runs : 0);
  net::PathModelConfig path_config = base_.sim.path_config;
  path_config.mode = scenario_.mode;
  const std::size_t n_paths = fixed != nullptr
                                  ? fixed->catalog().size()
                                  : base_.workload.catalog.num_objects;
  const auto build_model = [&](std::size_t r) {
    // Exactly the simulator's own derivation: Rng(seed).fork("paths").
    util::Rng rng(path_seeds[r]);
    path_models[r] = std::make_shared<const net::PathModel>(
        n_paths, scenario_.base, scenario_.ratio, path_config,
        rng.fork("paths"));
  };

  // Workload generation and model construction are independent; one task
  // list covers both so the pool drains them together.
  const std::size_t setup_tasks = streams.size() + path_models.size();
  const auto setup = [&](std::size_t task) {
    if (task < streams.size()) {
      generate(task);
    } else {
      build_model(task - streams.size());
    }
  };

  std::vector<RunOutcome> outcomes(cells.size() * runs);
  // One simulation arena per worker slot: each worker caches the
  // monomorphized engines (and their reusable event queue / store /
  // heap / estimator state) for the spec pairs it executes, so
  // steady-state sweep allocations are O(workers x distinct specs), not
  // O(cells x replications).
  // Per-simulation wall times land in preallocated slots keyed by the
  // deterministic task index, so collection is thread-safe and the
  // reported distribution is scheduling-independent up to timing noise.
  std::vector<double> sim_wall(stats != nullptr ? outcomes.size() : 0);
  const auto simulate = [&](sim::SimulationArena& arena, std::size_t task) {
    const std::size_t c = task / runs;
    const std::size_t r = task % runs;
    const workload::RequestStream& stream =
        fixed != nullptr ? *fixed : *streams[alpha_of_cell[c] * runs + r];
    const auto start = std::chrono::steady_clock::now();
    outcomes[task] = simulate_one(
        stream, scenario_, sims[c], path_seeds[r],
        share_models ? path_models[r] : nullptr, arena, fleets[c].get());
    if (!sim_wall.empty()) {
      sim_wall[task] = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    }
  };

  const bool serial =
      !base_.parallel || base_.threads == 1 || cells.size() * runs == 1;
  if (serial) {
    sim::SimulationArena arena;
    for (std::size_t t = 0; t < setup_tasks; ++t) setup(t);
    for (std::size_t t = 0; t < outcomes.size(); ++t) simulate(arena, t);
  } else {
    std::unique_ptr<util::ThreadPool> owned;
    util::ThreadPool* pool;
    if (base_.threads == 0) {
      pool = &util::ThreadPool::shared();
    } else {
      owned = std::make_unique<util::ThreadPool>(base_.threads);
      pool = owned.get();
    }
    std::vector<sim::SimulationArena> arenas(pool->slot_count());
    pool->parallel_for(setup_tasks, setup);
    pool->parallel_for_slots(outcomes.size(),
                             [&](std::size_t slot, std::size_t task) {
                               simulate(arenas[slot], task);
                             });
  }

  if (stats != nullptr) {
    stats->workloads_generated = streams.size();
    stats->path_models_built =
        share_models ? runs : cells.size() * runs;
    stats->sim_wall_s = std::move(sim_wall);
  }

  std::vector<AveragedMetrics> results;
  results.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results.push_back(reduce(&outcomes[c * runs], runs));
  }
  return results;
}

}  // namespace sc::core
