#include "core/playback.h"

#include <algorithm>
#include <stdexcept>

#include "sim/delivery.h"

namespace sc::core {

PlaybackResult simulate_playback(const workload::StreamObject& obj,
                                 double cached_prefix_bytes,
                                 const BandwidthFn& bandwidth,
                                 const PlaybackConfig& config) {
  if (!bandwidth) {
    throw std::invalid_argument("simulate_playback: null bandwidth fn");
  }
  if (config.tick_s <= 0) {
    throw std::invalid_argument("simulate_playback: tick_s must be > 0");
  }
  const double prefix = std::clamp(cached_prefix_bytes, 0.0, obj.size_bytes);
  const double origin_total = obj.size_bytes - prefix;

  // Startup rule: the static §2.2 prefetch delay, computed with the
  // bandwidth observed at session start, plus configured headroom.
  const double b0 = bandwidth(0.0);
  if (b0 <= 0) throw std::invalid_argument("simulate_playback: bw <= 0");
  const double static_wait =
      sim::service_delay(obj.duration_s, obj.bitrate, b0, prefix);
  const double wait_target = static_wait + config.startup_headroom_s;

  PlaybackResult result;
  const double max_wall = config.max_wall_multiple *
                          std::max(obj.duration_s, 1.0);
  double now = 0.0;
  double downloaded = 0.0;  // origin bytes received so far
  bool playing = wait_target <= 0.0;  // no prefetch needed: play at once
  bool stalled = false;

  while (result.played_s + 1e-9 < obj.duration_s && now < max_wall) {
    const double bw = bandwidth(now);
    if (bw <= 0) throw std::invalid_argument("simulate_playback: bw <= 0");
    downloaded = std::min(origin_total, downloaded + bw * config.tick_s);

    if (!playing) {
      result.startup_delay_s += config.tick_s;
      if (result.startup_delay_s + 1e-9 >= wait_target ||
          downloaded >= origin_total) {
        playing = true;
      }
      now += config.tick_s;
      continue;
    }

    // Content available but not yet played, in seconds of playout.
    const double available_s =
        (prefix + downloaded) / obj.bitrate - result.played_s;
    const double need_s = std::min(config.tick_s,
                                   obj.duration_s - result.played_s);
    if (available_s + 1e-9 >= need_s) {
      if (stalled) stalled = false;
      result.played_s += need_s;
    } else {
      if (!stalled) {
        stalled = true;
        ++result.stall_count;
      }
      result.stall_time_s += config.tick_s;
    }
    now += config.tick_s;
  }

  result.completed = result.played_s + 1e-9 >= obj.duration_s;
  result.wall_time_s = now;
  return result;
}

}  // namespace sc::core
