// Unified component registry: spec-string construction for cache
// policies, bandwidth estimators, and bandwidth scenarios.
//
// Every experiment axis is addressed by a util::Spec string:
//
//   policies    "if" "pb" "ib" "hybrid:e=0.5" "pbv:e=0.7" "ibv" "lru" "lfu"
//   estimators  "oracle" "ewma:alpha=0.3,prior_kbps=50" "last"
//               "probe:interval_s=3600"
//   scenarios   "constant" "nlanr" "measured" "timeseries:path=taiwan"
//               "trace:file=workload.trace,bw=nlanr"  (trace replay)
//
// Unknown names fail with the list of registered alternatives (plus a
// did-you-mean suggestion); unknown parameters fail listing the valid
// ones. New components self-register through the *Registrar helpers
// without touching the simulator core:
//
//   static sc::core::registry::PolicyRegistrar my_policy{
//       {"greedy-dual", {}, "GreedyDual-Size", {"beta"}},
//       [](const util::Spec& s, const PolicyContext& ctx) { ... }};
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/policy.h"
#include "core/experiment.h"
#include "net/estimator.h"
#include "net/path_process.h"
#include "util/rng.h"
#include "util/spec.h"

namespace sc::core::registry {

/// Which component axis a name belongs to.
enum class Kind { kPolicy, kEstimator, kScenario };

[[nodiscard]] std::string to_string(Kind kind);

/// Registration metadata; `params` lists the spec parameter keys the
/// factory understands (specs with other keys are rejected up front).
struct ComponentInfo {
  std::string name;                  // canonical, lower-case
  std::vector<std::string> aliases;  // extra accepted names
  std::string summary;               // one-line description for help()
  std::vector<std::string> params;   // known parameter keys
};

/// What a policy factory gets to work with. `catalog` and `estimator`
/// must outlive the constructed policy.
struct PolicyContext {
  const workload::Catalog& catalog;
  net::BandwidthEstimator& estimator;
};

/// What an estimator factory gets to work with. `paths` is the immutable
/// half of the path state (shared across simulations) and must outlive
/// the constructed estimator; `rng` seeds any stochastic measurement
/// process.
struct EstimatorContext {
  const net::PathModel& paths;
  util::Rng rng;
};

using PolicyFactory = std::function<std::unique_ptr<cache::CachePolicy>(
    const util::Spec&, const PolicyContext&)>;
using EstimatorFactory =
    std::function<std::unique_ptr<net::BandwidthEstimator>(const util::Spec&,
                                                           EstimatorContext&)>;
using ScenarioFactory = std::function<Scenario(const util::Spec&)>;

/// Register a component. Throws util::SpecError when the name or an
/// alias is already taken on the same axis.
void register_policy(ComponentInfo info, PolicyFactory factory);
void register_estimator(ComponentInfo info, EstimatorFactory factory);
void register_scenario(ComponentInfo info, ScenarioFactory factory);

/// Construct from a parsed spec or spec string. Throws util::SpecError
/// for unknown names (listing registered alternatives) and unknown or
/// ill-typed parameters.
[[nodiscard]] std::unique_ptr<cache::CachePolicy> make_policy(
    const util::Spec& spec, const PolicyContext& context);
[[nodiscard]] std::unique_ptr<cache::CachePolicy> make_policy(
    const std::string& spec, const workload::Catalog& catalog,
    net::BandwidthEstimator& estimator);
[[nodiscard]] std::unique_ptr<net::BandwidthEstimator> make_estimator(
    const util::Spec& spec, EstimatorContext context);
[[nodiscard]] std::unique_ptr<net::BandwidthEstimator> make_estimator(
    const std::string& spec, const net::PathModel& paths, util::Rng rng);
[[nodiscard]] Scenario make_scenario(const util::Spec& spec);
[[nodiscard]] Scenario make_scenario(const std::string& spec);

/// Check that `spec` parses, its name is registered on `kind`, and every
/// parameter key is known — without constructing anything. Throws
/// util::SpecError otherwise.
void validate(Kind kind, const std::string& spec);

/// Registered components of one axis, sorted by canonical name.
[[nodiscard]] std::vector<ComponentInfo> list(Kind kind);

/// Canonical names only (sorted), e.g. for error messages and --help.
[[nodiscard]] std::vector<std::string> names(Kind kind);

/// Human-readable listing of every registered component on all three
/// axes, for --help output.
[[nodiscard]] std::string help();

/// Self-registration helpers for static-initialization-time extension.
struct PolicyRegistrar {
  PolicyRegistrar(ComponentInfo info, PolicyFactory factory) {
    register_policy(std::move(info), std::move(factory));
  }
};
struct EstimatorRegistrar {
  EstimatorRegistrar(ComponentInfo info, EstimatorFactory factory) {
    register_estimator(std::move(info), std::move(factory));
  }
};
struct ScenarioRegistrar {
  ScenarioRegistrar(ComponentInfo info, ScenarioFactory factory) {
    register_scenario(std::move(info), std::move(factory));
  }
};

}  // namespace sc::core::registry
