#include "core/builder.h"

#include <algorithm>
#include <utility>

#include "core/registry.h"
#include "core/sweep.h"
#include "net/fault.h"

namespace sc::core {

ExperimentBuilder& ExperimentBuilder::policy(const std::string& spec) {
  registry::validate(registry::Kind::kPolicy, spec);
  config_.sim.policy = spec;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::estimator(const std::string& spec) {
  registry::validate(registry::Kind::kEstimator, spec);
  config_.sim.estimator = spec;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::scenario(const std::string& spec) {
  registry::validate(registry::Kind::kScenario, spec);
  scenario_ = spec;
  built_scenario_.reset();
  return *this;
}

ExperimentBuilder& ExperimentBuilder::cache_fraction(double fraction) {
  cache_fraction_ = fraction;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::cache_bytes(double bytes) {
  cache_fraction_.reset();
  config_.sim.cache_capacity_bytes = bytes;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::objects(std::size_t n) {
  config_.workload.catalog.num_objects = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::requests(std::size_t n) {
  config_.workload.trace.num_requests = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::zipf_alpha(double alpha) {
  config_.workload.trace.zipf_alpha = alpha;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::runs(std::size_t n) {
  config_.runs = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t seed) {
  config_.base_seed = seed;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::parallel(bool on) {
  config_.parallel = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::threads(std::size_t n) {
  config_.threads = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::warmup_fraction(double fraction) {
  config_.sim.warmup_fraction = fraction;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::viewing(bool on) {
  config_.sim.viewing.enabled = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::patching(bool on) {
  config_.sim.patching.enabled = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::interactivity(const std::string& spec) {
  config_.sim.interactivity = sim::InteractivityConfig::parse(spec);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::fault(const std::string& spec) {
  config_.sim.fault = net::FaultPlan::parse(spec);
  return *this;
}

namespace {

// Value flags must actually carry a value; a bare `--cache-frac` (value
// lost by a wrapper script) must not silently coerce to 0.
std::string require_value(const util::Cli& cli, const std::string& name) {
  const auto v = cli.get(name);
  if (!v) {
    throw util::SpecError("flag --" + name + " requires a value");
  }
  return *v;
}

}  // namespace

ExperimentBuilder& ExperimentBuilder::from_cli(const util::Cli& cli) {
  if (cli.has("policy")) policy(require_value(cli, "policy"));
  if (cli.has("estimator")) estimator(require_value(cli, "estimator"));
  if (cli.has("scenario")) scenario(require_value(cli, "scenario"));
  if (cli.has("objects")) {
    (void)require_value(cli, "objects");
    objects(cli.get_count("objects", 0));
  }
  if (cli.has("requests")) {
    (void)require_value(cli, "requests");
    requests(cli.get_count("requests", 0));
  }
  if (cli.has("zipf")) {
    (void)require_value(cli, "zipf");
    zipf_alpha(cli.get_or("zipf", 0.0));
  }
  if (cli.has("runs")) {
    (void)require_value(cli, "runs");
    runs(cli.get_count("runs", 0));
  }
  if (cli.has("seed")) {
    (void)require_value(cli, "seed");
    seed(static_cast<std::uint64_t>(cli.get_or("seed", 0LL)));
  }
  if (cli.has("parallel")) parallel(cli.get_or("parallel", true));
  if (cli.has("threads")) {
    (void)require_value(cli, "threads");
    const long long n = cli.get_or("threads", 0LL);
    if (n < 0) {
      throw util::SpecError(
          "--threads must be >= 0 (0 = all cores, 1 = serial)");
    }
    threads(static_cast<std::size_t>(n));
  }
  if (cli.has("warmup")) {
    (void)require_value(cli, "warmup");
    warmup_fraction(cli.get_or("warmup", 0.5));
  }
  if (cli.has("viewing")) viewing(cli.get_or("viewing", false));
  if (cli.has("patching")) patching(cli.get_or("patching", false));
  if (cli.has("interactivity")) {
    interactivity(require_value(cli, "interactivity"));
  }
  if (cli.has("fault")) fault(require_value(cli, "fault"));
  if (cli.has("cache-frac")) {
    (void)require_value(cli, "cache-frac");
    cache_fraction(cli.get_or("cache-frac", 0.0));
  }
  if (cli.has("e")) {
    // Legacy tuning flag: fold into the policy spec's `e` parameter.
    // Policies that take no `e` (pb, if, ...) ignore the flag, matching
    // the old PolicyParams behavior.
    util::Spec spec = util::Spec::parse(config_.sim.policy);
    bool supports_e = false;
    for (const auto& info : registry::list(registry::Kind::kPolicy)) {
      const bool matches =
          info.name == spec.name ||
          std::find(info.aliases.begin(), info.aliases.end(), spec.name) !=
              info.aliases.end();
      if (matches) {
        supports_e = std::find(info.params.begin(), info.params.end(), "e") !=
                     info.params.end();
        break;
      }
    }
    if (supports_e) {
      const std::string value = require_value(cli, "e");
      bool replaced = false;
      for (auto& [key, existing] : spec.params) {
        if (key == "e") {
          existing = value;
          replaced = true;
        }
      }
      if (!replaced) spec.params.emplace_back("e", value);
      policy(spec.to_string());
    }
  }
  return *this;
}

std::vector<std::string> ExperimentBuilder::cli_flags() {
  return {"policy",  "estimator", "scenario",   "objects", "requests",
          "zipf",    "runs",      "seed",       "parallel", "threads",
          "warmup",  "viewing",   "patching",   "interactivity",
          "fault",   "cache-frac", "e"};
}

std::string ExperimentBuilder::cli_help() {
  return
      "shared experiment flags:\n"
      "  --policy=<spec>      replacement policy (default pb)\n"
      "  --estimator=<spec>   bandwidth estimator (default oracle)\n"
      "  --scenario=<spec>    bandwidth scenario (default constant)\n"
      "  --cache-frac=F       cache size as fraction of corpus\n"
      "  --objects=N --requests=N --runs=N --zipf=A --seed=S\n"
      "                       counts accept 250k / 100M / 2G / 1e8 forms\n"
      "  --warmup=F --parallel=0|1 --threads=N --viewing --patching\n"
      "  --interactivity=<spec>  session dynamics: full | exp:mean=S |\n"
      "                       empirical | trace (default full)\n"
      "  --fault=<spec>       deterministic fault plan, e.g.\n"
      "                       fault:outage=120+60 (default none; see\n"
      "                       docs/CHAOS.md)\n"
      "  --e=E                legacy: e parameter for hybrid/pbv specs\n\n" +
      registry::help();
}

ExperimentConfig ExperimentBuilder::config() const {
  ExperimentConfig resolved = config_;
  if (cache_fraction_) {
    // Under trace replay the catalog is known exactly; elsewhere keep
    // the paper's expected-corpus convention (matching SweepRunner).
    const Scenario& scenario = build_scenario_ref();
    if (scenario.replay != nullptr) {
      resolved.sim.cache_capacity_bytes =
          *cache_fraction_ * scenario.replay->catalog.total_bytes();
    } else if (scenario.stream != nullptr) {
      resolved.sim.cache_capacity_bytes =
          *cache_fraction_ * scenario.stream->catalog().total_bytes();
    } else {
      resolved.sim.cache_capacity_bytes = capacity_for_fraction(
          resolved.workload.catalog, *cache_fraction_);
    }
  }
  return resolved;
}

const Scenario& ExperimentBuilder::build_scenario_ref() const {
  if (built_scenario_ == nullptr) {
    built_scenario_ =
        std::make_shared<const Scenario>(registry::make_scenario(scenario_));
  }
  return *built_scenario_;
}

Scenario ExperimentBuilder::build_scenario() const {
  return build_scenario_ref();
}

AveragedMetrics ExperimentBuilder::run() const {
  return run_experiment(config(), build_scenario_ref());
}

}  // namespace sc::core
