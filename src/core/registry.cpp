#include "core/registry.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "net/probe.h"
#include "net/units.h"
#include "net/variability.h"
#include "workload/trace.h"

namespace sc::core::registry {

std::string to_string(Kind kind) {
  switch (kind) {
    case Kind::kPolicy: return "policy";
    case Kind::kEstimator: return "estimator";
    case Kind::kScenario: return "scenario";
  }
  return "?";
}

namespace {

template <typename Factory>
struct Axis {
  std::vector<std::pair<ComponentInfo, Factory>> entries;

  const std::pair<ComponentInfo, Factory>* find(const std::string& name) const {
    for (const auto& entry : entries) {
      if (entry.first.name == name) return &entry;
      for (const auto& alias : entry.first.aliases) {
        if (alias == name) return &entry;
      }
    }
    return nullptr;
  }

  void add(Kind kind, ComponentInfo info, Factory factory) {
    info.name = util::to_lower(info.name);
    for (auto& alias : info.aliases) alias = util::to_lower(alias);
    for (auto& param : info.params) param = util::to_lower(param);
    std::vector<std::string> taken = {info.name};
    taken.insert(taken.end(), info.aliases.begin(), info.aliases.end());
    for (const auto& name : taken) {
      if (find(name) != nullptr) {
        throw util::SpecError("duplicate " + to_string(kind) + " name \"" +
                              name + "\"");
      }
    }
    entries.emplace_back(std::move(info), std::move(factory));
  }

  /// Canonical names, sorted.
  std::vector<std::string> canonical() const {
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto& entry : entries) out.push_back(entry.first.name);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Canonical names plus aliases (suggestion candidates).
  std::vector<std::string> all_names() const {
    std::vector<std::string> out;
    for (const auto& entry : entries) {
      out.push_back(entry.first.name);
      out.insert(out.end(), entry.first.aliases.begin(),
                 entry.first.aliases.end());
    }
    return out;
  }

  const std::pair<ComponentInfo, Factory>& resolve(Kind kind,
                                                   const util::Spec& spec) {
    const auto* entry = find(spec.name);
    if (entry == nullptr) {
      std::string message = "unknown " + to_string(kind) + " \"" + spec.name +
                            "\" (registered: " + util::join(canonical()) + ")";
      if (const auto suggestion = util::closest_match(spec.name, all_names())) {
        message += "; did you mean \"" + *suggestion + "\"?";
      }
      throw util::SpecError(message);
    }
    std::vector<std::string_view> known(entry->first.params.begin(),
                                        entry->first.params.end());
    spec.require_only(known);
    return *entry;
  }
};

struct Tables {
  Axis<PolicyFactory> policies;
  Axis<EstimatorFactory> estimators;
  Axis<ScenarioFactory> scenarios;
};

net::MeasuredPath measured_path_for(const util::Spec& spec) {
  if (spec.name == "timeseries-taiwan") return net::MeasuredPath::kTaiwan;
  if (spec.name == "timeseries-hongkong") return net::MeasuredPath::kHongKong;
  if (spec.name == "timeseries-inria") return net::MeasuredPath::kInria;
  // Bare "timeseries": the path parameter picks the measured trace.
  const std::string value = util::to_lower(spec.get_string("path", "inria"));
  if (value == "0" || value == "inria") return net::MeasuredPath::kInria;
  if (value == "1" || value == "taiwan") return net::MeasuredPath::kTaiwan;
  if (value == "2" || value == "hongkong" || value == "hong-kong" ||
      value == "hk") {
    return net::MeasuredPath::kHongKong;
  }
  throw util::SpecError("spec \"" + spec.to_string() +
                        "\": unknown path \"" + value +
                        "\" (valid: inria|0, taiwan|1, hongkong|2)");
}

Tables make_builtins() {
  Tables t;

  // ---- policies ---------------------------------------------------------
  // Constructed directly as UtilityPolicy instantiations — the same
  // types the monomorphized dispatch table (sim/arena.h) caches.
  const auto simple_policy = [](auto kernel_tag) {
    using Kernel = decltype(kernel_tag);
    return [](const util::Spec&, const PolicyContext& ctx)
               -> std::unique_ptr<cache::CachePolicy> {
      return std::make_unique<cache::UtilityPolicy<Kernel>>(ctx.catalog,
                                                            ctx.estimator);
    };
  };
  t.policies.add(Kind::kPolicy,
                 {"if", {}, "integral frequency-based (in-cache LFU)", {}},
                 simple_policy(cache::IfKernel{}));
  t.policies.add(Kind::kPolicy,
                 {"pb", {}, "partial bandwidth-based prefix caching", {}},
                 simple_policy(cache::PbKernel{}));
  t.policies.add(Kind::kPolicy,
                 {"ib", {}, "integral bandwidth-based whole objects", {}},
                 simple_policy(cache::IbKernel{}));
  t.policies.add(
      Kind::kPolicy,
      {"hybrid", {}, "PB with bandwidth underestimated by e", {"e"}},
      [](const util::Spec& spec, const PolicyContext& ctx)
          -> std::unique_ptr<cache::CachePolicy> {
        return std::make_unique<cache::HybridPolicy>(
            ctx.catalog, ctx.estimator,
            spec.get_double("e", cache::kDefaultKernelE));
      });
  t.policies.add(
      Kind::kPolicy,
      {"pbv", {"pb-v"}, "partial bandwidth-value-based caching", {"e"}},
      [](const util::Spec& spec, const PolicyContext& ctx)
          -> std::unique_ptr<cache::CachePolicy> {
        return std::make_unique<cache::PbvPolicy>(
            ctx.catalog, ctx.estimator,
            spec.get_double("e", cache::kDefaultKernelE));
      });
  t.policies.add(Kind::kPolicy,
                 {"ibv", {"ib-v"}, "integral bandwidth-value-based", {}},
                 simple_policy(cache::IbvKernel{}));
  t.policies.add(Kind::kPolicy,
                 {"lru", {}, "whole-object LRU baseline", {}},
                 simple_policy(cache::LruKernel{}));
  t.policies.add(Kind::kPolicy,
                 {"lfu", {}, "whole-object LFU baseline", {}},
                 simple_policy(cache::LfuKernel{}));

  // ---- estimators -------------------------------------------------------
  t.estimators.add(
      Kind::kEstimator,
      {"oracle", {}, "true long-run per-path mean (paper's setting)", {}},
      [](const util::Spec&, EstimatorContext& ctx) {
        return std::make_unique<net::OracleEstimator>(ctx.paths);
      });
  t.estimators.add(
      Kind::kEstimator,
      {"ewma",
       {"passive-ewma"},
       "passive EWMA over observed transfer throughput",
       {"alpha", "prior_kbps"}},
      [](const util::Spec& spec, EstimatorContext& ctx) {
        return std::make_unique<net::PassiveEwmaEstimator>(
            ctx.paths.size(),
            spec.get_double("alpha", net::estimator_defaults::kEwmaAlpha),
            net::from_kb(spec.get_double(
                "prior_kbps", net::estimator_defaults::kPriorKbps)));
      });
  t.estimators.add(
      Kind::kEstimator,
      {"last",
       {"last-sample"},
       "most recent observed throughput only",
       {"prior_kbps"}},
      [](const util::Spec& spec, EstimatorContext& ctx) {
        return std::make_unique<net::LastSampleEstimator>(
            ctx.paths.size(),
            net::from_kb(spec.get_double(
                "prior_kbps", net::estimator_defaults::kPriorKbps)));
      });
  t.estimators.add(
      Kind::kEstimator,
      {"probe",
       {"active-probe"},
       "active TCP-model probing with overhead accounting",
       {"interval_s", "train_packets"}},
      [](const util::Spec& spec, EstimatorContext& ctx) {
        const std::vector<double>& means = ctx.paths.means();
        net::ProbeConfig probe_config;
        probe_config.train_packets = static_cast<std::size_t>(
            spec.get_int("train_packets",
                         static_cast<long long>(probe_config.train_packets)));
        auto model = std::make_unique<net::ProbeModel>(
            means, probe_config, ctx.rng.fork("probe"));
        return std::make_unique<net::ActiveProbeEstimator>(
            std::move(model),
            spec.get_double("interval_s",
                            net::estimator_defaults::kProbeIntervalS),
            ctx.rng.fork("probe-rng"));
      });

  // ---- scenarios --------------------------------------------------------
  t.scenarios.add(Kind::kScenario,
                  {"constant", {}, "NLANR means, no time variation", {}},
                  [](const util::Spec&) { return constant_scenario(); });
  t.scenarios.add(
      Kind::kScenario,
      {"nlanr",
       {"nlanr-variability"},
       "NLANR means, iid high-variability ratios (Fig 3)",
       {}},
      [](const util::Spec&) { return nlanr_variability_scenario(); });
  t.scenarios.add(
      Kind::kScenario,
      {"measured",
       {"measured-variability"},
       "NLANR means, iid low-variability measured ratios (Fig 4)",
       {}},
      [](const util::Spec&) { return measured_variability_scenario(); });
  t.scenarios.add(
      Kind::kScenario,
      {"timeseries",
       {"timeseries-inria", "timeseries-taiwan", "timeseries-hongkong"},
       "NLANR means, AR(1) ratio time series from a measured path",
       {"path"}},
      [](const util::Spec& spec) {
        if (spec.name != "timeseries" && spec.has("path")) {
          throw util::SpecError("spec \"" + spec.to_string() +
                                "\": the path is implied by the name; use "
                                "\"timeseries:path=...\" instead");
        }
        return timeseries_scenario(measured_path_for(spec));
      });
  t.scenarios.add(
      Kind::kScenario,
      {"trace",
       {"replay"},
       "replay a recorded workload trace (workload/trace.h format); "
       "file=PATH is required, bw= names the bandwidth scenario "
       "(default constant), stream=1 keeps only the catalog resident "
       "and re-streams request records from disk chunk-wise (O(chunk) "
       "memory for multi-GB traces)",
       {"file", "bw", "stream"}},
      [](const util::Spec& spec) {
        const std::string file = spec.get_string("file", "");
        if (file.empty()) {
          throw util::SpecError(
              "scenario \"trace\" requires file=PATH "
              "(e.g. --scenario=trace:file=workload.trace)");
        }
        const std::string bw = spec.get_string("bw", "constant");
        // The bandwidth environment is any *other* registered scenario.
        Scenario scenario = make_scenario(bw);
        if (scenario.replay != nullptr || scenario.stream != nullptr) {
          throw util::SpecError("scenario \"trace\": bw=" + bw +
                                " must name a bandwidth scenario, not "
                                "another trace");
        }
        // Loaded (or, under stream=1, validated and indexed) exactly
        // once per make_scenario call: SweepRunner shares the resulting
        // immutable stream across every cell and replication.
        if (spec.get_double("stream", 0.0) != 0.0) {
          scenario.stream = std::make_shared<const workload::RequestStream>(
              workload::RequestStream::trace_file(file));
        } else {
          scenario.replay = std::make_shared<const workload::Workload>(
              workload::read_trace(file));
        }
        scenario.name = "trace(" + file + ")+" + scenario.name;
        return scenario;
      });

  return t;
}

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

Tables& tables() {
  static Tables t = make_builtins();
  return t;
}

}  // namespace

void register_policy(ComponentInfo info, PolicyFactory factory) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  tables().policies.add(Kind::kPolicy, std::move(info), std::move(factory));
}

void register_estimator(ComponentInfo info, EstimatorFactory factory) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  tables().estimators.add(Kind::kEstimator, std::move(info),
                          std::move(factory));
}

void register_scenario(ComponentInfo info, ScenarioFactory factory) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  tables().scenarios.add(Kind::kScenario, std::move(info), std::move(factory));
}

std::unique_ptr<cache::CachePolicy> make_policy(const util::Spec& spec,
                                                const PolicyContext& context) {
  PolicyFactory factory;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    factory = tables().policies.resolve(Kind::kPolicy, spec).second;
  }
  return factory(spec, context);
}

std::unique_ptr<cache::CachePolicy> make_policy(
    const std::string& spec, const workload::Catalog& catalog,
    net::BandwidthEstimator& estimator) {
  return make_policy(util::Spec::parse(spec),
                     PolicyContext{catalog, estimator});
}

std::unique_ptr<net::BandwidthEstimator> make_estimator(
    const util::Spec& spec, EstimatorContext context) {
  EstimatorFactory factory;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    factory = tables().estimators.resolve(Kind::kEstimator, spec).second;
  }
  return factory(spec, context);
}

std::unique_ptr<net::BandwidthEstimator> make_estimator(
    const std::string& spec, const net::PathModel& paths, util::Rng rng) {
  return make_estimator(util::Spec::parse(spec),
                        EstimatorContext{paths, std::move(rng)});
}

Scenario make_scenario(const util::Spec& spec) {
  ScenarioFactory factory;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    factory = tables().scenarios.resolve(Kind::kScenario, spec).second;
  }
  return factory(spec);
}

Scenario make_scenario(const std::string& spec) {
  return make_scenario(util::Spec::parse(spec));
}

void validate(Kind kind, const std::string& spec) {
  const util::Spec parsed = util::Spec::parse(spec);
  const std::lock_guard<std::mutex> lock(registry_mutex());
  switch (kind) {
    case Kind::kPolicy:
      (void)tables().policies.resolve(kind, parsed);
      break;
    case Kind::kEstimator:
      (void)tables().estimators.resolve(kind, parsed);
      break;
    case Kind::kScenario:
      (void)tables().scenarios.resolve(kind, parsed);
      break;
  }
}

std::vector<ComponentInfo> list(Kind kind) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<ComponentInfo> out;
  const auto collect = [&out](const auto& axis) {
    for (const auto& entry : axis.entries) out.push_back(entry.first);
  };
  switch (kind) {
    case Kind::kPolicy: collect(tables().policies); break;
    case Kind::kEstimator: collect(tables().estimators); break;
    case Kind::kScenario: collect(tables().scenarios); break;
  }
  std::sort(out.begin(), out.end(),
            [](const ComponentInfo& a, const ComponentInfo& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<std::string> names(Kind kind) {
  std::vector<std::string> out;
  for (const auto& info : list(kind)) out.push_back(info.name);
  return out;
}

std::string help() {
  std::string out;
  for (const Kind kind :
       {Kind::kPolicy, Kind::kEstimator, Kind::kScenario}) {
    out += to_string(kind);
    out += " specs (--";
    out += to_string(kind);
    out += "=name[:key=value,...]):\n";
    for (const auto& info : list(kind)) {
      out += "  " + info.name;
      if (!info.aliases.empty()) {
        out += " (aliases: " + util::join(info.aliases) + ")";
      }
      out += " — " + info.summary;
      if (!info.params.empty()) {
        out += "; params: " + util::join(info.params);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace sc::core::registry
