// Experiment harness: named bandwidth scenarios, multi-run averaging, and
// parameter sweeps. Every paper figure is a composition of these pieces
// (see DESIGN.md §5 for the figure -> bench mapping).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/bandwidth_model.h"
#include "net/variability.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace sc::core {

/// A bandwidth environment (base model + ratio model + variation mode),
/// optionally replaying a recorded workload instead of the synthetic
/// generator.
struct Scenario {
  std::string name;
  stats::EmpiricalDistribution base;
  stats::EmpiricalDistribution ratio;
  net::VariationMode mode = net::VariationMode::kConstant;
  /// Trace replay ("trace:file=PATH" scenarios): when non-null, every
  /// sweep cell and replication replays this immutable workload instead
  /// of generating one — the file is loaded once per registry::
  /// make_scenario call and shared across the whole grid, so workload
  /// shape knobs (objects/requests/zipf alpha) are ignored and
  /// replications differ only in their bandwidth draws. Cache fractions
  /// resolve against the replayed catalog's actual total size.
  std::shared_ptr<const workload::Workload> replay;
  /// Streaming replay ("trace:file=PATH,stream=1"): like `replay`, but
  /// only the catalog stays resident; request records re-stream from
  /// disk chunk-wise inside each simulation (O(chunk) memory for
  /// multi-GB traces). At most one of `replay`/`stream` is set; results
  /// are field-identical between the two.
  std::shared_ptr<const workload::RequestStream> stream;
};

/// NLANR base means, no time variation (Figs 5, 6, 10).
[[nodiscard]] Scenario constant_scenario();
/// NLANR base means, iid per-request ratio from the Fig-3 model (Fig 7).
[[nodiscard]] Scenario nlanr_variability_scenario();
/// NLANR base means, iid ratio from the pooled Fig-4 model (Figs 8, 11, 12).
[[nodiscard]] Scenario measured_variability_scenario();
/// NLANR base means, AR(1) time-series ratios (extension experiments).
[[nodiscard]] Scenario timeseries_scenario(net::MeasuredPath path);

/// Cross-run mean and standard deviation for each §3.3 metric.
struct AveragedMetrics {
  std::size_t runs = 0;
  double traffic_reduction = 0.0, traffic_reduction_sd = 0.0;
  double delay_s = 0.0, delay_s_sd = 0.0;
  double quality = 0.0, quality_sd = 0.0;
  double added_value = 0.0, added_value_sd = 0.0;
  double hit_ratio = 0.0;
  double immediate_ratio = 0.0;
  double fill_bytes = 0.0;
  double occupancy_bytes = 0.0;
  /// Mean per-replication requests/bytes denied by unreachable origins
  /// (fault injection; identically 0 without a fault plan).
  double denied_requests = 0.0;
  double denied_bytes = 0.0;
  /// Fleet cells only (SweepCell::fleet; identically 0 / 1 / 0 for
  /// single-cell sweeps): mean origin-uplink utilization, mean max/mean
  /// per-proxy load imbalance, and mean peer-assisted request fraction.
  double uplink_utilization = 0.0;
  double load_imbalance = 0.0;
  double peer_hit_ratio = 0.0;
};

struct ExperimentConfig {
  workload::WorkloadConfig workload{};
  /// Per-simulation knobs: component specs, capacity, extensions, and
  /// sim::SimulationConfig::monomorphize (set `sim.monomorphize =
  /// false` to force the virtual-dispatch regression oracle).
  sim::SimulationConfig sim{};
  /// Independent replications; the paper averages ten runs per point.
  std::size_t runs = 10;
  std::uint64_t base_seed = 42;
  /// Run replications on a thread pool. Results are bit-identical to the
  /// serial path regardless (see core/sweep.h).
  bool parallel = true;
  /// Worker count when parallel: 0 = the process-wide shared pool
  /// (util::ThreadPool::default_threads()), 1 = inline serial, else a
  /// dedicated pool of that size.
  std::size_t threads = 0;
  /// Build one immutable net::PathModel per replication and share it
  /// across every sweep cell (means depend only on the replication seed;
  /// see docs/PERF.md). `false` rebuilds the model inside every
  /// simulation — bit-identical results, only slower; kept as a
  /// regression-test oracle and diagnostic escape hatch.
  bool share_path_models = true;
  /// How per-(alpha, run) workloads reach the simulations: materialized
  /// request vectors (O(num_requests) memory each) or regenerating
  /// streams (O(stream_chunk) memory; each simulation re-derives the
  /// byte-identical sequence from the shared per-(alpha, run) RNG
  /// snapshot). kAuto streams above workload::kAutoStreamThreshold
  /// requests. Results are bit-identical across all three modes.
  workload::StreamingMode streaming = workload::StreamingMode::kAuto;
};

/// Run `config.runs` independent replications (fresh workload and path
/// table per run, seeds derived from base_seed) under `scenario` and
/// average the measured-window metrics.
[[nodiscard]] AveragedMetrics run_experiment(const ExperimentConfig& config,
                                             const Scenario& scenario);

/// Convenience: express a cache size as a fraction of the *expected*
/// total unique object size (the paper's x-axis, "Cache Size (Percentage
/// of Unique Object Size)").
[[nodiscard]] double capacity_for_fraction(
    const workload::CatalogConfig& catalog, double fraction);

/// The paper's evaluated cache sizes, 4 GB .. 128 GB as fractions of the
/// ~790 GB corpus: {0.005, 0.01, 0.02, 0.04, 0.085, 0.169}.
[[nodiscard]] std::vector<double> paper_cache_fractions();

}  // namespace sc::core
