// Playback-buffer simulation under time-varying bandwidth (extension).
//
// The paper's service-delay formula [T r - T b - x]+ / b assumes the
// bandwidth b holds for the whole playout; under a *time-varying* path
// the client can also stall mid-stream when the buffer drains. This
// module simulates the playout buffer tick by tick: the cached prefix is
// available immediately (abundant last-mile bandwidth), the remainder
// arrives at the instantaneous origin bandwidth, playout consumes at the
// encoding rate. It reports the startup delay actually needed plus any
// rebuffering events -- a failure mode invisible to the static formula
// that the bench_stalls harness uses to compare policies.
#pragma once

#include <cstddef>
#include <functional>

#include "workload/object_catalog.h"

namespace sc::core {

/// Instantaneous origin bandwidth (bytes/second) at time `now_s` since
/// session start. Must be positive.
using BandwidthFn = std::function<double(double now_s)>;

struct PlaybackConfig {
  /// Simulation tick (seconds). Smaller = finer stall resolution.
  double tick_s = 1.0;
  /// Extra startup buffer beyond the static formula's delay (seconds of
  /// content); the paper's "buffer a few initial frames" headroom.
  double startup_headroom_s = 0.0;
  /// Abort safety bound: give up after this many times the object
  /// duration (prevents infinite loops on pathological bandwidth fns).
  double max_wall_multiple = 20.0;
};

struct PlaybackResult {
  double startup_delay_s = 0.0;  // wait before playout began
  std::size_t stall_count = 0;   // rebuffering events after startup
  double stall_time_s = 0.0;     // total paused time after startup
  double played_s = 0.0;         // content seconds delivered
  bool completed = false;        // full object played
  double wall_time_s = 0.0;      // startup + playing + stalls
};

/// Simulate playing `obj` with `cached_prefix_bytes` of its prefix in the
/// edge cache and origin bandwidth given by `bandwidth` (sampled once per
/// tick). The client starts playout once the buffered content covers
/// `startup_delay_s` of static-formula prefetch plus the configured
/// headroom, then stalls whenever the buffer empties and resumes after
/// re-buffering one tick of content.
[[nodiscard]] PlaybackResult simulate_playback(
    const workload::StreamObject& obj, double cached_prefix_bytes,
    const BandwidthFn& bandwidth, const PlaybackConfig& config = {});

}  // namespace sc::core
