// Fluent experiment construction on top of the component registry.
//
//   const auto metrics = core::ExperimentBuilder()
//                            .policy("hybrid:e=0.5")
//                            .estimator("oracle")
//                            .scenario("measured")
//                            .cache_fraction(0.04)
//                            .runs(10)
//                            .run();
//
// Spec setters validate eagerly through core::registry, so a typo fails
// at the call site with the list of registered alternatives, not deep
// inside a replication. `from_cli` wires the standard flag set shared by
// every bench and example binary (--policy / --estimator / --scenario /
// --cache-frac / ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/cli.h"

namespace sc::core {

class ExperimentBuilder {
 public:
  ExperimentBuilder() = default;

  /// Component specs (validated immediately; throws util::SpecError).
  ExperimentBuilder& policy(const std::string& spec);
  ExperimentBuilder& estimator(const std::string& spec);
  ExperimentBuilder& scenario(const std::string& spec);

  /// Cache size as a fraction of the expected total unique object size
  /// (the paper's x-axis); resolved against the catalog in config().
  ExperimentBuilder& cache_fraction(double fraction);
  ExperimentBuilder& cache_bytes(double bytes);

  ExperimentBuilder& objects(std::size_t n);
  ExperimentBuilder& requests(std::size_t n);
  ExperimentBuilder& zipf_alpha(double alpha);
  ExperimentBuilder& runs(std::size_t n);
  ExperimentBuilder& seed(std::uint64_t seed);
  ExperimentBuilder& parallel(bool on);
  /// Worker threads for the execution engine (0 = all cores, 1 =
  /// serial). Results are identical for every value; see core/sweep.h.
  ExperimentBuilder& threads(std::size_t n);
  ExperimentBuilder& warmup_fraction(double fraction);
  ExperimentBuilder& viewing(bool on);
  ExperimentBuilder& patching(bool on);
  /// Client session dynamics spec ("full", "exp:mean=1800", "empirical",
  /// "trace"; validated immediately — see sim/interactivity.h).
  ExperimentBuilder& interactivity(const std::string& spec);
  /// Deterministic fault plan ("fault:outage=120+60", "none"; validated
  /// immediately — see net/fault.h and docs/CHAOS.md).
  ExperimentBuilder& fault(const std::string& spec);

  /// Apply the shared flag set from a parsed command line. Flags not
  /// present keep their current values. `--e` (legacy Hybrid/PB-V
  /// tuning) is folded into the policy spec as its `e` parameter.
  ExperimentBuilder& from_cli(const util::Cli& cli);

  /// The flags from_cli understands (without leading dashes), for
  /// util::Cli::check_unknown.
  [[nodiscard]] static std::vector<std::string> cli_flags();

  /// Usage text for the shared flags plus the registry listing.
  [[nodiscard]] static std::string cli_help();

  /// Resolved configuration. A cache *fraction* resolves against the
  /// expected synthetic corpus size — or, under a trace-replay
  /// scenario, against the replayed catalog's actual total size (which
  /// loads the trace; the load is cached and shared with
  /// build_scenario()/run()).
  [[nodiscard]] ExperimentConfig config() const;

  /// The scenario this builder would run under. Built once per spec and
  /// cached, so a trace-replay scenario's file is read a single time.
  [[nodiscard]] Scenario build_scenario() const;

  [[nodiscard]] const std::string& scenario_spec() const noexcept {
    return scenario_;
  }

  /// run_experiment(config(), build_scenario()).
  [[nodiscard]] AveragedMetrics run() const;

 private:
  [[nodiscard]] const Scenario& build_scenario_ref() const;

  ExperimentConfig config_{};
  std::string scenario_ = "constant";
  std::optional<double> cache_fraction_;
  /// Lazily-built scenario for the current spec (invalidated by
  /// scenario()); lets config() see a trace scenario's replayed catalog
  /// without re-reading the file per call.
  mutable std::shared_ptr<const Scenario> built_scenario_;
};

}  // namespace sc::core
