// Sweep-scale parallel execution engine.
//
// A figure bench evaluates a grid of (policy, zipf-alpha, cache-fraction)
// cells, each averaged over `runs` paired-seed replications. Running the
// grid one run_experiment call at a time regenerates the same seeded
// workloads for every cell and leaves cores idle between sweep points.
// SweepRunner instead:
//
//   1. builds each (alpha, replication) workload exactly once and
//      shares it immutably across all policies and cache fractions as a
//      workload::RequestStream — a materialized vector for short
//      traces, a regenerating O(chunk)-memory stream for long ones
//      (ExperimentConfig::streaming) — the paired-seed design
//      guarantees every cell would have generated the identical
//      workload anyway;
//   2. flattens the whole grid into one (cell x replication) task list
//      executed on a single util::ThreadPool, so parallelism spans the
//      entire sweep instead of one sweep point.
//
// Results are BIT-IDENTICAL to the serial path: every task is a pure
// function of (workload, seeds, config), tasks write into preallocated
// slots, and per-cell reduction always folds replications in run order.
// Thread count and scheduling order therefore cannot affect any metric.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace sc::core {

/// One sweep grid cell. Fields left at their sentinel defaults inherit
/// the base ExperimentConfig's values.
struct SweepCell {
  /// Replacement policy spec ("" = base.sim.policy).
  std::string policy;
  /// Trace popularity skew (NaN / omit via negative = base alpha).
  double zipf_alpha = -1.0;
  /// Cache size as a fraction of the expected corpus size (negative =
  /// keep base.sim.cache_capacity_bytes as-is). Under a trace-replay
  /// scenario the fraction resolves against the replayed catalog's
  /// actual total size instead of the synthetic expectation.
  double cache_fraction = -1.0;
  /// Client interactivity spec ("" = base.sim.interactivity; see
  /// sim/interactivity.h) so one grid can sweep session-dynamics modes
  /// while sharing workloads across them.
  std::string interactivity;
  /// Fault-injection spec ("" = base.sim.fault; see net/fault.h, e.g.
  /// "fault:outage=120+60") so one grid can sweep chaos scenarios while
  /// sharing workloads and path models across them.
  std::string fault;
  /// Edge-fleet spec ("" = single-cell simulator; see fleet/fleet.h,
  /// e.g. "fleet:proxies=16,sharding=hash:vnodes=64,uplink_mbps=200").
  /// A fleet cell runs one sequential multi-proxy pass per replication
  /// over the same shared workload stream and path model; the cell's
  /// cache fraction is the fleet's *aggregate* budget (split evenly
  /// across proxies). Grid parallelism is across cells x replications,
  /// exactly as for single-cell sweeps, so results stay bit-identical
  /// at every --threads.
  std::string fleet;
};

/// What one SweepRunner::run call actually constructed (vs. the
/// cells x replications a naive grid would have built). Benches surface
/// these in their BENCH_*.json perf records.
struct SweepStats {
  /// Distinct (alpha, replication) workload streams built — each either
  /// a materialized vector or a regenerating stream, per
  /// ExperimentConfig::streaming (0 under a trace scenario, which
  /// shares one immutable stream across the grid).
  std::size_t workloads_generated = 0;
  /// Immutable net::PathModel instances built: one per replication when
  /// sharing (the default), one per simulation otherwise.
  std::size_t path_models_built = 0;
  /// Wall-clock seconds of each individual simulation, indexed by the
  /// deterministic (cell * runs + replication) task slot regardless of
  /// thread count or scheduling. Feeds the benches'
  /// --latency-percentiles reporting (stats::summarize_latencies).
  std::vector<double> sim_wall_s;
};

class SweepRunner {
 public:
  /// `base` supplies the workload shape, simulation config (estimator,
  /// warmup, viewing/patching), replication count, base seed, and the
  /// parallel/threads execution knobs shared by every cell.
  SweepRunner(ExperimentConfig base, Scenario scenario);

  /// Evaluate every cell; result[i] corresponds to cells[i]. Workloads
  /// are shared across cells per (alpha, replication) and path models
  /// per replication (unless base.share_path_models is off); execution
  /// uses base.parallel/base.threads (threads == 0 -> the process-wide
  /// shared pool, threads == 1 -> inline serial). `stats`, when given,
  /// receives construction counts for perf records.
  [[nodiscard]] std::vector<AveragedMetrics> run(
      const std::vector<SweepCell>& cells, SweepStats* stats = nullptr) const;

 private:
  ExperimentConfig base_;
  Scenario scenario_;
};

}  // namespace sc::core
