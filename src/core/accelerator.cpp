#include "core/accelerator.h"

#include "core/registry.h"

namespace sc::core {

Accelerator::Accelerator(const workload::Catalog& catalog,
                         net::BandwidthEstimator& estimator,
                         AcceleratorConfig config)
    : catalog_(&catalog),
      estimator_(&estimator),
      store_(config.capacity_bytes),
      policy_(registry::make_policy(config.policy, catalog, estimator)) {}

DeliveryPlan Accelerator::serve(ObjectId id, double now_s, double bandwidth) {
  const auto& obj = catalog_->object(id);
  DeliveryPlan plan;
  plan.cached_prefix_bytes = store_.cached(id);
  plan.outcome = sim::deliver(obj, bandwidth, plan.cached_prefix_bytes);
  plan.policy = policy_->name();
  policy_->on_access(id, now_s, store_);
  return plan;
}

void Accelerator::observe_transfer(net::PathId path, double throughput,
                                   double now_s) {
  estimator_->observe(path, throughput, now_s);
}

}  // namespace sc::core
