// Public facade: an edge-cache streaming accelerator.
//
// This is the API a deployment would embed in a caching proxy. It owns the
// partial-object store and the replacement policy, consults a bandwidth
// estimator, and for each request returns a *delivery plan*: how many
// bytes to serve from the cache, how many to fetch from the origin, and
// the delay/quality the client should expect. The trace-driven Simulator
// (src/sim) reproduces the paper's experiments; Accelerator is the online
// entry point examples and applications use.
#pragma once

#include <memory>
#include <string>

#include "cache/policy.h"
#include "cache/store.h"
#include "net/estimator.h"
#include "sim/delivery.h"
#include "workload/object_catalog.h"

namespace sc::core {

using workload::ObjectId;

struct AcceleratorConfig {
  double capacity_bytes = 0.0;
  /// Replacement policy spec resolved through core::registry
  /// ("pb", "hybrid:e=0.5", ...).
  std::string policy = "pb";
};

/// A client-facing delivery plan for one request.
struct DeliveryPlan {
  sim::ServiceOutcome outcome;   // delay, quality, byte split
  double cached_prefix_bytes = 0.0;  // prefix available when served
  std::string policy;
};

class Accelerator {
 public:
  /// `catalog` and `estimator` must outlive the accelerator.
  Accelerator(const workload::Catalog& catalog,
              net::BandwidthEstimator& estimator, AcceleratorConfig config);

  Accelerator(const Accelerator&) = delete;
  Accelerator& operator=(const Accelerator&) = delete;

  /// Serve a request for `id` at time `now_s` with instantaneous origin
  /// bandwidth `bandwidth` (bytes/second; in deployment this comes from
  /// the measurement module). Updates replacement state.
  [[nodiscard]] DeliveryPlan serve(ObjectId id, double now_s,
                                   double bandwidth);

  /// Feed the estimator a completed-transfer observation (passive
  /// measurement hook).
  void observe_transfer(net::PathId path, double throughput, double now_s);

  [[nodiscard]] const cache::PartialStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] double occupancy_bytes() const noexcept {
    return store_.used();
  }
  [[nodiscard]] double capacity_bytes() const noexcept {
    return store_.capacity();
  }
  [[nodiscard]] std::string policy_name() const { return policy_->name(); }

 private:
  const workload::Catalog* catalog_;
  net::BandwidthEstimator* estimator_;
  cache::PartialStore store_;
  std::unique_ptr<cache::CachePolicy> policy_;
};

}  // namespace sc::core
