#include "core/experiment.h"

#include <cmath>
#include <future>
#include <stdexcept>

#include "stats/summary.h"

namespace sc::core {

Scenario constant_scenario() {
  return Scenario{"constant", net::nlanr_base_model(),
                  net::constant_variability_model(),
                  net::VariationMode::kConstant};
}

Scenario nlanr_variability_scenario() {
  return Scenario{"nlanr-variability", net::nlanr_base_model(),
                  net::nlanr_variability_model(),
                  net::VariationMode::kIidRatio};
}

Scenario measured_variability_scenario() {
  return Scenario{"measured-variability", net::nlanr_base_model(),
                  net::measured_variability_model(),
                  net::VariationMode::kIidRatio};
}

Scenario timeseries_scenario(net::MeasuredPath path) {
  return Scenario{"timeseries-" + net::to_string(path),
                  net::nlanr_base_model(), net::measured_path_model(path),
                  net::VariationMode::kTimeSeries};
}

namespace {

struct RunOutcome {
  double traffic = 0.0;
  double delay = 0.0;
  double quality = 0.0;
  double value = 0.0;
  double hit = 0.0;
  double immediate = 0.0;
  double fill = 0.0;
  double occupancy = 0.0;
};

RunOutcome one_run(const ExperimentConfig& config, const Scenario& scenario,
                   std::size_t run_index) {
  util::Rng run_rng(util::splitmix64(config.base_seed + 0x9e37 * run_index));
  util::Rng workload_rng = run_rng.fork("workload");
  const workload::Workload w =
      workload::generate_workload(config.workload, workload_rng);

  sim::SimulationConfig sim_config = config.sim;
  sim_config.seed = run_rng.fork("paths").seed();
  sim_config.path_config.mode = scenario.mode;

  sim::Simulator simulator(w, scenario.base, scenario.ratio, sim_config);
  const sim::SimulationResult r = simulator.run();

  RunOutcome out;
  out.traffic = r.metrics.traffic_reduction_ratio();
  out.delay = r.metrics.average_delay_s();
  out.quality = r.metrics.average_quality();
  out.value = r.metrics.total_added_value();
  out.hit = r.metrics.hit_ratio();
  out.immediate = r.metrics.immediate_ratio();
  out.fill = r.metrics.fill_bytes();
  out.occupancy = r.final_occupancy_bytes;
  return out;
}

}  // namespace

AveragedMetrics run_experiment(const ExperimentConfig& config,
                               const Scenario& scenario) {
  if (config.runs == 0) {
    throw std::invalid_argument("run_experiment: runs == 0");
  }
  std::vector<RunOutcome> outcomes(config.runs);
  if (config.parallel && config.runs > 1) {
    std::vector<std::future<RunOutcome>> futures;
    futures.reserve(config.runs);
    for (std::size_t r = 0; r < config.runs; ++r) {
      futures.push_back(std::async(std::launch::async, one_run,
                                   std::cref(config), std::cref(scenario), r));
    }
    for (std::size_t r = 0; r < config.runs; ++r) {
      outcomes[r] = futures[r].get();
    }
  } else {
    for (std::size_t r = 0; r < config.runs; ++r) {
      outcomes[r] = one_run(config, scenario, r);
    }
  }

  stats::RunningStats traffic, delay, quality, value, hit, immediate, fill,
      occupancy;
  for (const auto& o : outcomes) {
    traffic.add(o.traffic);
    delay.add(o.delay);
    quality.add(o.quality);
    value.add(o.value);
    hit.add(o.hit);
    immediate.add(o.immediate);
    fill.add(o.fill);
    occupancy.add(o.occupancy);
  }

  AveragedMetrics m;
  m.runs = config.runs;
  m.traffic_reduction = traffic.mean();
  m.traffic_reduction_sd = traffic.stddev();
  m.delay_s = delay.mean();
  m.delay_s_sd = delay.stddev();
  m.quality = quality.mean();
  m.quality_sd = quality.stddev();
  m.added_value = value.mean();
  m.added_value_sd = value.stddev();
  m.hit_ratio = hit.mean();
  m.immediate_ratio = immediate.mean();
  m.fill_bytes = fill.mean();
  m.occupancy_bytes = occupancy.mean();
  return m;
}

double capacity_for_fraction(const workload::CatalogConfig& catalog,
                             double fraction) {
  if (fraction < 0) {
    throw std::invalid_argument("capacity_for_fraction: negative fraction");
  }
  // Analytic expected object size: E[duration] * bitrate. The lognormal
  // clamp in the generator shifts this by <2%, which only relabels the
  // x-axis slightly.
  const double mean_minutes =
      std::exp(catalog.duration_mu +
               catalog.duration_sigma * catalog.duration_sigma / 2.0);
  const double expected_total = static_cast<double>(catalog.num_objects) *
                                mean_minutes * 60.0 * catalog.bitrate();
  return fraction * expected_total;
}

std::vector<double> paper_cache_fractions() {
  // 4, 8, 16, 32, 64, 128 GB against the ~790 GB corpus.
  return {0.005, 0.010, 0.020, 0.040, 0.080, 0.169};
}

}  // namespace sc::core
