#include "core/experiment.h"

#include <cmath>
#include <stdexcept>

#include "core/sweep.h"

namespace sc::core {

Scenario constant_scenario() {
  return Scenario{"constant", net::nlanr_base_model(),
                  net::constant_variability_model(),
                  net::VariationMode::kConstant, nullptr, nullptr};
}

Scenario nlanr_variability_scenario() {
  return Scenario{"nlanr-variability", net::nlanr_base_model(),
                  net::nlanr_variability_model(),
                  net::VariationMode::kIidRatio, nullptr, nullptr};
}

Scenario measured_variability_scenario() {
  return Scenario{"measured-variability", net::nlanr_base_model(),
                  net::measured_variability_model(),
                  net::VariationMode::kIidRatio, nullptr, nullptr};
}

Scenario timeseries_scenario(net::MeasuredPath path) {
  return Scenario{"timeseries-" + net::to_string(path),
                  net::nlanr_base_model(), net::measured_path_model(path),
                  net::VariationMode::kTimeSeries, nullptr, nullptr};
}

AveragedMetrics run_experiment(const ExperimentConfig& config,
                               const Scenario& scenario) {
  if (config.runs == 0) {
    throw std::invalid_argument("run_experiment: runs == 0");
  }
  // A single-cell sweep: replications share the engine's task list (and
  // its pool), and callers that sweep many configurations should use
  // SweepRunner directly to additionally share workloads across cells.
  SweepRunner runner(config, scenario);
  return runner.run({SweepCell{}}).front();
}

double capacity_for_fraction(const workload::CatalogConfig& catalog,
                             double fraction) {
  if (fraction < 0) {
    throw std::invalid_argument("capacity_for_fraction: negative fraction");
  }
  // Analytic expected object size: E[duration] * bitrate. The lognormal
  // clamp in the generator shifts this by <2%, which only relabels the
  // x-axis slightly.
  const double mean_minutes =
      std::exp(catalog.duration_mu +
               catalog.duration_sigma * catalog.duration_sigma / 2.0);
  const double expected_total = static_cast<double>(catalog.num_objects) *
                                mean_minutes * 60.0 * catalog.bitrate();
  return fraction * expected_total;
}

std::vector<double> paper_cache_fractions() {
  // 4, 8, 16, 32, 64, 128 GB against the ~790 GB corpus.
  return {0.005, 0.010, 0.020, 0.040, 0.080, 0.169};
}

}  // namespace sc::core
