#include "util/rng.h"

namespace sc::util {

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork() {
  ++fork_counter_;
  return Rng(splitmix64(seed_ ^ splitmix64(fork_counter_)));
}

Rng Rng::fork(std::string_view tag) const {
  return Rng(splitmix64(seed_ ^ fnv1a64(tag)));
}

}  // namespace sc::util
