// Tiny leveled logger. The simulator is a library, so logging defaults to
// warnings-only; harnesses can raise verbosity for debugging.
#pragma once

#include <sstream>
#include <string>

namespace sc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one log line to stderr (thread-safe at the line level).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
/// RAII line builder: streams into a buffer, emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

#define SC_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::sc::util::log_level())) { \
  } else                                                   \
    ::sc::util::detail::LogStream(level)

#define SC_DEBUG SC_LOG(::sc::util::LogLevel::kDebug)
#define SC_INFO SC_LOG(::sc::util::LogLevel::kInfo)
#define SC_WARN SC_LOG(::sc::util::LogLevel::kWarn)
#define SC_ERROR SC_LOG(::sc::util::LogLevel::kError)

}  // namespace sc::util
