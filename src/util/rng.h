// Deterministic random-number utilities.
//
// All stochastic components of the library draw from an explicitly seeded
// Rng so that every experiment is reproducible run-to-run. `Rng::fork`
// derives statistically independent child streams (for e.g. per-run or
// per-path generators) without the children sharing state with the parent.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace sc::util {

/// Wrapper around a 64-bit Mersenne Twister with convenience draws and
/// deterministic stream forking.
class Rng {
 public:
  using engine_type = std::mt19937_64;

  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Seed used to construct this stream.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Lognormal: exp(N(mu, sigma^2)).
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Derive an independent child stream. Children created with distinct
  /// tags (or successive calls) have distinct, reproducible seeds.
  [[nodiscard]] Rng fork();

  /// Derive an independent child stream keyed by a string tag, so the
  /// child's sequence does not depend on fork ordering.
  [[nodiscard]] Rng fork(std::string_view tag) const;

  [[nodiscard]] engine_type& engine() noexcept { return engine_; }

 private:
  engine_type engine_;
  std::uint64_t seed_;
  std::uint64_t fork_counter_ = 0;
};

/// Stable 64-bit FNV-1a hash (used for tag-keyed stream derivation).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// SplitMix64 finalizer; good avalanche for seed derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

}  // namespace sc::util
