// Minimal CSV writing/reading used by the benchmark harnesses to persist
// figure/table series next to the binaries.
#pragma once

#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace sc::util {

/// Streaming CSV writer. Quotes fields containing separators; numeric
/// overloads format with enough precision to round-trip doubles.
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(std::initializer_list<std::string> names) {
    row(std::vector<std::string>(names));
  }

  void row(const std::vector<std::string>& fields);

  /// Append one field to the current row.
  CsvWriter& field(const std::string& v);
  CsvWriter& field(double v);
  CsvWriter& field(long long v);
  CsvWriter& field(std::size_t v) { return field(static_cast<long long>(v)); }
  CsvWriter& field(int v) { return field(static_cast<long long>(v)); }

  /// Terminate the current row.
  void endrow();

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::ofstream out_;
  std::filesystem::path path_;
  bool row_open_ = false;
};

/// Parsed CSV table (no type inference; all fields are strings).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Read a CSV file written by CsvWriter. First row is the header.
[[nodiscard]] CsvTable read_csv(const std::filesystem::path& path);

/// Escape one CSV field (quote if it contains comma/quote/newline).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace sc::util
