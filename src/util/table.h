// Console table and ASCII chart rendering for the benchmark harnesses.
//
// The paper's exhibits are line plots and surface plots; the bench binaries
// print the underlying series as aligned tables plus a coarse ASCII chart so
// the shape (who wins, where crossovers fall) is visible in a terminal.
#pragma once

#include <string>
#include <vector>

namespace sc::util {

/// Fixed-precision, right-aligned console table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Append one row; the number of cells must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Format a double with the given precision (helper for callers).
  [[nodiscard]] static std::string num(double v, int precision = 4);

  /// Render as an aligned ASCII table with a header rule.
  [[nodiscard]] std::string str() const;

  /// Render to stdout.
  void print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named series for an AsciiChart.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Render several (x, y) series on a shared-axis character grid.
/// Each series is drawn with its own glyph; a legend follows the grid.
[[nodiscard]] std::string ascii_chart(const std::vector<Series>& series,
                                      int width = 72, int height = 18,
                                      const std::string& title = "",
                                      const std::string& x_label = "",
                                      const std::string& y_label = "");

}  // namespace sc::util
