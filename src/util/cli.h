// Small command-line flag parser shared by examples and bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` forms.
// Repeated flags resolve deterministically to the *last* occurrence on
// the command line, regardless of which form each occurrence uses
// (`--runs=3 --runs 5` yields "5"). Unknown flags are reported;
// positional arguments are collected in order.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sc::util {

/// Parse a humanized whole-number count: plain digits ("50000"),
/// metric suffixes k/M/G/B case-insensitively ("250k", "100M", "2G"),
/// and scientific notation ("1e8", "2.5e7"). Fractional values are
/// accepted only when the scaled result is a whole number ("2.5M" ok,
/// "2.5k7" or "0.5" not). Throws std::invalid_argument with `what`
/// naming the offending text.
[[nodiscard]] std::size_t parse_count(const std::string& text);

class Cli {
 public:
  /// Parse argv. Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name, or nullopt if absent (or present without a value).
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] std::string get_or(const std::string& name,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_or(const std::string& name, double fallback) const;
  [[nodiscard]] long long get_or(const std::string& name,
                                 long long fallback) const;
  [[nodiscard]] bool get_or(const std::string& name, bool fallback) const;

  /// Value of --name through parse_count ("250k", "1e8", ...), or
  /// `fallback` when absent. Parse errors are rethrown with the flag
  /// name prepended ("--requests: ...").
  [[nodiscard]] std::size_t get_count(const std::string& name,
                                      std::size_t fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names of all flags that were passed (for unknown-flag diagnostics).
  [[nodiscard]] std::vector<std::string> flag_names() const;

  /// Throw std::invalid_argument if any passed flag is not in `known`,
  /// suggesting the closest known flag ("unknown flag --polciy; did you
  /// mean --policy?"). Call after wiring all flags a binary accepts.
  void check_unknown(const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;  // "" means bare boolean flag
  std::vector<std::string> positional_;
};

/// Run `run(argc, argv)`, mapping any uncaught std::exception (flag
/// typos, bad specs, ...) to "error: ..." on stderr and exit code 2
/// instead of std::terminate. Shared by every bench/example main().
[[nodiscard]] int guarded_main(int (*run)(int, char**), int argc,
                               char** argv);

}  // namespace sc::util
