// Component spec strings: the textual construction grammar shared by
// policies, bandwidth estimators, and scenarios.
//
// A spec is `name[:key=value[,key=value]...]`, e.g.
//
//   "pb"                         "hybrid:e=0.5"
//   "ewma:alpha=0.3,prior_kbps=50"   "probe:interval_s=3600"
//   "timeseries:path=taiwan"
//
// Names and keys are case-insensitive (canonicalized to lower case);
// values keep their spelling. Parsing is purely lexical — which names
// and parameters exist is the registry's business (core/registry.h).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sc::util {

/// Raised for malformed spec text, unknown names/parameters, and badly
/// typed parameter values. Derives from std::invalid_argument so callers
/// of the pre-spec APIs keep catching what they always caught.
class SpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A parsed component spec: canonical lower-case name plus ordered
/// key=value parameters.
struct Spec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;

  /// Parse `text`. Throws SpecError on empty names, malformed or empty
  /// `key=value` segments, and duplicate keys.
  [[nodiscard]] static Spec parse(const std::string& text);

  /// Canonical form: lower-case name/keys, params in original order.
  /// `to_string(parse(s))` is a fixed point of parse.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool has(std::string_view key) const;

  /// Raw value of `key`, or nullopt when absent.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Typed lookups; throw SpecError when the value does not parse as the
  /// requested type.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] long long get_int(std::string_view key,
                                  long long fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Throw SpecError when a parameter outside `known` was given,
  /// listing the valid parameters (or "takes no parameters").
  void require_only(const std::vector<std::string_view>& known) const;
};

/// Lower-case copy of `s` (ASCII).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Levenshtein distance (insert/delete/substitute, unit costs).
[[nodiscard]] std::size_t edit_distance(std::string_view a,
                                        std::string_view b);

/// The candidate closest to `input` (case-insensitive) if it is within
/// `max_distance` edits; used for "did you mean" diagnostics.
[[nodiscard]] std::optional<std::string> closest_match(
    std::string_view input, const std::vector<std::string>& candidates,
    std::size_t max_distance = 2);

/// Comma-joined list for error messages ("a, b, c").
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view separator = ", ");

}  // namespace sc::util
