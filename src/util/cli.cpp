#include "util/cli.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/spec.h"

namespace sc::util {

std::size_t parse_count(const std::string& text) {
  const auto fail = [&text]() -> std::size_t {
    throw std::invalid_argument(
        "\"" + text +
        "\": expected a whole-number count like 50000, 250k, 100M, or 1e8");
  };
  if (text.empty()) return fail();
  double scale = 1.0;
  std::string number = text;
  switch (number.back()) {
    case 'k':
    case 'K':
      scale = 1e3;
      break;
    case 'm':
    case 'M':
      scale = 1e6;
      break;
    case 'g':
    case 'G':
    case 'b':
    case 'B':
      scale = 1e9;
      break;
    default:
      break;
  }
  if (scale != 1.0) number.pop_back();
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(number, &consumed);
  } catch (const std::exception&) {
    return fail();
  }
  if (consumed != number.size()) return fail();
  value *= scale;
  // Reject negatives, non-integers ("0.5", "1.5k" -> 1500 is fine but
  // "1.0005k" is not), and values past what size_t holds exactly.
  if (!(value >= 0.0) || value != std::floor(value) || value > 1e18) {
    return fail();
  }
  return static_cast<std::size_t>(value);
}

Cli::Cli(int argc, const char* const* argv) {
  if (argc < 1) throw std::invalid_argument("Cli: empty argv");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg.empty()) {  // bare "--": rest is positional
      for (++i; i < argc; ++i) positional_.emplace_back(argv[i]);
      break;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::optional<std::string> Cli::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& name,
                        const std::string& fallback) const {
  return get(name).value_or(fallback);
}

double Cli::get_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  // std::stod alone would abort with a raw std::invalid_argument /
  // std::out_of_range naming no flag, and would silently accept
  // trailing junk ("1.5x"); rethrow in the flag-naming SpecError style
  // the spec grammar uses everywhere else.
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(*v, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != v->size() || v->empty()) {
    throw SpecError("--" + name + ": \"" + *v + "\" is not a number");
  }
  return value;
}

long long Cli::get_or(const std::string& name, long long fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  std::size_t consumed = 0;
  long long value = 0;
  try {
    value = std::stoll(*v, &consumed);
  } catch (const std::out_of_range&) {
    throw SpecError("--" + name + ": \"" + *v +
                    "\" is out of range for an integer");
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != v->size() || v->empty()) {
    throw SpecError("--" + name + ": \"" + *v + "\" is not an integer");
  }
  return value;
}

std::size_t Cli::get_count(const std::string& name,
                           std::size_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return parse_count(*v);
  } catch (const std::invalid_argument& ex) {
    throw std::invalid_argument("--" + name + ": " + ex.what());
  }
}

bool Cli::get_or(const std::string& name, bool fallback) const {
  if (!has(name)) return fallback;
  const auto v = get(name);
  if (!v) return true;  // bare flag
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

std::vector<std::string> Cli::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [k, _] : flags_) names.push_back(k);
  return names;
}

void Cli::check_unknown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    std::string message = "unknown flag --" + name;
    if (const auto suggestion = closest_match(name, known)) {
      message += "; did you mean --" + *suggestion + "?";
    } else {
      std::vector<std::string> dashed;
      dashed.reserve(known.size());
      for (const auto& k : known) dashed.push_back("--" + k);
      message += " (known flags: " + join(dashed) + ")";
    }
    throw std::invalid_argument(message);
  }
}

int guarded_main(int (*run)(int, char**), int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
}

}  // namespace sc::util
