#include "util/csv.h"

#include <iomanip>
#include <stdexcept>

namespace sc::util {

CsvWriter::CsvWriter(const std::filesystem::path& path)
    : out_(path), path_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
}

CsvWriter::~CsvWriter() {
  if (row_open_) out_ << '\n';
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (row_open_) endrow();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::field(const std::string& v) {
  if (row_open_) out_ << ',';
  out_ << csv_escape(v);
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  std::ostringstream ss;
  ss << std::setprecision(12) << v;
  return field(ss.str());
}

CsvWriter& CsvWriter::field(long long v) { return field(std::to_string(v)); }

void CsvWriter::endrow() {
  out_ << '\n';
  row_open_ = false;
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

CsvTable read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_csv: cannot open " + path.string());
  }
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  return table;
}

}  // namespace sc::util
