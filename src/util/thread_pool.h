// Fixed-size worker pool with a work-sharing parallel_for.
//
// The sweep execution engine (core::SweepRunner) flattens an entire
// figure sweep into one task list and runs it here, instead of spawning
// an unbounded std::async thread per replication. Design points:
//
//   - parallel_for's *caller participates* in draining the loop, so it
//     is safe to nest parallel_for inside a pool task (the inner loop
//     completes on the calling worker even when every other worker is
//     busy) and it degrades gracefully to serial on a 1-core host.
//   - Iterations are claimed from an atomic counter, not enqueued one
//     task per index, so a 100k-cell loop costs O(threads) allocations.
//   - The first exception thrown by an iteration aborts the remaining
//     unstarted iterations and is rethrown on the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sc::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (at
  /// least 1). The workers are spawned immediately and live until
  /// destruction.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue an independent fire-and-forget task. Tasks must not outlive
  /// the pool; the destructor drains the queue before joining.
  void submit(std::function<void()> task);

  /// Run `fn(i)` for every i in [0, n), distributing iterations over the
  /// workers *and* the calling thread. Returns after every iteration has
  /// finished. Empty ranges return immediately. If an iteration throws,
  /// remaining unstarted iterations are skipped and the first exception
  /// is rethrown here once in-flight iterations have drained.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// As parallel_for, but `fn(slot, i)` additionally receives the worker
  /// slot executing the iteration: 0 for the calling thread, 1..
  /// thread_count() for pool workers. Within one call a slot is driven
  /// by exactly one thread at a time, so slot-indexed scratch state
  /// (e.g. core::SweepRunner's per-worker sim::SimulationArena) needs no
  /// synchronization. Slots are at most `slot_count()`.
  void parallel_for_slots(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Upper bound (exclusive) on the slot index parallel_for_slots passes:
  /// the workers plus the calling thread.
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Process-wide pool, created on first use with `default_threads()`
  /// workers. The sweep engine and run_experiment share it so nested
  /// parallelism never oversubscribes the machine.
  [[nodiscard]] static ThreadPool& shared();

  /// Worker count `shared()` is (or will be) built with. Setting it after
  /// the shared pool exists rebuilds the pool, which must be idle. Note
  /// the bench `--threads=N` flag does not go through here: an explicit
  /// N > 1 gets a dedicated pool inside the sweep engine; this knob only
  /// resizes what `--threads=0` (the shared pool) resolves to.
  static void set_default_threads(std::size_t threads);
  [[nodiscard]] static std::size_t default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace sc::util
