#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sc::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table: row size mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
          << cells[c];
    }
    out << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string ascii_chart(const std::vector<Series>& series, int width,
                        int height, const std::string& title,
                        const std::string& x_label,
                        const std::string& y_label) {
  static constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};
  if (series.empty() || width < 8 || height < 4) return {};

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& s : series) {
    for (double v : s.x) { xmin = std::min(xmin, v); xmax = std::max(xmax, v); }
    for (double v : s.y) { ymin = std::min(ymin, v); ymax = std::max(ymax, v); }
  }
  if (!std::isfinite(xmin) || !std::isfinite(ymin)) return {};
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      int cx = static_cast<int>(std::lround((s.x[i] - xmin) / (xmax - xmin) *
                                            (width - 1)));
      int cy = static_cast<int>(std::lround((s.y[i] - ymin) / (ymax - ymin) *
                                            (height - 1)));
      cx = std::clamp(cx, 0, width - 1);
      cy = std::clamp(cy, 0, height - 1);
      grid[height - 1 - cy][cx] = glyph;
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  if (!y_label.empty()) out << y_label << '\n';
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10.3g +", ymax);
  out << buf << grid[0] << '\n';
  for (int r = 1; r + 1 < height; ++r) out << "           |" << grid[r] << '\n';
  std::snprintf(buf, sizeof(buf), "%10.3g +", ymin);
  out << buf << grid[height - 1] << '\n';
  out << "            ";
  std::snprintf(buf, sizeof(buf), "%-10.3g", xmin);
  out << buf << std::string(std::max(0, width - 20), ' ');
  std::snprintf(buf, sizeof(buf), "%10.3g", xmax);
  out << buf << '\n';
  if (!x_label.empty())
    out << "            " << std::string(std::max(0, width / 2 - 8), ' ')
        << x_label << '\n';
  out << "  legend: ";
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (si) out << "  ";
    out << kGlyphs[si % sizeof(kGlyphs)] << '=' << series[si].name;
  }
  out << '\n';
  return out.str();
}

}  // namespace sc::util
