#include "util/spec.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace sc::util {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

Spec Spec::parse(const std::string& text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) {
    throw SpecError("empty spec (expected \"name[:key=value,...]\")");
  }
  const auto colon = trimmed.find(':');
  Spec spec;
  spec.name = to_lower(trim(trimmed.substr(0, colon)));
  if (spec.name.empty()) {
    throw SpecError("spec \"" + std::string(trimmed) + "\" has an empty name");
  }
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = trimmed.substr(colon + 1);
  while (true) {
    const auto comma = rest.find(',');
    const std::string_view segment = trim(rest.substr(0, comma));
    const auto eq = segment.find('=');
    if (segment.empty() || eq == 0 || eq == std::string_view::npos ||
        eq + 1 == segment.size()) {
      throw SpecError("spec \"" + std::string(trimmed) +
                      "\": malformed parameter \"" + std::string(segment) +
                      "\" (expected key=value)");
    }
    std::string key = to_lower(trim(segment.substr(0, eq)));
    if (spec.has(key)) {
      throw SpecError("spec \"" + std::string(trimmed) +
                      "\": duplicate parameter \"" + key + "\"");
    }
    spec.params.emplace_back(std::move(key),
                             std::string(trim(segment.substr(eq + 1))));
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  return spec;
}

std::string Spec::to_string() const {
  std::string out = name;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += params[i].first;
    out += '=';
    out += params[i].second;
  }
  return out;
}

bool Spec::has(std::string_view key) const {
  return get(key).has_value();
}

std::optional<std::string> Spec::get(std::string_view key) const {
  const std::string lowered = to_lower(key);
  for (const auto& [k, v] : params) {
    if (k == lowered) return v;
  }
  return std::nullopt;
}

std::string Spec::get_string(std::string_view key,
                             const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Spec::get_double(std::string_view key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    throw SpecError("spec \"" + to_string() + "\": parameter \"" +
                    to_lower(key) + "\" expects a number, got \"" + *v + "\"");
  }
  return parsed;
}

long long Spec::get_int(std::string_view key, long long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    throw SpecError("spec \"" + to_string() + "\": parameter \"" +
                    to_lower(key) + "\" expects an integer, got \"" + *v +
                    "\"");
  }
  return parsed;
}

bool Spec::get_bool(std::string_view key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const std::string lowered = to_lower(*v);
  if (lowered == "1" || lowered == "true" || lowered == "yes" ||
      lowered == "on") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "no" ||
      lowered == "off") {
    return false;
  }
  throw SpecError("spec \"" + to_string() + "\": parameter \"" +
                  to_lower(key) + "\" expects a boolean, got \"" + *v + "\"");
}

void Spec::require_only(const std::vector<std::string_view>& known) const {
  for (const auto& [key, value] : params) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::string valid;
    if (known.empty()) {
      valid = "\"" + name + "\" takes no parameters";
    } else {
      valid = "valid parameters for \"" + name + "\": " +
              join(std::vector<std::string>(known.begin(), known.end()));
    }
    throw SpecError("spec \"" + to_string() + "\": unknown parameter \"" +
                    key + "\" (" + valid + ")");
  }
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

std::optional<std::string> closest_match(
    std::string_view input, const std::vector<std::string>& candidates,
    std::size_t max_distance) {
  const std::string lowered = to_lower(input);
  std::optional<std::string> best;
  std::size_t best_distance = max_distance + 1;
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(lowered, to_lower(candidate));
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

}  // namespace sc::util
