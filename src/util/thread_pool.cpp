#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

namespace sc::util {

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::atomic<std::size_t> g_default_threads{0};  // 0 = hardware concurrency

std::mutex& shared_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& shared_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_slots(n,
                     [&fn](std::size_t /*slot*/, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_slots(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0, 0);
    return;
  }

  // Shared loop state. Heap-allocated (shared_ptr) because helper tasks
  // may still sit in the queue after the caller returns; late runners see
  // next >= n and exit without touching fn.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    std::atomic<bool> aborted{false};
    std::size_t n = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::mutex m;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->fn = &fn;

  // Each participating thread drives the loop under a distinct slot id
  // (caller 0, helper h -> h + 1), so `fn` may index per-slot scratch
  // state without locks: a slot is never driven concurrently.
  const auto drive = [](const std::shared_ptr<LoopState>& s,
                        std::size_t slot) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) break;
      if (!s->aborted.load(std::memory_order_relaxed)) {
        try {
          (*s->fn)(slot, i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(s->m);
          if (!s->error) s->error = std::current_exception();
          s->aborted.store(true, std::memory_order_relaxed);
        }
      }
      // Every index is claimed exactly once, so `finished` hits n exactly
      // once; that claimant wakes the caller.
      if (s->finished.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        std::lock_guard<std::mutex> lock(s->m);
        s->done.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min(thread_count(), n - 1);  // caller drives too
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([state, drive, h] { drive(state, h + 1); });
  }
  drive(state, 0);

  std::unique_lock<std::mutex> lock(state->m);
  state->done.wait(lock, [&] {
    return state->finished.load(std::memory_order_acquire) == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
  std::lock_guard<std::mutex> lock(shared_pool_mutex());
  auto& slot = shared_pool_slot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(g_default_threads.load());
  }
  return *slot;
}

void ThreadPool::set_default_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(shared_pool_mutex());
  g_default_threads.store(threads);
  auto& slot = shared_pool_slot();
  if (slot && slot->thread_count() != resolve_threads(threads)) {
    slot.reset();  // rebuilt lazily by the next shared() call
  }
}

std::size_t ThreadPool::default_threads() {
  return resolve_threads(g_default_threads.load());
}

}  // namespace sc::util
