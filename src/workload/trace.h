// Trace persistence: write/read a workload to a plain-text file so that
// experiments can be replayed outside the generator (and so external
// traces can be imported in the paper's format: one request per line).
//
// Replay a written trace from any bench/example binary with
// `--scenario=trace:file=PATH` (see core/registry.h): the file is
// loaded once per sweep grid and shared immutably across every cell.
// `trace:file=PATH,stream=1` keeps only the catalog resident and
// re-streams the request records from disk chunk-wise inside each
// simulation (O(chunk) memory; see workload/request_stream.h).
#pragma once

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace sc::workload {

/// File format (text, line-oriented):
///   line 1:    "streamcache-trace v2 <num_objects> <num_requests>"
///   objects:   "O <id> <duration_s> <bitrate> <value> <path>"
///   requests:  "R <time_s> <object_id> <view_s>"
/// Objects appear before requests; requests are in non-decreasing time.
/// `view_s` is the session's recorded viewing duration (seconds);
/// -1 means the client watched the whole stream (Request::kFullSession).
/// Readers also accept the v1 format, whose request records carry no
/// view_s column (every v1 session is a full session).
void write_trace(const Workload& workload, const std::filesystem::path& path);

/// Incremental trace parser: reads the header eagerly, then streams
/// records on demand so multi-GB traces replay in O(chunk) memory
/// instead of one giant vector. All validation (and its error wording)
/// matches the original whole-file read_trace: bad magic, unsupported
/// versions, non-dense object ids, out-of-catalog path/object ids, time
/// regressions, and truncated records fail as they are encountered; the
/// header-vs-actual record count check fires when the reader hits EOF.
/// Move-only (owns the input stream).
class TraceReader {
 public:
  enum ObjectHandling {
    /// Collect object records for take_objects() (read_trace).
    kKeepObjects,
    /// Validate and discard them (re-streaming cursors whose catalog was
    /// already built by a previous pass; skips the per-object storage).
    kSkipObjects,
  };

  /// Opens and parses the header. Throws std::runtime_error with the
  /// file named on open failure or malformed header.
  explicit TraceReader(const std::filesystem::path& path,
                       ObjectHandling objects = kKeepObjects);

  [[nodiscard]] std::size_t declared_objects() const noexcept {
    return num_objects_;
  }
  [[nodiscard]] std::size_t declared_requests() const noexcept {
    return num_requests_;
  }

  /// Stream up to `n` request records into the SoA output arrays (each
  /// sized >= n). Returns the number read; 0 exactly once, at a clean
  /// end of file (after the record count check passed). Object records
  /// encountered along the way are validated and absorbed, never
  /// emitted. Throws std::runtime_error on malformed input, naming the
  /// file and the offending record.
  std::size_t read_requests(double* time_s, ObjectId* object, double* view_s,
                            std::size_t n);

  /// The collected object records (kKeepObjects mode), moved out. Call
  /// after read_requests returned 0 so late object records (legal in
  /// the original reader) are included.
  [[nodiscard]] std::vector<StreamObject> take_objects() {
    return std::move(objects_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) const;
  void parse_object_record();
  void finish();

  std::filesystem::path path_;
  std::ifstream in_;
  ObjectHandling handling_;
  bool has_view_ = false;
  bool done_ = false;
  std::size_t num_objects_ = 0;
  std::size_t num_requests_ = 0;
  std::size_t objects_seen_ = 0;
  std::size_t requests_seen_ = 0;
  double last_time_ = 0.0;
  std::string tag_;  // reused record-tag scratch
  std::vector<StreamObject> objects_;
};

/// Parse a trace file written by write_trace (v1 or v2). Throws
/// std::runtime_error on malformed input — bad magic, out-of-range
/// object ids, time regressions, truncated files — naming the file and
/// the offending record. Built on TraceReader, so records stream
/// through a fixed-size chunk instead of an intermediate copy.
[[nodiscard]] Workload read_trace(const std::filesystem::path& path);

}  // namespace sc::workload
