// Trace persistence: write/read a workload to a plain-text file so that
// experiments can be replayed outside the generator (and so external
// traces can be imported in the paper's format: one request per line).
//
// Replay a written trace from any bench/example binary with
// `--scenario=trace:file=PATH` (see core/registry.h): the file is
// loaded once per sweep grid and shared immutably across every cell.
#pragma once

#include <filesystem>

#include "workload/generator.h"

namespace sc::workload {

/// File format (text, line-oriented):
///   line 1:    "streamcache-trace v2 <num_objects> <num_requests>"
///   objects:   "O <id> <duration_s> <bitrate> <value> <path>"
///   requests:  "R <time_s> <object_id> <view_s>"
/// Objects appear before requests; requests are in non-decreasing time.
/// `view_s` is the session's recorded viewing duration (seconds);
/// -1 means the client watched the whole stream (Request::kFullSession).
/// Readers also accept the v1 format, whose request records carry no
/// view_s column (every v1 session is a full session).
void write_trace(const Workload& workload, const std::filesystem::path& path);

/// Parse a trace file written by write_trace (v1 or v2). Throws
/// std::runtime_error on malformed input — bad magic, out-of-range
/// object ids, time regressions, truncated files — naming the file and
/// the offending record.
[[nodiscard]] Workload read_trace(const std::filesystem::path& path);

}  // namespace sc::workload
