// Trace persistence: write/read a workload to a plain-text file so that
// experiments can be replayed outside the generator (and so external
// traces can be imported in the paper's format: one request per line).
#pragma once

#include <filesystem>

#include "workload/generator.h"

namespace sc::workload {

/// File format (text, line-oriented):
///   line 1:    "streamcache-trace v1 <num_objects> <num_requests>"
///   objects:   "O <id> <duration_s> <bitrate> <value> <path>"
///   requests:  "R <time_s> <object_id>"
/// Objects appear before requests; requests are in non-decreasing time.
void write_trace(const Workload& workload, const std::filesystem::path& path);

/// Parse a trace file written by write_trace. Throws std::runtime_error on
/// malformed input (bad magic, out-of-range object ids, time regressions).
[[nodiscard]] Workload read_trace(const std::filesystem::path& path);

}  // namespace sc::workload
