#include "workload/workload_stats.h"

#include <algorithm>
#include <cmath>

#include "stats/summary.h"

namespace sc::workload {

std::vector<std::size_t> request_counts(const Workload& w) {
  std::vector<std::size_t> counts(w.catalog.size(), 0);
  for (const auto& r : w.requests) counts[r.object]++;
  return counts;
}

ZipfFit fit_zipf(const std::vector<std::size_t>& counts,
                 std::size_t min_hits) {
  // Sort counts descending: empirical rank r has frequency f_r.
  std::vector<std::size_t> sorted(counts);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  std::vector<double> xs, ys;
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    if (sorted[r] < min_hits) break;
    xs.push_back(std::log(static_cast<double>(r + 1)));
    ys.push_back(std::log(static_cast<double>(sorted[r])));
  }
  ZipfFit fit;
  if (xs.size() < 3) return fit;

  const double mx = stats::mean_of(xs);
  const double my = stats::mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return fit;
  const double slope = sxy / sxx;
  fit.alpha = -slope;
  fit.r2 = (sxy * sxy) / (sxx * syy);
  return fit;
}

WorkloadSummary summarize(const Workload& w) {
  WorkloadSummary s;
  s.num_objects = w.catalog.size();
  s.num_requests = w.requests.size();
  s.total_unique_bytes = w.catalog.total_bytes();
  s.bitrate = w.catalog.config().bitrate();

  stats::RunningStats durations, sizes;
  for (const auto& o : w.catalog.objects()) {
    durations.add(o.duration_s);
    sizes.add(o.size_bytes);
  }
  s.mean_duration_s = durations.mean();
  s.mean_size_bytes = sizes.mean();
  s.mean_frames = s.mean_duration_s * w.catalog.config().frames_per_second;

  if (!w.requests.empty()) {
    s.trace_span_s = w.requests.back().time_s - w.requests.front().time_s;
    if (w.requests.size() > 1) {
      s.mean_interarrival_s =
          s.trace_span_s / static_cast<double>(w.requests.size() - 1);
    }
  }

  const auto counts = request_counts(w);
  const auto fit = fit_zipf(counts);
  s.fitted_zipf_alpha = fit.alpha;
  s.zipf_fit_r2 = fit.r2;

  std::vector<std::size_t> sorted(counts);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, sorted.size() / 10);
  std::size_t top_hits = 0;
  for (std::size_t i = 0; i < top; ++i) top_hits += sorted[i];
  if (s.num_requests > 0) {
    s.top10pct_request_share =
        static_cast<double>(top_hits) / static_cast<double>(s.num_requests);
  }
  return s;
}

}  // namespace sc::workload
