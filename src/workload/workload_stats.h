// Workload characterization: the quantities Table 1 reports, measured
// from a generated (or imported) workload. Used by bench_table1 and by
// tests validating the generator against the paper's parameters.
#pragma once

#include <cstddef>
#include <vector>

#include "workload/generator.h"

namespace sc::workload {

struct WorkloadSummary {
  std::size_t num_objects = 0;
  std::size_t num_requests = 0;
  double total_unique_bytes = 0.0;
  double mean_duration_s = 0.0;
  double mean_size_bytes = 0.0;
  double mean_frames = 0.0;       // duration * 24 fps
  double bitrate = 0.0;           // bytes/second (CBR, shared)
  double mean_interarrival_s = 0.0;
  double trace_span_s = 0.0;
  /// Zipf-like exponent recovered from the empirical popularity profile
  /// (log-log least squares over ranks with >= 2 hits).
  double fitted_zipf_alpha = 0.0;
  /// Fraction of requests that hit the 10% most popular objects (a
  /// standard concentration measure for Zipf-like workloads).
  double top10pct_request_share = 0.0;
  /// Squared coefficient of determination of the Zipf fit.
  double zipf_fit_r2 = 0.0;
};

/// Per-object request counts (index = ObjectId).
[[nodiscard]] std::vector<std::size_t> request_counts(const Workload& w);

/// Summarize a workload.
[[nodiscard]] WorkloadSummary summarize(const Workload& w);

/// Least-squares fit of log(count) = c - alpha * log(rank) over objects
/// with at least `min_hits` requests. Returns {alpha, r2}.
struct ZipfFit {
  double alpha = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] ZipfFit fit_zipf(const std::vector<std::size_t>& counts,
                               std::size_t min_hits = 2);

}  // namespace sc::workload
