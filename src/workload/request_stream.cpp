#include "workload/request_stream.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sc::workload {

RequestStream RequestStream::replay(std::shared_ptr<const Workload> workload) {
  if (workload == nullptr) {
    throw std::invalid_argument("RequestStream::replay: null workload");
  }
  RequestStream s;
  s.source_ = Source::kReplay;
  s.num_requests_ = workload->requests.size();
  // One AoS -> SoA pass here makes every cursor chunk a zero-copy
  // pointer slice; the cost amortizes over all simulations that share
  // this stream (cells x replications in a sweep).
  auto columns = std::make_shared<ReplayColumns>();
  columns->time_s.reserve(workload->requests.size());
  columns->object.reserve(workload->requests.size());
  columns->view_s.reserve(workload->requests.size());
  for (const Request& r : workload->requests) {
    columns->time_s.push_back(r.time_s);
    columns->object.push_back(r.object);
    columns->view_s.push_back(r.view_s);
  }
  s.columns_ = std::move(columns);
  s.workload_ = std::move(workload);
  return s;
}

RequestStream RequestStream::synthetic(std::shared_ptr<const Catalog> catalog,
                                       TraceConfig trace, util::Rng rng) {
  if (catalog == nullptr) {
    throw std::invalid_argument("RequestStream::synthetic: null catalog");
  }
  // generate_trace's own validation, applied at stream construction so
  // a bad config fails where it was written, not inside a worker task.
  if (trace.num_requests == 0) {
    throw std::invalid_argument("generate_trace: num_requests == 0");
  }
  if (trace.arrival_rate_per_s <= 0) {
    throw std::invalid_argument("generate_trace: arrival rate must be > 0");
  }
  RequestStream s;
  s.source_ = Source::kSynthetic;
  s.num_requests_ = trace.num_requests;
  // The alias table is the expensive part of the generator; build it
  // once per stream (it draws no RNG) and share it across every cursor.
  s.popularity_ = std::make_shared<const stats::ZipfLike>(catalog->size(),
                                                          trace.zipf_alpha);
  s.catalog_ = std::move(catalog);
  s.trace_ = trace;
  s.rng_.emplace(std::move(rng));
  return s;
}

RequestStream RequestStream::trace_file(std::filesystem::path path) {
  // One full validating pass: collect the objects, stream (and discard)
  // every request record so malformed files fail at scenario-build time
  // exactly like the materializing loader — in O(chunk) memory.
  TraceReader reader(path, TraceReader::kKeepObjects);
  constexpr std::size_t kChunk = 8192;
  std::vector<double> time_s(kChunk), view_s(kChunk);
  std::vector<ObjectId> object(kChunk);
  std::size_t total = 0;
  while (std::size_t n = reader.read_requests(time_s.data(), object.data(),
                                              view_s.data(), kChunk)) {
    total += n;
  }
  RequestStream s;
  s.source_ = Source::kTraceFile;
  s.num_requests_ = total;
  s.catalog_ = std::make_shared<const Catalog>(
      Catalog::from_objects(reader.take_objects()));
  s.path_ = std::move(path);
  return s;
}

std::vector<Request> RequestStream::materialize() const {
  std::vector<Request> requests;
  requests.reserve(num_requests_);
  RequestCursor cursor;
  cursor.bind(*this, kDefaultStreamChunk);
  while (const RequestBlock* block = cursor.next()) {
    for (std::size_t i = 0; i < block->size; ++i) {
      requests.push_back(
          Request{block->time_s[i], block->object[i], block->view_s[i]});
    }
  }
  return requests;
}

void RequestCursor::bind(const RequestStream& stream, std::size_t chunk) {
  if (chunk == 0) {
    throw std::invalid_argument("RequestCursor: chunk size must be >= 1");
  }
  stream_ = &stream;
  chunk_ = chunk;
  pos_ = 0;
  sampler_.reset();
  reader_.reset();
  switch (stream.source_) {
    case RequestStream::Source::kReplay:
      break;
    case RequestStream::Source::kSynthetic:
      // A fresh sampler from the stream's RNG snapshot: every cursor
      // re-derives the identical sequence from request 0.
      sampler_.emplace(*stream.popularity_, stream.trace_, *stream.rng_);
      break;
    case RequestStream::Source::kTraceFile:
      // The stream validated the whole file (and keeps the catalog);
      // this pass only re-extracts the request records.
      reader_ = std::make_unique<TraceReader>(stream.path_,
                                              TraceReader::kSkipObjects);
      break;
  }
  // Replay blocks are slices of the stream's own columns; only the
  // regenerating sources need scratch.
  if (stream.source_ != RequestStream::Source::kReplay &&
      time_s_.size() < chunk) {
    time_s_.resize(chunk);
    object_.resize(chunk);
    view_s_.resize(chunk);
  }
}

const RequestBlock* RequestCursor::next() {
  if (stream_ == nullptr) return nullptr;
  std::size_t n = 0;
  switch (stream_->source_) {
    case RequestStream::Source::kReplay: {
      // Zero-copy: slice the stream's SoA columns directly.
      const RequestStream::ReplayColumns& cols = *stream_->columns_;
      if (pos_ >= cols.time_s.size()) return nullptr;
      n = std::min(chunk_, cols.time_s.size() - pos_);
      block_ = RequestBlock{cols.time_s.data() + pos_,
                            cols.object.data() + pos_,
                            cols.view_s.data() + pos_, n, pos_};
      pos_ += n;
      return &block_;
    }
    case RequestStream::Source::kSynthetic: {
      if (pos_ >= stream_->num_requests_) return nullptr;
      n = std::min(chunk_, stream_->num_requests_ - pos_);
      for (std::size_t i = 0; i < n; ++i) {
        const Request r = sampler_->next();
        time_s_[i] = r.time_s;
        object_[i] = r.object;
        view_s_[i] = r.view_s;
      }
      break;
    }
    case RequestStream::Source::kTraceFile: {
      n = reader_->read_requests(time_s_.data(), object_.data(),
                                 view_s_.data(), chunk_);
      if (n == 0) return nullptr;
      break;
    }
  }
  block_ = RequestBlock{time_s_.data(), object_.data(), view_s_.data(), n,
                        pos_};
  pos_ += n;
  return &block_;
}

}  // namespace sc::workload
