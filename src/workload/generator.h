// GISMO-style synthetic request trace generation (§3.2, Table 1).
//
// Requests target objects under a Zipf-like popularity distribution
// (default alpha = 0.73) and arrive according to a Poisson process. The
// paper's GISMO toolset is not available; Table 1 fully specifies the
// distributions, which this module implements directly (see DESIGN.md §4).
#pragma once

#include <utility>
#include <vector>

#include "stats/distributions.h"
#include "workload/object_catalog.h"

namespace sc::workload {

/// Sentinel for Request::view_s: the session watched the whole stream
/// (or the trace recorded no viewing duration).
inline constexpr double kFullSession = -1.0;

/// One client request.
struct Request {
  double time_s = 0.0;  // arrival time since trace start
  ObjectId object = 0;
  /// Recorded viewing duration of this session, seconds; kFullSession
  /// (negative) when the client watched to the end / nothing was
  /// recorded. Consumed by the simulator's "trace" interactivity mode;
  /// every other mode ignores it (see sim/interactivity.h).
  double view_s = kFullSession;
};

/// A complete workload: catalog + request trace.
struct Workload {
  Catalog catalog;
  std::vector<Request> requests;
};

struct TraceConfig {
  std::size_t num_requests = 100000;
  double zipf_alpha = 0.73;
  /// Mean request arrival rate (Poisson). The paper does not pin the
  /// absolute rate; 0.15 req/s spreads 100 K requests over ~7.7 days,
  /// comparable to the nine-day NLANR log the paper analyzed.
  double arrival_rate_per_s = 0.15;
};

struct WorkloadConfig {
  CatalogConfig catalog;
  TraceConfig trace;
};

/// Generate a request trace against an existing catalog. Object with
/// popularity rank k is hit with probability ~ k^-alpha.
[[nodiscard]] std::vector<Request> generate_trace(const Catalog& catalog,
                                                  const TraceConfig& config,
                                                  util::Rng& rng);

/// Convenience: generate catalog + trace together.
[[nodiscard]] Workload generate_workload(const WorkloadConfig& config,
                                         util::Rng& rng);

/// The incremental form of generate_trace: one Request per next() call,
/// drawing the interarrival gap and then the popularity rank from the
/// same RNG stream in the same order, so a sampler seeded with the
/// post-catalog generator state reproduces generate_trace's output
/// byte-for-byte (this is the determinism contract behind
/// workload::RequestStream; see docs/PERF.md). The alias-table
/// popularity model is referenced, not copied — it is immutable and can
/// be shared across any number of concurrent samplers.
class TraceSampler {
 public:
  /// `popularity` must outlive the sampler and match the catalog the
  /// trace targets (ZipfLike(catalog.size(), config.zipf_alpha)). `rng`
  /// is copied: the sampler owns its stream position.
  TraceSampler(const stats::ZipfLike& popularity, const TraceConfig& config,
               util::Rng rng)
      : popularity_(&popularity),
        interarrival_(config.arrival_rate_per_s),
        rng_(std::move(rng)) {}

  [[nodiscard]] Request next() {
    now_ += interarrival_.sample(rng_);
    // Rank k maps to object k-1 (catalog assigns rank id+1).
    const std::size_t rank = popularity_->sample(rng_);
    return Request{now_, rank - 1, kFullSession};
  }

  /// The sampler's current RNG state (generate_trace hands it back to
  /// the caller so downstream draws continue the original stream).
  [[nodiscard]] const util::Rng& rng() const noexcept { return rng_; }

 private:
  const stats::ZipfLike* popularity_;
  stats::Exponential interarrival_;
  util::Rng rng_;
  double now_ = 0.0;
};

/// How SweepRunner materializes per-(alpha, run) workloads (see
/// workload/request_stream.h and core/experiment.h).
enum class StreamingMode {
  /// Materialize below kAutoStreamThreshold requests, stream above it.
  kAuto,
  /// Always build the full std::vector<Request> up front (the pre-stream
  /// behavior; O(num_requests) memory per distinct (alpha, run)).
  kMaterialize,
  /// Always regenerate chunk-wise inside each simulation (O(chunk)
  /// memory; each simulation re-runs the generator, trading CPU for the
  /// memory that makes 10^8-request sweeps possible).
  kStream,
};

/// kAuto switches to streaming above this trace length: regenerating a
/// short trace per simulation costs more than the vector it avoids, and
/// ~4M requests (~100 MB per distinct (alpha, run)) is where the memory
/// pressure starts to dominate.
inline constexpr std::size_t kAutoStreamThreshold = 4'000'000;

}  // namespace sc::workload
