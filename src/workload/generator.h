// GISMO-style synthetic request trace generation (§3.2, Table 1).
//
// Requests target objects under a Zipf-like popularity distribution
// (default alpha = 0.73) and arrive according to a Poisson process. The
// paper's GISMO toolset is not available; Table 1 fully specifies the
// distributions, which this module implements directly (see DESIGN.md §4).
#pragma once

#include <vector>

#include "stats/distributions.h"
#include "workload/object_catalog.h"

namespace sc::workload {

/// Sentinel for Request::view_s: the session watched the whole stream
/// (or the trace recorded no viewing duration).
inline constexpr double kFullSession = -1.0;

/// One client request.
struct Request {
  double time_s = 0.0;  // arrival time since trace start
  ObjectId object = 0;
  /// Recorded viewing duration of this session, seconds; kFullSession
  /// (negative) when the client watched to the end / nothing was
  /// recorded. Consumed by the simulator's "trace" interactivity mode;
  /// every other mode ignores it (see sim/interactivity.h).
  double view_s = kFullSession;
};

/// A complete workload: catalog + request trace.
struct Workload {
  Catalog catalog;
  std::vector<Request> requests;
};

struct TraceConfig {
  std::size_t num_requests = 100000;
  double zipf_alpha = 0.73;
  /// Mean request arrival rate (Poisson). The paper does not pin the
  /// absolute rate; 0.15 req/s spreads 100 K requests over ~7.7 days,
  /// comparable to the nine-day NLANR log the paper analyzed.
  double arrival_rate_per_s = 0.15;
};

struct WorkloadConfig {
  CatalogConfig catalog;
  TraceConfig trace;
};

/// Generate a request trace against an existing catalog. Object with
/// popularity rank k is hit with probability ~ k^-alpha.
[[nodiscard]] std::vector<Request> generate_trace(const Catalog& catalog,
                                                  const TraceConfig& config,
                                                  util::Rng& rng);

/// Convenience: generate catalog + trace together.
[[nodiscard]] Workload generate_workload(const WorkloadConfig& config,
                                         util::Rng& rng);

}  // namespace sc::workload
