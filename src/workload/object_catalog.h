// The catalog of streaming media objects available for access.
//
// Matches Table 1 of the paper: N = 5,000 unique CBR objects, durations
// lognormal(mu = 3.85, sigma = 0.56) in *minutes* (~55 min / ~79 K frames
// on average), bit-rate 2 KB/frame at 24 frames/s = 48 KB/s, total unique
// size ~790 GB, per-object value V_i ~ Uniform[$1, $10] (used by the
// revenue objective, §4.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/path_process.h"
#include "util/rng.h"

namespace sc::workload {

using ObjectId = std::size_t;

/// One streaming media object. Plain data; invariants are enforced by the
/// catalog generator (positive duration/bit-rate, size == duration * rate).
struct StreamObject {
  ObjectId id = 0;
  double duration_s = 0.0;    // T_i
  double bitrate = 0.0;       // r_i, bytes/second (CBR)
  double size_bytes = 0.0;    // S_i = T_i * r_i
  double value = 0.0;         // V_i, dollars
  net::PathId path = 0;       // origin path serving this object
  std::size_t popularity_rank = 0;  // 1 = most popular
};

struct CatalogConfig {
  std::size_t num_objects = 5000;
  double duration_mu = 3.85;     // lognormal mu, minutes
  double duration_sigma = 0.56;  // lognormal sigma
  double frame_bytes = 2.0 * 1024.0;
  double frames_per_second = 24.0;
  double value_lo = 1.0;   // dollars
  double value_hi = 10.0;  // dollars
  /// Clamp object durations (minutes) to keep the corpus finite; the
  /// lognormal tail otherwise occasionally produces multi-day objects.
  double min_duration_min = 1.0;
  double max_duration_min = 60.0 * 8.0;

  [[nodiscard]] double bitrate() const {
    return frame_bytes * frames_per_second;  // 48 KB/s by default
  }
};

/// Structure-of-arrays view over a Catalog: one contiguous array per hot
/// field, indexed by ObjectId. The per-request policy/simulator loop
/// reads 3-5 doubles per access through this view instead of pulling a
/// whole 56-byte StreamObject through the cache. Plain pointers into the
/// owning Catalog; valid for the catalog's lifetime.
struct CatalogView {
  const double* duration_s = nullptr;  // T_i
  const double* bitrate = nullptr;     // r_i, bytes/second
  const double* size_bytes = nullptr;  // S_i
  const double* value = nullptr;       // V_i, dollars
  const net::PathId* path = nullptr;   // origin path per object
  std::size_t size = 0;
};

/// Immutable object catalog.
class Catalog {
 public:
  /// Generate a catalog. Object `i` gets popularity rank `i + 1` and is
  /// served over its own origin path (`path == id`), matching the paper's
  /// per-object bandwidth b_i.
  static Catalog generate(const CatalogConfig& config, util::Rng& rng);

  /// Build a catalog from explicit objects (trace import). Validates ids
  /// are dense 0..n-1 and sizes are consistent with duration * bitrate.
  static Catalog from_objects(std::vector<StreamObject> objects,
                              CatalogConfig config = {});

  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }
  [[nodiscard]] const StreamObject& object(ObjectId id) const {
    return objects_.at(id);
  }
  [[nodiscard]] const std::vector<StreamObject>& objects() const noexcept {
    return objects_;
  }

  /// SoA view for the hot loop (see CatalogView). Cheap to copy.
  [[nodiscard]] CatalogView view() const noexcept {
    CatalogView v;
    v.duration_s = soa_duration_s_.data();
    v.bitrate = soa_bitrate_.data();
    v.size_bytes = soa_size_bytes_.data();
    v.value = soa_value_.data();
    v.path = soa_path_.data();
    v.size = objects_.size();
    return v;
  }

  /// Sum of all object sizes (the paper's "total unique object size").
  [[nodiscard]] double total_bytes() const noexcept { return total_bytes_; }

  [[nodiscard]] const CatalogConfig& config() const noexcept {
    return config_;
  }

 private:
  Catalog(std::vector<StreamObject> objects, CatalogConfig config);

  std::vector<StreamObject> objects_;
  // SoA mirrors of the hot StreamObject fields, built once at
  // construction (the catalog is immutable afterwards).
  std::vector<double> soa_duration_s_;
  std::vector<double> soa_bitrate_;
  std::vector<double> soa_size_bytes_;
  std::vector<double> soa_value_;
  std::vector<net::PathId> soa_path_;
  CatalogConfig config_;
  double total_bytes_ = 0.0;
};

}  // namespace sc::workload
