#include "workload/object_catalog.h"

#include <algorithm>
#include <stdexcept>

#include "stats/distributions.h"

namespace sc::workload {

Catalog::Catalog(std::vector<StreamObject> objects, CatalogConfig config)
    : objects_(std::move(objects)), config_(config) {
  soa_duration_s_.reserve(objects_.size());
  soa_bitrate_.reserve(objects_.size());
  soa_size_bytes_.reserve(objects_.size());
  soa_value_.reserve(objects_.size());
  soa_path_.reserve(objects_.size());
  for (const auto& o : objects_) {
    total_bytes_ += o.size_bytes;
    soa_duration_s_.push_back(o.duration_s);
    soa_bitrate_.push_back(o.bitrate);
    soa_size_bytes_.push_back(o.size_bytes);
    soa_value_.push_back(o.value);
    soa_path_.push_back(o.path);
  }
}

Catalog Catalog::generate(const CatalogConfig& config, util::Rng& rng) {
  if (config.num_objects == 0) {
    throw std::invalid_argument("Catalog: num_objects == 0");
  }
  if (config.frame_bytes <= 0 || config.frames_per_second <= 0) {
    throw std::invalid_argument("Catalog: non-positive bit-rate parameters");
  }
  const stats::Lognormal duration_min(config.duration_mu,
                                      config.duration_sigma);
  const stats::Uniform value(config.value_lo, config.value_hi);
  const double bitrate = config.bitrate();

  std::vector<StreamObject> objects;
  objects.reserve(config.num_objects);
  for (ObjectId id = 0; id < config.num_objects; ++id) {
    StreamObject o;
    o.id = id;
    const double minutes =
        std::clamp(duration_min.sample(rng), config.min_duration_min,
                   config.max_duration_min);
    o.duration_s = minutes * 60.0;
    o.bitrate = bitrate;
    o.size_bytes = o.duration_s * o.bitrate;
    o.value = value.sample(rng);
    o.path = id;  // one origin path per object (paper's b_i)
    o.popularity_rank = id + 1;
    objects.push_back(o);
  }
  return Catalog(std::move(objects), config);
}

Catalog Catalog::from_objects(std::vector<StreamObject> objects,
                              CatalogConfig config) {
  if (objects.empty()) {
    throw std::invalid_argument("Catalog::from_objects: empty");
  }
  for (std::size_t i = 0; i < objects.size(); ++i) {
    auto& o = objects[i];
    if (o.id != i) {
      throw std::invalid_argument("Catalog::from_objects: ids must be dense");
    }
    if (o.duration_s <= 0 || o.bitrate <= 0) {
      throw std::invalid_argument(
          "Catalog::from_objects: non-positive duration or bitrate");
    }
    o.size_bytes = o.duration_s * o.bitrate;
    if (o.popularity_rank == 0) o.popularity_rank = i + 1;
  }
  config.num_objects = objects.size();
  return Catalog(std::move(objects), config);
}

}  // namespace sc::workload
