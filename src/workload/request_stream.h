// Chunked, pull-based request streams: the simulator's view of "the
// workload" that does not require the workload to exist in memory.
//
// A RequestStream is an immutable description of a request sequence with
// three interchangeable sources:
//
//   - replay:    a materialized Workload (generated up front, or loaded
//                by a trace scenario). The stream transposes the request
//                vector to SoA once at construction; chunks are then
//                zero-copy slices of those arrays.
//   - synthetic: a catalog + TraceConfig + the post-catalog RNG
//                snapshot. Chunks are regenerated on the fly by
//                workload::TraceSampler — the *same* sampler
//                generate_trace uses — so the streamed sequence is
//                byte-identical to the vector the materialized path
//                would have built, while peak memory is O(chunk).
//   - trace file: the catalog is parsed once up front (and the whole
//                file validated); request records re-stream from disk
//                chunk-wise inside each simulation via TraceReader.
//
// Sharing happens at the stream level: core::SweepRunner builds one
// immutable RequestStream per distinct (alpha, replication) — or one
// per grid under trace scenarios — and every simulation binds its own
// RequestCursor to it. Cursors carry all mutable state (RNG position,
// SoA chunk buffers, file handles), so any number of simulations can
// stream the same workload concurrently, each from the beginning.
// Determinism contract: the synthetic source's RNG snapshot is the
// sweep's per-(alpha, run) seed derivation (splitmix64 + tag forks)
// advanced past Catalog::generate, so chunk k is a pure function of
// (stream, k) and results cannot depend on --threads or chunk size.
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "util/rng.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace sc::workload {

/// One chunk of requests in SoA form (times/objects/view_s contiguous),
/// feeding the block-batched delivery stage (sim/delivery.h). Pointers
/// are into the owning cursor's buffers and are valid until its next
/// next() call.
struct RequestBlock {
  const double* time_s = nullptr;
  const ObjectId* object = nullptr;
  const double* view_s = nullptr;
  std::size_t size = 0;
  /// Global index of this block's first request within the stream.
  std::size_t first = 0;
};

/// Default cursor chunk: big enough to amortize per-chunk work and keep
/// the delivery loops vectorizable, small enough that the SoA scratch
/// (a few doubles per request) stays cache-resident.
inline constexpr std::size_t kDefaultStreamChunk = 4096;

class RequestCursor;

/// An immutable, shareable request sequence (see file comment). Copyable
/// (copies share the underlying workload/catalog via shared_ptr).
class RequestStream {
 public:
  /// Replay `workload` (must be non-null, non-empty catalog allowed).
  [[nodiscard]] static RequestStream replay(
      std::shared_ptr<const Workload> workload);

  /// Regenerate `trace` against `catalog` from `rng`, which must be the
  /// generator stream state immediately after Catalog::generate — the
  /// exact position generate_trace would have continued from. Validates
  /// like generate_trace (num_requests > 0, arrival rate > 0) and
  /// builds the shared alias-table popularity model once.
  [[nodiscard]] static RequestStream synthetic(
      std::shared_ptr<const Catalog> catalog, TraceConfig trace,
      util::Rng rng);

  /// Stream request records from a trace file (workload/trace.h format).
  /// The catalog is parsed eagerly and the whole file validated once
  /// (one full streaming pass, O(chunk) memory); each cursor then
  /// re-reads the request records from disk.
  [[nodiscard]] static RequestStream trace_file(std::filesystem::path path);

  [[nodiscard]] const Catalog& catalog() const noexcept {
    return workload_ != nullptr ? workload_->catalog : *catalog_;
  }
  [[nodiscard]] std::size_t num_requests() const noexcept {
    return num_requests_;
  }

  /// The replayed workload, or nullptr for regenerating sources.
  [[nodiscard]] const Workload* replayed() const noexcept {
    return source_ == Source::kReplay ? workload_.get() : nullptr;
  }

  /// Materialize the full request vector (tests, tools; O(n) memory).
  [[nodiscard]] std::vector<Request> materialize() const;

 private:
  friend class RequestCursor;
  enum class Source { kReplay, kSynthetic, kTraceFile };

  RequestStream() = default;

  /// SoA transposition of a replayed workload's request vector, built
  /// once per stream so every cursor chunk is a pointer slice instead of
  /// a copy (the transpose cost amortizes over all cells x runs).
  struct ReplayColumns {
    std::vector<double> time_s;
    std::vector<ObjectId> object;
    std::vector<double> view_s;
  };

  Source source_ = Source::kReplay;
  std::shared_ptr<const Workload> workload_;           // kReplay
  std::shared_ptr<const ReplayColumns> columns_;       // kReplay
  std::shared_ptr<const Catalog> catalog_;             // kSynthetic/kTraceFile
  std::shared_ptr<const stats::ZipfLike> popularity_;  // kSynthetic
  TraceConfig trace_{};                                // kSynthetic
  std::optional<util::Rng> rng_;                       // kSynthetic
  std::filesystem::path path_;                         // kTraceFile
  std::size_t num_requests_ = 0;
};

/// The per-simulation iteration state over one RequestStream: SoA chunk
/// buffers plus the source-specific position (request index, sampler RNG,
/// or file reader). bind() rebinds to a (possibly different) stream and
/// rewinds to request 0, reusing the buffers — steady-state rebinds of
/// in-memory sources allocate nothing (sim::RunState keeps one cursor
/// per cached engine).
class RequestCursor {
 public:
  RequestCursor() = default;

  /// Start (or restart) iterating `stream` from the beginning in chunks
  /// of `chunk` requests. `stream` must outlive the iteration.
  void bind(const RequestStream& stream, std::size_t chunk);

  /// The next chunk (full-size except possibly the last), or nullptr at
  /// end of stream. The returned block is valid until the next call.
  [[nodiscard]] const RequestBlock* next();

 private:
  const RequestStream* stream_ = nullptr;
  std::size_t chunk_ = 0;
  std::size_t pos_ = 0;
  RequestBlock block_{};
  std::vector<double> time_s_;
  std::vector<ObjectId> object_;
  std::vector<double> view_s_;
  std::optional<TraceSampler> sampler_;   // kSynthetic
  std::unique_ptr<TraceReader> reader_;   // kTraceFile
};

}  // namespace sc::workload
