#include "workload/generator.h"

#include <stdexcept>

namespace sc::workload {

std::vector<Request> generate_trace(const Catalog& catalog,
                                    const TraceConfig& config,
                                    util::Rng& rng) {
  if (config.num_requests == 0) {
    throw std::invalid_argument("generate_trace: num_requests == 0");
  }
  if (config.arrival_rate_per_s <= 0) {
    throw std::invalid_argument("generate_trace: arrival rate must be > 0");
  }
  const stats::ZipfLike popularity(catalog.size(), config.zipf_alpha);

  // One shared implementation of the request draw: TraceSampler is also
  // what workload::RequestStream regenerates chunks from, which is what
  // keeps the streamed and materialized paths byte-identical.
  TraceSampler sampler(popularity, config, rng);
  std::vector<Request> trace;
  trace.reserve(config.num_requests);
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    trace.push_back(sampler.next());
  }
  // The caller's rng must advance exactly as if the draws happened
  // in-place (generate_workload continues drawing from it).
  rng = sampler.rng();
  return trace;
}

Workload generate_workload(const WorkloadConfig& config, util::Rng& rng) {
  Catalog catalog = Catalog::generate(config.catalog, rng);
  auto trace = generate_trace(catalog, config.trace, rng);
  return Workload{std::move(catalog), std::move(trace)};
}

}  // namespace sc::workload
