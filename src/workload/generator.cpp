#include "workload/generator.h"

#include <stdexcept>

namespace sc::workload {

std::vector<Request> generate_trace(const Catalog& catalog,
                                    const TraceConfig& config,
                                    util::Rng& rng) {
  if (config.num_requests == 0) {
    throw std::invalid_argument("generate_trace: num_requests == 0");
  }
  if (config.arrival_rate_per_s <= 0) {
    throw std::invalid_argument("generate_trace: arrival rate must be > 0");
  }
  const stats::ZipfLike popularity(catalog.size(), config.zipf_alpha);
  const stats::Exponential interarrival(config.arrival_rate_per_s);

  std::vector<Request> trace;
  trace.reserve(config.num_requests);
  double now = 0.0;
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    now += interarrival.sample(rng);
    // Rank k maps to object k-1 (catalog assigns rank id+1).
    const std::size_t rank = popularity.sample(rng);
    trace.push_back(Request{now, rank - 1});
  }
  return trace;
}

Workload generate_workload(const WorkloadConfig& config, util::Rng& rng) {
  Catalog catalog = Catalog::generate(config.catalog, rng);
  auto trace = generate_trace(catalog, config.trace, rng);
  return Workload{std::move(catalog), std::move(trace)};
}

}  // namespace sc::workload
