#include "workload/trace.h"

#include <iomanip>
#include <stdexcept>
#include <utility>

namespace sc::workload {

void write_trace(const Workload& workload,
                 const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace: cannot open " + path.string());
  }
  out << "streamcache-trace v2 " << workload.catalog.size() << ' '
      << workload.requests.size() << '\n';
  out << std::setprecision(17);
  for (const auto& o : workload.catalog.objects()) {
    out << "O " << o.id << ' ' << o.duration_s << ' ' << o.bitrate << ' '
        << o.value << ' ' << o.path << '\n';
  }
  for (const auto& r : workload.requests) {
    out << "R " << r.time_s << ' ' << r.object << ' ' << r.view_s << '\n';
  }
  if (!out) {
    throw std::runtime_error("write_trace: write failed on " + path.string());
  }
}

void TraceReader::fail(const std::string& what) const {
  // The "read_trace:" prefix is kept for every parse failure regardless
  // of entry point: callers (and tests) match on it as the trace-format
  // diagnostic namespace.
  throw std::runtime_error("read_trace: " + what + " in " + path_.string());
}

namespace {

std::string record_context(std::size_t objects_seen,
                           std::size_t requests_seen) {
  return " (after " + std::to_string(objects_seen) + " object and " +
         std::to_string(requests_seen) + " request records)";
}

}  // namespace

TraceReader::TraceReader(const std::filesystem::path& path,
                         ObjectHandling objects)
    : path_(path), in_(path), handling_(objects) {
  if (!in_) {
    throw std::runtime_error("read_trace: cannot open " + path_.string());
  }
  std::string magic, version;
  in_ >> magic >> version >> num_objects_ >> num_requests_;
  if (!in_ || magic != "streamcache-trace") {
    fail("bad magic (expected \"streamcache-trace v1|v2 "
         "<objects> <requests>\")");
  }
  if (version != "v1" && version != "v2") {
    fail("unsupported version \"" + version + "\" (known: v1, v2)");
  }
  has_view_ = version == "v2";
  if (handling_ == kKeepObjects) objects_.reserve(num_objects_);
}

void TraceReader::parse_object_record() {
  StreamObject o;
  in_ >> o.id >> o.duration_s >> o.bitrate >> o.value >> o.path;
  if (!in_) {
    fail("malformed or truncated object record" +
         record_context(objects_seen_, requests_seen_));
  }
  if (o.id != objects_seen_) {
    fail("object ids must be dense and in order (got id " +
         std::to_string(o.id) + " for object #" +
         std::to_string(objects_seen_) + ")");
  }
  // Simulations build one bandwidth path per catalog object; an
  // out-of-range path id must fail here with the file named, not
  // mid-sweep inside a worker task.
  if (o.path >= num_objects_) {
    fail("object " + std::to_string(o.id) + " names path " +
         std::to_string(o.path) + " outside the declared catalog of " +
         std::to_string(num_objects_) + " paths");
  }
  ++objects_seen_;
  // size_bytes and popularity_rank are derived by Catalog::from_objects.
  if (handling_ == kKeepObjects) objects_.push_back(o);
}

void TraceReader::finish() {
  done_ = true;
  if (objects_seen_ != num_objects_ || requests_seen_ != num_requests_) {
    fail("record count mismatch (header declares " +
         std::to_string(num_objects_) + " objects and " +
         std::to_string(num_requests_) + " requests; file holds " +
         std::to_string(objects_seen_) + " and " +
         std::to_string(requests_seen_) + " — truncated file?)");
  }
}

std::size_t TraceReader::read_requests(double* time_s, ObjectId* object,
                                       double* view_s, std::size_t n) {
  if (done_) return 0;
  std::size_t count = 0;
  while (count < n) {
    if (!(in_ >> tag_)) {
      finish();
      break;
    }
    if (tag_ == "O") {
      parse_object_record();
    } else if (tag_ == "R") {
      Request r;
      in_ >> r.time_s >> r.object;
      if (has_view_) in_ >> r.view_s;
      if (!in_) {
        fail("malformed or truncated request record" +
             record_context(objects_seen_, requests_seen_));
      }
      if (r.object >= num_objects_) {
        fail("request #" + std::to_string(requests_seen_) +
             " references object " + std::to_string(r.object) +
             " outside the declared catalog of " +
             std::to_string(num_objects_));
      }
      if (r.time_s < last_time_) {
        fail("request times regress at request #" +
             std::to_string(requests_seen_) + " (" +
             std::to_string(r.time_s) + " after " +
             std::to_string(last_time_) + ")");
      }
      last_time_ = r.time_s;
      ++requests_seen_;
      time_s[count] = r.time_s;
      object[count] = r.object;
      view_s[count] = r.view_s;
      ++count;
    } else {
      fail("unknown record tag \"" + tag_ + "\"" +
           record_context(objects_seen_, requests_seen_));
    }
  }
  return count;
}

Workload read_trace(const std::filesystem::path& path) {
  TraceReader reader(path, TraceReader::kKeepObjects);

  std::vector<Request> requests;
  requests.reserve(reader.declared_requests());
  constexpr std::size_t kChunk = 8192;
  std::vector<double> time_s(kChunk), view_s(kChunk);
  std::vector<ObjectId> object(kChunk);
  while (std::size_t n = reader.read_requests(time_s.data(), object.data(),
                                              view_s.data(), kChunk)) {
    for (std::size_t i = 0; i < n; ++i) {
      requests.push_back(Request{time_s[i], object[i], view_s[i]});
    }
  }
  return Workload{Catalog::from_objects(reader.take_objects()),
                  std::move(requests)};
}

}  // namespace sc::workload
