#include "workload/trace.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sc::workload {

void write_trace(const Workload& workload,
                 const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace: cannot open " + path.string());
  }
  out << "streamcache-trace v1 " << workload.catalog.size() << ' '
      << workload.requests.size() << '\n';
  out << std::setprecision(17);
  for (const auto& o : workload.catalog.objects()) {
    out << "O " << o.id << ' ' << o.duration_s << ' ' << o.bitrate << ' '
        << o.value << ' ' << o.path << '\n';
  }
  for (const auto& r : workload.requests) {
    out << "R " << r.time_s << ' ' << r.object << '\n';
  }
  if (!out) {
    throw std::runtime_error("write_trace: write failed on " + path.string());
  }
}

Workload read_trace(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace: cannot open " + path.string());
  }
  std::string magic, version;
  std::size_t num_objects = 0, num_requests = 0;
  in >> magic >> version >> num_objects >> num_requests;
  if (magic != "streamcache-trace" || version != "v1") {
    throw std::runtime_error("read_trace: bad magic in " + path.string());
  }
  std::vector<StreamObject> objects;
  objects.reserve(num_objects);
  std::vector<Request> requests;
  requests.reserve(num_requests);

  std::string tag;
  double last_time = 0.0;
  while (in >> tag) {
    if (tag == "O") {
      StreamObject o;
      in >> o.id >> o.duration_s >> o.bitrate >> o.value >> o.path;
      if (!in) throw std::runtime_error("read_trace: malformed object line");
      objects.push_back(o);
    } else if (tag == "R") {
      Request r;
      in >> r.time_s >> r.object;
      if (!in) throw std::runtime_error("read_trace: malformed request line");
      if (r.object >= num_objects) {
        throw std::runtime_error("read_trace: request to unknown object");
      }
      if (r.time_s < last_time) {
        throw std::runtime_error("read_trace: request times regress");
      }
      last_time = r.time_s;
      requests.push_back(r);
    } else {
      throw std::runtime_error("read_trace: unknown record tag '" + tag + "'");
    }
  }
  if (objects.size() != num_objects || requests.size() != num_requests) {
    throw std::runtime_error("read_trace: record count mismatch");
  }
  return Workload{Catalog::from_objects(std::move(objects)),
                  std::move(requests)};
}

}  // namespace sc::workload
