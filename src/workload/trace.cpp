#include "workload/trace.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sc::workload {

namespace {

[[noreturn]] void fail(const std::filesystem::path& path,
                       const std::string& what) {
  throw std::runtime_error("read_trace: " + what + " in " + path.string());
}

std::string record_context(std::size_t objects_seen,
                           std::size_t requests_seen) {
  return " (after " + std::to_string(objects_seen) + " object and " +
         std::to_string(requests_seen) + " request records)";
}

}  // namespace

void write_trace(const Workload& workload,
                 const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace: cannot open " + path.string());
  }
  out << "streamcache-trace v2 " << workload.catalog.size() << ' '
      << workload.requests.size() << '\n';
  out << std::setprecision(17);
  for (const auto& o : workload.catalog.objects()) {
    out << "O " << o.id << ' ' << o.duration_s << ' ' << o.bitrate << ' '
        << o.value << ' ' << o.path << '\n';
  }
  for (const auto& r : workload.requests) {
    out << "R " << r.time_s << ' ' << r.object << ' ' << r.view_s << '\n';
  }
  if (!out) {
    throw std::runtime_error("write_trace: write failed on " + path.string());
  }
}

Workload read_trace(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace: cannot open " + path.string());
  }
  std::string magic, version;
  std::size_t num_objects = 0, num_requests = 0;
  in >> magic >> version >> num_objects >> num_requests;
  if (!in || magic != "streamcache-trace") {
    fail(path, "bad magic (expected \"streamcache-trace v1|v2 "
               "<objects> <requests>\")");
  }
  if (version != "v1" && version != "v2") {
    fail(path, "unsupported version \"" + version + "\" (known: v1, v2)");
  }
  const bool has_view = version == "v2";
  std::vector<StreamObject> objects;
  objects.reserve(num_objects);
  std::vector<Request> requests;
  requests.reserve(num_requests);

  std::string tag;
  double last_time = 0.0;
  while (in >> tag) {
    if (tag == "O") {
      StreamObject o;
      in >> o.id >> o.duration_s >> o.bitrate >> o.value >> o.path;
      if (!in) {
        fail(path, "malformed or truncated object record" +
                       record_context(objects.size(), requests.size()));
      }
      if (o.id != objects.size()) {
        fail(path, "object ids must be dense and in order (got id " +
                       std::to_string(o.id) + " for object #" +
                       std::to_string(objects.size()) + ")");
      }
      // Simulations build one bandwidth path per catalog object; an
      // out-of-range path id must fail here with the file named, not
      // mid-sweep inside a worker task.
      if (o.path >= num_objects) {
        fail(path, "object " + std::to_string(o.id) + " names path " +
                       std::to_string(o.path) +
                       " outside the declared catalog of " +
                       std::to_string(num_objects) + " paths");
      }
      // size_bytes and popularity_rank are derived by
      // Catalog::from_objects below.
      objects.push_back(o);
    } else if (tag == "R") {
      Request r;
      in >> r.time_s >> r.object;
      if (has_view) in >> r.view_s;
      if (!in) {
        fail(path, "malformed or truncated request record" +
                       record_context(objects.size(), requests.size()));
      }
      if (r.object >= num_objects) {
        fail(path, "request #" + std::to_string(requests.size()) +
                       " references object " + std::to_string(r.object) +
                       " outside the declared catalog of " +
                       std::to_string(num_objects));
      }
      if (r.time_s < last_time) {
        fail(path, "request times regress at request #" +
                       std::to_string(requests.size()) + " (" +
                       std::to_string(r.time_s) + " after " +
                       std::to_string(last_time) + ")");
      }
      last_time = r.time_s;
      requests.push_back(r);
    } else {
      fail(path, "unknown record tag \"" + tag + "\"" +
                     record_context(objects.size(), requests.size()));
    }
  }
  if (objects.size() != num_objects || requests.size() != num_requests) {
    fail(path, "record count mismatch (header declares " +
                   std::to_string(num_objects) + " objects and " +
                   std::to_string(num_requests) + " requests; file holds " +
                   std::to_string(objects.size()) + " and " +
                   std::to_string(requests.size()) +
                   " — truncated file?)");
  }
  return Workload{Catalog::from_objects(std::move(objects)),
                  std::move(requests)};
}

}  // namespace sc::workload
