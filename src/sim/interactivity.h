// Client session dynamics (partial viewing).
//
// The paper's partial-caching utilities exist because real streaming
// clients frequently abandon sessions before the object ends (the
// media-workload studies cited in §5); yet the base simulator assumes
// every session plays to the end. This module models per-request viewing
// duration as a configurable distribution, addressed by a spec string:
//
//   "full"              whole-stream sessions — the regression oracle,
//                       observationally identical to the pre-existing
//                       simulator (no RNG draw, no truncation)
//   "exp:mean=1800"     exponential viewing time with the given mean
//                       (seconds), capped at the object duration
//   "empirical"         viewed *fraction* drawn from a built-in
//                       empirical session-length model (most sessions
//                       stop in the first minutes; a fat head watches
//                       through), shaped after proxy media-log studies
//   "trace"             replay the workload's recorded per-request
//                       viewing durations (Request::view_s; sessions
//                       without one run to the end)
//
// A truncated session re-derives its delivery outcome over the viewed
// prefix (sim/run_loop.h): startup delay and quality are what the
// client experienced for the part it watched, the origin connection is
// cancelled at departure (so its completion observation happens at the
// truncated time), and byte/hit accounting covers only shipped bytes.
#pragma once

#include <algorithm>
#include <string>

#include "util/rng.h"
#include "util/spec.h"

namespace sc::sim {

enum class InteractivityMode { kFull, kExponential, kEmpirical, kTrace };

/// Resolved interactivity model. Plain data (no strings) so simulation
/// configs copy allocation-free; build one from a spec string with
/// parse(). Default-constructed == "full" == the pre-session-dynamics
/// simulator.
struct InteractivityConfig {
  InteractivityMode mode = InteractivityMode::kFull;
  /// Mean viewing duration, seconds (kExponential only).
  double mean_s = 1800.0;

  [[nodiscard]] bool enabled() const noexcept {
    return mode != InteractivityMode::kFull;
  }

  /// Parse "full" | "exp:mean=SECONDS" | "empirical" | "trace". Throws
  /// util::SpecError on unknown modes/parameters or a non-positive mean.
  [[nodiscard]] static InteractivityConfig parse(const std::string& spec);

  /// Canonical spec string for this config ("exp:mean=1800", ...).
  [[nodiscard]] std::string to_string() const;
};

/// The built-in "empirical" session-length model: inverse CDF of the
/// viewed fraction. Piecewise-linear between (cdf, fraction) knots,
/// shaped after the proxy media-workload characterizations the paper
/// cites: ~half of the sessions end within the first tenth of the
/// object, and only ~a fifth play essentially to the end.
[[nodiscard]] inline double empirical_viewed_fraction(double u) {
  struct Knot {
    double cdf;
    double fraction;
  };
  // clang-format off
  constexpr Knot kKnots[] = {
      {0.00, 0.01}, {0.25, 0.05}, {0.50, 0.10}, {0.65, 0.25},
      {0.75, 0.50}, {0.82, 0.80}, {1.00, 1.00},
  };
  // clang-format on
  constexpr std::size_t kN = sizeof(kKnots) / sizeof(kKnots[0]);
  const double p = std::clamp(u, 0.0, 1.0);
  for (std::size_t i = 1; i < kN; ++i) {
    if (p <= kKnots[i].cdf) {
      const double span = kKnots[i].cdf - kKnots[i - 1].cdf;
      const double t = span > 0 ? (p - kKnots[i - 1].cdf) / span : 1.0;
      return kKnots[i - 1].fraction +
             t * (kKnots[i].fraction - kKnots[i - 1].fraction);
    }
  }
  return 1.0;
}

/// Viewed fraction of one session over an object of `duration_s`
/// seconds. Draws from `rng` for the stochastic modes; `recorded_view_s`
/// is the workload's Request::view_s (consumed by kTrace, ignored
/// otherwise). kFull never draws — the RNG stream is untouched, which is
/// what makes "full" a field-identical regression oracle.
[[nodiscard]] inline double sample_viewed_fraction(
    const InteractivityConfig& config, double duration_s,
    double recorded_view_s, util::Rng& rng) {
  switch (config.mode) {
    case InteractivityMode::kFull:
      return 1.0;
    case InteractivityMode::kExponential: {
      const double view_s = rng.exponential(1.0 / config.mean_s);
      return duration_s > 0 ? std::min(1.0, view_s / duration_s) : 1.0;
    }
    case InteractivityMode::kEmpirical:
      return empirical_viewed_fraction(rng.uniform());
    case InteractivityMode::kTrace:
      if (recorded_view_s < 0 || duration_s <= 0) return 1.0;
      return std::min(1.0, recorded_view_s / duration_s);
  }
  return 1.0;
}

}  // namespace sc::sim
