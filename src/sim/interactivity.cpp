#include "sim/interactivity.h"

#include <sstream>

namespace sc::sim {

InteractivityConfig InteractivityConfig::parse(const std::string& spec) {
  const util::Spec parsed = util::Spec::parse(spec);
  InteractivityConfig config;
  if (parsed.name == "full") {
    config.mode = InteractivityMode::kFull;
    parsed.require_only({});
  } else if (parsed.name == "exp" || parsed.name == "exponential") {
    config.mode = InteractivityMode::kExponential;
    parsed.require_only({"mean"});
    config.mean_s = parsed.get_double("mean", config.mean_s);
    if (config.mean_s <= 0) {
      throw util::SpecError("interactivity \"" + spec +
                            "\": mean must be > 0 seconds");
    }
  } else if (parsed.name == "empirical") {
    config.mode = InteractivityMode::kEmpirical;
    parsed.require_only({});
  } else if (parsed.name == "trace") {
    config.mode = InteractivityMode::kTrace;
    parsed.require_only({});
  } else {
    std::string message = "unknown interactivity mode \"" + parsed.name +
                          "\" (known: full, exp:mean=SECONDS, empirical, "
                          "trace)";
    if (const auto suggestion = util::closest_match(
            parsed.name, {"full", "exp", "exponential", "empirical",
                          "trace"})) {
      message += "; did you mean \"" + *suggestion + "\"?";
    }
    throw util::SpecError(message);
  }
  return config;
}

std::string InteractivityConfig::to_string() const {
  switch (mode) {
    case InteractivityMode::kFull:
      return "full";
    case InteractivityMode::kExponential: {
      std::ostringstream out;
      out << "exp:mean=" << mean_s;
      return out.str();
    }
    case InteractivityMode::kEmpirical:
      return "empirical";
    case InteractivityMode::kTrace:
      return "trace";
  }
  return "?";
}

}  // namespace sc::sim
