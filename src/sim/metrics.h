// Performance metrics (§3.3): traffic reduction ratio, average service
// delay, average stream quality, and total added value, plus standard
// cache diagnostics (hit ratios, occupancy).
#pragma once

#include <cstddef>

#include "sim/delivery.h"
#include "stats/summary.h"

namespace sc::sim {

/// Accumulates per-request outcomes over the *measured* window.
class MetricsCollector {
 public:
  /// Record a served request. `value` is V_i (counted toward added value
  /// only when playout is immediate, per §2.6).
  void record(const ServiceOutcome& outcome, double value);

  /// Record origin->cache fill traffic caused by an admission decision.
  void record_fill(double bytes) { fill_bytes_ += bytes; }

  /// Record bytes a request wanted but could not get because the origin
  /// was unreachable (fault injection; the request was served
  /// cache-only). Called alongside record() for the same request.
  void record_denied(double bytes) {
    ++denied_requests_;
    denied_bytes_ += bytes;
  }

  /// Record one session's viewed fraction (session dynamics; 1.0 and
  /// truncated == false for whole-stream sessions).
  void record_session(double viewed_fraction, bool truncated) {
    viewed_fraction_.add(viewed_fraction);
    if (truncated) ++truncated_;
  }

  [[nodiscard]] std::size_t requests() const noexcept { return requests_; }

  /// Fraction of requested bytes served by the cache (§3.3).
  [[nodiscard]] double traffic_reduction_ratio() const;

  /// Fraction of requested bytes that did NOT cross the backbone: served
  /// by the cache or shared with an in-flight stream (patching
  /// extension). Equals traffic_reduction_ratio when patching is off.
  [[nodiscard]] double backbone_reduction_ratio() const;

  /// Mean prefetch delay per request, seconds (§3.3).
  [[nodiscard]] double average_delay_s() const { return delay_.mean(); }

  /// Mean immediate-playout quality fraction (§3.3, continuous
  /// "percentage of the full stream" reading).
  [[nodiscard]] double average_quality() const { return quality_.mean(); }

  /// Mean quality quantized to fully-supported layers (floor(q*L)/L with
  /// L = 4, the paper's example encoding). Diagnostic companion to
  /// average_quality(); see EXPERIMENTS.md for why the continuous reading
  /// is the headline metric.
  [[nodiscard]] double average_quality_quantized() const {
    return quality_quantized_.mean();
  }

  /// Sum of V_i over immediately-served requests, dollars (§2.6).
  [[nodiscard]] double total_added_value() const noexcept {
    return added_value_;
  }

  /// Fraction of requests with any cached prefix.
  [[nodiscard]] double hit_ratio() const;

  /// Fraction of requests that played out immediately.
  [[nodiscard]] double immediate_ratio() const;

  [[nodiscard]] double bytes_from_cache() const noexcept {
    return cache_bytes_;
  }
  [[nodiscard]] double bytes_shared() const noexcept { return shared_bytes_; }
  [[nodiscard]] double bytes_from_origin() const noexcept {
    return origin_bytes_;
  }
  [[nodiscard]] double fill_bytes() const noexcept { return fill_bytes_; }

  /// Requests that hit an unreachable origin (0 without fault injection).
  [[nodiscard]] std::size_t denied_requests() const noexcept {
    return denied_requests_;
  }
  /// Bytes denied by unreachable origins (0 without fault injection).
  [[nodiscard]] double denied_bytes() const noexcept { return denied_bytes_; }

  /// Mean viewed fraction per session (1.0 when session dynamics are
  /// disabled or every client watched through).
  [[nodiscard]] double average_viewed_fraction() const {
    return viewed_fraction_.count() > 0 ? viewed_fraction_.mean() : 1.0;
  }

  /// Fraction of measured sessions that departed before the stream's
  /// end (0 when session dynamics are disabled).
  [[nodiscard]] double truncated_ratio() const {
    return requests_ > 0
               ? static_cast<double>(truncated_) / static_cast<double>(requests_)
               : 0.0;
  }

  /// Full delay distribution (for percentile reporting).
  [[nodiscard]] const stats::RunningStats& delay_stats() const noexcept {
    return delay_;
  }
  [[nodiscard]] const stats::RunningStats& quality_stats() const noexcept {
    return quality_;
  }

 private:
  std::size_t requests_ = 0;
  std::size_t hits_ = 0;
  std::size_t immediate_ = 0;
  std::size_t truncated_ = 0;
  double cache_bytes_ = 0.0;
  double origin_bytes_ = 0.0;
  double shared_bytes_ = 0.0;
  double fill_bytes_ = 0.0;
  std::size_t denied_requests_ = 0;
  double denied_bytes_ = 0.0;
  double added_value_ = 0.0;
  stats::RunningStats delay_;
  stats::RunningStats quality_;
  stats::RunningStats quality_quantized_;
  stats::RunningStats viewed_fraction_;
};

}  // namespace sc::sim
