// Discrete-event scheduling for the proxy simulator.
//
// The request trace drives the simulation, but some effects are deferred:
// a passive bandwidth estimator only learns a transfer's throughput when
// the transfer *completes*. BasicEventQueue orders such deferred payloads
// by simulation time with FIFO tie-breaking (a monotone sequence number).
//
// The payload type is a template parameter so the simulator's hot path
// can defer a POD ObservationEvent (path id + throughput, drained
// straight into the estimator) without a heap-allocated std::function per
// event. The heap is an explicit std::vector managed with std::push_heap
// / std::pop_heap, so a popped event is *moved* out of storage (the old
// std::priority_queue could only copy from its const top()) and storage
// is reused across events: in steady state scheduling allocates nothing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

namespace sc::sim {

template <typename Payload>
class BasicEventQueue {
 public:
  /// Schedule `payload` at absolute simulation time `time_s`.
  void schedule(double time_s, Payload payload) {
    events_.push_back(Event{time_s, next_seq_++, std::move(payload)});
    std::push_heap(events_.begin(), events_.end(), Later{});
  }

  /// Deliver every event with time <= `until_s` to `fn(now_s, payload&)`,
  /// in (time, insertion) order. Handlers may schedule further events;
  /// those are honored if they also fall within the horizon.
  template <typename Fn>
  void run_until(double until_s, Fn&& fn) {
    while (!events_.empty() && events_.front().time <= until_s) {
      std::pop_heap(events_.begin(), events_.end(), Later{});
      Event ev = std::move(events_.back());
      events_.pop_back();
      now_ = ev.time;
      fn(ev.time, ev.payload);
    }
  }

  /// Drain the queue completely.
  template <typename Fn>
  void run_all(Fn&& fn) {
    run_until(std::numeric_limits<double>::infinity(), std::forward<Fn>(fn));
  }

  /// Pre-size the backing storage (hot paths can avoid even the initial
  /// amortized growth).
  void reserve(std::size_t n) { events_.reserve(n); }

  /// Drop all pending events and restart the sequence counter and clock,
  /// keeping the backing storage: after clear() the queue behaves exactly
  /// like a freshly constructed one (arena reuse across simulations).
  void clear() noexcept {
    events_.clear();
    next_seq_ = 0;
    now_ = 0.0;
  }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Visit every pending event as `fn(time_s, const Payload&)`, in heap
  /// storage order (NOT delivery order). Read-only audit hook
  /// (sim::StateAuditor) — delivery semantics are untouched.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Event& ev : events_) fn(ev.time, ev.payload);
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Payload payload;
  };
  /// Max-heap comparator that surfaces the *earliest* (time, seq) event
  /// at front(); seq keeps same-timestamp events FIFO.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> events_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

/// The simulator's deferred estimator observation: a completed origin
/// transfer on `path` that achieved `throughput` bytes/second. POD — no
/// per-event allocation.
struct ObservationEvent {
  std::size_t path = 0;  // net::PathId
  double throughput = 0.0;
};

using ObservationQueue = BasicEventQueue<ObservationEvent>;

/// Generic callback queue (legacy interface, kept for tests and
/// extensions that defer arbitrary work). Each event carries a
/// std::function; prefer BasicEventQueue with a POD payload on hot paths.
class EventQueue {
 public:
  using Action = std::function<void(double /*now_s*/)>;

  void schedule(double time_s, Action action) {
    queue_.schedule(time_s, std::move(action));
  }

  /// Run every event with time <= `until_s`, in (time, insertion) order.
  void run_until(double until_s) {
    queue_.run_until(until_s,
                     [](double now, Action& action) { action(now); });
  }

  /// Drain the queue completely.
  void run_all() {
    queue_.run_all([](double now, Action& action) { action(now); });
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] double now() const noexcept { return queue_.now(); }

 private:
  BasicEventQueue<Action> queue_;
};

}  // namespace sc::sim
