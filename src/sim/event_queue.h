// Discrete-event scheduling for the proxy simulator.
//
// The request trace drives the simulation, but some effects are deferred:
// a passive bandwidth estimator only learns a transfer's throughput when
// the transfer *completes*. The EventQueue orders such callbacks by
// simulation time with FIFO tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sc::sim {

class EventQueue {
 public:
  using Action = std::function<void(double /*now_s*/)>;

  /// Schedule `action` at absolute simulation time `time_s`.
  void schedule(double time_s, Action action) {
    events_.push(Event{time_s, next_seq_++, std::move(action)});
  }

  /// Run every event with time <= `until_s`, in (time, insertion) order.
  /// Events may schedule further events; those are honored if they also
  /// fall within the horizon.
  void run_until(double until_s) {
    while (!events_.empty() && events_.top().time <= until_s) {
      // std::priority_queue::top() is const; move out via const_cast-free
      // copy of the handler (cheap: one std::function).
      Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      ev.action(ev.time);
    }
  }

  /// Drain the queue completely.
  void run_all() {
    while (!events_.empty()) {
      Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      ev.action(ev.time);
    }
  }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace sc::sim
