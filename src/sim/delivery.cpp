// sim/delivery.h is header-only (the formulas are inline so the
// simulator's hot loop sees them); this TU just anchors the header's
// compilation for the library target.
#include "sim/delivery.h"
