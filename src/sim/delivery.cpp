#include "sim/delivery.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sc::sim {

namespace {
// A deficit below one byte is rounding noise, not a real shortfall: an
// exactly-provisioned prefix x = (r - b) * T evaluates the deficit
// S - T*b - x to +-ulp, and treating +ulp as "not immediate" would
// silently forfeit the request's added value (and a whole quality layer).
constexpr double kByteEps = 1.0;
}  // namespace

double service_delay(double duration_s, double bitrate, double bandwidth,
                     double cached_bytes) {
  if (bandwidth <= 0) throw std::invalid_argument("service_delay: bw <= 0");
  const double deficit =
      duration_s * bitrate - duration_s * bandwidth - cached_bytes;
  return deficit > kByteEps ? deficit / bandwidth : 0.0;
}

double stream_quality(double duration_s, double bitrate, double bandwidth,
                      double cached_bytes) {
  if (bandwidth <= 0) throw std::invalid_argument("stream_quality: bw <= 0");
  const double size = duration_s * bitrate;
  if (size <= 0) return 1.0;
  const double supported = duration_s * bandwidth + cached_bytes;
  if (supported + kByteEps >= size) return 1.0;
  return supported / size;
}

double quantize_quality(double quality, int layers) {
  if (layers <= 0) throw std::invalid_argument("quantize_quality: layers");
  const double q = std::clamp(quality, 0.0, 1.0);
  return std::floor(q * layers) / layers;
}

ServiceOutcome deliver(const workload::StreamObject& obj, double bandwidth,
                       double cached_prefix_bytes, int quality_layers) {
  if (bandwidth <= 0) throw std::invalid_argument("deliver: bandwidth <= 0");
  const double cached = std::clamp(cached_prefix_bytes, 0.0, obj.size_bytes);

  ServiceOutcome out;
  out.delay_s = service_delay(obj.duration_s, obj.bitrate, bandwidth, cached);
  out.quality_continuous =
      stream_quality(obj.duration_s, obj.bitrate, bandwidth, cached);
  out.quality = quantize_quality(out.quality_continuous, quality_layers);
  out.immediate = out.delay_s <= 0.0;
  out.bytes_from_cache = cached;
  out.bytes_from_origin = obj.size_bytes - cached;
  // The origin connection ships the remainder at rate `bandwidth`; it is
  // also what a passive measurement of this transfer would observe.
  out.origin_transfer_s =
      out.bytes_from_origin > 0 ? out.bytes_from_origin / bandwidth : 0.0;
  out.origin_throughput = out.bytes_from_origin > 0 ? bandwidth : 0.0;
  return out;
}

}  // namespace sc::sim
