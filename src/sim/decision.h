// The clock-agnostic decision kernel: the half of the request loop that
// decides *what the cache does*, with no opinion about who owns time.
//
// sim/run_loop.h used to fuse two things: (a) the paper's decision path
// — admission, utility eviction, partial-prefix management, estimator
// observe/estimate with deferred completion observations — and (b) the
// simulated delivery model that drives it from a recorded trace under a
// simulated clock. DecisionKernel extracts (a) behind a clock-agnostic
// surface: every entry point takes `now_s` as a plain double, so the
// same kernel runs under
//
//   - the simulated clock (sim/run_loop.h: `now_s` is the trace's
//     request arrival time), and
//   - the wall clock (src/server/: `now_s` is seconds since daemon
//     start, and tick() is called from real time so EWMA/probe
//     estimators age on real seconds).
//
// The extraction is expression-for-expression identical to the fused
// loop — the golden-CSV harness (tests/golden/) pins the simulator's
// output byte-identically across it, and tests/test_decision.cpp covers
// the kernel in isolation under an arbitrary (non-simulated) clock.
#pragma once

#include <limits>

#include "cache/store.h"
#include "net/fault.h"
#include "net/path_process.h"
#include "sim/event_queue.h"
#include "workload/object_catalog.h"

namespace sc::sim {

/// Compile-time view of an estimator's observation behavior. The primary
/// template covers the virtual interface (runtime query); the
/// specialization picks up kernel types that expose the
/// kUsesObservations constant, letting callers drop the event-schedule
/// branch entirely for oracle/probe kernels.
template <typename Estimator, typename = void>
struct ObservationTraits {
  /// True when the estimator type proves at compile time that
  /// observations are discarded.
  static constexpr bool kStaticallyDiscards = false;
  [[nodiscard]] static bool uses(const Estimator& estimator) {
    return estimator.uses_observations();
  }
};

template <typename Estimator>
struct ObservationTraits<
    Estimator, std::void_t<decltype(Estimator::kUsesObservations)>> {
  static constexpr bool kStaticallyDiscards = !Estimator::kUsesObservations;
  [[nodiscard]] static constexpr bool uses(const Estimator&) {
    return Estimator::kUsesObservations;
  }
};

/// Non-owning view over one (policy, estimator, store, observation
/// queue) quadruple. Instantiated with the concrete kernel types by the
/// monomorphized engines (everything inlines) and with the virtual
/// CachePolicy / BandwidthEstimator interfaces by the fallback simulator
/// and the live proxy daemon (one indirect call per operation — fine off
/// the 30M-requests/sec path).
///
/// All state lives in the referenced components; the kernel itself is a
/// few pointers and is trivially copyable. Not thread-safe: concurrent
/// callers (the server) must serialize access externally (see
/// docs/SERVER.md, "Lock discipline").
template <typename Policy, typename Estimator>
class DecisionKernel {
 public:
  DecisionKernel(Policy& policy, Estimator& estimator,
                 cache::PartialStore& store, ObservationQueue& events)
      : policy_(&policy),
        estimator_(&estimator),
        store_(&store),
        events_(&events),
        observes_(ObservationTraits<Estimator>::uses(estimator)) {}

  [[nodiscard]] cache::PartialStore& store() noexcept { return *store_; }
  [[nodiscard]] const cache::PartialStore& store() const noexcept {
    return *store_;
  }

  /// Cached prefix bytes of `id` right now (what a request can be served
  /// from before any admission decision runs).
  [[nodiscard]] double cached(workload::ObjectId id) const noexcept {
    return store_->cached(id);
  }

  /// Whether the estimator consumes completion observations at all
  /// (constant-folded for kernel estimators; callers gate
  /// record_transfer on it to skip dead event traffic).
  [[nodiscard]] bool observes() const noexcept { return observes_; }

  /// Attach a compiled fault schedule (net/fault.h): observations whose
  /// due time falls inside a blackout window are dropped in tick()
  /// before reaching the estimator. Null (the default) detaches — the
  /// tick path is then exactly the pre-fault-layer code, which is what
  /// keeps an empty fault plan inert.
  void set_faults(const net::FaultSchedule* faults) noexcept {
    faults_ = faults;
  }

  /// Current bandwidth estimate for `path` (bytes/second).
  [[nodiscard]] double estimate(net::PathId path, double now_s) {
    return estimator_->estimate(path, now_s);
  }

  /// Deliver every deferred completion observation due at or before
  /// `now_s` to the estimator, in (time, insertion) order. The simulator
  /// calls this with each request's arrival time; the server calls it
  /// from the wall clock (per request and from a periodic ticker), which
  /// is what makes EWMA/probe estimators age on real seconds.
  void tick(double now_s) {
    if (faults_ == nullptr) {
      events_->run_until(now_s, [this](double now, ObservationEvent& ev) {
        estimator_->observe(ev.path, ev.throughput, now);
      });
    } else {
      // Estimator blackout: the measurement plane is down — due
      // observations are consumed (the transfer still happened) but
      // never reach the estimator.
      events_->run_until(now_s, [this](double now, ObservationEvent& ev) {
        if (!faults_->blackout(now)) {
          estimator_->observe(ev.path, ev.throughput, now);
        }
      });
    }
  }

  /// Flush every pending observation regardless of time (end of run).
  void drain() { tick(std::numeric_limits<double>::infinity()); }

  /// Defer the completion observation of a transfer on `path` achieving
  /// `throughput` bytes/second until `done_s`: passive estimators only
  /// learn a transfer's throughput once it completes. Compiled out
  /// entirely for statically-discarding (oracle/probe) kernels.
  void record_transfer(net::PathId path, double throughput, double done_s) {
    if constexpr (ObservationTraits<Estimator>::kStaticallyDiscards) {
      (void)path;
      (void)throughput;
      (void)done_s;
    } else {
      events_->schedule(done_s, ObservationEvent{path, throughput});
    }
  }

  /// Run the replacement decision for a request of `id` served at
  /// `now_s` — frequency update, utility computation, admission, utility
  /// eviction, and partial-prefix grow/shrink, all inside the policy.
  /// Called *after* the request was served from the pre-decision cache
  /// contents. Returns the cached prefix after the decision (callers
  /// diff against cached(id) from before to account origin->cache fill
  /// traffic).
  double admit(workload::ObjectId id, double now_s) {
    policy_->on_access(id, now_s, *store_);
    return store_->cached(id);
  }

 private:
  Policy* policy_;
  Estimator* estimator_;
  cache::PartialStore* store_;
  ObservationQueue* events_;
  const net::FaultSchedule* faults_ = nullptr;
  bool observes_;
};

}  // namespace sc::sim
