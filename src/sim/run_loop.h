// The per-request simulation loop, as a template over the policy and
// estimator's *static* types.
//
// There is exactly one implementation of the trace-driven request loop
// (§3 methodology: warmup half, measured half, deferred completion
// observations, viewing/patching extensions). It is instantiated twice:
//
//   - the virtual fallback (sim/simulator.cpp): Policy = the
//     cache::CachePolicy interface, Estimator = the
//     net::BandwidthEstimator interface. This is the regression oracle
//     and the path user-registered (out-of-dispatch-table) components
//     run on.
//   - the monomorphized engines (sim/monomorphize.cpp): Policy = a
//     MonoPolicyRef over a concrete cache::UtilityPolicy<Kernel>,
//     Estimator = a concrete estimator kernel. Every per-request call
//     (estimate, observe, utility, admission) inlines, and the
//     "schedule a completion event?" branch resolves at compile time
//     via ObservationTraits.
//
// The *decision* half of the loop — admission, utility eviction,
// partial-prefix management, estimator observe/estimate with deferred
// completion observations — lives in sim/decision.h as the
// clock-agnostic DecisionKernel; this file contributes the *simulated
// delivery* half (trace iteration, the §2.2 delivery model, session
// dynamics, patching, metrics) and drives the kernel from the simulated
// clock. The live proxy daemon (src/server/) drives the identical
// kernel from the wall clock.
//
// Because both instantiations execute the identical expressions in the
// identical order over the identical RNG streams, their results are
// bit-identical (tests/test_mono.cpp asserts this for every registered
// policy x estimator pair, and the golden CSVs under tests/golden/ pin
// the series across refactors of this file).
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "cache/store.h"
#include "net/fault.h"
#include "net/path_process.h"
#include "sim/decision.h"
#include "sim/delivery.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/request_stream.h"

namespace sc::sim {

/// Per-object in-flight origin stream (patching extension), paced at the
/// playout rate. Dense per-object slots (ids are dense) keep the lookup a
/// single array access and the loop allocation-free; end == 0 means "no
/// stream in flight" (every real completion time is > 0).
struct InFlightStream {
  double start = 0.0;
  double end = 0.0;
};

/// The reusable mutable state of one simulation run: everything the
/// request loop mutates that is sized by the catalog rather than learned
/// per run. A sim::SimulationArena keeps one RunState per cached engine
/// so back-to-back simulations reuse the storage; reset() restores every
/// piece to its freshly-constructed state.
struct RunState {
  ObservationQueue events;
  cache::PartialStore store{0.0};
  std::vector<InFlightStream> in_flight;
  std::optional<net::PathSampler> paths;
  /// Chunk-wise iteration over the run's request stream plus the dense
  /// per-object delivery operands (see sim/delivery.h). Both reuse
  /// their buffers across simulations.
  workload::RequestCursor cursor;
  DeliveryTable delivery;
  /// Compiled fault schedule (net/fault.h), rebuilt per run from
  /// SimulationConfig::fault. Empty (and never consulted) when the
  /// run's plan is empty.
  net::FaultSchedule faults;

  /// Prepare for a run over `stream` and `model` (bit-identical to
  /// building each member from scratch; storage reused). `chunk` is the
  /// cursor block size (SimulationConfig::stream_chunk) — results are
  /// identical for every value, only locality changes.
  void reset(const workload::RequestStream& stream, std::size_t chunk,
             std::shared_ptr<const net::PathModel> model,
             double capacity_bytes, bool patching) {
    const std::size_t n_objects = stream.catalog().size();
    events.clear();
    events.reserve(64);
    store.reset(capacity_bytes);
    store.reserve(n_objects);
    if (patching) {
      in_flight.assign(n_objects, InFlightStream{});
    } else {
      in_flight.clear();
    }
    if (paths.has_value()) {
      paths->rebind(std::move(model));
    } else {
      paths.emplace(std::move(model));
    }
    cursor.bind(stream, chunk);
  }
};

/// Execute the full trace and return measured-window metrics.
///
/// `rng` must be the run's root stream (Rng(seed), with "paths" already
/// forked off by the caller if it built the model here); the loop forks
/// only the tag-keyed "viewing" child, so fork order elsewhere cannot
/// perturb it. `policy` needs on_access(id, now_s, store) and name();
/// `estimator` needs observe(path, throughput, now_s) and
/// overhead_packets(), plus either uses_observations() or the kernel
/// kUsesObservations constant.
template <typename Policy, typename Estimator>
[[nodiscard]] SimulationResult run_request_loop(
    const workload::RequestStream& stream, const SimulationConfig& config,
    RunState& state, Policy& policy, Estimator& estimator, util::Rng& rng) {
  const workload::Catalog& catalog = stream.catalog();
  const std::size_t total_requests = stream.num_requests();
  const workload::CatalogView view = catalog.view();

  net::PathSampler& paths = *state.paths;
  const net::PathModel& model = paths.model();
  // Constant-bandwidth scenarios (the paper's main setting) sample the
  // mean directly: no switch, no sampler state, one contiguous load.
  const bool constant_bw = model.mode() == net::VariationMode::kConstant;
  const double* path_means = model.means().data();
  // One up-front scan keeps the unchecked fast-path read below safe for
  // hand-built catalogs whose per-object path ids exceed the model
  // (generated catalogs always use path == id < size).
  for (std::size_t i = 0; i < view.size; ++i) {
    if (view.path[i] >= model.size()) {
      throw std::out_of_range("run_request_loop: object path id " +
                              std::to_string(view.path[i]) +
                              " outside the path model");
    }
  }

  // The clock-agnostic decision half (sim/decision.h); this loop owns
  // the simulated clock and feeds it request arrival times.
  DecisionKernel<Policy, Estimator> decisions(policy, estimator, state.store,
                                              state.events);
  // Oracle / purely-active estimators discard observations; skip the
  // per-transfer event traffic for them entirely (the queue stays empty,
  // so tick() degenerates to one size check per request). For kernel
  // estimators this is a compile-time constant.
  const bool estimator_observes = decisions.observes();
  // Fault injection (net/fault.h): compile the plan once per run. With
  // an empty plan `faults` stays null and every hook below
  // short-circuits on a constant pointer/scale test, so the loop
  // executes the exact pre-fault expression stream — bit-identical
  // results, golden-CSV enforced. The schedule seed is a tag-keyed fork
  // of the run's root stream (fork() is const, so this perturbs
  // nothing), making fault timing identical across engines and thread
  // counts but independent across replications.
  const net::FaultSchedule* faults = nullptr;
  if (!config.fault.empty()) {
    state.faults.compile(config.fault, model.size(),
                         rng.fork("faults").seed());
    faults = &state.faults;
  } else {
    state.faults.clear();
  }
  decisions.set_faults(faults);
  MetricsCollector metrics;
  const auto warm_count = static_cast<std::size_t>(
      static_cast<double>(total_requests) * config.warmup_fraction);

  std::vector<InFlightStream>& in_flight = state.in_flight;
  util::Rng viewing_rng = rng.fork("viewing");
  // Session dynamics draw from their own tag-keyed stream so enabling
  // them never perturbs the viewing/path/estimator streams (and "full"
  // mode draws nothing at all, keeping it a field-identical oracle).
  const bool interactive = config.interactivity.enabled();
  if (interactive && config.viewing.enabled) {
    throw std::invalid_argument(
        "run_request_loop: ViewingConfig and a non-full interactivity "
        "model are both session-length models and cannot be combined; "
        "use --interactivity alone (it supersedes --viewing)");
  }
  util::Rng session_rng = rng.fork("session");

  // Per-object §2.2 products, premultiplied once per run in the
  // contiguous vectorizable fills of sim/delivery.h — they depend only
  // on the catalog (and constant-mode path means), so per-request
  // recomputation would be pure overhead.
  DeliveryTable& pre = state.delivery;
  build_delivery_table(view, constant_bw ? path_means : nullptr, pre);

  // The stream is consumed in chunks: the cursor materializes one SoA
  // request block at a time (replayed, regenerated, or re-read from
  // disk — sources are interchangeable and byte-identical) and the
  // sequential decision loop below runs over its contiguous lanes.
  // Identical expressions in identical order to the
  // one-request-at-a-time loop this replaces, so results are
  // bit-identical at every chunk size.
  workload::RequestCursor& cursor = state.cursor;
  while (const workload::RequestBlock* block = cursor.next()) {
    for (std::size_t i = 0; i < block->size; ++i) {
      const std::size_t idx = block->first + i;
      const double now_s = block->time_s[i];
      // Deliver pending transfer-completion observations first.
      decisions.tick(now_s);

      const workload::ObjectId id = block->object[i];
      const double duration_s = view.duration_s[id];
      const double bitrate = view.bitrate[id];
      const double size_bytes = view.size_bytes[id];
      double bw, db;
      if (constant_bw) {
        bw = pre.bw[id];
        db = pre.db[id];
      } else {
        // Variable-bandwidth samplers are stateful and sequential; the
        // draw stays in the decision loop, in the original order.
        bw = paths.sample_bandwidth(view.path[id], now_s);
        db = duration_s * bw;
      }
      // Fault injection: an active degrade window scales this path's
      // instantaneous bandwidth; an outage or down flap half-period
      // (scale == 0) cuts the origin entirely and the request is served
      // cache-only.
      double fault_scale = 1.0;
      if (faults != nullptr) {
        fault_scale = faults->bandwidth_scale(view.path[id], now_s);
        if (fault_scale > 0.0 && fault_scale != 1.0) {
          bw *= fault_scale;
          db = duration_s * bw;
        }
      }
      const double cached_before = decisions.cached(id);
      double request_bytes = size_bytes;
      ServiceOutcome outcome;
      if (fault_scale > 0.0) {
        outcome =
            deliver_precomputed(size_bytes, pre.dr[id], db, bw, cached_before);
      } else {
        outcome = deliver_cache_only(size_bytes, cached_before);
      }

      // Session dynamics: a client that departs after watching a
      // fraction of the stream only needed the viewed prefix delivered.
      // Re-derive the outcome over that prefix — startup delay and
      // quality are what the client experienced for the part it
      // watched, the origin connection is cancelled at departure (its
      // completion observation below uses the truncated transfer), and
      // byte accounting covers only shipped bytes.
      double viewed_fraction = 1.0;
      double session_s = duration_s;
      if (interactive) {
        viewed_fraction = sample_viewed_fraction(config.interactivity,
                                                 duration_s, block->view_s[i],
                                                 session_rng);
        if (viewed_fraction < 1.0) {
          session_s = viewed_fraction * duration_s;
          const double viewed_bytes = session_s * bitrate;
          request_bytes = viewed_bytes;
          if (fault_scale > 0.0) {
            outcome = deliver(session_s, bitrate, viewed_bytes, bw,
                              std::min(cached_before, viewed_bytes));
          } else {
            outcome = deliver_cache_only(viewed_bytes,
                                         std::min(cached_before, viewed_bytes));
          }
        }
      }

      // Client interactivity: scale the byte accounting (not the startup
      // metrics) by the viewed fraction of the stream.
      if (config.viewing.enabled) {
        double fraction = 1.0;
        if (viewing_rng.uniform() >= config.viewing.complete_probability) {
          fraction = viewing_rng.uniform(config.viewing.min_fraction, 1.0);
        }
        const double viewed = fraction * size_bytes;
        request_bytes = viewed;
        outcome.bytes_from_cache = std::min(outcome.bytes_from_cache, viewed);
        // During a full outage the deficit beyond the cached prefix is
        // denied, not fetched (fault_scale == 1 whenever faults are off,
        // so the inert path is the historical expression).
        outcome.bytes_from_origin =
            fault_scale > 0.0
                ? std::max(0.0, viewed - outcome.bytes_from_cache)
                : 0.0;
        outcome.origin_transfer_s = outcome.bytes_from_origin > 0
                                        ? outcome.bytes_from_origin / bw
                                        : 0.0;
      }

      // Patching: share the tail of an in-flight transmission of the
      // same object; only the missed prefix still needs the origin.
      if (config.patching.enabled && outcome.bytes_from_origin > 0) {
        InFlightStream& flight = in_flight[id];
        if (now_s < flight.end) {
          // flight.end is start + the originating session's transmission
          // time: the full playout duration, or its departure point when
          // session dynamics truncated it (bit-identical to the old
          // `flight.start + duration_s` expression for full sessions).
          const double remaining_shareable =
              std::min(size_bytes, bitrate * (flight.end - now_s));
          const double shared = std::min(outcome.bytes_from_origin,
                                         std::max(0.0, remaining_shareable));
          outcome.bytes_shared = shared;
          outcome.bytes_from_origin -= shared;
          outcome.origin_transfer_s = outcome.bytes_from_origin > 0
                                          ? outcome.bytes_from_origin / bw
                                          : 0.0;
        }
        if (outcome.bytes_from_origin > 0) {
          // This request starts (or replaces) the object's shared
          // stream, paced at the playout rate until the session ends
          // (the full duration, or the client's early departure).
          flight.start = now_s;
          flight.end = now_s + session_s;
        }
      }

      const bool measured = idx >= warm_count;
      if (measured) {
        metrics.record(outcome, view.value[id]);
        if (faults != nullptr && fault_scale <= 0.0) {
          // Cache-only service: the part of the (viewed) request the
          // cached prefix could not cover was denied, not delayed.
          metrics.record_denied(request_bytes - outcome.bytes_from_cache);
        }
        // Session stats only when a session model is active: the
        // accessors default to "every session full" on zero samples, so
        // the disabled path pays nothing (its throughput is perf-gated).
        if (interactive) {
          metrics.record_session(viewed_fraction, viewed_fraction < 1.0);
        }
      }

      // Passive estimators learn this transfer's throughput at
      // completion.
      if (estimator_observes && outcome.bytes_from_origin > 0) {
        decisions.record_transfer(view.path[id], outcome.origin_throughput,
                                  now_s + outcome.origin_transfer_s);
      }

      // Replacement decisions happen after the request is served.
      // During a full outage the origin cannot supply fill bytes, so
      // the whole decision (frequency update, admission, eviction) is
      // skipped: the cache holds its state until the path recovers.
      // This is also what keeps occupancy <= budget under chaos — no
      // admission can be granted that the origin cannot back.
      if (fault_scale > 0.0) {
        const double cached_after = decisions.admit(id, now_s);

        // Growth of this object's prefix is origin->cache fill traffic.
        if (measured && cached_after > cached_before) {
          metrics.record_fill(cached_after - cached_before);
        }
      }
    }
  }
  decisions.drain();

  SimulationResult result;
  result.policy_name = policy.name();
  result.metrics = metrics;
  result.warmup_requests = warm_count;
  result.measured_requests = total_requests - warm_count;
  result.final_occupancy_bytes = state.store.used();
  result.final_cached_objects = state.store.object_count();
  result.estimator_overhead_packets = estimator.overhead_packets();
  return result;
}

}  // namespace sc::sim
