#include "sim/simulator.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "core/registry.h"
#include "net/estimator.h"
#include "sim/arena.h"
#include "sim/run_loop.h"

namespace sc::sim {

namespace {

/// A replay stream over a caller-owned workload (the Workload&
/// constructors' documented "must outlive the simulator" contract): the
/// aliasing shared_ptr shares no ownership, it only points.
workload::RequestStream borrow(const workload::Workload& workload) {
  return workload::RequestStream::replay(
      std::shared_ptr<const workload::Workload>(
          std::shared_ptr<const workload::Workload>(), &workload));
}

}  // namespace

Simulator::Simulator(const workload::Workload& workload,
                     const stats::EmpiricalDistribution& base_bandwidth,
                     const stats::EmpiricalDistribution& ratio_model,
                     SimulationConfig config)
    : Simulator(borrow(workload), &base_bandwidth, &ratio_model, nullptr,
                std::move(config)) {}

Simulator::Simulator(const workload::Workload& workload,
                     std::shared_ptr<const net::PathModel> path_model,
                     SimulationConfig config)
    : Simulator(borrow(workload), nullptr, nullptr, std::move(path_model),
                std::move(config)) {}

Simulator::Simulator(workload::RequestStream stream,
                     const stats::EmpiricalDistribution& base_bandwidth,
                     const stats::EmpiricalDistribution& ratio_model,
                     SimulationConfig config)
    : Simulator(std::move(stream), &base_bandwidth, &ratio_model, nullptr,
                std::move(config)) {}

Simulator::Simulator(workload::RequestStream stream,
                     std::shared_ptr<const net::PathModel> path_model,
                     SimulationConfig config)
    : Simulator(std::move(stream), nullptr, nullptr, std::move(path_model),
                std::move(config)) {}

Simulator::Simulator(workload::RequestStream stream,
                     const stats::EmpiricalDistribution* base_bandwidth,
                     const stats::EmpiricalDistribution* ratio_model,
                     std::shared_ptr<const net::PathModel> path_model,
                     SimulationConfig config)
    : stream_(std::move(stream)),
      path_model_(std::move(path_model)),
      config_(std::move(config)) {
  if (base_bandwidth != nullptr) base_.emplace(*base_bandwidth);
  if (ratio_model != nullptr) ratio_.emplace(*ratio_model);
  if (path_model_ == nullptr && !base_.has_value()) {
    throw std::invalid_argument("Simulator: null path model");
  }
  if (config_.cache_capacity_bytes < 0) {
    throw std::invalid_argument("Simulator: negative cache capacity");
  }
  if (config_.warmup_fraction < 0 || config_.warmup_fraction >= 1) {
    throw std::invalid_argument("Simulator: warmup_fraction must be [0, 1)");
  }
  if (stream_.num_requests() == 0) {
    throw std::invalid_argument("Simulator: empty request trace");
  }
  if (config_.stream_chunk == 0) {
    throw std::invalid_argument("Simulator: stream_chunk must be >= 1");
  }
  if (config_.viewing.enabled && config_.interactivity.enabled()) {
    throw std::invalid_argument(
        "Simulator: ViewingConfig and a non-full interactivity model "
        "cannot be combined; use the interactivity spec alone");
  }
  if (path_model_ != nullptr &&
      path_model_->size() != stream_.catalog().size()) {
    throw std::invalid_argument(
        "Simulator: shared path model size != catalog size");
  }
  // Fail fast on bad component specs (util::SpecError derives from
  // std::invalid_argument) instead of deep inside run().
  core::registry::validate(core::registry::Kind::kPolicy, config_.policy);
  core::registry::validate(core::registry::Kind::kEstimator,
                           config_.estimator);
}

SimulationResult Simulator::run() { return run(nullptr); }

SimulationResult Simulator::run(SimulationArena* arena) {
  if (config_.monomorphize) {
    // Use the caller's per-worker arena when given (sweep workers reuse
    // engines across simulations); otherwise a run-local one.
    std::optional<SimulationArena> local;
    SimulationArena& cache = arena != nullptr ? *arena : local.emplace();
    if (MonoEngineBase* engine = acquire_mono_engine(cache, config_)) {
      MonoRunContext context;
      context.stream = &stream_;
      context.model = path_model_;
      context.base = base_.has_value() ? &*base_ : nullptr;
      context.ratio = ratio_.has_value() ? &*ratio_ : nullptr;
      context.config = &config_;
      context.seed = config_.seed;
      return engine->run(context);
    }
  }
  return run_fallback();
}

SimulationResult Simulator::run_fallback() {
  const workload::Catalog& catalog = stream_.catalog();

  util::Rng rng(config_.seed);
  // Shared immutable means + per-run sampler. Without a shared model the
  // draws happen here, from the same seed stream a shared builder uses.
  std::shared_ptr<const net::PathModel> model = path_model_;
  if (model == nullptr) {
    model = std::make_shared<const net::PathModel>(
        catalog.size(), *base_, *ratio_, config_.path_config,
        rng.fork("paths"));
  }

  // Build the configured estimator and policy through the registry.
  std::unique_ptr<net::BandwidthEstimator> estimator =
      core::registry::make_estimator(config_.estimator, *model,
                                     rng.fork("estimator"));
  auto policy =
      core::registry::make_policy(config_.policy, catalog, *estimator);

  RunState state;
  state.reset(stream_, config_.stream_chunk, std::move(model),
              config_.cache_capacity_bytes, config_.patching.enabled);
  // The loop body is shared with the monomorphized engines
  // (sim/run_loop.h); this instantiation dispatches through the virtual
  // CachePolicy / BandwidthEstimator interfaces.
  return run_request_loop(stream_, config_, state, *policy, *estimator,
                          rng);
}

}  // namespace sc::sim
