#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cache/store.h"
#include "core/registry.h"
#include "net/estimator.h"
#include "sim/delivery.h"
#include "sim/event_queue.h"

namespace sc::sim {

std::string to_string(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kOracle: return "oracle";
    case EstimatorKind::kPassiveEwma: return "passive-ewma";
    case EstimatorKind::kLastSample: return "last-sample";
    case EstimatorKind::kActiveProbe: return "active-probe";
  }
  return "?";
}

std::string spec_for(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kOracle: return "oracle";
    case EstimatorKind::kPassiveEwma: return "ewma";
    case EstimatorKind::kLastSample: return "last";
    case EstimatorKind::kActiveProbe: return "probe";
  }
  return "?";
}

Simulator::Simulator(const workload::Workload& workload,
                     const stats::EmpiricalDistribution& base_bandwidth,
                     const stats::EmpiricalDistribution& ratio_model,
                     SimulationConfig config)
    : Simulator(workload, &base_bandwidth, &ratio_model, nullptr,
                std::move(config)) {}

Simulator::Simulator(const workload::Workload& workload,
                     std::shared_ptr<const net::PathModel> path_model,
                     SimulationConfig config)
    : Simulator(workload, nullptr, nullptr, std::move(path_model),
                std::move(config)) {}

Simulator::Simulator(const workload::Workload& workload,
                     const stats::EmpiricalDistribution* base_bandwidth,
                     const stats::EmpiricalDistribution* ratio_model,
                     std::shared_ptr<const net::PathModel> path_model,
                     SimulationConfig config)
    : workload_(&workload),
      path_model_(std::move(path_model)),
      config_(std::move(config)) {
  if (base_bandwidth != nullptr) base_.emplace(*base_bandwidth);
  if (ratio_model != nullptr) ratio_.emplace(*ratio_model);
  if (path_model_ == nullptr && !base_.has_value()) {
    throw std::invalid_argument("Simulator: null path model");
  }
  if (config_.cache_capacity_bytes < 0) {
    throw std::invalid_argument("Simulator: negative cache capacity");
  }
  if (config_.warmup_fraction < 0 || config_.warmup_fraction >= 1) {
    throw std::invalid_argument("Simulator: warmup_fraction must be [0, 1)");
  }
  if (workload.requests.empty()) {
    throw std::invalid_argument("Simulator: empty request trace");
  }
  if (path_model_ != nullptr &&
      path_model_->size() != workload.catalog.size()) {
    throw std::invalid_argument(
        "Simulator: shared path model size != catalog size");
  }
  // Fail fast on bad component specs (util::SpecError derives from
  // std::invalid_argument) instead of deep inside run().
  core::registry::validate(core::registry::Kind::kPolicy, config_.policy);
  core::registry::validate(core::registry::Kind::kEstimator,
                           config_.estimator);
}

SimulationResult Simulator::run() {
  const auto& catalog = workload_->catalog;
  const auto& requests = workload_->requests;
  const workload::CatalogView view = catalog.view();

  util::Rng rng(config_.seed);
  // Shared immutable means + per-run sampler. Without a shared model the
  // draws happen here, from the same seed stream a shared builder uses.
  std::shared_ptr<const net::PathModel> model = path_model_;
  if (model == nullptr) {
    model = std::make_shared<const net::PathModel>(
        catalog.size(), *base_, *ratio_, config_.path_config,
        rng.fork("paths"));
  }
  net::PathSampler paths(model);
  // Constant-bandwidth scenarios (the paper's main setting) sample the
  // mean directly: no switch, no sampler state, one contiguous load.
  const bool constant_bw = model->mode() == net::VariationMode::kConstant;
  const double* path_means = model->means().data();

  // Build the configured estimator and policy through the registry.
  std::unique_ptr<net::BandwidthEstimator> estimator =
      core::registry::make_estimator(config_.estimator, *model,
                                     rng.fork("estimator"));

  cache::PartialStore store(config_.cache_capacity_bytes);
  store.reserve(catalog.size());
  auto policy =
      core::registry::make_policy(config_.policy, catalog, *estimator);

  // Deferred transfer-completion observations are POD (path, throughput)
  // pairs drained straight into the estimator: no per-event allocation.
  ObservationQueue events;
  events.reserve(64);
  const auto observe = [&estimator](double now, const ObservationEvent& ev) {
    estimator->observe(ev.path, ev.throughput, now);
  };
  // Oracle / purely-active estimators discard observations; skip the
  // per-transfer event traffic for them entirely (the queue stays empty,
  // so run_until degenerates to one size check per request).
  const bool estimator_observes = estimator->uses_observations();
  MetricsCollector metrics;
  const auto warm_count = static_cast<std::size_t>(
      static_cast<double>(requests.size()) * config_.warmup_fraction);

  // Patching: per-object in-flight origin stream, paced at the playout
  // rate. Dense per-object slots (ids are dense) keep the lookup a
  // single array access and the loop allocation-free; end == 0 means "no
  // stream in flight" (every real completion time is > 0).
  struct InFlight {
    double start = 0.0;
    double end = 0.0;
  };
  std::vector<InFlight> in_flight;
  if (config_.patching.enabled) in_flight.resize(catalog.size());
  util::Rng viewing_rng = rng.fork("viewing");

  for (std::size_t idx = 0; idx < requests.size(); ++idx) {
    const auto& req = requests[idx];
    // Deliver pending transfer-completion observations first.
    events.run_until(req.time_s, observe);

    const workload::ObjectId id = req.object;
    const double duration_s = view.duration_s[id];
    const double bitrate = view.bitrate[id];
    const double size_bytes = view.size_bytes[id];
    const double bw = constant_bw
                          ? path_means[view.path[id]]
                          : paths.sample_bandwidth(view.path[id], req.time_s);
    const double cached_before = store.cached(id);
    ServiceOutcome outcome =
        deliver(duration_s, bitrate, size_bytes, bw, cached_before);

    // Client interactivity: scale the byte accounting (not the startup
    // metrics) by the viewed fraction of the stream.
    if (config_.viewing.enabled) {
      double fraction = 1.0;
      if (viewing_rng.uniform() >= config_.viewing.complete_probability) {
        fraction = viewing_rng.uniform(config_.viewing.min_fraction, 1.0);
      }
      const double viewed = fraction * size_bytes;
      outcome.bytes_from_cache = std::min(outcome.bytes_from_cache, viewed);
      outcome.bytes_from_origin =
          std::max(0.0, viewed - outcome.bytes_from_cache);
      outcome.origin_transfer_s =
          outcome.bytes_from_origin > 0 ? outcome.bytes_from_origin / bw : 0.0;
    }

    // Patching: share the tail of an in-flight transmission of the same
    // object; only the missed prefix still needs the origin.
    if (config_.patching.enabled && outcome.bytes_from_origin > 0) {
      InFlight& flight = in_flight[id];
      if (req.time_s < flight.end) {
        const double remaining_shareable = std::min(
            size_bytes, bitrate * (flight.start + duration_s - req.time_s));
        const double shared = std::min(outcome.bytes_from_origin,
                                       std::max(0.0, remaining_shareable));
        outcome.bytes_shared = shared;
        outcome.bytes_from_origin -= shared;
        outcome.origin_transfer_s = outcome.bytes_from_origin > 0
                                        ? outcome.bytes_from_origin / bw
                                        : 0.0;
      }
      if (outcome.bytes_from_origin > 0) {
        // This request starts (or replaces) the object's shared stream,
        // paced at the playout rate for the object's duration.
        flight.start = req.time_s;
        flight.end = req.time_s + duration_s;
      }
    }

    const bool measured = idx >= warm_count;
    if (measured) metrics.record(outcome, view.value[id]);

    // Passive estimators learn this transfer's throughput at completion.
    if (estimator_observes && outcome.bytes_from_origin > 0) {
      const double done = req.time_s + outcome.origin_transfer_s;
      events.schedule(
          done, ObservationEvent{view.path[id], outcome.origin_throughput});
    }

    // Replacement decisions happen after the request is served.
    policy->on_access(id, req.time_s, store);

    // Growth of this object's prefix is origin->cache fill traffic.
    const double cached_after = store.cached(id);
    if (measured && cached_after > cached_before) {
      metrics.record_fill(cached_after - cached_before);
    }
  }
  events.run_all(observe);

  SimulationResult result;
  result.policy_name = policy->name();
  result.metrics = metrics;
  result.warmup_requests = warm_count;
  result.measured_requests = requests.size() - warm_count;
  result.final_occupancy_bytes = store.used();
  result.final_cached_objects = store.object_count();
  result.estimator_overhead_packets = estimator->overhead_packets();
  return result;
}

}  // namespace sc::sim
