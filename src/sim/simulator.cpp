#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "cache/store.h"
#include "core/registry.h"
#include "net/estimator.h"
#include "sim/event_queue.h"

namespace sc::sim {

std::string to_string(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kOracle: return "oracle";
    case EstimatorKind::kPassiveEwma: return "passive-ewma";
    case EstimatorKind::kLastSample: return "last-sample";
    case EstimatorKind::kActiveProbe: return "active-probe";
  }
  return "?";
}

std::string spec_for(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kOracle: return "oracle";
    case EstimatorKind::kPassiveEwma: return "ewma";
    case EstimatorKind::kLastSample: return "last";
    case EstimatorKind::kActiveProbe: return "probe";
  }
  return "?";
}

Simulator::Simulator(const workload::Workload& workload,
                     const stats::EmpiricalDistribution& base_bandwidth,
                     const stats::EmpiricalDistribution& ratio_model,
                     SimulationConfig config)
    : workload_(&workload),
      base_(base_bandwidth),
      ratio_(ratio_model),
      config_(config) {
  if (config_.cache_capacity_bytes < 0) {
    throw std::invalid_argument("Simulator: negative cache capacity");
  }
  if (config_.warmup_fraction < 0 || config_.warmup_fraction >= 1) {
    throw std::invalid_argument("Simulator: warmup_fraction must be [0, 1)");
  }
  if (workload.requests.empty()) {
    throw std::invalid_argument("Simulator: empty request trace");
  }
  // Fail fast on bad component specs (util::SpecError derives from
  // std::invalid_argument) instead of deep inside run().
  core::registry::validate(core::registry::Kind::kPolicy, config_.policy);
  core::registry::validate(core::registry::Kind::kEstimator,
                           config_.estimator);
}

SimulationResult Simulator::run() {
  const auto& catalog = workload_->catalog;
  const auto& requests = workload_->requests;

  util::Rng rng(config_.seed);
  net::PathTable paths(catalog.size(), base_, ratio_, config_.path_config,
                       rng.fork("paths"));

  // Build the configured estimator and policy through the registry.
  std::unique_ptr<net::BandwidthEstimator> estimator =
      core::registry::make_estimator(config_.estimator, paths,
                                     rng.fork("estimator"));

  cache::PartialStore store(config_.cache_capacity_bytes);
  store.reserve(catalog.size());
  auto policy =
      core::registry::make_policy(config_.policy, catalog, *estimator);

  // Deferred transfer-completion observations are POD (path, throughput)
  // pairs drained straight into the estimator: no per-event allocation.
  ObservationQueue events;
  events.reserve(64);
  const auto observe = [&estimator](double now, const ObservationEvent& ev) {
    estimator->observe(ev.path, ev.throughput, now);
  };
  MetricsCollector metrics;
  const auto warm_count = static_cast<std::size_t>(
      static_cast<double>(requests.size()) * config_.warmup_fraction);

  // Patching: per-object in-flight origin stream, paced at the playout
  // rate (first element: pacing start, second: completion time).
  std::unordered_map<workload::ObjectId, std::pair<double, double>> in_flight;
  util::Rng viewing_rng = rng.fork("viewing");

  for (std::size_t idx = 0; idx < requests.size(); ++idx) {
    const auto& req = requests[idx];
    // Deliver pending transfer-completion observations first.
    events.run_until(req.time_s, observe);

    const auto& obj = catalog.object(req.object);
    const double bw = paths.sample_bandwidth(obj.path, req.time_s);
    const double cached_before = store.cached(req.object);
    ServiceOutcome outcome = deliver(obj, bw, cached_before);

    // Client interactivity: scale the byte accounting (not the startup
    // metrics) by the viewed fraction of the stream.
    if (config_.viewing.enabled) {
      double fraction = 1.0;
      if (viewing_rng.uniform() >= config_.viewing.complete_probability) {
        fraction = viewing_rng.uniform(config_.viewing.min_fraction, 1.0);
      }
      const double viewed = fraction * obj.size_bytes;
      outcome.bytes_from_cache = std::min(outcome.bytes_from_cache, viewed);
      outcome.bytes_from_origin =
          std::max(0.0, viewed - outcome.bytes_from_cache);
      outcome.origin_transfer_s =
          outcome.bytes_from_origin > 0 ? outcome.bytes_from_origin / bw : 0.0;
    }

    // Patching: share the tail of an in-flight transmission of the same
    // object; only the missed prefix still needs the origin.
    if (config_.patching.enabled && outcome.bytes_from_origin > 0) {
      const auto it = in_flight.find(req.object);
      if (it != in_flight.end() && req.time_s < it->second.second) {
        const double stream_start = it->second.first;
        const double remaining_shareable = std::min(
            obj.size_bytes,
            obj.bitrate * (stream_start + obj.duration_s - req.time_s));
        const double shared = std::min(outcome.bytes_from_origin,
                                       std::max(0.0, remaining_shareable));
        outcome.bytes_shared = shared;
        outcome.bytes_from_origin -= shared;
        outcome.origin_transfer_s = outcome.bytes_from_origin > 0
                                        ? outcome.bytes_from_origin / bw
                                        : 0.0;
      }
      if (outcome.bytes_from_origin > 0) {
        // This request starts (or replaces) the object's shared stream,
        // paced at the playout rate for the object's duration.
        in_flight[req.object] = {req.time_s, req.time_s + obj.duration_s};
      }
    }

    const bool measured = idx >= warm_count;
    if (measured) metrics.record(outcome, obj.value);

    // Passive estimators learn this transfer's throughput at completion.
    if (outcome.bytes_from_origin > 0) {
      const double done = req.time_s + outcome.origin_transfer_s;
      events.schedule(done,
                      ObservationEvent{obj.path, outcome.origin_throughput});
    }

    // Replacement decisions happen after the request is served.
    policy->on_access(req.object, req.time_s, store);

    // Growth of this object's prefix is origin->cache fill traffic.
    const double cached_after = store.cached(req.object);
    if (measured && cached_after > cached_before) {
      metrics.record_fill(cached_after - cached_before);
    }
  }
  events.run_all(observe);

  SimulationResult result;
  result.policy_name = policy->name();
  result.metrics = metrics;
  result.warmup_requests = warm_count;
  result.measured_requests = requests.size() - warm_count;
  result.final_occupancy_bytes = store.used();
  result.final_cached_objects = store.object_count();
  result.estimator_overhead_packets = estimator->overhead_packets();
  return result;
}

}  // namespace sc::sim
