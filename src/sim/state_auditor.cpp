#include "sim/state_auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sc::sim {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Minimal JSON string escaping for audit reasons (quotes, backslashes,
/// control characters — reasons are ASCII by construction).
void append_json_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string AuditReport::to_string() const {
  if (ok()) {
    return "audit ok (" + std::to_string(checks) + " checks)";
  }
  std::string out = "audit FAILED (" + std::to_string(violations.size()) +
                    " violations / " + std::to_string(checks) + " checks): ";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out += "; ";
    out += violations[i];
  }
  return out;
}

std::string AuditReport::to_json() const {
  std::string out = "{\"ok\": ";
  out += ok() ? "true" : "false";
  out += ", \"checks\": " + std::to_string(checks) + ", \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out += ", ";
    append_json_escaped(out, violations[i]);
  }
  out += "]}";
  return out;
}

AuditReport StateAuditor::audit(const cache::PartialStore& store,
                                const cache::CachePolicy* policy,
                                const ObservationQueue* observations,
                                std::size_t n_ids, double slack_bytes) {
  AuditReport report;
  const auto check = [&report](bool cond, std::string reason) {
    ++report.checks;
    if (!cond) report.violations.push_back(std::move(reason));
  };

  // --- Store occupancy invariants -----------------------------------
  const double used = store.used();
  const double capacity = store.capacity();
  check(std::isfinite(used) && used >= 0.0,
        "store used " + fmt_double(used) + " is negative or non-finite");
  check(std::isfinite(capacity) && capacity >= 0.0,
        "store capacity " + fmt_double(capacity) +
            " is negative or non-finite");
  check(used <= capacity + slack_bytes,
        "store used " + fmt_double(used) + " exceeds capacity " +
            fmt_double(capacity));

  const auto contents = store.contents();
  check(contents.size() == store.object_count(),
        "store contents size " + std::to_string(contents.size()) +
            " != object_count " + std::to_string(store.object_count()));
  double sum = 0.0;
  ++report.checks;  // one assertion: every cached range positive + finite
  for (const auto& [id, bytes] : contents) {
    if (!(bytes > 0.0) || !std::isfinite(bytes)) {
      report.violations.push_back("cached bytes for object " +
                                  std::to_string(id) + " is " +
                                  fmt_double(bytes));
    }
    sum += bytes;
  }
  // Occupancy must equal the sum of cached ranges. Sums run to ~10^11
  // bytes over ~10^5 terms, so allow the absolute slack plus a relative
  // term for accumulated rounding.
  const double tolerance = slack_bytes + 1e-9 * std::max(sum, used);
  check(std::fabs(sum - used) <= tolerance,
        "store used " + fmt_double(used) + " != sum of cached ranges " +
            fmt_double(sum));

  // --- Policy index consistency -------------------------------------
  if (policy != nullptr) {
    ++report.checks;
    std::vector<std::string> why;
    if (!policy->check_consistency(store, &why)) {
      if (why.empty()) why.push_back("policy reported inconsistency");
      for (std::string& reason : why) {
        report.violations.push_back(std::move(reason));
      }
    }
  }

  // --- Pending estimator observations -------------------------------
  if (observations != nullptr) {
    ++report.checks;
    std::size_t bad = 0;
    observations->for_each([&](double due_s, const ObservationEvent& ev) {
      const bool sane = std::isfinite(due_s) &&
                        std::isfinite(ev.throughput) && ev.throughput >= 0.0 &&
                        (n_ids == 0 || ev.path < n_ids);
      if (sane) return;
      if (++bad <= 3) {  // cap the noise; count the rest
        report.violations.push_back(
            "pending observation path=" + std::to_string(ev.path) +
            " throughput=" + fmt_double(ev.throughput) + " due=" +
            fmt_double(due_s) + " is malformed");
      }
    });
    if (bad > 3) {
      report.violations.push_back(std::to_string(bad - 3) +
                                  " further malformed observations");
    }
  }

  return report;
}

}  // namespace sc::sim
