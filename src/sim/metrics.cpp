#include "sim/metrics.h"

namespace sc::sim {

void MetricsCollector::record(const ServiceOutcome& outcome, double value) {
  ++requests_;
  if (outcome.bytes_from_cache > 0) ++hits_;
  if (outcome.immediate) {
    ++immediate_;
    added_value_ += value;
  }
  cache_bytes_ += outcome.bytes_from_cache;
  origin_bytes_ += outcome.bytes_from_origin;
  shared_bytes_ += outcome.bytes_shared;
  delay_.add(outcome.delay_s);
  quality_.add(outcome.quality_continuous);
  quality_quantized_.add(outcome.quality);
}

double MetricsCollector::traffic_reduction_ratio() const {
  const double total = cache_bytes_ + origin_bytes_ + shared_bytes_;
  return total > 0 ? cache_bytes_ / total : 0.0;
}

double MetricsCollector::backbone_reduction_ratio() const {
  const double total = cache_bytes_ + origin_bytes_ + shared_bytes_;
  return total > 0 ? (cache_bytes_ + shared_bytes_) / total : 0.0;
}

double MetricsCollector::hit_ratio() const {
  return requests_ > 0
             ? static_cast<double>(hits_) / static_cast<double>(requests_)
             : 0.0;
}

double MetricsCollector::immediate_ratio() const {
  return requests_ > 0 ? static_cast<double>(immediate_) /
                             static_cast<double>(requests_)
                       : 0.0;
}

}  // namespace sc::sim
