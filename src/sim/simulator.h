// Trace-driven proxy-cache simulator (§3 methodology).
//
// Wires together workload, path bandwidth processes, bandwidth estimation,
// the cache store + replacement policy, and joint delivery. Following the
// paper: the first half of the trace warms the cache; metrics accumulate
// over the second half.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/fault.h"
#include "net/path_process.h"
#include "sim/interactivity.h"
#include "sim/metrics.h"
#include "workload/generator.h"
#include "workload/request_stream.h"

namespace sc::sim {

/// Client interactivity (extension; the paper's §5 cites measurement
/// studies showing most sessions terminate early). When enabled, each
/// request watches the whole stream with `complete_probability`,
/// otherwise a Uniform[min_fraction, 1) fraction of it. Startup metrics
/// (delay / quality / added value) are unaffected; byte accounting
/// (traffic reduction, transfer durations) scales with the viewed part.
struct ViewingConfig {
  bool enabled = false;
  double complete_probability = 0.6;
  double min_fraction = 0.05;
};

/// Proxy-side stream sharing (the paper's future-work "patching and
/// batching techniques at caching proxies"). While an origin stream of an
/// object is in flight (paced at the playout rate over the object's
/// duration), later requests for the same object share its remainder and
/// fetch only the missed prefix ("patch") from cache + origin. Shared
/// bytes traverse the backbone once; see
/// MetricsCollector::backbone_reduction_ratio.
struct PatchingConfig {
  bool enabled = false;
};

struct SimulationConfig {
  double cache_capacity_bytes = 0.0;

  /// Replacement policy spec, resolved through core::registry
  /// ("pb", "hybrid:e=0.5", "pbv:e=0.7", ...).
  std::string policy = "pb";

  /// Bandwidth estimator spec ("oracle", "ewma:alpha=0.3,prior_kbps=50",
  /// "last", "probe:interval_s=3600"). The paper's simulations assume
  /// the cache knows each path's average bandwidth, i.e. the oracle;
  /// the others exist for the measurement-realism experiments. Tuning
  /// knobs (EWMA alpha, probe interval, priors) are spec parameters.
  std::string estimator = "oracle";

  ViewingConfig viewing{};
  PatchingConfig patching{};

  /// Client session dynamics: per-request viewing duration model (see
  /// sim/interactivity.h). The default ("full") is observationally
  /// identical to the simulator before session dynamics existed and
  /// serves as its regression oracle; "exp:mean=S", "empirical", and
  /// "trace" truncate sessions, cancelling the remainder of in-flight
  /// deliveries and re-deriving startup/quality/byte metrics over the
  /// viewed prefix.
  InteractivityConfig interactivity{};

  /// Deterministic fault injection (net/fault.h): origin outages, path
  /// degradation windows, estimator blackouts, flapping. The default
  /// empty plan is provably inert — the run loop skips every fault hook
  /// when `fault.empty()`, so results are bit-identical to a build
  /// without the fault layer (golden-CSV enforced).
  net::FaultPlan fault{};

  net::PathModelConfig path_config{};    // constant / iid / AR(1) variation
  double warmup_fraction = 0.5;          // fraction of trace used to warm
  std::uint64_t seed = 1;                // path means + variability streams

  /// Request-cursor chunk size (workload::RequestCursor): how many
  /// requests are materialized/gathered per block in the run loop.
  /// Results are bit-identical for every value >= 1; this knob trades
  /// per-chunk overhead against SoA scratch locality (and bounds peak
  /// memory for regenerated streams at O(stream_chunk)).
  std::size_t stream_chunk = workload::kDefaultStreamChunk;

  /// Run on the monomorphized engine when the (policy, estimator) pair
  /// is covered by the built-in dispatch table (sim/arena.h): the
  /// request loop is compiled per concrete kernel pair, so estimate()
  /// and the admission path are inlined with no virtual dispatch.
  /// Results are bit-identical either way; `false` forces the virtual
  /// fallback path, kept as a regression oracle. Out-of-table
  /// (user-registered) specs always take the fallback path.
  bool monomorphize = true;
};

struct SimulationResult {
  std::string policy_name;
  MetricsCollector metrics;  // measured window only
  std::size_t warmup_requests = 0;
  std::size_t measured_requests = 0;
  double final_occupancy_bytes = 0.0;
  std::size_t final_cached_objects = 0;
  std::size_t estimator_overhead_packets = 0;
};

class SimulationArena;

/// One simulation run over a fixed workload.
class Simulator {
 public:
  /// `workload` must outlive the simulator. `base_bandwidth` is the
  /// per-path mean model (Fig 2); `ratio_model` the variability model
  /// (constant / Fig 3 / Fig 4) applied per `config.path_config.mode`.
  /// The path model (per-path mean draws) is built inside run() from
  /// `config.seed`.
  Simulator(const workload::Workload& workload,
            const stats::EmpiricalDistribution& base_bandwidth,
            const stats::EmpiricalDistribution& ratio_model,
            SimulationConfig config);

  /// Shared-path-model form: run() samples bandwidth from `path_model`
  /// (which must have one path per catalog object) instead of drawing a
  /// fresh model. Because the model snapshots its post-draw RNG state,
  /// results are bit-identical to the unshared constructor when the
  /// model was built from `Rng(config.seed).fork("paths")` — this is how
  /// core::SweepRunner shares one model per replication across a whole
  /// grid (see docs/PERF.md).
  Simulator(const workload::Workload& workload,
            std::shared_ptr<const net::PathModel> path_model,
            SimulationConfig config);

  /// Stream forms: as above, but over any workload::RequestStream —
  /// replayed, regenerated-on-the-fly, or file-backed. The Workload
  /// constructors are equivalent to wrapping the workload in a replay
  /// stream; results are bit-identical across all four constructors.
  Simulator(workload::RequestStream stream,
            const stats::EmpiricalDistribution& base_bandwidth,
            const stats::EmpiricalDistribution& ratio_model,
            SimulationConfig config);
  Simulator(workload::RequestStream stream,
            std::shared_ptr<const net::PathModel> path_model,
            SimulationConfig config);

  /// Execute the full trace and return measured-window metrics.
  [[nodiscard]] SimulationResult run();

  /// As run(), reusing `arena`'s cached monomorphized engine (and its
  /// event queue / store / heap / estimator storage) when the config's
  /// (policy, estimator) pair is in the dispatch table. Sweep workers
  /// pass their per-worker arena so back-to-back simulations allocate
  /// nothing; a null arena uses a run-local one.
  [[nodiscard]] SimulationResult run(SimulationArena* arena);

 private:
  [[nodiscard]] SimulationResult run_fallback();

  Simulator(workload::RequestStream stream,
            const stats::EmpiricalDistribution* base_bandwidth,
            const stats::EmpiricalDistribution* ratio_model,
            std::shared_ptr<const net::PathModel> path_model,
            SimulationConfig config);

  workload::RequestStream stream_;
  // Engaged only for the unshared constructor (run() builds the model).
  std::optional<stats::EmpiricalDistribution> base_;
  std::optional<stats::EmpiricalDistribution> ratio_;
  std::shared_ptr<const net::PathModel> path_model_;
  SimulationConfig config_;
};

}  // namespace sc::sim
