// The monomorphized engine dispatch table (see sim/arena.h).
//
// One MonoEngine<PolicyKernel, EstimatorKernel> class template
// instantiates the shared request loop (sim/run_loop.h) over every
// built-in (policy, estimator) pair of the registry's spec space —
// 8 policies x 4 estimators. Selection happens ONCE per simulation (one
// virtual MonoEngineBase::run call); inside, estimate(), observe(),
// uses_observations(), and the policy admission path are direct inlined
// code.
//
// Bit-identity with the virtual fallback is a hard contract: engines
// construct their components with exactly the parameter defaults and
// RNG fork tags the registry factories use (core/registry.cpp), and the
// loop body is shared, so tests/test_mono.cpp can assert field-identical
// metrics for every pair.

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "cache/policy.h"
#include "core/registry.h"
#include "net/estimator.h"
#include "net/probe.h"
#include "net/units.h"
#include "sim/arena.h"
#include "sim/run_loop.h"
#include "util/spec.h"

namespace sc::sim {

namespace {

// ---- estimator construction/rebinding, one specialization per kernel.
// `create` must match the corresponding registry factory exactly;
// `rebind` must leave the kernel bit-identical to `create`.

template <typename EstKernel>
struct EstimatorTraits;

template <>
struct EstimatorTraits<net::OracleKernel> {
  struct Params {};
  static Params parse(const util::Spec&) { return {}; }
  static void create(std::optional<net::KernelEstimator<net::OracleKernel>>& slot,
                     const Params&, const net::PathModel& model, util::Rng) {
    slot.emplace(model);
  }
  static void rebind(net::KernelEstimator<net::OracleKernel>& estimator,
                     const Params&, const net::PathModel& model, util::Rng) {
    estimator.kernel().rebind(model);
  }
};

template <>
struct EstimatorTraits<net::EwmaKernel> {
  struct Params {
    double alpha = net::estimator_defaults::kEwmaAlpha;
    double prior = net::from_kb(net::estimator_defaults::kPriorKbps);
  };
  static Params parse(const util::Spec& spec) {
    Params p;
    p.alpha = spec.get_double("alpha", net::estimator_defaults::kEwmaAlpha);
    p.prior = net::from_kb(
        spec.get_double("prior_kbps", net::estimator_defaults::kPriorKbps));
    return p;
  }
  static void create(std::optional<net::KernelEstimator<net::EwmaKernel>>& slot,
                     const Params& p, const net::PathModel& model, util::Rng) {
    slot.emplace(model.size(), p.alpha, p.prior);
  }
  static void rebind(net::KernelEstimator<net::EwmaKernel>& estimator,
                     const Params&, const net::PathModel& model, util::Rng) {
    estimator.kernel().rebind(model.size());
  }
};

template <>
struct EstimatorTraits<net::LastSampleKernel> {
  struct Params {
    double prior = net::from_kb(net::estimator_defaults::kPriorKbps);
  };
  static Params parse(const util::Spec& spec) {
    Params p;
    p.prior = net::from_kb(
        spec.get_double("prior_kbps", net::estimator_defaults::kPriorKbps));
    return p;
  }
  static void create(
      std::optional<net::KernelEstimator<net::LastSampleKernel>>& slot,
      const Params& p, const net::PathModel& model, util::Rng) {
    slot.emplace(model.size(), p.prior);
  }
  static void rebind(net::KernelEstimator<net::LastSampleKernel>& estimator,
                     const Params&, const net::PathModel& model, util::Rng) {
    estimator.kernel().rebind(model.size());
  }
};

template <>
struct EstimatorTraits<net::ProbeKernel> {
  struct Params {
    net::ProbeConfig config;
    double interval_s = net::estimator_defaults::kProbeIntervalS;
  };
  static Params parse(const util::Spec& spec) {
    Params p;
    p.config.train_packets = static_cast<std::size_t>(spec.get_int(
        "train_packets", static_cast<long long>(p.config.train_packets)));
    p.interval_s = spec.get_double(
        "interval_s", net::estimator_defaults::kProbeIntervalS);
    return p;
  }
  static void create(std::optional<net::KernelEstimator<net::ProbeKernel>>& slot,
                     const Params& p, const net::PathModel& model,
                     util::Rng rng) {
    // Identical fork tags to the registry's probe factory.
    slot.emplace(std::make_unique<net::ProbeModel>(model.means(), p.config,
                                                   rng.fork("probe")),
                 p.interval_s, rng.fork("probe-rng"));
  }
  static void rebind(net::KernelEstimator<net::ProbeKernel>& estimator,
                     const Params& p, const net::PathModel& model,
                     util::Rng rng) {
    estimator.kernel().rebind(
        std::make_unique<net::ProbeModel>(model.means(), p.config,
                                          rng.fork("probe")),
        rng.fork("probe-rng"));
  }
};

/// Construct a policy engine, forwarding the `e` parameter only to the
/// kernels that take one (Hybrid, PB-V) — mirroring cache::make_policy.
template <typename PolKernel>
void create_policy(std::optional<cache::UtilityPolicy<PolKernel>>& slot,
                   const workload::Catalog& catalog,
                   net::BandwidthEstimator& estimator, double e) {
  if constexpr (std::is_constructible_v<PolKernel, double>) {
    slot.emplace(catalog, estimator, e);
  } else {
    (void)e;
    slot.emplace(catalog, estimator);
  }
}

/// What the run loop sees as "the policy": forwards on_access to the
/// estimator-templated access body so the whole admission path inlines
/// against the concrete estimator kernel, and serves the cached name so
/// per-run name() formatting (Hybrid's ostringstream) is paid once per
/// engine, not once per simulation.
template <typename PolKernel, typename EstKernel>
struct MonoPolicyRef {
  cache::UtilityPolicy<PolKernel>* policy;
  EstKernel* estimator;
  const std::string* cached_name;

  void on_access(workload::ObjectId id, double now_s,
                 cache::PartialStore& store) {
    policy->access(id, now_s, store, *estimator);
  }
  [[nodiscard]] const std::string& name() const { return *cached_name; }
};

template <typename PolKernel, typename EstKernel>
class MonoEngine final : public MonoEngineBase {
 public:
  MonoEngine(const util::Spec& policy_spec, const util::Spec& estimator_spec)
      : param_e_(policy_spec.get_double("e", cache::kDefaultKernelE)),
        estimator_params_(EstimatorTraits<EstKernel>::parse(estimator_spec)) {}

  SimulationResult run(const MonoRunContext& context) override {
    const workload::RequestStream& stream = *context.stream;
    const workload::Catalog& catalog = stream.catalog();
    const SimulationConfig& config = *context.config;

    util::Rng rng(context.seed);
    std::shared_ptr<const net::PathModel> model = context.model;
    if (model == nullptr) {
      model = std::make_shared<const net::PathModel>(
          catalog.size(), *context.base, *context.ratio, config.path_config,
          rng.fork("paths"));
    }

    if (estimator_.has_value()) {
      EstimatorTraits<EstKernel>::rebind(*estimator_, estimator_params_,
                                         *model, rng.fork("estimator"));
    } else {
      EstimatorTraits<EstKernel>::create(estimator_, estimator_params_,
                                         *model, rng.fork("estimator"));
    }
    if (policy_.has_value()) {
      policy_->rebind(catalog, *estimator_);
    } else {
      create_policy(policy_, catalog, *estimator_, param_e_);
      name_ = policy_->name();
    }
    state_.reset(stream, config.stream_chunk, model,
                 config.cache_capacity_bytes, config.patching.enabled);

    MonoPolicyRef<PolKernel, EstKernel> policy{&*policy_,
                                               &estimator_->kernel(), &name_};
    return run_request_loop(stream, config, state_, policy,
                            estimator_->kernel(), rng);
  }

 private:
  double param_e_;
  typename EstimatorTraits<EstKernel>::Params estimator_params_;
  std::optional<net::KernelEstimator<EstKernel>> estimator_;
  std::optional<cache::UtilityPolicy<PolKernel>> policy_;
  std::string name_;
  RunState state_;
};

// ---- the dispatch table over the registry's built-in spec space.

enum class PolicyId { kIf, kPb, kIb, kHybrid, kPbv, kIbv, kLru, kLfu };
enum class EstimatorId { kOracle, kEwma, kLast, kProbe };

/// Canonical registry name for `name` on `kind` (resolving aliases
/// through the registry itself, so the builtin alias tables live only
/// in core/registry.cpp); empty when unregistered. Allocates and takes
/// the registry lock — reached only on an arena miss with a
/// non-canonical spelling.
std::string canonical_name(core::registry::Kind kind,
                           const std::string& name) {
  for (const core::registry::ComponentInfo& info :
       core::registry::list(kind)) {
    if (info.name == name) return info.name;
    for (const std::string& alias : info.aliases) {
      if (alias == name) return info.name;
    }
  }
  return {};
}

std::optional<PolicyId> policy_from_canonical(const std::string& name) {
  if (name == "if") return PolicyId::kIf;
  if (name == "pb") return PolicyId::kPb;
  if (name == "ib") return PolicyId::kIb;
  if (name == "hybrid") return PolicyId::kHybrid;
  if (name == "pbv") return PolicyId::kPbv;
  if (name == "ibv") return PolicyId::kIbv;
  if (name == "lru") return PolicyId::kLru;
  if (name == "lfu") return PolicyId::kLfu;
  return std::nullopt;
}

std::optional<EstimatorId> estimator_from_canonical(const std::string& name) {
  if (name == "oracle") return EstimatorId::kOracle;
  if (name == "ewma") return EstimatorId::kEwma;
  if (name == "last") return EstimatorId::kLast;
  if (name == "probe") return EstimatorId::kProbe;
  return std::nullopt;
}

std::optional<PolicyId> policy_id(const std::string& name) {
  if (const auto id = policy_from_canonical(name)) return id;
  // Aliases resolve through the registry (one alias table, in
  // core/registry.cpp); unregistered names stay on the fallback path.
  return policy_from_canonical(
      canonical_name(core::registry::Kind::kPolicy, name));
}

std::optional<EstimatorId> estimator_id(const std::string& name) {
  if (const auto id = estimator_from_canonical(name)) return id;
  return estimator_from_canonical(
      canonical_name(core::registry::Kind::kEstimator, name));
}

template <typename PolKernel>
std::unique_ptr<MonoEngineBase> make_engine_for(EstimatorId estimator,
                                                const util::Spec& policy_spec,
                                                const util::Spec& est_spec) {
  switch (estimator) {
    case EstimatorId::kOracle:
      return std::make_unique<MonoEngine<PolKernel, net::OracleKernel>>(
          policy_spec, est_spec);
    case EstimatorId::kEwma:
      return std::make_unique<MonoEngine<PolKernel, net::EwmaKernel>>(
          policy_spec, est_spec);
    case EstimatorId::kLast:
      return std::make_unique<MonoEngine<PolKernel, net::LastSampleKernel>>(
          policy_spec, est_spec);
    case EstimatorId::kProbe:
      return std::make_unique<MonoEngine<PolKernel, net::ProbeKernel>>(
          policy_spec, est_spec);
  }
  return nullptr;
}

std::unique_ptr<MonoEngineBase> make_engine(PolicyId policy,
                                            EstimatorId estimator,
                                            const util::Spec& policy_spec,
                                            const util::Spec& est_spec) {
  switch (policy) {
    case PolicyId::kIf:
      return make_engine_for<cache::IfKernel>(estimator, policy_spec,
                                              est_spec);
    case PolicyId::kPb:
      return make_engine_for<cache::PbKernel>(estimator, policy_spec,
                                              est_spec);
    case PolicyId::kIb:
      return make_engine_for<cache::IbKernel>(estimator, policy_spec,
                                              est_spec);
    case PolicyId::kHybrid:
      return make_engine_for<cache::HybridKernel>(estimator, policy_spec,
                                                  est_spec);
    case PolicyId::kPbv:
      return make_engine_for<cache::PbvKernel>(estimator, policy_spec,
                                               est_spec);
    case PolicyId::kIbv:
      return make_engine_for<cache::IbvKernel>(estimator, policy_spec,
                                               est_spec);
    case PolicyId::kLru:
      return make_engine_for<cache::LruKernel>(estimator, policy_spec,
                                               est_spec);
    case PolicyId::kLfu:
      return make_engine_for<cache::LfuKernel>(estimator, policy_spec,
                                               est_spec);
  }
  return nullptr;
}

}  // namespace

MonoEngineBase* acquire_mono_engine(SimulationArena& arena,
                                    const SimulationConfig& config) {
  if (SimulationArena::Slot* slot =
          arena.find(config.policy, config.estimator)) {
    return slot->engine.get();  // null for negatively-cached pairs
  }
  const util::Spec policy_spec = util::Spec::parse(config.policy);
  const util::Spec est_spec = util::Spec::parse(config.estimator);
  const auto policy = policy_id(policy_spec.name);
  const auto estimator = estimator_id(est_spec.name);
  std::unique_ptr<MonoEngineBase> engine;
  if (policy.has_value() && estimator.has_value()) {
    // Unknown parameters must fail exactly as on the fallback path.
    core::registry::validate(core::registry::Kind::kPolicy, config.policy);
    core::registry::validate(core::registry::Kind::kEstimator,
                             config.estimator);
    engine = make_engine(*policy, *estimator, policy_spec, est_spec);
  }
  return arena.insert(config.policy, config.estimator, std::move(engine))
      .engine.get();
}

bool mono_dispatchable(const SimulationConfig& config) {
  return policy_id(util::Spec::parse(config.policy).name).has_value() &&
         estimator_id(util::Spec::parse(config.estimator).name).has_value();
}

}  // namespace sc::sim
