// Joint cache + origin delivery model (§2.1 - §2.2).
//
// A request for object i finds x_i bytes of its prefix cached nearby
// (abundant last-mile bandwidth, per the paper's assumptions) while the
// remainder streams from the origin at the instantaneous path bandwidth b:
//
//   service delay   D = [T_i r_i - T_i b - x_i]+ / b          (§2.2)
//   stream quality  Q = min(1, (T_i b + x_i) / (T_i r_i))     (§3.3)
//
// D is the prefetch wait a client incurs before continuous full-quality
// playout is possible; Q is the fraction of a layered stream that joint
// delivery can sustain with *immediate* playout (the client's alternative
// to waiting). The two metrics describe the same deficit spent in
// different currencies, so exactly one of them is degraded per request.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "workload/object_catalog.h"

namespace sc::sim {

/// Number of encoding layers used to quantize stream quality. The paper's
/// §3.3 example uses four layers ("if a layer-encoded object has four
/// layers but only three layers can be supported, then the quality is
/// 0.75").
inline constexpr int kDefaultQualityLayers = 4;

/// Outcome of serving one request.
struct ServiceOutcome {
  double delay_s = 0.0;        // prefetch delay before full-quality playout
  double quality = 1.0;        // layer-quantized immediate-playout quality
  double quality_continuous = 1.0;  // unquantized supported fraction
  bool immediate = false;      // true iff delay_s == 0
  double bytes_from_cache = 0.0;
  double bytes_from_origin = 0.0;
  /// Bytes obtained by joining an in-flight transmission of the same
  /// object (patching; filled in by the simulator, not by deliver()).
  double bytes_shared = 0.0;
  double origin_transfer_s = 0.0;  // wall time of the origin connection
  double origin_throughput = 0.0;  // what a passive estimator observes
};

// The delivery formulas are inline: deliver() runs once per simulated
// request, and keeping the arithmetic visible to the simulator's
// translation unit removes a cross-TU call chain from the hot loop.

/// A deficit below one byte is rounding noise, not a real shortfall: an
/// exactly-provisioned prefix x = (r - b) * T evaluates the deficit
/// S - T*b - x to +-ulp, and treating +ulp as "not immediate" would
/// silently forfeit the request's added value (and a whole quality
/// layer).
inline constexpr double kDeliveryByteEps = 1.0;

/// The §2.2 delay formula alone (exposed for tests and offline solvers).
[[nodiscard]] inline double service_delay(double duration_s, double bitrate,
                                          double bandwidth,
                                          double cached_bytes) {
  if (bandwidth <= 0) throw std::invalid_argument("service_delay: bw <= 0");
  const double deficit =
      duration_s * bitrate - duration_s * bandwidth - cached_bytes;
  return deficit > kDeliveryByteEps ? deficit / bandwidth : 0.0;
}

/// The §3.3 quality formula alone (continuous supported fraction).
[[nodiscard]] inline double stream_quality(double duration_s, double bitrate,
                                           double bandwidth,
                                           double cached_bytes) {
  if (bandwidth <= 0) throw std::invalid_argument("stream_quality: bw <= 0");
  const double size = duration_s * bitrate;
  if (size <= 0) return 1.0;
  const double supported = duration_s * bandwidth + cached_bytes;
  if (supported + kDeliveryByteEps >= size) return 1.0;
  return supported / size;
}

/// Quantize a supported fraction to the number of fully-supported layers:
/// floor(q * layers) / layers.
[[nodiscard]] inline double quantize_quality(double quality, int layers) {
  if (layers <= 0) throw std::invalid_argument("quantize_quality: layers");
  const double q = std::clamp(quality, 0.0, 1.0);
  return std::floor(q * layers) / layers;
}

/// deliver() with the two duration products precomputed: dr must be
/// exactly `duration_s * bitrate` and db exactly
/// `duration_s * bandwidth`. Splitting the products out lets the
/// block-batched stage (gather_delivery_block below) hoist them into
/// vectorizable per-chunk loops; the remaining expressions are the same
/// left-associated operations deliver() always performed — the §2.2
/// deficit is ((d*r) - (d*b)) - cached either way — so the results are
/// bit-identical to the scalar form.
[[nodiscard]] inline ServiceOutcome deliver_precomputed(
    double size_bytes, double dr, double db, double bandwidth,
    double cached_prefix_bytes, int quality_layers = kDefaultQualityLayers) {
  if (bandwidth <= 0) throw std::invalid_argument("deliver: bandwidth <= 0");
  const double cached = std::clamp(cached_prefix_bytes, 0.0, size_bytes);

  ServiceOutcome out;
  // service_delay with deficit = (dr - db) - cached.
  const double deficit = dr - db - cached;
  out.delay_s = deficit > kDeliveryByteEps ? deficit / bandwidth : 0.0;
  // stream_quality with size = dr, supported = db + cached.
  if (dr <= 0) {
    out.quality_continuous = 1.0;
  } else {
    const double supported = db + cached;
    out.quality_continuous =
        supported + kDeliveryByteEps >= dr ? 1.0 : supported / dr;
  }
  out.quality = quantize_quality(out.quality_continuous, quality_layers);
  out.immediate = out.delay_s <= 0.0;
  out.bytes_from_cache = cached;
  out.bytes_from_origin = size_bytes - cached;
  // The origin connection ships the remainder at rate `bandwidth`; it is
  // also what a passive measurement of this transfer would observe.
  out.origin_transfer_s =
      out.bytes_from_origin > 0 ? out.bytes_from_origin / bandwidth : 0.0;
  out.origin_throughput = out.bytes_from_origin > 0 ? bandwidth : 0.0;
  return out;
}

/// The outcome of a request whose origin is unreachable (fault
/// injection, net/fault.h): only the cached prefix is delivered, the
/// remainder is *denied* rather than delayed — there is no finite
/// bandwidth to divide the deficit by. Quality is the supported
/// fraction of the stream the prefix alone sustains; the request plays
/// immediately only when fully cached. Callers account the shortfall
/// via MetricsCollector::record_denied.
[[nodiscard]] inline ServiceOutcome deliver_cache_only(
    double size_bytes, double cached_prefix_bytes,
    int quality_layers = kDefaultQualityLayers) {
  const double cached = std::clamp(cached_prefix_bytes, 0.0, size_bytes);
  ServiceOutcome out;
  out.bytes_from_cache = cached;
  out.bytes_from_origin = 0.0;
  if (size_bytes <= 0 || cached + kDeliveryByteEps >= size_bytes) {
    out.quality_continuous = 1.0;
  } else {
    out.quality_continuous = cached / size_bytes;
  }
  out.quality = quantize_quality(out.quality_continuous, quality_layers);
  out.immediate = out.quality_continuous >= 1.0;
  return out;
}

/// Compute the outcome of serving an object with `cached_prefix_bytes`
/// cached and instantaneous origin bandwidth `bandwidth` (bytes/second,
/// > 0). The scalar form is the hot-path entry point (fed from the
/// catalog's SoA view); the StreamObject form delegates to it.
[[nodiscard]] inline ServiceOutcome deliver(
    double duration_s, double bitrate, double size_bytes, double bandwidth,
    double cached_prefix_bytes, int quality_layers = kDefaultQualityLayers) {
  return deliver_precomputed(size_bytes, duration_s * bitrate,
                             duration_s * bandwidth, bandwidth,
                             cached_prefix_bytes, quality_layers);
}

[[nodiscard]] inline ServiceOutcome deliver(
    const workload::StreamObject& obj, double bandwidth,
    double cached_prefix_bytes, int quality_layers = kDefaultQualityLayers) {
  return deliver(obj.duration_s, obj.bitrate, obj.size_bytes, bandwidth,
                 cached_prefix_bytes, quality_layers);
}

/// Dense per-object delivery operands: the §2.2 products, indexed by
/// ObjectId. They are pure functions of the catalog (and, in the
/// constant-bandwidth mode, the per-path means), so precomputing them
/// once per run costs O(objects) — not O(requests) — and the request
/// loop then reads each operand with a single L1-resident load instead
/// of re-multiplying per request. Arrays are reused across simulations
/// (sim::RunState keeps one table per cached engine).
struct DeliveryTable {
  std::vector<double> dr;  // duration_s * bitrate (the §2.2 stream size)
  std::vector<double> db;  // duration_s * path-mean bw (constant mode)
  std::vector<double> bw;  // path-mean bandwidth      (constant mode)

  void resize(std::size_t n) {
    dr.resize(n);
    db.resize(n);
    bw.resize(n);
  }
};

/// Precompute the §2.1–§2.2 products of every catalog object into
/// `out` (resized to view.size). These fills are the delivery formulas'
/// vectorizable prologue: contiguous independent multiplies — no
/// gathers — that a `-march=native` build (CMake -DSC_NATIVE=ON) turns
/// into packed SIMD. `path_means` is the constant-bandwidth scenario's
/// per-path mean array (indexed by path id) — the bandwidth and the
/// duration*bandwidth product batch too; pass nullptr for
/// variable-bandwidth modes, whose samplers are inherently sequential
/// (the per-request draw happens in the decision loop instead, leaving
/// only dr precomputable).
/// FP-contraction note: dr/db must stay exact `a * b` products (the
/// decision stage recombines them expecting deliver()'s historical
/// rounding), which is why SC_NATIVE builds pin -ffp-contract=off.
inline void build_delivery_table(const workload::CatalogView& view,
                                 const double* path_means,
                                 DeliveryTable& out) {
  const std::size_t n = view.size;
  out.resize(n);
  double* dr = out.dr.data();
  for (std::size_t i = 0; i < n; ++i) {
    dr[i] = view.duration_s[i] * view.bitrate[i];
  }
  if (path_means != nullptr) {
    double* db = out.db.data();
    double* bw = out.bw.data();
    for (std::size_t i = 0; i < n; ++i) {
      const double b = path_means[view.path[i]];
      bw[i] = b;
      db[i] = view.duration_s[i] * b;
    }
  }
}

}  // namespace sc::sim
