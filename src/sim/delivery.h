// Joint cache + origin delivery model (§2.1 - §2.2).
//
// A request for object i finds x_i bytes of its prefix cached nearby
// (abundant last-mile bandwidth, per the paper's assumptions) while the
// remainder streams from the origin at the instantaneous path bandwidth b:
//
//   service delay   D = [T_i r_i - T_i b - x_i]+ / b          (§2.2)
//   stream quality  Q = min(1, (T_i b + x_i) / (T_i r_i))     (§3.3)
//
// D is the prefetch wait a client incurs before continuous full-quality
// playout is possible; Q is the fraction of a layered stream that joint
// delivery can sustain with *immediate* playout (the client's alternative
// to waiting). The two metrics describe the same deficit spent in
// different currencies, so exactly one of them is degraded per request.
#pragma once

#include "workload/object_catalog.h"

namespace sc::sim {

/// Number of encoding layers used to quantize stream quality. The paper's
/// §3.3 example uses four layers ("if a layer-encoded object has four
/// layers but only three layers can be supported, then the quality is
/// 0.75").
inline constexpr int kDefaultQualityLayers = 4;

/// Outcome of serving one request.
struct ServiceOutcome {
  double delay_s = 0.0;        // prefetch delay before full-quality playout
  double quality = 1.0;        // layer-quantized immediate-playout quality
  double quality_continuous = 1.0;  // unquantized supported fraction
  bool immediate = false;      // true iff delay_s == 0
  double bytes_from_cache = 0.0;
  double bytes_from_origin = 0.0;
  /// Bytes obtained by joining an in-flight transmission of the same
  /// object (patching; filled in by the simulator, not by deliver()).
  double bytes_shared = 0.0;
  double origin_transfer_s = 0.0;  // wall time of the origin connection
  double origin_throughput = 0.0;  // what a passive estimator observes
};

/// Compute the outcome of serving `obj` with `cached_prefix_bytes` cached
/// and instantaneous origin bandwidth `bandwidth` (bytes/second, > 0).
[[nodiscard]] ServiceOutcome deliver(const workload::StreamObject& obj,
                                     double bandwidth,
                                     double cached_prefix_bytes,
                                     int quality_layers = kDefaultQualityLayers);

/// The §2.2 delay formula alone (exposed for tests and offline solvers).
[[nodiscard]] double service_delay(double duration_s, double bitrate,
                                   double bandwidth, double cached_bytes);

/// The §3.3 quality formula alone (continuous supported fraction).
[[nodiscard]] double stream_quality(double duration_s, double bitrate,
                                    double bandwidth, double cached_bytes);

/// Quantize a supported fraction to the number of fully-supported layers:
/// floor(q * layers) / layers.
[[nodiscard]] double quantize_quality(double quality, int layers);

}  // namespace sc::sim
