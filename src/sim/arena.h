// Per-worker simulation arenas and the monomorphized engine boundary.
//
// A sweep executes cells x replications simulations, and before this
// layer existed every one of them re-allocated its setup state: the
// event queue, the partial store's id array, the policy's frequency
// vector and heap, the estimator's per-path arrays, the in-flight
// patching table. None of that state depends on anything but the
// catalog size and the component specs, so a worker thread can build it
// once and reset()-reuse it across every simulation it executes.
//
// SimulationArena is that per-worker cache. It maps a
// (policy spec, estimator spec) pair to a MonoEngineBase: a fully
// *monomorphized* simulation engine whose request loop was instantiated
// at compile time over the concrete (PolicyKernel, EstimatorKernel)
// pair (see sim/run_loop.h), carrying its reusable RunState and
// component objects. core::SweepRunner owns one arena per
// util::ThreadPool worker slot and hands each simulation task its
// worker's arena, driving steady-state sweep allocations from
// O(cells x replications) to O(workers x distinct specs).
//
// The dispatch table behind acquire_mono_engine covers the registry's
// built-in policy x estimator spec space (8 x 4). Out-of-table specs —
// user-registered components — return nullptr and run on the virtual
// fallback path (sim::Simulator's BandwidthEstimator / CachePolicy
// interfaces), which is also kept as a bit-identity regression oracle
// behind SimulationConfig::monomorphize = false.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace sc::sim {

/// Everything a monomorphized engine needs to execute one simulation.
/// Strings and heavyweight state are referenced, not copied, so building
/// a context allocates nothing.
struct MonoRunContext {
  /// The run's request source (replayed, regenerated, or file-backed;
  /// see workload/request_stream.h). Shared per (alpha, replication) by
  /// core::SweepRunner exactly as materialized workloads used to be.
  const workload::RequestStream* stream = nullptr;
  /// Shared immutable path model (one per replication, see core::Sweep).
  /// When null the engine draws its own from `base`/`ratio` and the
  /// config's path seed — bit-identical by the PathModel RNG-snapshot
  /// contract.
  std::shared_ptr<const net::PathModel> model;
  const stats::EmpiricalDistribution* base = nullptr;
  const stats::EmpiricalDistribution* ratio = nullptr;
  /// Component specs and simulation knobs. `config->seed` is ignored in
  /// favor of `seed` so sweep tasks need not copy the config per
  /// replication.
  const SimulationConfig* config = nullptr;
  std::uint64_t seed = 0;
};

/// A compiled (policy kernel, estimator kernel) pair plus its reusable
/// run state. run() rebinds the cached components to the context's
/// workload/model/seed — bit-identical to constructing them fresh — and
/// executes the monomorphized request loop. One virtual call per
/// *simulation*; everything inside is inlined.
class MonoEngineBase {
 public:
  virtual ~MonoEngineBase() = default;
  [[nodiscard]] virtual SimulationResult run(const MonoRunContext& context) = 0;
};

/// Per-worker cache of monomorphized engines keyed by the *raw*
/// (policy, estimator) spec strings (so a steady-state lookup is a pair
/// of string compares — no parsing, no hashing, no allocation). Not
/// thread-safe: each worker owns its arena exclusively.
class SimulationArena {
 public:
  struct Slot {
    std::string policy;
    std::string estimator;
    /// Null for negatively cached pairs (out-of-table specs), so the
    /// fallback decision is also made once per arena, not per task.
    std::unique_ptr<MonoEngineBase> engine;
  };

  /// The slot for (policy, estimator), or nullptr if never seen.
  [[nodiscard]] Slot* find(const std::string& policy,
                           const std::string& estimator) noexcept {
    for (Slot& slot : slots_) {
      if (slot.policy == policy && slot.estimator == estimator) return &slot;
    }
    return nullptr;
  }

  Slot& insert(std::string policy, std::string estimator,
               std::unique_ptr<MonoEngineBase> engine) {
    slots_.push_back(
        Slot{std::move(policy), std::move(estimator), std::move(engine)});
    return slots_.back();
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  void clear() noexcept { slots_.clear(); }

 private:
  std::vector<Slot> slots_;  // a handful of entries; linear scan
};

/// The monomorphized engine for `config`'s (policy, estimator) pair,
/// cached in (or newly added to) `arena`; nullptr when the pair is not
/// in the built-in dispatch table (caller must use the virtual fallback
/// path). Throws util::SpecError on malformed specs, exactly like the
/// registry factories.
[[nodiscard]] MonoEngineBase* acquire_mono_engine(
    SimulationArena& arena, const SimulationConfig& config);

/// Whether the (policy, estimator) pair of `config` is covered by the
/// monomorphized dispatch table (test/diagnostic hook).
[[nodiscard]] bool mono_dispatchable(const SimulationConfig& config);

}  // namespace sc::sim
