// Continuous cache-state integrity auditor.
//
// The simulator and the live proxy share one decision path
// (sim::DecisionKernel), so they share one notion of a *consistent*
// cache: occupancy equals the sum of cached byte ranges and never
// exceeds capacity, the policy's priority index tracks exactly the
// cached id set, and no deferred estimator observation is malformed.
// StateAuditor checks those invariants against live state without
// mutating it, so it can run mid-soak (bench_chaos), after crash
// recovery (the daemon refuses to accept connections until a full audit
// passes), and on demand over the wire (AUDIT frame).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cache/policy.h"
#include "cache/store.h"
#include "sim/event_queue.h"

namespace sc::sim {

/// Outcome of one audit pass: every violated invariant, in check order,
/// as a human-readable reason. `checks` counts individual assertions so
/// callers can tell "clean" from "vacuous".
struct AuditReport {
  std::size_t checks = 0;
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }

  /// One line: "audit ok (N checks)" or the semicolon-joined violations.
  [[nodiscard]] std::string to_string() const;

  /// The report as a JSON object {"ok": ..., "checks": N,
  /// "violations": [...]} — the AUDIT wire frame's response body.
  [[nodiscard]] std::string to_json() const;
};

class StateAuditor {
 public:
  /// Audit `store` (always) plus, when non-null, the policy's index
  /// consistency against it and the pending estimator observations.
  /// `n_ids` bounds valid path ids (0 disables the bound check);
  /// `slack_bytes` is the absolute tolerance for occupancy arithmetic
  /// (the store itself works to one byte of floating-point slack).
  [[nodiscard]] static AuditReport audit(
      const cache::PartialStore& store,
      const cache::CachePolicy* policy = nullptr,
      const ObservationQueue* observations = nullptr, std::size_t n_ids = 0,
      double slack_bytes = 1.0);
};

}  // namespace sc::sim
