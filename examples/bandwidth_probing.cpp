// Bandwidth measurement study (§2.7): how the cache can learn b_i.
//
// Compares the estimators the paper discusses:
//   - active probing (TCP-throughput model from measured RTT + loss,
//     with per-probe packet overhead),
//   - passive observation (EWMA over completed transfers, no overhead),
//   - last-sample passive estimation,
// against the true path means, reporting estimate error and overhead, and
// then shows how estimator quality feeds through to PB caching delay.
//
// Run: ./bandwidth_probing [--paths 500] [--probes 50]

#include <cstdio>

#include "core/experiment.h"
#include "core/registry.h"
#include "net/bandwidth_model.h"
#include "net/estimator.h"
#include "net/path_process.h"
#include "net/probe.h"
#include "net/units.h"
#include "net/variability.h"
#include "stats/summary.h"
#include "util/cli.h"
#include "util/table.h"

int run_main(int argc, char** argv) {
  using namespace sc;
  const util::Cli cli(argc, argv);
  cli.check_unknown({"paths", "probes", "policy", "estimator", "scenario"});
  const auto n_paths = static_cast<std::size_t>(cli.get_or("paths", 500LL));
  const auto probes = static_cast<std::size_t>(cli.get_or("probes", 50LL));

  util::Rng rng(17);
  const auto base = net::nlanr_base_model();
  const auto ratio = net::measured_variability_model();
  net::PathModelConfig pcfg;
  pcfg.mode = net::VariationMode::kIidRatio;
  const auto model = std::make_shared<const net::PathModel>(
      n_paths, base, ratio, pcfg, rng.fork("paths"));
  net::PathSampler paths(model);

  // --- Estimator accuracy against the true means --------------------------
  const std::vector<double>& means = model->means();
  net::ProbeModel probe_model(means, net::ProbeConfig{}, rng.fork("probe"));
  net::ActiveProbeEstimator active(probe_model, /*reprobe_interval_s=*/60.0,
                                   rng.fork("active"));
  net::PassiveEwmaEstimator passive(n_paths, 0.3, net::from_kb(50.0));
  net::LastSampleEstimator last(n_paths, net::from_kb(50.0));

  // Feed each estimator `probes` rounds of observations.
  double t = 0.0;
  for (std::size_t round = 0; round < probes; ++round) {
    for (std::size_t p = 0; p < n_paths; ++p) {
      const double sample = paths.sample_bandwidth(p, t);
      passive.observe(p, sample, t);
      last.observe(p, sample, t);
      (void)active.estimate(p, t);  // triggers re-probe when stale
    }
    t += 120.0;
  }

  auto report_error = [&](net::BandwidthEstimator& est) {
    stats::RunningStats rel_err;
    for (std::size_t p = 0; p < n_paths; ++p) {
      const double e = est.estimate(p, t);
      rel_err.add(std::abs(e - means[p]) / means[p]);
    }
    return rel_err;
  };

  std::printf("Bandwidth estimation accuracy over %zu paths, %zu "
              "observation rounds\n\n",
              n_paths, probes);
  util::Table table({"estimator", "mean |rel error|", "p95 proxy (mean+2sd)",
                     "overhead (packets)"});
  const auto pe = report_error(passive);
  const auto le = report_error(last);
  const auto ae = report_error(active);
  table.add_row({"passive EWMA (alpha=0.3)", util::Table::num(pe.mean(), 3),
                 util::Table::num(pe.mean() + 2 * pe.stddev(), 3), "0"});
  table.add_row({"last sample", util::Table::num(le.mean(), 3),
                 util::Table::num(le.mean() + 2 * le.stddev(), 3), "0"});
  table.add_row({"active probe (TCP model)", util::Table::num(ae.mean(), 3),
                 util::Table::num(ae.mean() + 2 * ae.stddev(), 3),
                 std::to_string(active.overhead_packets())});
  table.print();

  // --- Feed-through to caching performance --------------------------------
  std::printf("\nEffect on PB caching (cache = 8%%, measured variability):\n");
  core::ExperimentConfig e;
  e.workload.catalog.num_objects = 2000;
  e.workload.trace.num_requests = 40000;
  e.runs = 3;
  e.sim.policy = cli.get_or("policy", std::string("pb"));
  e.sim.cache_capacity_bytes =
      core::capacity_for_fraction(e.workload.catalog, 0.08);
  const auto scenario = core::registry::make_scenario(
      cli.get_or("scenario", std::string("measured")));

  util::Table impact({"estimator", "avg delay (s)", "traffic reduction"});
  std::vector<std::string> estimators = {"oracle", "ewma:alpha=0.3", "last",
                                         "probe:interval_s=3600"};
  if (const auto override_spec = cli.get("estimator")) {
    estimators = {*override_spec};
  }
  for (const auto& est : estimators) {
    e.sim.estimator = est;
    const auto m = core::run_experiment(e, scenario);
    impact.add_row({est, util::Table::num(m.delay_s, 1),
                    util::Table::num(m.traffic_reduction, 3)});
  }
  impact.print();
  std::printf("\nPassive EWMA approaches oracle quality with zero probing "
              "overhead once the trace has touched each path -- the "
              "paper's recommended deployment approach (2.7).\n");
  return 0;
}

int main(int argc, char** argv) {
  return sc::util::guarded_main(run_main, argc, argv);
}
