// Revenue maximization (§2.6, §4.4): a pay-per-view streaming service
// earns V_i dollars each time object i plays *immediately*. The cache's
// job is to maximize revenue, not byte hit-rate.
//
// This example:
//   1. compares the online value-aware policies (PB-V, IB-V) against the
//      value-blind IF on total added value;
//   2. computes the offline greedy knapsack bound of §2.6 and, on a small
//      instance, the exact DP optimum, to show how close greedy gets.
//
// Run: ./revenue_maximization [--quick]

#include <cstdio>

#include "cache/offline_opt.h"
#include "core/experiment.h"
#include "core/registry.h"
#include "net/bandwidth_model.h"
#include "net/path_process.h"
#include "net/units.h"
#include "net/variability.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/workload_stats.h"

int run_main(int argc, char** argv) {
  using namespace sc;
  const util::Cli cli(argc, argv);
  cli.check_unknown({"quick", "runs", "policy", "estimator", "scenario"});
  const bool quick = cli.get_or("quick", false);

  // ---- online comparison -------------------------------------------------
  core::ExperimentConfig base;
  base.workload.catalog.num_objects = quick ? 1000 : 5000;
  base.workload.trace.num_requests = quick ? 20000 : 100000;
  base.runs = static_cast<std::size_t>(cli.get_or("runs", quick ? 3LL : 5LL));
  base.sim.cache_capacity_bytes =
      core::capacity_for_fraction(base.workload.catalog, 0.08);
  base.sim.estimator = cli.get_or("estimator", std::string("oracle"));
  const auto scenario = core::registry::make_scenario(
      cli.get_or("scenario", std::string("measured")));

  std::printf("Revenue maximization: V_i ~ U[$1, $10], value added on "
              "immediate playout\n(cache = 8%% of corpus, measured-path "
              "variability)\n\n");
  util::Table online({"policy", "total added value ($K)",
                      "traffic reduction", "immediate ratio"});
  std::vector<std::string> policies = {"if", "ibv", "pbv"};
  if (const auto override_spec = cli.get("policy")) {
    policies = {*override_spec};
  }
  for (const auto& policy : policies) {
    core::ExperimentConfig e = base;
    e.sim.policy = policy;
    const auto m = core::run_experiment(e, scenario);
    online.add_row({policy,
                    util::Table::num(m.added_value / 1000.0, 1),
                    util::Table::num(m.traffic_reduction, 3),
                    util::Table::num(m.immediate_ratio, 3)});
  }
  online.print();

  // ---- offline bounds ----------------------------------------------------
  std::printf("\nOffline knapsack bounds (static population, known rates):\n");
  util::Rng rng(99);
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 200;  // small instance so exact DP is cheap
  wcfg.trace.num_requests = 20000;
  const auto w = workload::generate_workload(wcfg, rng);

  // Known request rates from the trace; known bandwidth means.
  const auto counts = workload::request_counts(w);
  cache::OfflineInputs inputs;
  inputs.lambda.assign(counts.begin(), counts.end());
  const auto bw_model = net::nlanr_base_model();
  for (std::size_t i = 0; i < w.catalog.size(); ++i) {
    inputs.bandwidth.push_back(bw_model.sample(rng));
  }
  const double capacity = 0.08 * w.catalog.total_bytes();

  const auto greedy = cache::value_greedy(w.catalog, inputs, capacity);
  const auto exact = cache::value_exact(w.catalog, inputs, capacity);
  util::Table offline({"solver", "rate-weighted value", "bytes used (GB)"});
  offline.add_row({"greedy (paper §2.6)",
                   util::Table::num(greedy.total_rate_value, 0),
                   util::Table::num(net::to_gb(greedy.bytes_used), 2)});
  offline.add_row({"exact 0/1 knapsack (DP)",
                   util::Table::num(exact.total_rate_value, 0),
                   util::Table::num(net::to_gb(exact.bytes_used), 2)});
  offline.print();
  std::printf("greedy achieves %.1f%% of the exact optimum on this "
              "instance.\n",
              100.0 * greedy.total_rate_value /
                  std::max(1.0, exact.total_rate_value));
  return 0;
}

int main(int argc, char** argv) {
  return sc::util::guarded_main(run_main, argc, argv);
}
