// Quickstart: build a small streaming workload, attach a network-aware
// partial-caching accelerator (the paper's PB policy) to an edge cache,
// and watch service delay collapse as the cache learns the workload.
//
// Run: ./quickstart [--objects N] [--requests N] [--cache-gb G]
//                    [--policy <spec>] [--estimator <spec>]
//                    [--scenario <spec>]

#include <cstdio>

#include "core/accelerator.h"
#include "core/registry.h"
#include "net/bandwidth_model.h"
#include "net/path_process.h"
#include "net/units.h"
#include "net/variability.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/generator.h"

int run_main(int argc, char** argv) {
  using namespace sc;
  const util::Cli cli(argc, argv);
  cli.check_unknown({"objects", "requests", "cache-gb", "policy", "estimator", "scenario"});

  // 1. A catalog of streaming objects and a Zipf-like request trace
  //    (defaults follow Table 1 of the paper, scaled down for a demo).
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects =
      static_cast<std::size_t>(cli.get_or("objects", 500LL));
  wcfg.trace.num_requests =
      static_cast<std::size_t>(cli.get_or("requests", 20000LL));
  util::Rng rng(7);
  const workload::Workload w = workload::generate_workload(wcfg, rng);

  // 2. Internet paths to the origin servers, from a registered scenario
  //    spec (default: NLANR means, measured-path variability). The
  //    immutable model (per-path means) is shareable; the sampler holds
  //    this run's variability stream.
  const auto scenario = core::registry::make_scenario(
      cli.get_or("scenario", std::string("measured")));
  net::PathModelConfig pcfg;
  pcfg.mode = scenario.mode;
  const auto model = std::make_shared<const net::PathModel>(
      w.catalog.size(), scenario.base, scenario.ratio, pcfg,
      rng.fork("paths"));
  net::PathSampler paths(model);

  // 3. The accelerator: a partial-object store managed by a
  //    network-aware policy, fed by a bandwidth estimator — both
  //    addressed by spec strings.
  const auto estimator = core::registry::make_estimator(
      cli.get_or("estimator", std::string("ewma:alpha=0.3")), *model,
      rng.fork("estimator"));
  core::AcceleratorConfig acfg;
  acfg.capacity_bytes = net::from_gb(cli.get_or("cache-gb", 8.0));
  acfg.policy = cli.get_or("policy", std::string("pb"));
  core::Accelerator accelerator(w.catalog, *estimator, acfg);

  // 4. Replay the trace; report delay/quality in trace quarters so the
  //    learning effect is visible.
  util::Table table({"quarter", "avg delay (s)", "avg quality",
                     "traffic from cache", "cache occupancy (GB)"});
  const std::size_t quarter = w.requests.size() / 4;
  double delay_acc = 0, quality_acc = 0, cache_bytes = 0, total_bytes = 0;
  std::size_t in_quarter = 0;

  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    const auto& req = w.requests[i];
    const auto& obj = w.catalog.object(req.object);
    const double bw = paths.sample_bandwidth(obj.path, req.time_s);

    const core::DeliveryPlan plan =
        accelerator.serve(req.object, req.time_s, bw);
    // Passive measurement: the proxy observes the origin connection.
    accelerator.observe_transfer(obj.path, bw, req.time_s);

    delay_acc += plan.outcome.delay_s;
    quality_acc += plan.outcome.quality;
    cache_bytes += plan.outcome.bytes_from_cache;
    total_bytes += obj.size_bytes;
    ++in_quarter;

    if (in_quarter == quarter || i + 1 == w.requests.size()) {
      const auto q = static_cast<double>(in_quarter);
      table.add_row({std::to_string((i + 1) / quarter),
                     util::Table::num(delay_acc / q, 1),
                     util::Table::num(quality_acc / q, 3),
                     util::Table::num(cache_bytes / total_bytes, 3),
                     util::Table::num(
                         net::to_gb(accelerator.occupancy_bytes()), 2)});
      delay_acc = quality_acc = cache_bytes = total_bytes = 0;
      in_quarter = 0;
    }
  }

  std::printf("Network-aware partial caching quickstart (%s policy)\n",
              accelerator.policy_name().c_str());
  std::printf("objects=%zu requests=%zu cache=%.1f GB\n\n", w.catalog.size(),
              w.requests.size(), net::to_gb(accelerator.capacity_bytes()));
  table.print();
  std::printf(
      "\nThe cache admits prefixes of objects whose origin bandwidth cannot\n"
      "sustain their bit-rate; delay drops as the estimator converges.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sc::util::guarded_main(run_main, argc, argv);
}
