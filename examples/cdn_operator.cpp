// CDN operator scenario: how much edge cache should you buy, and which
// policy should manage it?
//
// An operator serving a streaming catalog wants to hit a service-delay
// SLO (say, average prefetch delay under 30 s) at minimum cache cost.
// This example sweeps cache sizes for the network-aware policies and the
// network-oblivious baseline, then reports the cheapest configuration
// meeting the SLO -- the paper's acceleration argument in procurement
// terms.
//
// Run: ./cdn_operator [--slo-delay 30] [--runs 5] [--quick]

#include <cstdio>
#include <optional>

#include "core/experiment.h"
#include "core/registry.h"
#include "net/units.h"
#include "util/cli.h"
#include "util/table.h"

int run_main(int argc, char** argv) {
  using namespace sc;
  const util::Cli cli(argc, argv);
  cli.check_unknown({"slo-delay", "quick", "runs", "policy", "estimator", "scenario"});
  const double slo_delay_s = cli.get_or("slo-delay", 150.0);
  const bool quick = cli.get_or("quick", false);

  core::ExperimentConfig base;
  base.workload.catalog.num_objects = quick ? 1000 : 5000;
  base.workload.trace.num_requests = quick ? 20000 : 100000;
  base.runs = static_cast<std::size_t>(cli.get_or("runs", quick ? 3LL : 5LL));
  base.sim.estimator = cli.get_or("estimator", std::string("oracle"));
  const auto scenario = core::registry::make_scenario(
      cli.get_or("scenario", std::string("measured")));

  const std::vector<double> fractions = {0.005, 0.01, 0.02, 0.04,
                                         0.08, 0.169};
  std::vector<std::string> policies = {"if", "ib", "pb"};
  if (const auto override_spec = cli.get("policy")) {
    policies = {*override_spec};
  }

  std::printf("CDN operator study: cheapest cache meeting avg delay <= %.0f "
              "s\n(scenario: NLANR path means, measured-path variability)\n\n",
              slo_delay_s);

  util::Table table({"policy", "cache (GB)", "avg delay (s)",
                     "traffic reduction", "meets SLO"});
  struct Winner {
    std::string policy;
    double gb;
  };
  std::optional<Winner> winner;

  for (const auto& policy : policies) {
    for (const double f : fractions) {
      core::ExperimentConfig e = base;
      e.sim.policy = policy;
      e.sim.cache_capacity_bytes =
          core::capacity_for_fraction(e.workload.catalog, f);
      const auto m = core::run_experiment(e, scenario);
      const bool meets = m.delay_s <= slo_delay_s;
      const double gb = net::to_gb(e.sim.cache_capacity_bytes);
      table.add_row({policy, util::Table::num(gb, 1),
                     util::Table::num(m.delay_s, 1),
                     util::Table::num(m.traffic_reduction, 3),
                     meets ? "yes" : "no"});
      if (meets && (!winner || gb < winner->gb)) {
        winner = Winner{policy, gb};
      }
      if (meets) break;  // larger caches only cost more
    }
  }
  table.print();

  if (winner) {
    std::printf("\nRecommendation: %s with a %.1f GB cache is the cheapest "
                "configuration meeting the SLO.\n",
                winner->policy.c_str(), winner->gb);
    std::printf("The network-aware partial policy (PB) typically meets the "
                "delay SLO with a fraction of the capacity the "
                "frequency-only policy (IF) needs -- the paper's central "
                "claim.\n");
  } else {
    std::printf("\nNo evaluated configuration meets the SLO; consider a "
                "larger cache or a lower-variability upstream.\n");
  }
  return 0;
}

int main(int argc, char** argv) {
  return sc::util::guarded_main(run_main, argc, argv);
}
