// Generic experiment runner: evaluate any policy under any scenario and
// cache size from the command line. This is the "I want one number"
// entry point for downstream users and scripts.
//
//   ./run_experiment --policy=hybrid:e=0.5 --scenario=measured
//                    --estimator=ewma:alpha=0.3 --cache-frac=0.08
//                    [--objects N] [--requests N] [--runs N] [--zipf A]
//                    [--patching] [--viewing] [--csv out.csv]
//
// --help lists every registered policy / estimator / scenario spec.

#include <cstdio>
#include <stdexcept>

#include "core/builder.h"
#include "net/units.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sc;
  try {
    const util::Cli cli(argc, argv);
    if (cli.has("help")) {
      std::printf("usage: %s [flags]\n\n  --csv=PATH  write the result row\n\n%s",
                  cli.program().c_str(), core::ExperimentBuilder::cli_help().c_str());
      return 0;
    }
    auto known = core::ExperimentBuilder::cli_flags();
    known.push_back("csv");
    known.push_back("help");
    cli.check_unknown(known);

    core::ExperimentBuilder builder;
    builder.cache_fraction(0.08).runs(10).seed(42).from_cli(cli);

    const auto config = builder.config();
    const auto scenario = builder.build_scenario();
    const auto m = core::run_experiment(config, scenario);
    const double fraction = cli.get_or("cache-frac", 0.08);

    std::printf("policy=%s estimator=%s scenario=%s cache=%.1f GB "
                "(%.1f%% of corpus) runs=%zu\n\n",
                config.sim.policy.c_str(), config.sim.estimator.c_str(),
                scenario.name.c_str(),
                net::to_gb(config.sim.cache_capacity_bytes),
                fraction * 100.0, m.runs);
    util::Table table({"metric", "mean", "std dev"});
    table.add_row({"traffic reduction ratio",
                   util::Table::num(m.traffic_reduction, 4),
                   util::Table::num(m.traffic_reduction_sd, 4)});
    table.add_row({"average service delay (s)", util::Table::num(m.delay_s, 2),
                   util::Table::num(m.delay_s_sd, 2)});
    table.add_row({"average stream quality", util::Table::num(m.quality, 4),
                   util::Table::num(m.quality_sd, 4)});
    table.add_row({"total added value ($)",
                   util::Table::num(m.added_value, 0),
                   util::Table::num(m.added_value_sd, 0)});
    table.add_row({"hit ratio", util::Table::num(m.hit_ratio, 4), "-"});
    table.add_row(
        {"immediate ratio", util::Table::num(m.immediate_ratio, 4), "-"});
    table.print();

    if (const auto csv_path = cli.get("csv")) {
      util::CsvWriter csv(*csv_path);
      csv.header({"policy", "estimator", "scenario", "cache_fraction",
                  "traffic_reduction", "delay_s", "quality", "added_value",
                  "hit_ratio"});
      csv.field(config.sim.policy)
          .field(config.sim.estimator)
          .field(scenario.name)
          .field(fraction)
          .field(m.traffic_reduction)
          .field(m.delay_s)
          .field(m.quality)
          .field(m.added_value)
          .field(m.hit_ratio);
      csv.endrow();
      std::printf("\n[written to %s]\n", csv_path->c_str());
    }
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
}
