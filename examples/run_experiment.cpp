// Generic experiment runner: evaluate any policy under any scenario and
// cache size from the command line. This is the "I want one number"
// entry point for downstream users and scripts.
//
//   ./run_experiment --policy PB --scenario measured --cache-frac 0.08
//                    [--e 0.5] [--estimator oracle|ewma|last|probe]
//                    [--objects N] [--requests N] [--runs N] [--zipf A]
//                    [--patching] [--viewing] [--csv out.csv]
//
// Scenarios: constant | nlanr | measured | timeseries-inria |
//            timeseries-taiwan | timeseries-hongkong

#include <cstdio>
#include <stdexcept>

#include "core/experiment.h"
#include "net/units.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

sc::core::Scenario scenario_by_name(const std::string& name) {
  using namespace sc;
  if (name == "constant") return core::constant_scenario();
  if (name == "nlanr") return core::nlanr_variability_scenario();
  if (name == "measured") return core::measured_variability_scenario();
  if (name == "timeseries-inria") {
    return core::timeseries_scenario(net::MeasuredPath::kInria);
  }
  if (name == "timeseries-taiwan") {
    return core::timeseries_scenario(net::MeasuredPath::kTaiwan);
  }
  if (name == "timeseries-hongkong") {
    return core::timeseries_scenario(net::MeasuredPath::kHongKong);
  }
  throw std::invalid_argument("unknown scenario: " + name);
}

sc::sim::EstimatorKind estimator_by_name(const std::string& name) {
  using sc::sim::EstimatorKind;
  if (name == "oracle") return EstimatorKind::kOracle;
  if (name == "ewma") return EstimatorKind::kPassiveEwma;
  if (name == "last") return EstimatorKind::kLastSample;
  if (name == "probe") return EstimatorKind::kActiveProbe;
  throw std::invalid_argument("unknown estimator: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sc;
  try {
    const util::Cli cli(argc, argv);
    core::ExperimentConfig e;
    e.workload.catalog.num_objects =
        static_cast<std::size_t>(cli.get_or("objects", 5000LL));
    e.workload.trace.num_requests =
        static_cast<std::size_t>(cli.get_or("requests", 100000LL));
    e.workload.trace.zipf_alpha = cli.get_or("zipf", 0.73);
    e.runs = static_cast<std::size_t>(cli.get_or("runs", 10LL));
    e.base_seed = static_cast<std::uint64_t>(cli.get_or("seed", 42LL));

    e.sim.policy =
        cache::parse_policy_kind(cli.get_or("policy", std::string("PB")));
    e.sim.policy_params.e = cli.get_or("e", 1.0);
    e.sim.estimator =
        estimator_by_name(cli.get_or("estimator", std::string("oracle")));
    e.sim.patching.enabled = cli.get_or("patching", false);
    e.sim.viewing.enabled = cli.get_or("viewing", false);

    const double fraction = cli.get_or("cache-frac", 0.08);
    e.sim.cache_capacity_bytes =
        core::capacity_for_fraction(e.workload.catalog, fraction);

    const auto scenario =
        scenario_by_name(cli.get_or("scenario", std::string("constant")));
    const auto m = core::run_experiment(e, scenario);

    std::printf("policy=%s scenario=%s cache=%.1f GB (%.1f%% of corpus) "
                "runs=%zu\n\n",
                cache::to_string(e.sim.policy).c_str(), scenario.name.c_str(),
                net::to_gb(e.sim.cache_capacity_bytes), fraction * 100.0,
                m.runs);
    util::Table table({"metric", "mean", "std dev"});
    table.add_row({"traffic reduction ratio",
                   util::Table::num(m.traffic_reduction, 4),
                   util::Table::num(m.traffic_reduction_sd, 4)});
    table.add_row({"average service delay (s)", util::Table::num(m.delay_s, 2),
                   util::Table::num(m.delay_s_sd, 2)});
    table.add_row({"average stream quality", util::Table::num(m.quality, 4),
                   util::Table::num(m.quality_sd, 4)});
    table.add_row({"total added value ($)",
                   util::Table::num(m.added_value, 0),
                   util::Table::num(m.added_value_sd, 0)});
    table.add_row({"hit ratio", util::Table::num(m.hit_ratio, 4), "-"});
    table.add_row(
        {"immediate ratio", util::Table::num(m.immediate_ratio, 4), "-"});
    table.print();

    if (const auto csv_path = cli.get("csv")) {
      util::CsvWriter csv(*csv_path);
      csv.header({"policy", "scenario", "cache_fraction", "traffic_reduction",
                  "delay_s", "quality", "added_value", "hit_ratio"});
      csv.field(cache::to_string(e.sim.policy))
          .field(scenario.name)
          .field(fraction)
          .field(m.traffic_reduction)
          .field(m.delay_s)
          .field(m.quality)
          .field(m.added_value)
          .field(m.hit_ratio);
      csv.endrow();
      std::printf("\n[written to %s]\n", csv_path->c_str());
    }
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
}
