// The paper's §3.1 measurement pipeline, end to end:
//
//   1. generate a synthetic Squid-format proxy access log whose miss
//      transfers draw bandwidth from a known ground-truth model,
//   2. analyze the log exactly as the paper analyzed the NLANR logs
//      (misses > 200 KB, bandwidth = size / duration, per-server
//      sample-to-mean ratios),
//   3. compare the recovered base and variability models to the ground
//      truth, and feed the *recovered* models into a caching simulation
//      to show the pipeline is accurate enough to drive policy decisions.
//
// Run: ./proxy_log_study [--requests 40000] [--servers 300]

#include <cstdio>
#include <filesystem>

#include "core/experiment.h"
#include "core/registry.h"
#include "net/bandwidth_model.h"
#include "net/log_analysis.h"
#include "net/units.h"
#include "net/variability.h"
#include "util/cli.h"
#include "util/table.h"

int run_main(int argc, char** argv) {
  using namespace sc;
  const util::Cli cli(argc, argv);
  cli.check_unknown({"requests", "servers", "policy", "estimator", "scenario"});
  util::Rng rng(23);

  // --- 1. ground truth + synthetic log --------------------------------
  // The ground-truth bandwidth environment is any registered scenario
  // (--scenario=...); the default matches the paper's NLANR models.
  const auto truth = core::registry::make_scenario(
      cli.get_or("scenario", std::string("nlanr")));
  net::PathModelConfig pcfg;
  pcfg.mode = truth.mode;
  const auto& truth_base = truth.base;
  const auto& truth_ratio = truth.ratio;
  net::SyntheticLogConfig scfg;
  scfg.num_requests =
      static_cast<std::size_t>(cli.get_or("requests", 40000LL));
  scfg.num_servers = static_cast<std::size_t>(cli.get_or("servers", 300LL));
  const auto path_model = std::make_shared<const net::PathModel>(
      scfg.num_servers, truth_base, truth_ratio, pcfg, rng.fork("paths"));
  net::PathSampler paths(path_model);

  const auto log_path =
      std::filesystem::temp_directory_path() / "sc_proxy_access.log";
  util::Rng log_rng = rng.fork("log");
  const auto lines = net::write_synthetic_log(log_path, paths, scfg, log_rng);
  std::printf("wrote %zu log lines to %s\n", lines, log_path.c_str());

  // --- 2. analyze as in the paper --------------------------------------
  net::LogAnalyzer analyzer;
  const auto samples = analyzer.add_file(log_path);
  std::filesystem::remove(log_path);
  std::printf("extracted %zu bandwidth samples (%zu lines rejected: hits, "
              "small or fast transfers)\n\n",
              samples, analyzer.lines_rejected());

  const auto recovered_base = analyzer.base_model();
  const auto recovered_ratio = analyzer.ratio_model();

  // --- 3a. recovered vs ground truth -----------------------------------
  util::Table cmp({"quantity", "ground truth", "recovered from log"});
  cmp.add_row({"base mean (KB/s)",
               util::Table::num(net::to_kb(truth_base.mean()), 1),
               util::Table::num(net::to_kb(recovered_base.mean()), 1)});
  cmp.add_row({"base CDF(50 KB/s)",
               util::Table::num(truth_base.cdf(net::from_kb(50)), 3),
               util::Table::num(recovered_base.cdf(net::from_kb(50)), 3)});
  cmp.add_row({"base CDF(100 KB/s)",
               util::Table::num(truth_base.cdf(net::from_kb(100)), 3),
               util::Table::num(recovered_base.cdf(net::from_kb(100)), 3)});
  cmp.add_row({"ratio CoV", util::Table::num(truth_ratio.cov(), 3),
               util::Table::num(recovered_ratio.cov(), 3)});
  cmp.add_row({"ratio P(0.5..1.5)",
               util::Table::num(truth_ratio.cdf(1.5) - truth_ratio.cdf(0.5), 3),
               util::Table::num(
                   recovered_ratio.cdf(1.5) - recovered_ratio.cdf(0.5), 3)});
  cmp.print();

  // --- 3b. do log-derived models drive the same caching conclusions? ---
  std::printf("\nPB vs IB simulated with ground-truth vs log-recovered "
              "models (cache = 8%%):\n");
  util::Table sim({"models", "PB delay (s)", "IB delay (s)", "winner"});
  for (const bool recovered : {false, true}) {
    core::Scenario scenario{
        recovered ? "log-recovered" : "ground-truth",
        recovered ? recovered_base : truth_base,
        recovered ? recovered_ratio : truth_ratio,
        net::VariationMode::kIidRatio};
    core::ExperimentConfig e;
    e.workload.catalog.num_objects = 1500;
    e.workload.trace.num_requests = 30000;
    e.runs = 3;
    e.sim.cache_capacity_bytes =
        core::capacity_for_fraction(e.workload.catalog, 0.08);
    e.sim.policy = cli.get_or("policy", std::string("pb"));
    e.sim.estimator = cli.get_or("estimator", std::string("oracle"));
    const double pb = core::run_experiment(e, scenario).delay_s;
    e.sim.policy = "ib";
    const double ib = core::run_experiment(e, scenario).delay_s;
    sim.add_row({scenario.name, util::Table::num(pb, 1),
                 util::Table::num(ib, 1), pb < ib ? "PB" : "IB"});
  }
  sim.print();
  std::printf("\nThe log-derived models reproduce the ground-truth model's "
              "policy comparison -- passive log analysis is a viable way "
              "to parameterize network-aware caching (paper 3.1).\n");
  return 0;
}

int main(int argc, char** argv) {
  return sc::util::guarded_main(run_main, argc, argv);
}
