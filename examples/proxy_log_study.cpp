// The paper's §3.1 measurement pipeline, end to end:
//
//   1. generate a synthetic Squid-format proxy access log whose miss
//      transfers draw bandwidth from a known ground-truth model,
//   2. analyze the log exactly as the paper analyzed the NLANR logs
//      (misses > 200 KB, bandwidth = size / duration, per-server
//      sample-to-mean ratios),
//   3. compare the recovered base and variability models to the ground
//      truth, and feed the *recovered* models into a caching simulation
//      to show the pipeline is accurate enough to drive policy decisions,
//   4. convert the log itself into a replayable workload trace
//      (workload/trace.h) — per-server objects, per-transfer requests
//      with recorded viewing durations — and replay it through the
//      "trace" scenario with and without session dynamics, i.e. run the
//      cache against the actual logged request stream instead of a
//      synthetic generator.
//
// Run: ./proxy_log_study [--requests 40000] [--servers 300]

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/builder.h"
#include "core/experiment.h"
#include "core/registry.h"
#include "net/bandwidth_model.h"
#include "net/log_analysis.h"
#include "net/units.h"
#include "net/variability.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/trace.h"

namespace {

/// Remove a temp file on scope exit, so failed runs don't accumulate
/// logs/traces in the temp directory.
struct TempFileGuard {
  std::filesystem::path path;
  ~TempFileGuard() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

/// Interpret the log's large miss transfers as streaming sessions: one
/// object per origin server (size = the largest transfer that server
/// ever shipped, CBR at the paper's 48 KB/s rate), one request per
/// transfer, and a *recorded viewing duration* proportional to the
/// bytes the client actually pulled — a session that fetched half the
/// object's bytes watched half the stream. This is exactly the partial
/// viewing the media-workload studies report, recovered from the log.
sc::workload::Workload workload_from_log(
    const std::filesystem::path& log_path) {
  using namespace sc;
  const double bitrate = workload::CatalogConfig{}.bitrate();  // 48 KB/s
  const double min_bytes = net::LogAnalysisConfig{}.min_bytes;

  struct Transfer {
    double time_s = 0.0;
    std::size_t server = 0;
    double bytes = 0.0;
  };
  std::unordered_map<std::string, std::size_t> server_ids;
  std::vector<double> max_bytes;
  std::vector<Transfer> transfers;

  std::ifstream in(log_path);
  std::string line;
  while (std::getline(in, line)) {
    const auto rec = net::parse_squid_line(line);
    if (!rec) continue;
    if (rec->result_code.rfind("TCP_MISS", 0) != 0) continue;
    if (rec->bytes < min_bytes) continue;  // streaming-scale only
    const std::string server = net::server_of_url(rec->url);
    if (server.empty()) continue;
    const auto [it, inserted] =
        server_ids.emplace(server, server_ids.size());
    if (inserted) max_bytes.push_back(0.0);
    max_bytes[it->second] = std::max(max_bytes[it->second], rec->bytes);
    transfers.push_back(Transfer{rec->timestamp_s, it->second, rec->bytes});
  }
  if (transfers.empty()) {
    throw std::runtime_error("workload_from_log: no usable transfers");
  }
  std::stable_sort(transfers.begin(), transfers.end(),
                   [](const Transfer& a, const Transfer& b) {
                     return a.time_s < b.time_s;
                   });

  std::vector<workload::StreamObject> objects(max_bytes.size());
  for (std::size_t id = 0; id < objects.size(); ++id) {
    objects[id].id = id;
    objects[id].duration_s = max_bytes[id] / bitrate;
    objects[id].bitrate = bitrate;
    objects[id].value = 1.0;
    objects[id].path = id;
  }

  std::vector<workload::Request> requests;
  requests.reserve(transfers.size());
  const double start = transfers.front().time_s;
  for (const auto& t : transfers) {
    workload::Request r;
    r.time_s = t.time_s - start;
    r.object = t.server;
    r.view_s = t.bytes / bitrate;  // the part the client actually pulled
    requests.push_back(r);
  }
  return workload::Workload{
      workload::Catalog::from_objects(std::move(objects)),
      std::move(requests)};
}

}  // namespace

int run_main(int argc, char** argv) {
  using namespace sc;
  const util::Cli cli(argc, argv);
  cli.check_unknown({"requests", "servers", "policy", "estimator", "scenario"});
  util::Rng rng(23);

  // --- 1. ground truth + synthetic log --------------------------------
  // The ground-truth bandwidth environment is any registered scenario
  // (--scenario=...); the default matches the paper's NLANR models.
  const auto truth = core::registry::make_scenario(
      cli.get_or("scenario", std::string("nlanr")));
  net::PathModelConfig pcfg;
  pcfg.mode = truth.mode;
  const auto& truth_base = truth.base;
  const auto& truth_ratio = truth.ratio;
  net::SyntheticLogConfig scfg;
  scfg.num_requests =
      static_cast<std::size_t>(cli.get_or("requests", 40000LL));
  scfg.num_servers = static_cast<std::size_t>(cli.get_or("servers", 300LL));
  const auto path_model = std::make_shared<const net::PathModel>(
      scfg.num_servers, truth_base, truth_ratio, pcfg, rng.fork("paths"));
  net::PathSampler paths(path_model);

  const auto log_path =
      std::filesystem::temp_directory_path() / "sc_proxy_access.log";
  const TempFileGuard log_guard{log_path};
  util::Rng log_rng = rng.fork("log");
  const auto lines = net::write_synthetic_log(log_path, paths, scfg, log_rng);
  std::printf("wrote %zu log lines to %s\n", lines, log_path.c_str());

  // --- 2. analyze as in the paper --------------------------------------
  net::LogAnalyzer analyzer;
  const auto samples = analyzer.add_file(log_path);
  std::printf("extracted %zu bandwidth samples (%zu lines rejected: hits, "
              "small or fast transfers)\n\n",
              samples, analyzer.lines_rejected());

  const auto recovered_base = analyzer.base_model();
  const auto recovered_ratio = analyzer.ratio_model();

  // --- 3a. recovered vs ground truth -----------------------------------
  util::Table cmp({"quantity", "ground truth", "recovered from log"});
  cmp.add_row({"base mean (KB/s)",
               util::Table::num(net::to_kb(truth_base.mean()), 1),
               util::Table::num(net::to_kb(recovered_base.mean()), 1)});
  cmp.add_row({"base CDF(50 KB/s)",
               util::Table::num(truth_base.cdf(net::from_kb(50)), 3),
               util::Table::num(recovered_base.cdf(net::from_kb(50)), 3)});
  cmp.add_row({"base CDF(100 KB/s)",
               util::Table::num(truth_base.cdf(net::from_kb(100)), 3),
               util::Table::num(recovered_base.cdf(net::from_kb(100)), 3)});
  cmp.add_row({"ratio CoV", util::Table::num(truth_ratio.cov(), 3),
               util::Table::num(recovered_ratio.cov(), 3)});
  cmp.add_row({"ratio P(0.5..1.5)",
               util::Table::num(truth_ratio.cdf(1.5) - truth_ratio.cdf(0.5), 3),
               util::Table::num(
                   recovered_ratio.cdf(1.5) - recovered_ratio.cdf(0.5), 3)});
  cmp.print();

  // --- 3b. do log-derived models drive the same caching conclusions? ---
  std::printf("\nPB vs IB simulated with ground-truth vs log-recovered "
              "models (cache = 8%%):\n");
  util::Table sim({"models", "PB delay (s)", "IB delay (s)", "winner"});
  for (const bool recovered : {false, true}) {
    core::Scenario scenario{
        recovered ? "log-recovered" : "ground-truth",
        recovered ? recovered_base : truth_base,
        recovered ? recovered_ratio : truth_ratio,
        net::VariationMode::kIidRatio, nullptr, nullptr};
    core::ExperimentConfig e;
    e.workload.catalog.num_objects = 1500;
    e.workload.trace.num_requests = 30000;
    e.runs = 3;
    e.sim.cache_capacity_bytes =
        core::capacity_for_fraction(e.workload.catalog, 0.08);
    e.sim.policy = cli.get_or("policy", std::string("pb"));
    e.sim.estimator = cli.get_or("estimator", std::string("oracle"));
    const double pb = core::run_experiment(e, scenario).delay_s;
    e.sim.policy = "ib";
    const double ib = core::run_experiment(e, scenario).delay_s;
    sim.add_row({scenario.name, util::Table::num(pb, 1),
                 util::Table::num(ib, 1), pb < ib ? "PB" : "IB"});
  }
  sim.print();
  std::printf("\nThe log-derived models reproduce the ground-truth model's "
              "policy comparison -- passive log analysis is a viable way "
              "to parameterize network-aware caching (paper 3.1).\n");

  // --- 4. replay the log itself through the trace scenario -------------
  // The logged request stream becomes a workload trace; the registry's
  // "trace" scenario then replays it from the same spec-string CLI every
  // binary shares. "trace" interactivity replays each session's recorded
  // viewing duration; "full" pretends every client watched through.
  const auto replay_workload = workload_from_log(log_path);
  const auto trace_path =
      std::filesystem::temp_directory_path() / "sc_proxy_replay.trace";
  const TempFileGuard trace_guard{trace_path};
  workload::write_trace(replay_workload, trace_path);
  const std::string replay_spec = "trace:file=" + trace_path.string();
  std::printf("\nreplaying the log's %zu streaming sessions over %zu "
              "objects via --scenario=%s\n",
              replay_workload.requests.size(),
              replay_workload.catalog.size(), replay_spec.c_str());

  util::Table replay({"interactivity", "traffic reduction", "delay (s)",
                      "hit ratio"});
  for (const char* mode : {"full", "trace"}) {
    const auto m = core::ExperimentBuilder()
                       .scenario(replay_spec)
                       .policy(cli.get_or("policy", std::string("pb")))
                       .estimator(cli.get_or("estimator",
                                             std::string("oracle")))
                       .cache_fraction(0.08)
                       .runs(3)
                       .interactivity(mode)
                       .run();
    replay.add_row({mode, util::Table::num(m.traffic_reduction, 4),
                    util::Table::num(m.delay_s, 1),
                    util::Table::num(m.hit_ratio, 4)});
  }
  replay.print();
  std::printf("\nAccounting for the sessions' recorded early departures "
              "changes the byte economics the cache sees -- policies must "
              "be evaluated under session dynamics, not just full-length "
              "synthetic streams.\n");
  return 0;
}

int main(int argc, char** argv) {
  return sc::util::guarded_main(run_main, argc, argv);
}
