#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace sc::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces observed
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double acc = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) acc += rng.exponential(2.0);
  EXPECT_NEAR(acc / kN, 0.5, 0.01);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

TEST(Rng, SuccessiveForksDiffer) {
  Rng a(42);
  Rng f1 = a.fork();
  Rng f2 = a.fork();
  EXPECT_NE(f1.seed(), f2.seed());
}

TEST(Rng, TaggedForkIndependentOfOrder) {
  const Rng a(42);
  Rng t1 = a.fork("paths");
  Rng t2 = a.fork("workload");
  Rng t1_again = a.fork("paths");
  EXPECT_EQ(t1.seed(), t1_again.seed());
  EXPECT_NE(t1.seed(), t2.seed());
}

TEST(Rng, ForkDoesNotPerturbParentTagged) {
  Rng a(42), b(42);
  (void)a.fork("side-stream");
  // Tagged fork is const and must not advance the parent.
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Hashing, Fnv1aKnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hashing, SplitmixAvalanche) {
  // Neighboring inputs should produce wildly different outputs.
  const auto a = splitmix64(1), b = splitmix64(2);
  EXPECT_NE(a, b);
  int differing_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing_bits, 16);
}

}  // namespace
}  // namespace sc::util
