#include "net/log_analysis.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "net/bandwidth_model.h"
#include "net/units.h"
#include "net/variability.h"

namespace sc::net {
namespace {

TEST(SquidParser, ParsesWellFormedLine) {
  const auto r = parse_squid_line(
      "987033600.123 5120 client-1 TCP_MISS/200 524288 GET "
      "http://media.example.net/clip.rm - DIRECT/- video/x-pn-realvideo");
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->timestamp_s, 987033600.123);
  EXPECT_DOUBLE_EQ(r->elapsed_s, 5.12);
  EXPECT_EQ(r->client, "client-1");
  EXPECT_EQ(r->result_code, "TCP_MISS/200");
  EXPECT_DOUBLE_EQ(r->bytes, 524288.0);
  EXPECT_EQ(r->method, "GET");
  EXPECT_EQ(r->url, "http://media.example.net/clip.rm");
}

TEST(SquidParser, RejectsMalformedLines) {
  EXPECT_FALSE(parse_squid_line("").has_value());
  EXPECT_FALSE(parse_squid_line("garbage").has_value());
  EXPECT_FALSE(parse_squid_line("123 not-a-number c TCP_MISS/200 5 GET u")
                   .has_value());
  EXPECT_FALSE(
      parse_squid_line("-5 100 c TCP_MISS/200 5 GET u").has_value());
  EXPECT_FALSE(
      parse_squid_line("5 100 c TCP_MISS/200 -5 GET u").has_value());
}

TEST(ServerOfUrl, ExtractsHosts) {
  EXPECT_EQ(server_of_url("http://a.b.c/x/y.rm"), "a.b.c");
  EXPECT_EQ(server_of_url("http://a.b.c:8080/x"), "a.b.c");
  EXPECT_EQ(server_of_url("rtsp://media.srv/stream"), "media.srv");
  EXPECT_EQ(server_of_url("hostonly/path"), "hostonly");
  EXPECT_EQ(server_of_url("http://"), "");
}

TEST(LogAnalyzer, FiltersHitsSmallAndFast) {
  LogAnalysisConfig cfg;
  cfg.min_bytes = 200 * 1024.0;
  LogAnalyzer an(cfg);
  // Hit: rejected.
  EXPECT_FALSE(an.add_line(
      "1 1000 c TCP_HIT/200 400000 GET http://s1/a - NONE/- t"));
  // Small object: rejected.
  EXPECT_FALSE(an.add_line(
      "2 1000 c TCP_MISS/200 1000 GET http://s1/a - DIRECT/- t"));
  // Too-fast (sub-100ms) connection: rejected.
  EXPECT_FALSE(an.add_line(
      "3 10 c TCP_MISS/200 400000 GET http://s1/a - DIRECT/- t"));
  // Good sample: 400000 bytes over 2 s => 200000 B/s.
  EXPECT_TRUE(an.add_line(
      "4 2000 c TCP_MISS/200 400000 GET http://s1/a - DIRECT/- t"));
  ASSERT_EQ(an.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(an.samples()[0].bytes_per_s, 200000.0);
  EXPECT_EQ(an.samples()[0].server, "s1");
  EXPECT_EQ(an.lines_seen(), 4u);
  EXPECT_EQ(an.lines_rejected(), 3u);
}

TEST(LogAnalyzer, RefreshMissCountsAsMiss) {
  LogAnalyzer an;
  EXPECT_TRUE(an.add_line(
      "4 3000 c TCP_REFRESH_MISS/200 600000 GET http://s2/b - DIRECT/- t"));
}

TEST(LogAnalyzer, ModelsRequireData) {
  LogAnalyzer an;
  EXPECT_THROW((void)an.base_model(), std::logic_error);
  EXPECT_THROW((void)an.ratio_model(), std::logic_error);
}

TEST(LogAnalyzer, ServerMeansGroupCorrectly) {
  LogAnalyzer an;
  an.add_line("1 1000 c TCP_MISS/200 300000 GET http://s1/a - D t");
  an.add_line("2 1000 c TCP_MISS/200 500000 GET http://s1/b - D t");
  an.add_line("3 1000 c TCP_MISS/200 400000 GET http://s2/a - D t");
  const auto means = an.server_means();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means.at("s1"), 400000.0);
  EXPECT_DOUBLE_EQ(means.at("s2"), 400000.0);
}

/// End-to-end: generate a synthetic log from a known bandwidth model and
/// verify the analyzer recovers that model's statistics — the paper's
/// §3.1 pipeline validated against ground truth.
TEST(LogPipeline, RecoversGroundTruthModels) {
  util::Rng rng(31);
  PathModelConfig pcfg;
  pcfg.mode = VariationMode::kIidRatio;
  const auto model = std::make_shared<const PathModel>(
      100, nlanr_base_model(), nlanr_variability_model(), pcfg,
      rng.fork("paths"));
  PathSampler paths(model);

  const auto log_path =
      std::filesystem::temp_directory_path() / "sc_synthetic_access.log";
  SyntheticLogConfig scfg;
  scfg.num_requests = 30000;
  scfg.num_servers = 100;
  util::Rng log_rng = rng.fork("log");
  const auto written = write_synthetic_log(log_path, paths, scfg, log_rng);
  EXPECT_EQ(written, 30000u);

  LogAnalyzer an;
  const auto extracted = an.add_file(log_path);
  std::filesystem::remove(log_path);
  // Only large misses survive: ~ miss_fraction * large_fraction.
  EXPECT_GT(extracted, 4000u);
  EXPECT_LT(extracted, 12000u);

  // Base model: heterogeneous (the NLANR signature) with substantial
  // sub-100KB/s mass.
  const auto base = an.base_model();
  EXPECT_GT(base.cov(), 0.5);
  EXPECT_GT(base.cdf(from_kb(100.0)), 0.3);

  // Ratio model: unit mean, CoV near the generating Fig-3 model's.
  const auto ratio = an.ratio_model();
  EXPECT_NEAR(ratio.mean(), 1.0, 1e-9);
  EXPECT_NEAR(ratio.cov(), nlanr_variability_model().cov(), 0.12);
}

TEST(LogPipeline, ConstantPathsYieldNarrowRatios) {
  util::Rng rng(33);
  PathModelConfig pcfg;
  pcfg.mode = VariationMode::kConstant;
  const auto model = std::make_shared<const PathModel>(
      50, nlanr_base_model(), constant_variability_model(), pcfg,
      rng.fork("paths"));
  PathSampler paths(model);
  const auto log_path =
      std::filesystem::temp_directory_path() / "sc_const_access.log";
  SyntheticLogConfig scfg;
  scfg.num_requests = 15000;
  scfg.num_servers = 50;
  util::Rng log_rng = rng.fork("log");
  write_synthetic_log(log_path, paths, scfg, log_rng);

  LogAnalyzer an;
  an.add_file(log_path);
  std::filesystem::remove(log_path);
  // With constant per-path bandwidth every sample equals its server mean.
  EXPECT_LT(an.ratio_model().cov(), 0.05);
}

TEST(LogAnalyzer, AddFileMissing) {
  LogAnalyzer an;
  EXPECT_THROW(an.add_file("/nonexistent/access.log"), std::runtime_error);
}

}  // namespace
}  // namespace sc::net
