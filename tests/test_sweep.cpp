// The sweep execution engine's core guarantee: thread count and
// scheduling order never change any metric. A parallel sweep must be
// bit-identical to the serial path, and a sweep cell must be
// bit-identical to a standalone run_experiment of the same
// configuration (the shared workloads are exactly the ones each cell
// would have generated itself).

#include "core/sweep.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/registry.h"
#include "util/spec.h"
#include "workload/trace.h"

namespace sc::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 200;
  cfg.workload.trace.num_requests = 4000;
  cfg.runs = 3;
  cfg.base_seed = 101;
  return cfg;
}

std::vector<SweepCell> fig5_shaped_cells() {
  // A miniature Fig-5 grid: 3 policies x 2 cache fractions.
  std::vector<SweepCell> cells;
  for (const char* policy : {"if", "pb", "ib"}) {
    for (const double fraction : {0.01, 0.05}) {
      cells.push_back(SweepCell{policy, -1.0, fraction, {}, {}, {}});
    }
  }
  return cells;
}

void expect_bit_identical(const AveragedMetrics& a, const AveragedMetrics& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.traffic_reduction, b.traffic_reduction);
  EXPECT_EQ(a.traffic_reduction_sd, b.traffic_reduction_sd);
  EXPECT_EQ(a.delay_s, b.delay_s);
  EXPECT_EQ(a.delay_s_sd, b.delay_s_sd);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.quality_sd, b.quality_sd);
  EXPECT_EQ(a.added_value, b.added_value);
  EXPECT_EQ(a.added_value_sd, b.added_value_sd);
  EXPECT_EQ(a.hit_ratio, b.hit_ratio);
  EXPECT_EQ(a.immediate_ratio, b.immediate_ratio);
  EXPECT_EQ(a.fill_bytes, b.fill_bytes);
  EXPECT_EQ(a.occupancy_bytes, b.occupancy_bytes);
}

TEST(SweepRunner, ParallelBitIdenticalToSerial) {
  const auto cells = fig5_shaped_cells();
  const auto scenario = constant_scenario();

  ExperimentConfig serial_cfg = small_config();
  serial_cfg.threads = 1;
  const auto serial = SweepRunner(serial_cfg, scenario).run(cells);

  ExperimentConfig parallel_cfg = small_config();
  parallel_cfg.threads = 8;
  const auto parallel = SweepRunner(parallel_cfg, scenario).run(cells);

  ExperimentConfig off_cfg = small_config();
  off_cfg.parallel = false;
  const auto off = SweepRunner(off_cfg, scenario).run(cells);

  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_bit_identical(serial[i], parallel[i]);
    expect_bit_identical(serial[i], off[i]);
  }
}

TEST(SweepRunner, CellMatchesStandaloneRunExperiment) {
  const auto scenario = constant_scenario();
  ExperimentConfig cfg = small_config();

  SweepCell cell;
  cell.policy = "pb";
  cell.cache_fraction = 0.05;
  const auto swept = SweepRunner(cfg, scenario).run({cell}).front();

  cfg.sim.policy = "pb";
  cfg.sim.cache_capacity_bytes =
      capacity_for_fraction(cfg.workload.catalog, 0.05);
  const auto standalone = run_experiment(cfg, scenario);
  expect_bit_identical(swept, standalone);
}

TEST(SweepRunner, CellsInheritBaseDefaults) {
  const auto scenario = constant_scenario();
  ExperimentConfig cfg = small_config();
  cfg.sim.policy = "ib";
  cfg.sim.cache_capacity_bytes =
      capacity_for_fraction(cfg.workload.catalog, 0.02);
  // An all-default cell is exactly the base experiment.
  const auto inherited = SweepRunner(cfg, scenario).run({SweepCell{}}).front();
  const auto direct = run_experiment(cfg, scenario);
  expect_bit_identical(inherited, direct);
}

TEST(SweepRunner, SharedPathModelsBitIdenticalToPerCellConstruction) {
  // The tentpole guarantee of the PathModel split: one immutable model
  // per replication, shared by every cell, produces exactly the metrics
  // of per-simulation model construction (the model snapshots its
  // post-draw RNG state, so samplers continue the identical stream).
  const auto cells = fig5_shaped_cells();
  // Exercise the iid-ratio sampler path too, not just constant means.
  const auto scenario = measured_variability_scenario();

  ExperimentConfig shared_cfg = small_config();
  shared_cfg.share_path_models = true;
  SweepStats shared_stats;
  const auto shared =
      SweepRunner(shared_cfg, scenario).run(cells, &shared_stats);

  ExperimentConfig unshared_cfg = small_config();
  unshared_cfg.share_path_models = false;
  SweepStats unshared_stats;
  const auto unshared =
      SweepRunner(unshared_cfg, scenario).run(cells, &unshared_stats);

  ASSERT_EQ(shared.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_bit_identical(shared[i], unshared[i]);
  }
  // One model per replication when sharing, one per simulation when not.
  EXPECT_EQ(shared_stats.path_models_built, shared_cfg.runs);
  EXPECT_EQ(unshared_stats.path_models_built, cells.size() * shared_cfg.runs);
}

TEST(SweepRunner, StatsCountWorkloadsAndModels) {
  // A 2-alpha x 2-policy grid over 3 runs: 4 workloads per run share
  // nothing across alphas, but all 4 cells share one path model per run.
  std::vector<SweepCell> cells;
  for (const char* policy : {"pb", "ib"}) {
    for (const double alpha : {0.6, 1.1}) {
      cells.push_back(SweepCell{policy, alpha, 0.05, {}, {}, {}});
    }
  }
  SweepStats stats;
  const auto r =
      SweepRunner(small_config(), constant_scenario()).run(cells, &stats);
  ASSERT_EQ(r.size(), cells.size());
  EXPECT_EQ(stats.workloads_generated, 2u * 3u);  // alphas x runs
  EXPECT_EQ(stats.path_models_built, 3u);         // runs only
}

TEST(SweepRunner, AlphaCellsShareNothingAcrossDistinctAlphas) {
  // Different alphas are different workloads: metrics must differ.
  const auto scenario = constant_scenario();
  std::vector<SweepCell> cells;
  cells.push_back(SweepCell{"pb", 0.5, 0.05, {}, {}, {}});
  cells.push_back(SweepCell{"pb", 1.2, 0.05, {}, {}, {}});
  const auto r = SweepRunner(small_config(), scenario).run(cells);
  EXPECT_NE(r[0].traffic_reduction, r[1].traffic_reduction);
}

TEST(SweepRunner, TraceReplaySharesOneWorkloadAcrossEverything) {
  // The trace scenario replays one immutable workload for every cell,
  // alpha, and replication: zero workloads generated, alpha ignored,
  // cache fractions resolved against the replayed catalog's actual
  // size, and results bit-identical to simulating the in-memory
  // workload directly.
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 150;
  wcfg.trace.num_requests = 3000;
  util::Rng rng(77);
  const auto w = workload::generate_workload(wcfg, rng);
  const auto trace_path =
      std::filesystem::temp_directory_path() / "sc_sweep_replay.trace";
  workload::write_trace(w, trace_path);
  const auto scenario =
      registry::make_scenario("trace:file=" + trace_path.string());
  std::filesystem::remove(trace_path);
  ASSERT_NE(scenario.replay, nullptr);
  ASSERT_EQ(scenario.replay->requests.size(), w.requests.size());

  std::vector<SweepCell> cells;
  cells.push_back(SweepCell{"pb", -1.0, 0.05, {}, {}, {}});
  cells.push_back(SweepCell{"pb", 0.9, 0.05, {}, {}, {}});  // alpha is ignored
  cells.push_back(SweepCell{"ib", -1.0, 0.02, {}, {}, {}});
  SweepStats stats;
  const auto r = SweepRunner(small_config(), scenario).run(cells, &stats);
  ASSERT_EQ(r.size(), cells.size());
  EXPECT_EQ(stats.workloads_generated, 0u);
  EXPECT_EQ(stats.path_models_built, small_config().runs);
  // Replications replay the same requests; only bandwidth draws differ.
  expect_bit_identical(r[0], r[1]);

  // Bit-identity with simulating the in-memory workload directly: the
  // replay path adds no transformation beyond file round-tripping.
  ExperimentConfig direct_cfg = small_config();
  direct_cfg.sim.policy = "pb";
  direct_cfg.sim.cache_capacity_bytes =
      0.05 * scenario.replay->catalog.total_bytes();
  Scenario direct = constant_scenario();
  direct.replay = std::make_shared<const workload::Workload>(w);
  const auto direct_metrics = run_experiment(direct_cfg, direct);
  expect_bit_identical(r[0], direct_metrics);
}

TEST(SweepRunner, TraceScenarioSpecErrors) {
  EXPECT_THROW((void)registry::make_scenario("trace"), util::SpecError);
  EXPECT_THROW((void)registry::make_scenario("trace:bw=nlanr"),
               util::SpecError);
  EXPECT_THROW((void)registry::make_scenario(
                   "trace:file=/tmp/x.trace,frequency=2"),
               util::SpecError);
  // A trace replaying another trace as its bandwidth model is nonsense.
  const auto p = std::filesystem::temp_directory_path() / "sc_bw_self.trace";
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 3;
  wcfg.trace.num_requests = 5;
  util::Rng rng(1);
  workload::write_trace(workload::generate_workload(wcfg, rng), p);
  EXPECT_THROW((void)registry::make_scenario("trace:file=" + p.string() +
                                             ",bw=trace:file=" + p.string()),
               util::SpecError);
  std::filesystem::remove(p);
  // Missing file: a useful runtime error, not a crash.
  EXPECT_THROW(
      (void)registry::make_scenario("trace:file=/no/such/file.trace"),
      std::runtime_error);
}

TEST(SweepRunner, EmptyCellListYieldsEmptyResult) {
  EXPECT_TRUE(
      SweepRunner(small_config(), constant_scenario()).run({}).empty());
}

TEST(SweepRunner, RejectsZeroRuns) {
  ExperimentConfig cfg = small_config();
  cfg.runs = 0;
  EXPECT_THROW(SweepRunner(cfg, constant_scenario()),
               std::invalid_argument);
}

TEST(SweepRunner, BadPolicySpecFailsEagerly) {
  std::vector<SweepCell> cells;
  cells.push_back(SweepCell{"no-such-policy", -1.0, 0.05, {}, {}, {}});
  SweepRunner runner(small_config(), constant_scenario());
  EXPECT_THROW((void)runner.run(cells), util::SpecError);
}

TEST(RunExperiment, StillRejectsZeroRuns) {
  ExperimentConfig cfg = small_config();
  cfg.runs = 0;
  EXPECT_THROW((void)run_experiment(cfg, constant_scenario()),
               std::invalid_argument);
}

}  // namespace
}  // namespace sc::core
