#include "cache/min_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/rng.h"

namespace sc::cache {
namespace {

TEST(IndexedMinHeap, PushPopOrdersByKey) {
  IndexedMinHeap heap(10);
  heap.push(3, 5.0);
  heap.push(1, 2.0);
  heap.push(7, 9.0);
  heap.push(2, 1.0);
  EXPECT_EQ(heap.pop_min(), 2u);
  EXPECT_EQ(heap.pop_min(), 1u);
  EXPECT_EQ(heap.pop_min(), 3u);
  EXPECT_EQ(heap.pop_min(), 7u);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMinHeap, ContainsAndKey) {
  IndexedMinHeap heap(5);
  heap.push(0, 1.5);
  EXPECT_TRUE(heap.contains(0));
  EXPECT_FALSE(heap.contains(1));
  EXPECT_DOUBLE_EQ(heap.key(0), 1.5);
  EXPECT_THROW((void)heap.key(1), std::out_of_range);
}

TEST(IndexedMinHeap, UpdateBothDirections) {
  IndexedMinHeap heap(4);
  heap.push(0, 1.0);
  heap.push(1, 2.0);
  heap.push(2, 3.0);
  heap.update(2, 0.5);  // decrease: becomes min
  EXPECT_EQ(heap.min_id(), 2u);
  heap.update(2, 10.0);  // increase: back to the bottom
  EXPECT_EQ(heap.min_id(), 0u);
  EXPECT_TRUE(heap.check_invariants());
}

TEST(IndexedMinHeap, UpsertInsertsOrRekeys) {
  IndexedMinHeap heap(3);
  heap.upsert(1, 4.0);
  EXPECT_TRUE(heap.contains(1));
  heap.upsert(1, 1.0);
  EXPECT_DOUBLE_EQ(heap.key(1), 1.0);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedMinHeap, RemoveArbitrary) {
  IndexedMinHeap heap(6);
  for (std::size_t i = 0; i < 6; ++i) {
    heap.push(i, static_cast<double>(i));
  }
  heap.remove(3);
  EXPECT_FALSE(heap.contains(3));
  EXPECT_EQ(heap.size(), 5u);
  EXPECT_TRUE(heap.check_invariants());
  // The remaining ids pop in order, skipping 3.
  const std::vector<std::size_t> expected = {0, 1, 2, 4, 5};
  for (const std::size_t id : expected) {
    EXPECT_EQ(heap.pop_min(), id);
  }
}

TEST(IndexedMinHeap, DuplicateAndAbsentOperationsThrow) {
  IndexedMinHeap heap(3);
  heap.push(0, 1.0);
  EXPECT_THROW(heap.push(0, 2.0), std::logic_error);
  EXPECT_THROW(heap.update(1, 2.0), std::out_of_range);
  EXPECT_THROW(heap.remove(1), std::out_of_range);
  IndexedMinHeap empty(1);
  EXPECT_THROW((void)empty.min_id(), std::out_of_range);
  EXPECT_THROW((void)empty.min_key(), std::out_of_range);
  EXPECT_THROW((void)empty.pop_min(), std::out_of_range);
}

TEST(IndexedMinHeap, ClearEmptiesAndStaysUsable) {
  IndexedMinHeap heap(8);
  for (std::size_t i = 0; i < 8; ++i) heap.push(i, static_cast<double>(i));
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(heap.contains(i));
  EXPECT_TRUE(heap.check_invariants());
  // Ids are reusable immediately after clear().
  heap.push(3, 2.0);
  heap.push(5, 1.0);
  EXPECT_EQ(heap.pop_min(), 5u);
  EXPECT_EQ(heap.pop_min(), 3u);
  // Clearing an empty heap is a no-op.
  heap.clear();
  EXPECT_TRUE(heap.check_invariants());
}

TEST(IndexedMinHeap, EqualKeysAllPop) {
  IndexedMinHeap heap(4);
  for (std::size_t i = 0; i < 4; ++i) heap.push(i, 1.0);
  std::vector<std::size_t> popped;
  while (!heap.empty()) popped.push_back(heap.pop_min());
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(popped, (std::vector<std::size_t>{0, 1, 2, 3}));
}

/// Property test: random push/update/remove/pop against a reference
/// multimap, checking invariants throughout.
class HeapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapFuzz, AgreesWithReferenceModel) {
  util::Rng rng(GetParam());
  constexpr std::size_t kIds = 200;
  IndexedMinHeap heap(kIds);
  std::map<std::size_t, double> model;  // id -> key

  auto model_min = [&]() {
    std::size_t best_id = 0;
    double best = 1e300;
    for (const auto& [id, key] : model) {
      if (key < best) {
        best = key;
        best_id = id;
      }
    }
    return std::pair{best_id, best};
  };

  for (int step = 0; step < 3000; ++step) {
    const std::size_t id = rng.uniform_int(0, kIds - 1);
    switch (rng.uniform_int(0, 3)) {
      case 0:  // upsert
      {
        const double key = rng.uniform();
        heap.upsert(id, key);
        model[id] = key;
        break;
      }
      case 1:  // remove if present
        if (model.count(id)) {
          heap.remove(id);
          model.erase(id);
        }
        break;
      case 2:  // pop-min
        if (!model.empty()) {
          const auto [mid, mkey] = model_min();
          EXPECT_DOUBLE_EQ(heap.min_key(), mkey);
          const std::size_t popped = heap.pop_min();
          // Ties may pop any id with the min key.
          EXPECT_DOUBLE_EQ(model.at(popped), mkey);
          model.erase(popped);
          (void)mid;
        }
        break;
      case 3: {  // membership agreement
        EXPECT_EQ(heap.contains(id), model.count(id) > 0);
        break;
      }
    }
    ASSERT_EQ(heap.size(), model.size());
    if (step % 500 == 0) {
      ASSERT_TRUE(heap.check_invariants());
    }
  }
  EXPECT_TRUE(heap.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace sc::cache
