// The fault-injection layer (net/fault.h): spec parsing with
// did-you-mean diagnostics, schedule determinism, the inertness
// guarantee (an empty plan is field-identical to no plan at every
// thread count and on both engines), and the chaos invariants the soak
// harness relies on (denied accounting, occupancy bounds, recovery).

#include "net/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/builder.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "util/spec.h"

namespace sc {
namespace {

using net::FaultPlan;
using net::FaultSchedule;
using net::FaultWindow;

// ---------------------------------------------------------------- parsing

TEST(FaultPlan, EmptySpellingsAllYieldTheEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("none").empty());
  EXPECT_TRUE(FaultPlan::parse("fault").empty());
  EXPECT_EQ(FaultPlan::parse("").to_string(), "none");
}

TEST(FaultPlan, BuilderValidatesAndWiresTheSpec) {
  core::ExperimentBuilder builder;
  builder.fault("fault:outage=120+60");
  EXPECT_EQ(builder.config().sim.fault.outages().size(), 1u);
  builder.fault("none");
  EXPECT_TRUE(builder.config().sim.fault.empty());
  EXPECT_THROW((void)core::ExperimentBuilder().fault("fault:outge=1+1"),
               util::SpecError);
}

TEST(FaultPlan, ParsesEveryFamilyAndRoundTrips) {
  const std::string spec =
      "fault:outage=120+60/500+30,degrade=300+120x0.25@3,"
      "blackout=150+90,flap=600+300@20";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.outages().size(), 2u);
  EXPECT_EQ(plan.outages()[0].start_s, 120.0);
  EXPECT_EQ(plan.outages()[0].duration_s, 60.0);
  EXPECT_EQ(plan.outages()[1].start_s, 500.0);
  ASSERT_EQ(plan.degrades().size(), 1u);
  EXPECT_EQ(plan.degrades()[0].scale, 0.25);
  EXPECT_EQ(plan.degrades()[0].path, 3u);
  ASSERT_EQ(plan.blackouts().size(), 1u);
  ASSERT_EQ(plan.flaps().size(), 1u);
  EXPECT_EQ(plan.flaps()[0].period_s, 20.0);
  // to_string is canonical: parsing it reproduces the plan.
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());
  ASSERT_EQ(again.outages().size(), 2u);
  EXPECT_EQ(again.degrades()[0].scale, 0.25);
}

TEST(FaultPlan, DegradeWithoutPathAffectsAllPaths) {
  const FaultPlan plan = FaultPlan::parse("fault:degrade=10+5x0.5");
  ASSERT_EQ(plan.degrades().size(), 1u);
  EXPECT_EQ(plan.degrades()[0].path, FaultWindow::kAllPaths);
}

TEST(FaultPlan, UnknownNameSuggestsClosest) {
  try {
    (void)FaultPlan::parse("fautl:outage=1+1");
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean \"fault\""),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultPlan, UnknownParameterSuggestsClosest) {
  try {
    (void)FaultPlan::parse("fault:outge=1+1");
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown parameter"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean \"outage\""), std::string::npos) << msg;
  }
}

TEST(FaultPlan, RejectsMalformedWindows) {
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=120"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=120+0"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=-5+10"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=a+b"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=1+2x0.5"),
               util::SpecError);  // outage takes no scale suffix
  EXPECT_THROW((void)FaultPlan::parse("fault:degrade=1+2"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:degrade=1+2x0"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:degrade=1+2x1"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:degrade=1+2x0.5@-1"),
               util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:flap=1+2"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:flap=1+2@0"), util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("none:outage=1+1"), util::SpecError);
}

// ------------------------------------------------------------ fleet scope

TEST(FaultPlan, ParsesScopeSuffixesAndRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "fault:outage=10+5@region2/20+5@p1,degrade=0+9x0.5@3@r0,"
      "flap=0+100@20@proxy4");
  ASSERT_EQ(plan.outages().size(), 2u);
  EXPECT_EQ(plan.outages()[0].scope, FaultWindow::Scope::kRegion);
  EXPECT_EQ(plan.outages()[0].scope_id, 2u);
  EXPECT_EQ(plan.outages()[1].scope, FaultWindow::Scope::kProxy);
  EXPECT_EQ(plan.outages()[1].scope_id, 1u);
  ASSERT_EQ(plan.degrades().size(), 1u);
  EXPECT_EQ(plan.degrades()[0].path, 3u);
  EXPECT_EQ(plan.degrades()[0].scope, FaultWindow::Scope::kRegion);
  EXPECT_EQ(plan.degrades()[0].scope_id, 0u);
  ASSERT_EQ(plan.flaps().size(), 1u);
  EXPECT_EQ(plan.flaps()[0].scope, FaultWindow::Scope::kProxy);
  EXPECT_EQ(plan.flaps()[0].scope_id, 4u);
  // Canonical form round-trips the scopes.
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());
  EXPECT_EQ(again.outages()[0].scope, FaultWindow::Scope::kRegion);
  EXPECT_EQ(again.flaps()[0].scope_id, 4u);
}

TEST(FaultPlan, RejectsMalformedScopes) {
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=1+2@x3"),
               util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=1+2@r"),
               util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=1+2@r-1"),
               util::SpecError);
  EXPECT_THROW((void)FaultPlan::parse("fault:outage=1+2@r1.5"),
               util::SpecError);
}

TEST(FaultPlan, ScopedToFiltersByProxyAndRegion) {
  const FaultPlan plan = FaultPlan::parse(
      "fault:outage=10+5@r0/10+5@p3/10+5,blackout=0+4@r1");
  const net::FaultScope region0{3, 0};   // proxy 3 sits in region 0
  const net::FaultScope region1{0, 1};   // proxy 0 sits in region 1
  const FaultPlan for_r0 = plan.scoped_to(region0);
  // Region-0 windows, the proxy-3 window, and the global window apply.
  EXPECT_EQ(for_r0.outages().size(), 3u);
  EXPECT_TRUE(for_r0.blackouts().empty());
  const FaultPlan for_r1 = plan.scoped_to(region1);
  // Only the global outage and the region-1 blackout apply.
  EXPECT_EQ(for_r1.outages().size(), 1u);
  EXPECT_EQ(for_r1.blackouts().size(), 1u);
}

TEST(FaultSchedule, StandaloneCompileIgnoresScopedWindows) {
  // The default FaultScope (standalone: no proxy, no region) matches
  // only global windows, so scoped plans stay inert in the single-cell
  // simulator and the daemon without any call-site changes.
  FaultSchedule s;
  s.compile(FaultPlan::parse("fault:outage=0+1000@r0"), 4, 7);
  EXPECT_FALSE(s.origin_down(0, 500.0));
  FaultSchedule scoped;
  scoped.compile(FaultPlan::parse("fault:outage=0+1000@r0"), 4, 7,
                 net::FaultScope{0, 0});
  EXPECT_TRUE(scoped.origin_down(0, 500.0));
}

// --------------------------------------------------------------- schedule

TEST(FaultSchedule, OutageWindowsCutEveryPath) {
  FaultSchedule s;
  s.compile(FaultPlan::parse("fault:outage=100+50"), 8, 7);
  EXPECT_FALSE(s.origin_down(0, 99.0));
  EXPECT_TRUE(s.origin_down(0, 100.0));
  EXPECT_TRUE(s.origin_down(7, 149.0));
  EXPECT_FALSE(s.origin_down(7, 150.0));
  EXPECT_EQ(s.bandwidth_scale(3, 120.0), 0.0);
  EXPECT_EQ(s.bandwidth_scale(3, 99.0), 1.0);
  EXPECT_EQ(s.next_all_clear(120.0), 150.0);
  EXPECT_EQ(s.next_all_clear(151.0), 151.0);
}

TEST(FaultSchedule, OverlappingDegradesMultiplyAndRespectPath) {
  FaultSchedule s;
  s.compile(FaultPlan::parse("fault:degrade=0+100x0.5/0+100x0.5@2"), 4, 7);
  EXPECT_EQ(s.bandwidth_scale(0, 50.0), 0.5);   // all-path window only
  EXPECT_EQ(s.bandwidth_scale(2, 50.0), 0.25);  // both windows stack
  EXPECT_EQ(s.bandwidth_scale(0, 150.0), 1.0);  // outside every window
}

TEST(FaultSchedule, BlackoutIsIndependentOfOutage) {
  FaultSchedule s;
  s.compile(FaultPlan::parse("fault:blackout=10+10"), 2, 7);
  EXPECT_TRUE(s.blackout(15.0));
  EXPECT_FALSE(s.blackout(25.0));
  EXPECT_FALSE(s.origin_down(0, 15.0));
}

TEST(FaultSchedule, FlapIsDeterministicPerSeedAndDesynchronizedAcrossPaths) {
  const FaultPlan plan = FaultPlan::parse("fault:flap=0+1000@20");
  FaultSchedule a, b, c;
  a.compile(plan, 32, 1234);
  b.compile(plan, 32, 1234);
  c.compile(plan, 32, 99);
  bool any_seed_difference = false;
  bool any_path_difference = false;
  for (std::uint32_t p = 0; p < 32; ++p) {
    for (double t = 0.5; t < 1000.0; t += 7.0) {
      // Same (plan, seed, path, t) -> same answer, always.
      ASSERT_EQ(a.origin_down(p, t), b.origin_down(p, t));
      if (a.origin_down(p, t) != c.origin_down(p, t)) {
        any_seed_difference = true;
      }
      if (p > 0 && a.origin_down(p, t) != a.origin_down(0, t)) {
        any_path_difference = true;
      }
    }
    // 50% duty cycle: the path is down about half the window.
    std::size_t down = 0, total = 0;
    for (double t = 0.5; t < 1000.0; t += 0.5) {
      down += a.origin_down(p, t) ? 1 : 0;
      ++total;
    }
    const double duty = static_cast<double>(down) / static_cast<double>(total);
    EXPECT_NEAR(duty, 0.5, 0.05) << "path " << p;
  }
  EXPECT_TRUE(any_seed_difference);
  EXPECT_TRUE(any_path_difference);
}

// ----------------------------------------------------- simulator semantics

core::ExperimentConfig chaos_config() {
  core::ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 200;
  cfg.workload.trace.num_requests = 4000;
  cfg.runs = 2;
  cfg.base_seed = 101;
  cfg.sim.policy = "pb";
  cfg.sim.cache_capacity_bytes =
      core::capacity_for_fraction(cfg.workload.catalog, 0.05);
  return cfg;
}

// ~4000 requests at 0.15/s span ~26k simulated seconds; this window
// sits squarely inside the measured second half.
constexpr const char* kMeasuredOutage = "fault:outage=15000+5000";

void expect_field_identical(const core::AveragedMetrics& a,
                            const core::AveragedMetrics& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.traffic_reduction, b.traffic_reduction);
  EXPECT_EQ(a.traffic_reduction_sd, b.traffic_reduction_sd);
  EXPECT_EQ(a.delay_s, b.delay_s);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.added_value, b.added_value);
  EXPECT_EQ(a.hit_ratio, b.hit_ratio);
  EXPECT_EQ(a.immediate_ratio, b.immediate_ratio);
  EXPECT_EQ(a.fill_bytes, b.fill_bytes);
  EXPECT_EQ(a.occupancy_bytes, b.occupancy_bytes);
  EXPECT_EQ(a.denied_requests, b.denied_requests);
  EXPECT_EQ(a.denied_bytes, b.denied_bytes);
}

TEST(FaultSimulation, EmptyPlanIsFieldIdenticalToNoPlan) {
  const auto scenario = core::constant_scenario();
  const auto base = core::run_experiment(chaos_config(), scenario);

  for (const char* spelling : {"", "none", "fault"}) {
    core::ExperimentConfig cfg = chaos_config();
    cfg.sim.fault = net::FaultPlan::parse(spelling);
    const auto with_plan = core::run_experiment(cfg, scenario);
    expect_field_identical(base, with_plan);
    EXPECT_EQ(with_plan.denied_requests, 0.0);
    EXPECT_EQ(with_plan.denied_bytes, 0.0);
  }
}

TEST(FaultSimulation, OutageDeniesRequestsAndKeepsOccupancyBounded) {
  const auto scenario = core::constant_scenario();
  core::ExperimentConfig cfg = chaos_config();
  cfg.sim.fault = net::FaultPlan::parse(kMeasuredOutage);
  const auto faulted = core::run_experiment(cfg, scenario);
  const auto clean = core::run_experiment(chaos_config(), scenario);

  EXPECT_GT(faulted.denied_requests, 0.0);
  EXPECT_GT(faulted.denied_bytes, 0.0);
  EXPECT_LE(faulted.occupancy_bytes, cfg.sim.cache_capacity_bytes);
  // Denied bytes never crossed the backbone: the faulted run ships
  // strictly less origin traffic than the clean run.
  EXPECT_LT(faulted.traffic_reduction, 1.0);
  EXPECT_EQ(clean.denied_requests, 0.0);
}

TEST(FaultSimulation, ResultsIdenticalAcrossThreadCounts) {
  const auto scenario = core::constant_scenario();
  std::vector<core::SweepCell> cells;
  cells.push_back(core::SweepCell{"pb", -1.0, 0.05, {}, kMeasuredOutage, {}});
  cells.push_back(
      core::SweepCell{"if", -1.0, 0.05, {},
                      "fault:degrade=14000+6000x0.3", {}});
  cells.push_back(core::SweepCell{"pb", -1.0, 0.02, {}, {}, {}});

  core::ExperimentConfig serial = chaos_config();
  serial.threads = 1;
  core::ExperimentConfig parallel = chaos_config();
  parallel.threads = 4;
  const auto a = core::SweepRunner(serial, scenario).run(cells);
  const auto b = core::SweepRunner(parallel, scenario).run(cells);
  ASSERT_EQ(a.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_field_identical(a[i], b[i]);
  }
  EXPECT_GT(a[0].denied_requests, 0.0);
  EXPECT_EQ(a[2].denied_requests, 0.0);
}

TEST(FaultSimulation, MonoAndFallbackEnginesAgreeUnderFaults) {
  const auto scenario = core::constant_scenario();
  for (const char* plan :
       {kMeasuredOutage, "fault:degrade=14000+8000x0.25",
        "fault:flap=14000+8000@120", "fault:blackout=14000+8000"}) {
    core::ExperimentConfig mono = chaos_config();
    mono.sim.estimator = "ewma";  // exercise the observation path too
    mono.sim.fault = net::FaultPlan::parse(plan);
    core::ExperimentConfig fallback = mono;
    fallback.sim.monomorphize = false;
    const auto a = core::run_experiment(mono, scenario);
    const auto b = core::run_experiment(fallback, scenario);
    expect_field_identical(a, b);
  }
}

TEST(FaultSimulation, BlackoutStarvesPassiveEstimatorsOnly) {
  const auto scenario = core::constant_scenario();
  // Blanket blackout: a passive (ewma) estimator never sees a single
  // completion observation, so its beliefs — and the delay/quality
  // metrics they drive — change; the oracle ignores observations and
  // must be untouched.
  core::ExperimentConfig ewma_clean = chaos_config();
  ewma_clean.sim.estimator = "ewma";
  core::ExperimentConfig ewma_dark = ewma_clean;
  ewma_dark.sim.fault = net::FaultPlan::parse("fault:blackout=0+1000000");

  const auto clean = core::run_experiment(ewma_clean, scenario);
  const auto dark = core::run_experiment(ewma_dark, scenario);
  EXPECT_NE(clean.delay_s, dark.delay_s);
  EXPECT_EQ(dark.denied_requests, 0.0);  // data plane untouched

  core::ExperimentConfig oracle_clean = chaos_config();
  core::ExperimentConfig oracle_dark = oracle_clean;
  oracle_dark.sim.fault = net::FaultPlan::parse("fault:blackout=0+1000000");
  expect_field_identical(core::run_experiment(oracle_clean, scenario),
                         core::run_experiment(oracle_dark, scenario));
}

TEST(FaultSimulation, RecoveryRestoresServiceAfterTheWindow) {
  // Outage covering only the first part of the measured half: requests
  // after next_all_clear() must again be served with origin help (no
  // sticky failure state). A full-trace outage denies strictly more.
  const auto scenario = core::constant_scenario();
  core::ExperimentConfig partial = chaos_config();
  partial.sim.fault = net::FaultPlan::parse("fault:outage=14000+3000");
  core::ExperimentConfig full = chaos_config();
  full.sim.fault = net::FaultPlan::parse("fault:outage=13000+1000000");
  const auto p = core::run_experiment(partial, scenario);
  const auto f = core::run_experiment(full, scenario);
  EXPECT_GT(p.denied_requests, 0.0);
  EXPECT_GT(f.denied_requests, 4.0 * p.denied_requests);
  // After recovery the cache keeps admitting: fills happened.
  EXPECT_GT(p.fill_bytes, 0.0);
}

TEST(FaultSimulation, SweepCellFaultOverridesBase) {
  const auto scenario = core::constant_scenario();
  core::ExperimentConfig cfg = chaos_config();
  core::SweepCell faulted;
  faulted.fault = kMeasuredOutage;
  core::SweepCell clean;
  const auto res =
      core::SweepRunner(cfg, scenario).run({faulted, clean});
  EXPECT_GT(res[0].denied_requests, 0.0);
  EXPECT_EQ(res[1].denied_requests, 0.0);
  // A bad cell spec fails eagerly, before any simulation runs.
  core::SweepCell bad;
  bad.fault = "fault:outge=1+1";
  EXPECT_THROW((void)core::SweepRunner(cfg, scenario).run({bad}),
               util::SpecError);
}

}  // namespace
}  // namespace sc
