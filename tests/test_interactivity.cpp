// Client session dynamics (sim/interactivity.h): spec parsing, the
// built-in empirical session-length model, truncation semantics in the
// request loop, and the hard "full == pre-session-dynamics simulator"
// regression contract.

#include "sim/interactivity.h"

#include <gtest/gtest.h>

#include <string>

#include "core/builder.h"
#include "core/experiment.h"
#include "core/registry.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace sc::sim {
namespace {

TEST(InteractivitySpec, ParsesEveryMode) {
  EXPECT_EQ(InteractivityConfig::parse("full").mode, InteractivityMode::kFull);
  EXPECT_FALSE(InteractivityConfig::parse("full").enabled());

  const auto exp = InteractivityConfig::parse("exp:mean=600");
  EXPECT_EQ(exp.mode, InteractivityMode::kExponential);
  EXPECT_DOUBLE_EQ(exp.mean_s, 600.0);
  EXPECT_TRUE(exp.enabled());
  // Alias + default mean.
  EXPECT_EQ(InteractivityConfig::parse("exponential").mode,
            InteractivityMode::kExponential);
  EXPECT_DOUBLE_EQ(InteractivityConfig::parse("exp").mean_s, 1800.0);

  EXPECT_EQ(InteractivityConfig::parse("empirical").mode,
            InteractivityMode::kEmpirical);
  EXPECT_EQ(InteractivityConfig::parse("trace").mode,
            InteractivityMode::kTrace);
}

TEST(InteractivitySpec, RoundTripsThroughToString) {
  for (const std::string spec :
       {"full", "exp:mean=600", "empirical", "trace"}) {
    const auto parsed = InteractivityConfig::parse(spec);
    EXPECT_EQ(InteractivityConfig::parse(parsed.to_string()).mode,
              parsed.mode)
        << spec;
  }
}

TEST(InteractivitySpec, RejectsBadSpecs) {
  EXPECT_THROW((void)InteractivityConfig::parse("sessions"),
               util::SpecError);
  EXPECT_THROW((void)InteractivityConfig::parse("exp:mean=0"),
               util::SpecError);
  EXPECT_THROW((void)InteractivityConfig::parse("exp:mean=-5"),
               util::SpecError);
  EXPECT_THROW((void)InteractivityConfig::parse("full:mean=3"),
               util::SpecError);
  EXPECT_THROW((void)InteractivityConfig::parse("exp:rate=2"),
               util::SpecError);
  // Did-you-mean on a near miss.
  try {
    (void)InteractivityConfig::parse("empiricall");
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("empirical"), std::string::npos);
  }
}

TEST(EmpiricalModel, InverseCdfIsMonotoneAndBounded) {
  double prev = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double f = empirical_viewed_fraction(i / 100.0);
    EXPECT_GE(f, prev);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  // The published shape: about half of the sessions end within the
  // first tenth of the object, and the top of the CDF watches through.
  EXPECT_LE(empirical_viewed_fraction(0.5), 0.10 + 1e-12);
  EXPECT_DOUBLE_EQ(empirical_viewed_fraction(1.0), 1.0);
}

TEST(SampleViewedFraction, ModeSemantics) {
  util::Rng rng(11);
  const InteractivityConfig full;  // default == full
  EXPECT_DOUBLE_EQ(
      sample_viewed_fraction(full, 600.0, workload::kFullSession, rng), 1.0);

  InteractivityConfig trace;
  trace.mode = InteractivityMode::kTrace;
  // Recorded durations replay; missing recordings mean full sessions.
  EXPECT_DOUBLE_EQ(sample_viewed_fraction(trace, 600.0, 150.0, rng), 0.25);
  EXPECT_DOUBLE_EQ(sample_viewed_fraction(trace, 600.0, 9000.0, rng), 1.0);
  EXPECT_DOUBLE_EQ(
      sample_viewed_fraction(trace, 600.0, workload::kFullSession, rng), 1.0);

  InteractivityConfig exp;
  exp.mode = InteractivityMode::kExponential;
  exp.mean_s = 300.0;
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double f =
        sample_viewed_fraction(exp, 1e9, workload::kFullSession, rng);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    acc += f * 1e9;  // viewing seconds (duration huge => never capped)
  }
  EXPECT_NEAR(acc / n, 300.0, 10.0);
}

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 100;
  cfg.workload.trace.num_requests = 2500;
  cfg.runs = 2;
  cfg.base_seed = 5;
  cfg.sim.cache_capacity_bytes =
      core::capacity_for_fraction(cfg.workload.catalog, 0.05);
  return cfg;
}

TEST(SessionDynamics, FullModeIsFieldIdenticalToDefaultConfig) {
  // The oracle contract: an explicit "full" interactivity config must be
  // indistinguishable from a config that never mentions interactivity,
  // under bandwidth variability, viewing, and patching.
  const auto scenario = core::measured_variability_scenario();
  core::ExperimentConfig a = tiny_config();
  a.sim.viewing.enabled = true;
  a.sim.patching.enabled = true;
  core::ExperimentConfig b = a;
  b.sim.interactivity = sim::InteractivityConfig::parse("full");

  const auto ma = core::run_experiment(a, scenario);
  const auto mb = core::run_experiment(b, scenario);
  EXPECT_EQ(ma.traffic_reduction, mb.traffic_reduction);
  EXPECT_EQ(ma.delay_s, mb.delay_s);
  EXPECT_EQ(ma.quality, mb.quality);
  EXPECT_EQ(ma.added_value, mb.added_value);
  EXPECT_EQ(ma.hit_ratio, mb.hit_ratio);
  EXPECT_EQ(ma.immediate_ratio, mb.immediate_ratio);
  EXPECT_EQ(ma.fill_bytes, mb.fill_bytes);
  EXPECT_EQ(ma.occupancy_bytes, mb.occupancy_bytes);
}

SimulationResult run_one(const std::string& interactivity,
                         const workload::Workload& w, bool patching = false) {
  const auto scenario = core::constant_scenario();
  SimulationConfig cfg;
  cfg.cache_capacity_bytes =
      core::capacity_for_fraction(workload::CatalogConfig{}, 0.001);
  cfg.policy = "pb";
  cfg.seed = 77;
  cfg.patching.enabled = patching;
  cfg.interactivity = InteractivityConfig::parse(interactivity);
  return Simulator(w, scenario.base, scenario.ratio, cfg).run();
}

TEST(SessionDynamics, TruncationShrinksByteDemandAndIsAccounted) {
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 150;
  wcfg.trace.num_requests = 4000;
  util::Rng rng(3);
  const auto w = workload::generate_workload(wcfg, rng);

  const auto full = run_one("full", w);
  const auto partial = run_one("empirical", w);

  // Full sessions: no truncation recorded, fraction 1.
  EXPECT_DOUBLE_EQ(full.metrics.truncated_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(full.metrics.average_viewed_fraction(), 1.0);

  // Partial sessions: most clients leave early, so far fewer origin
  // bytes ship, and the session stats say so.
  EXPECT_GT(partial.metrics.truncated_ratio(), 0.5);
  EXPECT_LT(partial.metrics.average_viewed_fraction(), 0.6);
  EXPECT_LT(partial.metrics.bytes_from_origin(),
            0.6 * full.metrics.bytes_from_origin());
  // Startup metrics are re-derived over the viewed prefix: watching
  // less can only shrink the prefetch deficit.
  EXPECT_LE(partial.metrics.average_delay_s(),
            full.metrics.average_delay_s());
  EXPECT_GE(partial.metrics.average_quality(),
            full.metrics.average_quality());
}

TEST(SessionDynamics, TraceModeReplaysRecordedDurations) {
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 80;
  wcfg.trace.num_requests = 2000;
  util::Rng rng(4);
  auto w = workload::generate_workload(wcfg, rng);

  // Without recordings, "trace" interactivity degenerates to full.
  const auto full = run_one("full", w);
  const auto unrecorded = run_one("trace", w);
  EXPECT_EQ(unrecorded.metrics.bytes_from_origin(),
            full.metrics.bytes_from_origin());
  EXPECT_DOUBLE_EQ(unrecorded.metrics.truncated_ratio(), 0.0);

  // Record ten-second sessions everywhere: almost nothing ships.
  for (auto& r : w.requests) r.view_s = 10.0;
  const auto recorded = run_one("trace", w);
  EXPECT_GT(recorded.metrics.truncated_ratio(), 0.99);
  EXPECT_LT(recorded.metrics.bytes_from_origin(),
            0.02 * full.metrics.bytes_from_origin());
}

TEST(SessionDynamics, PatchingSharesOnlyTheTruncatedStream) {
  // With patching on, an early-departing originator stops its shared
  // stream at departure; followers can only share what is still being
  // transmitted. The run must stay well-formed (shared <= origin bytes
  // saved) and truncated flights must shrink sharing vs full sessions.
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 40;  // hot catalog => real stream overlap
  wcfg.trace.num_requests = 4000;
  wcfg.trace.arrival_rate_per_s = 2.0;
  util::Rng rng(6);
  auto w = workload::generate_workload(wcfg, rng);

  const auto full = run_one("full", w, /*patching=*/true);
  ASSERT_GT(full.metrics.bytes_shared(), 0.0);

  for (auto& r : w.requests) r.view_s = 30.0;
  const auto truncated = run_one("trace", w, /*patching=*/true);
  EXPECT_LT(truncated.metrics.bytes_shared(), full.metrics.bytes_shared());
}

TEST(SessionDynamics, RejectsCombiningLegacyViewingWithInteractivity) {
  // Both are session-length models; composing them would double-count
  // (the legacy block rescales from the full object size). "full"
  // interactivity + viewing stays allowed — that is the pre-PR setup.
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 20;
  wcfg.trace.num_requests = 200;
  util::Rng rng(8);
  const auto w = workload::generate_workload(wcfg, rng);
  const auto scenario = core::constant_scenario();
  SimulationConfig cfg;
  cfg.cache_capacity_bytes = 1e9;
  cfg.viewing.enabled = true;
  cfg.interactivity = InteractivityConfig::parse("empirical");
  EXPECT_THROW(Simulator(w, scenario.base, scenario.ratio, cfg),
               std::invalid_argument);
  cfg.interactivity = InteractivityConfig::parse("full");
  EXPECT_NO_THROW(Simulator(w, scenario.base, scenario.ratio, cfg));
}

TEST(SessionDynamics, BuilderAndRegistryWireTheSpec) {
  // End-to-end through the fluent builder (the path every example and
  // bench CLI uses).
  const auto metrics = core::ExperimentBuilder()
                           .policy("pb")
                           .scenario("constant")
                           .objects(100)
                           .requests(2000)
                           .runs(2)
                           .cache_fraction(0.05)
                           .interactivity("exp:mean=300")
                           .run();
  EXPECT_EQ(metrics.runs, 2u);
  EXPECT_THROW((void)core::ExperimentBuilder().interactivity("bogus"),
               util::SpecError);
}

}  // namespace
}  // namespace sc::sim
