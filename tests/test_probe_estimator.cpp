#include <gtest/gtest.h>

#include "net/bandwidth_model.h"
#include "net/estimator.h"
#include "net/probe.h"
#include "net/variability.h"
#include "stats/summary.h"

namespace sc::net {
namespace {

TEST(TcpModel, ThroughputInverseOfLoss) {
  // bw = MSS / (RTT * sqrt(2p/3)); round-trip through the inverse.
  const double mss = 1460.0, rtt = 0.08;
  for (const double bw : {50e3, 100e3, 400e3}) {
    const double p = loss_for_bandwidth(bw, mss, rtt);
    EXPECT_NEAR(tcp_throughput(mss, rtt, p), bw, bw * 1e-9);
  }
}

TEST(TcpModel, ThroughputDecreasesWithLossAndRtt) {
  EXPECT_GT(tcp_throughput(1460, 0.05, 0.01), tcp_throughput(1460, 0.05, 0.04));
  EXPECT_GT(tcp_throughput(1460, 0.05, 0.01), tcp_throughput(1460, 0.20, 0.01));
}

TEST(TcpModel, LossFreePathIsNotLossLimited) {
  EXPECT_GT(tcp_throughput(1460, 0.05, 0.0), 1e6);
  EXPECT_THROW((void)tcp_throughput(1460, 0.0, 0.01), std::invalid_argument);
  EXPECT_THROW((void)loss_for_bandwidth(0.0, 1460, 0.05),
               std::invalid_argument);
}

TEST(TcpModel, LossClampedToSaneRange) {
  // Absurdly slow path would need p > 0.5: clamp.
  EXPECT_LE(loss_for_bandwidth(1.0, 1460, 0.4), 0.5);
  // Absurdly fast path would need p ~ 0: floor at 1e-6.
  EXPECT_GE(loss_for_bandwidth(1e12, 1460, 0.01), 1e-6);
}

TEST(ProbeModel, AssignsConsistentLatentState) {
  util::Rng rng(1);
  const std::vector<double> means = {30e3, 100e3, 300e3};
  const ProbeModel model(means, ProbeConfig{}, std::move(rng));
  ASSERT_EQ(model.size(), 3u);
  for (std::size_t p = 0; p < 3; ++p) {
    const auto& st = model.state(p);
    // The latent (RTT, loss) must reproduce the true mean through the
    // TCP model.
    EXPECT_NEAR(tcp_throughput(model.config().mss_bytes, st.rtt_s,
                               st.loss_rate),
                means[p], means[p] * 0.01);
  }
}

TEST(ProbeModel, LargerTrainGivesBetterEstimates) {
  const std::vector<double> means(50, 60e3);
  auto mean_error = [&](std::size_t train) {
    ProbeConfig cfg;
    cfg.train_packets = train;
    util::Rng rng(2);
    const ProbeModel model(means, cfg, rng.fork("assign"));
    util::Rng probe_rng = rng.fork("probe");
    stats::RunningStats err;
    for (std::size_t p = 0; p < means.size(); ++p) {
      for (int rep = 0; rep < 20; ++rep) {
        const auto r = model.probe(p, probe_rng);
        err.add(std::abs(r.estimated_bandwidth - means[p]) / means[p]);
      }
    }
    return err.mean();
  };
  const double small = mean_error(50);
  const double large = mean_error(2000);
  EXPECT_LT(large, small);
}

TEST(ProbeModel, ReportsOverhead) {
  ProbeConfig cfg;
  cfg.train_packets = 100;
  cfg.rtt_samples = 4;
  util::Rng rng(3);
  const ProbeModel model({50e3}, cfg, rng.fork());
  const auto r = model.probe(0, rng);
  EXPECT_EQ(r.packets_sent, 104u);
  EXPECT_GT(r.measured_rtt_s, 0.0);
  EXPECT_GT(r.measured_loss, 0.0);
}

TEST(ProbeModel, RejectsEmpty) {
  util::Rng rng(4);
  EXPECT_THROW(ProbeModel({}, ProbeConfig{}, std::move(rng)),
               std::invalid_argument);
}

TEST(PassiveEwma, ConvergesToObservedMean) {
  PassiveEwmaEstimator est(2, 0.3, 50e3);
  EXPECT_DOUBLE_EQ(est.estimate(0, 0.0), 50e3);  // prior before data
  for (int i = 0; i < 200; ++i) est.observe(0, 80e3, i);
  EXPECT_NEAR(est.estimate(0, 200.0), 80e3, 1.0);
  EXPECT_DOUBLE_EQ(est.estimate(1, 0.0), 50e3);  // untouched path: prior
  EXPECT_EQ(est.observed_paths(), 1u);
}

TEST(PassiveEwma, WeighsRecentSamplesMore) {
  PassiveEwmaEstimator est(1, 0.5, 10e3);
  est.observe(0, 100e3, 0.0);
  est.observe(0, 200e3, 1.0);
  // 0.5 * 200K + 0.5 * 100K = 150K.
  EXPECT_NEAR(est.estimate(0, 2.0), 150e3, 1.0);
}

TEST(PassiveEwma, IgnoresNonPositiveSamplesAndValidatesArgs) {
  PassiveEwmaEstimator est(1, 0.3, 50e3);
  est.observe(0, 0.0, 0.0);
  est.observe(0, -5.0, 0.0);
  EXPECT_DOUBLE_EQ(est.estimate(0, 1.0), 50e3);
  EXPECT_THROW(PassiveEwmaEstimator(1, 0.0, 50e3), std::invalid_argument);
  EXPECT_THROW(PassiveEwmaEstimator(1, 1.5, 50e3), std::invalid_argument);
  EXPECT_THROW(PassiveEwmaEstimator(1, 0.3, 0.0), std::invalid_argument);
}

TEST(LastSample, TracksLatestOnly) {
  LastSampleEstimator est(1, 40e3);
  EXPECT_DOUBLE_EQ(est.estimate(0, 0.0), 40e3);
  est.observe(0, 100e3, 1.0);
  est.observe(0, 70e3, 2.0);
  EXPECT_DOUBLE_EQ(est.estimate(0, 3.0), 70e3);
}

TEST(Oracle, ReturnsTruePathMean) {
  PathModelConfig cfg;
  cfg.mode = VariationMode::kIidRatio;
  const PathModel model(5, nlanr_base_model(), nlanr_variability_model(), cfg,
                        util::Rng(6));
  OracleEstimator est(model);
  for (PathId p = 0; p < 5; ++p) {
    EXPECT_DOUBLE_EQ(est.estimate(p, 123.0), model.mean_bandwidth(p));
  }
  EXPECT_EQ(est.overhead_packets(), 0u);
}

TEST(ActiveProbe, CachesWithinReprobeInterval) {
  util::Rng rng(7);
  const ProbeModel model({60e3, 90e3}, ProbeConfig{}, rng.fork("m"));
  ActiveProbeEstimator est(model, /*reprobe_interval_s=*/100.0,
                           rng.fork("e"));
  const double e0 = est.estimate(0, 0.0);
  const auto overhead_after_first = est.overhead_packets();
  EXPECT_GT(overhead_after_first, 0u);
  // Within the interval: cached, no extra overhead.
  EXPECT_DOUBLE_EQ(est.estimate(0, 50.0), e0);
  EXPECT_EQ(est.overhead_packets(), overhead_after_first);
  // After the interval: re-probe.
  (void)est.estimate(0, 150.0);
  EXPECT_GT(est.overhead_packets(), overhead_after_first);
}

TEST(ActiveProbe, EstimatesNearTruth) {
  util::Rng rng(8);
  ProbeConfig cfg;
  cfg.train_packets = 5000;  // generous train: tight estimates
  const std::vector<double> means = {30e3, 120e3};
  const ProbeModel model(means, cfg, rng.fork("m"));
  ActiveProbeEstimator est(model, 1.0, rng.fork("e"));
  for (std::size_t p = 0; p < means.size(); ++p) {
    EXPECT_NEAR(est.estimate(p, 0.0) / means[p], 1.0, 0.35);
  }
  EXPECT_THROW(ActiveProbeEstimator(model, 0.0, rng.fork("x")),
               std::invalid_argument);
}

}  // namespace
}  // namespace sc::net
