// DecisionKernel in isolation, driven by an arbitrary caller-owned
// clock — the contract the proxy daemon relies on (sim/run_loop.h's use
// is pinned separately by the golden-CSV harness).
#include "sim/decision.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/registry.h"
#include "net/estimator.h"
#include "net/path_process.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "workload/object_catalog.h"

namespace sc::sim {
namespace {

std::shared_ptr<const net::PathModel> constant_paths(std::size_t n) {
  const core::Scenario s = core::registry::make_scenario("constant");
  net::PathModelConfig config;
  config.mode = s.mode;
  util::Rng rng(7);
  return std::make_shared<const net::PathModel>(n, s.base, s.ratio, config,
                                                rng.fork("paths"));
}

TEST(ObservationTraits, KernelTypesAreStaticallyClassified) {
  // Oracle and probe kernels prove at compile time that completion
  // observations are discarded; passive kernels consume them.
  static_assert(ObservationTraits<net::OracleKernel>::kStaticallyDiscards);
  static_assert(ObservationTraits<net::ProbeKernel>::kStaticallyDiscards);
  static_assert(!ObservationTraits<net::EwmaKernel>::kStaticallyDiscards);
  static_assert(!ObservationTraits<net::LastSampleKernel>::kStaticallyDiscards);
}

TEST(ObservationTraits, VirtualInterfaceIsRuntimeQueried) {
  // Behind the virtual boundary nothing is provable statically: the
  // primary template must fall back to uses_observations().
  static_assert(
      !ObservationTraits<net::BandwidthEstimator>::kStaticallyDiscards);
  const auto model = constant_paths(4);
  net::OracleEstimator oracle(*model);
  net::PassiveEwmaEstimator ewma(4, 0.3, 1e5);
  net::BandwidthEstimator& as_oracle = oracle;
  net::BandwidthEstimator& as_ewma = ewma;
  EXPECT_FALSE(ObservationTraits<net::BandwidthEstimator>::uses(as_oracle));
  EXPECT_TRUE(ObservationTraits<net::BandwidthEstimator>::uses(as_ewma));
}

TEST(DecisionKernel, RecordTransferCompilesOutForOracleKernels) {
  const auto model = constant_paths(2);
  net::OracleKernel oracle(*model);
  cache::PartialStore store(1e9);
  ObservationQueue events;
  // Policy type is irrelevant here; reuse the estimator as a stand-in
  // template parameter is not possible, so use the virtual policy from
  // the registry with a small catalog.
  workload::CatalogConfig cat_cfg;
  cat_cfg.num_objects = 2;
  util::Rng cat_rng(1);
  const auto catalog = workload::Catalog::generate(cat_cfg, cat_rng);
  net::OracleEstimator virt(*model);
  const auto policy = core::registry::make_policy("lru", catalog, virt);

  DecisionKernel<cache::CachePolicy, net::OracleKernel> kernel(
      *policy, oracle, store, events);
  EXPECT_FALSE(kernel.observes());
  kernel.record_transfer(0, 123.0, 10.0);
  kernel.record_transfer(1, 456.0, 20.0);
  // Statically-discarding kernels schedule nothing at all.
  EXPECT_TRUE(events.empty());
}

TEST(DecisionKernel, TickDeliversObservationsInTimeOrder) {
  net::PassiveEwmaEstimator ewma(1, 0.5, 777.0);  // prior shows until the
                                                  // first observation lands
  cache::PartialStore store(1e9);
  ObservationQueue events;
  workload::CatalogConfig cat_cfg;
  cat_cfg.num_objects = 1;
  util::Rng cat_rng(1);
  const auto catalog = workload::Catalog::generate(cat_cfg, cat_rng);
  const auto policy = core::registry::make_policy("lru", catalog, ewma);

  DecisionKernel<cache::CachePolicy, net::BandwidthEstimator> kernel(
      *policy, ewma, store, events);
  EXPECT_TRUE(kernel.observes());

  // Transfers complete out of schedule order; delivery must follow
  // completion time, not insertion order.
  kernel.record_transfer(0, 200.0, 30.0);
  kernel.record_transfer(0, 100.0, 10.0);
  EXPECT_EQ(events.size(), 2u);

  // Nothing due yet: the estimate is still the never-observed prior.
  kernel.tick(5.0);
  EXPECT_DOUBLE_EQ(kernel.estimate(0, 5.0), 777.0);

  // First completion (the t=10 one, despite being scheduled second)
  // replaces the prior outright.
  kernel.tick(10.0);
  EXPECT_DOUBLE_EQ(kernel.estimate(0, 10.0), 100.0);

  // Second completion folds in with alpha = 0.5.
  kernel.tick(30.0);
  EXPECT_DOUBLE_EQ(kernel.estimate(0, 30.0), 0.5 * 200.0 + 0.5 * 100.0);
  EXPECT_TRUE(events.empty());
}

TEST(DecisionKernel, DrainFlushesRegardlessOfClock) {
  net::PassiveEwmaEstimator ewma(1, 1.0, 777.0);  // alpha 1: last sample wins
  cache::PartialStore store(1e9);
  ObservationQueue events;
  workload::CatalogConfig cat_cfg;
  cat_cfg.num_objects = 1;
  util::Rng cat_rng(1);
  const auto catalog = workload::Catalog::generate(cat_cfg, cat_rng);
  const auto policy = core::registry::make_policy("lru", catalog, ewma);

  DecisionKernel<cache::CachePolicy, net::BandwidthEstimator> kernel(
      *policy, ewma, store, events);
  kernel.record_transfer(0, 111.0, 1e12);  // due in the far future
  kernel.drain();
  EXPECT_TRUE(events.empty());
  EXPECT_DOUBLE_EQ(kernel.estimate(0, 0.0), 111.0);
}

TEST(DecisionKernel, AdmitRunsThePolicyAndReportsTheNewPrefix) {
  const auto model = constant_paths(8);
  net::OracleEstimator oracle(*model);
  workload::CatalogConfig cat_cfg;
  cat_cfg.num_objects = 8;
  util::Rng cat_rng(3);
  const auto catalog = workload::Catalog::generate(cat_cfg, cat_rng);
  const auto policy = core::registry::make_policy("lru", catalog, oracle);
  cache::PartialStore store(catalog.total_bytes());  // room for everything
  store.reserve(catalog.size());
  ObservationQueue events;

  DecisionKernel<cache::CachePolicy, net::BandwidthEstimator> kernel(
      *policy, oracle, store, events);
  EXPECT_DOUBLE_EQ(kernel.cached(3), 0.0);
  const double after = kernel.admit(3, 1.0);
  // With surplus capacity an access admits a non-empty prefix, and the
  // return value is exactly the store's post-decision contents.
  EXPECT_GT(after, 0.0);
  EXPECT_DOUBLE_EQ(after, kernel.cached(3));
  EXPECT_DOUBLE_EQ(after, store.cached(3));
  EXPECT_LE(after, catalog.object(3).size_bytes);
}

}  // namespace
}  // namespace sc::sim
