#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "workload/generator.h"
#include "workload/trace.h"
#include "workload/workload_stats.h"

namespace sc::workload {
namespace {

TEST(Catalog, GeneratesTable1Invariants) {
  CatalogConfig cfg;  // paper defaults
  util::Rng rng(1);
  const auto catalog = Catalog::generate(cfg, rng);
  ASSERT_EQ(catalog.size(), 5000u);
  for (const auto& o : catalog.objects()) {
    EXPECT_GT(o.duration_s, 0.0);
    EXPECT_DOUBLE_EQ(o.bitrate, 48.0 * 1024.0);  // 2 KB/frame * 24 f/s
    EXPECT_DOUBLE_EQ(o.size_bytes, o.duration_s * o.bitrate);
    EXPECT_GE(o.value, 1.0);
    EXPECT_LE(o.value, 10.0);
    EXPECT_EQ(o.path, o.id);
    EXPECT_EQ(o.popularity_rank, o.id + 1);
    EXPECT_GE(o.duration_s, cfg.min_duration_min * 60.0);
    EXPECT_LE(o.duration_s, cfg.max_duration_min * 60.0);
  }
  // ~790 GB total unique size (Table 1).
  const double total_gb = catalog.total_bytes() / (1024.0 * 1024.0 * 1024.0);
  EXPECT_NEAR(total_gb, 790.0, 60.0);
}

TEST(Catalog, MeanDurationNear55Minutes) {
  CatalogConfig cfg;
  util::Rng rng(2);
  const auto catalog = Catalog::generate(cfg, rng);
  double acc = 0;
  for (const auto& o : catalog.objects()) acc += o.duration_s;
  EXPECT_NEAR(acc / catalog.size() / 60.0, 55.0, 4.0);
}

TEST(Catalog, FromObjectsValidates) {
  StreamObject good;
  good.id = 0;
  good.duration_s = 10.0;
  good.bitrate = 5.0;
  EXPECT_NO_THROW(Catalog::from_objects({good}));

  EXPECT_THROW(Catalog::from_objects({}), std::invalid_argument);

  StreamObject wrong_id = good;
  wrong_id.id = 3;
  EXPECT_THROW(Catalog::from_objects({wrong_id}), std::invalid_argument);

  StreamObject bad_duration = good;
  bad_duration.duration_s = 0.0;
  EXPECT_THROW(Catalog::from_objects({bad_duration}), std::invalid_argument);
}

TEST(Catalog, RejectsDegenerateConfig) {
  CatalogConfig cfg;
  cfg.num_objects = 0;
  util::Rng rng(3);
  EXPECT_THROW(Catalog::generate(cfg, rng), std::invalid_argument);
  cfg.num_objects = 10;
  cfg.frame_bytes = 0.0;
  EXPECT_THROW(Catalog::generate(cfg, rng), std::invalid_argument);
}

TEST(Generator, TraceIsTimeOrderedPoisson) {
  WorkloadConfig cfg;
  cfg.catalog.num_objects = 100;
  cfg.trace.num_requests = 20000;
  cfg.trace.arrival_rate_per_s = 2.0;
  util::Rng rng(4);
  const auto w = generate_workload(cfg, rng);
  ASSERT_EQ(w.requests.size(), 20000u);
  double prev = 0.0;
  for (const auto& r : w.requests) {
    EXPECT_GE(r.time_s, prev);
    EXPECT_LT(r.object, w.catalog.size());
    prev = r.time_s;
  }
  // Mean interarrival ~ 1/rate.
  const double span = w.requests.back().time_s - w.requests.front().time_s;
  EXPECT_NEAR(span / (20000 - 1), 0.5, 0.02);
}

TEST(Generator, PopularityFollowsRankOrder) {
  WorkloadConfig cfg;
  cfg.catalog.num_objects = 500;
  cfg.trace.num_requests = 100000;
  cfg.trace.zipf_alpha = 0.9;
  util::Rng rng(5);
  const auto w = generate_workload(cfg, rng);
  const auto counts = request_counts(w);
  // Object 0 (rank 1) must be the most requested; top ranks dominate.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
  std::size_t top10 = 0;
  for (std::size_t i = 0; i < 10; ++i) top10 += counts[i];
  EXPECT_GT(static_cast<double>(top10) / 100000.0, 0.15);
}

TEST(Generator, RejectsBadTraceConfig) {
  CatalogConfig ccfg;
  ccfg.num_objects = 10;
  util::Rng rng(6);
  const auto catalog = Catalog::generate(ccfg, rng);
  TraceConfig bad;
  bad.num_requests = 0;
  EXPECT_THROW(generate_trace(catalog, bad, rng), std::invalid_argument);
  bad.num_requests = 10;
  bad.arrival_rate_per_s = 0.0;
  EXPECT_THROW(generate_trace(catalog, bad, rng), std::invalid_argument);
}

TEST(ZipfFit, RecoversGeneratorAlpha) {
  WorkloadConfig cfg;
  cfg.catalog.num_objects = 2000;
  cfg.trace.num_requests = 200000;
  cfg.trace.zipf_alpha = 0.73;
  util::Rng rng(7);
  const auto w = generate_workload(cfg, rng);
  const auto fit = fit_zipf(request_counts(w));
  EXPECT_NEAR(fit.alpha, 0.73, 0.12);
  EXPECT_GT(fit.r2, 0.9);
}

TEST(ZipfFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_zipf({}).alpha, 0.0);
  EXPECT_DOUBLE_EQ(fit_zipf({5, 0, 0}).alpha, 0.0);  // < 3 usable ranks
}

TEST(Summarize, ReportsTable1Quantities) {
  WorkloadConfig cfg;
  cfg.catalog.num_objects = 1000;
  cfg.trace.num_requests = 50000;
  util::Rng rng(8);
  const auto w = generate_workload(cfg, rng);
  const auto s = summarize(w);
  EXPECT_EQ(s.num_objects, 1000u);
  EXPECT_EQ(s.num_requests, 50000u);
  EXPECT_NEAR(s.bitrate, 48.0 * 1024.0, 1e-9);
  EXPECT_GT(s.total_unique_bytes, 0.0);
  EXPECT_NEAR(s.mean_frames, s.mean_duration_s * 24.0, 1e-6);
  EXPECT_GT(s.top10pct_request_share, 0.2);
  EXPECT_GT(s.trace_span_s, 0.0);
}

void expect_workload_field_equal(const Workload& a, const Workload& b) {
  ASSERT_EQ(b.catalog.size(), a.catalog.size());
  ASSERT_EQ(b.requests.size(), a.requests.size());
  for (std::size_t i = 0; i < a.catalog.size(); ++i) {
    const auto& x = a.catalog.object(i);
    const auto& y = b.catalog.object(i);
    EXPECT_EQ(x.id, y.id);
    EXPECT_DOUBLE_EQ(x.duration_s, y.duration_s);
    EXPECT_DOUBLE_EQ(x.bitrate, y.bitrate);
    EXPECT_DOUBLE_EQ(x.size_bytes, y.size_bytes);
    EXPECT_DOUBLE_EQ(x.value, y.value);
    EXPECT_EQ(x.path, y.path);
  }
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.requests[i].time_s, a.requests[i].time_s);
    EXPECT_EQ(b.requests[i].object, a.requests[i].object);
    EXPECT_DOUBLE_EQ(b.requests[i].view_s, a.requests[i].view_s);
  }
}

TEST(TraceIo, RoundTripsExactly) {
  WorkloadConfig cfg;
  cfg.catalog.num_objects = 50;
  cfg.trace.num_requests = 500;
  util::Rng rng(9);
  const auto w = generate_workload(cfg, rng);

  const auto path =
      std::filesystem::temp_directory_path() / "sc_trace_roundtrip.txt";
  write_trace(w, path);
  const auto back = read_trace(path);
  std::filesystem::remove(path);
  expect_workload_field_equal(w, back);
}

TEST(TraceIo, RoundTripPropertyOverRandomWorkloads) {
  // Property test: any generated workload — varying shape, skew, and
  // recorded viewing durations (a random mix of full and truncated
  // sessions, including sub-second and fractional values exercising the
  // full double precision of the writer) — must round-trip with field
  // equality.
  const auto path =
      std::filesystem::temp_directory_path() / "sc_trace_property.txt";
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed * 1237);
    WorkloadConfig cfg;
    cfg.catalog.num_objects =
        static_cast<std::size_t>(rng.uniform_int(3, 120));
    cfg.trace.num_requests =
        static_cast<std::size_t>(rng.uniform_int(1, 800));
    cfg.trace.zipf_alpha = rng.uniform(0.4, 1.3);
    cfg.trace.arrival_rate_per_s = rng.uniform(0.05, 3.0);
    auto w = generate_workload(cfg, rng);
    for (auto& r : w.requests) {
      if (rng.uniform() < 0.5) {
        r.view_s = rng.uniform(0.001, 10000.0);
      }
    }

    write_trace(w, path);
    const auto back = read_trace(path);
    expect_workload_field_equal(w, back);
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, ReadsLegacyV1Files) {
  // v1 request records carry no viewing duration: every session is
  // full-length after import.
  const auto path = std::filesystem::temp_directory_path() / "sc_trace_v1.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("streamcache-trace v1 2 3\n"
             "O 0 120 1024 2.5 0\n"
             "O 1 60 512 7 1\n"
             "R 0.5 1\nR 0.75 0\nR 4 1\n",
             f);
  std::fclose(f);
  const auto w = read_trace(path);
  std::filesystem::remove(path);
  ASSERT_EQ(w.catalog.size(), 2u);
  ASSERT_EQ(w.requests.size(), 3u);
  EXPECT_DOUBLE_EQ(w.catalog.object(0).duration_s, 120.0);
  EXPECT_DOUBLE_EQ(w.catalog.object(1).bitrate, 512.0);
  for (const auto& r : w.requests) EXPECT_EQ(r.view_s, kFullSession);
}

TEST(TraceIo, RejectsMalformedFilesWithUsefulMessages) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto write_file = [&](const std::string& name,
                              const std::string& body) {
    const auto p = dir / name;
    std::FILE* f = std::fopen(p.c_str(), "w");
    std::fputs(body.c_str(), f);
    std::fclose(f);
    return p;
  };
  // Every rejection must throw std::runtime_error whose message names
  // the file and contains `hint` about what went wrong.
  const auto expect_rejects = [](const std::filesystem::path& p,
                                 const std::string& hint) {
    try {
      (void)read_trace(p);
      FAIL() << p << ": expected runtime_error mentioning \"" << hint << "\"";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(hint), std::string::npos) << what;
      EXPECT_NE(what.find(p.filename().string()), std::string::npos) << what;
    }
  };

  EXPECT_THROW((void)read_trace(dir / "sc_no_such_file.txt"),
               std::runtime_error);

  expect_rejects(write_file("sc_bad_magic.txt", "not-a-trace v1 0 0\n"),
                 "bad magic");
  expect_rejects(write_file("sc_bad_version.txt",
                            "streamcache-trace v9 0 0\n"),
                 "unsupported version");
  expect_rejects(
      write_file("sc_bad_ref.txt",
                 "streamcache-trace v2 1 1\nO 0 10 5 1 0\nR 1.0 7 -1\n"),
      "outside the declared catalog");
  expect_rejects(
      write_file("sc_regress.txt",
                 "streamcache-trace v2 1 2\nO 0 10 5 1 0\n"
                 "R 2.0 0 -1\nR 1.0 0 -1\n"),
      "times regress");
  expect_rejects(
      write_file("sc_count.txt", "streamcache-trace v2 2 0\nO 0 10 5 1 0\n"),
      "record count mismatch");
  // A file cut off mid-record (e.g. a partial copy) must say so.
  expect_rejects(
      write_file("sc_truncated.txt",
                 "streamcache-trace v2 1 2\nO 0 10 5 1 0\nR 1.0 0 -1\nR 2.0\n"),
      "truncated");
  expect_rejects(
      write_file("sc_truncated_obj.txt",
                 "streamcache-trace v2 2 0\nO 0 10 5 1 0\nO 1 10\n"),
      "truncated");
  expect_rejects(
      write_file("sc_sparse_ids.txt",
                 "streamcache-trace v2 2 0\nO 0 10 5 1 0\nO 5 10 5 1 1\n"),
      "dense");
  expect_rejects(
      write_file("sc_bad_path.txt",
                 "streamcache-trace v2 1 0\nO 0 10 5 1 3\n"),
      "outside the declared catalog");
  expect_rejects(write_file("sc_bad_tag.txt",
                            "streamcache-trace v2 0 0\nX 1 2 3\n"),
                 "unknown record tag");

  for (const auto& n :
       {"sc_bad_magic.txt", "sc_bad_version.txt", "sc_bad_ref.txt",
        "sc_regress.txt", "sc_count.txt", "sc_truncated.txt",
        "sc_truncated_obj.txt", "sc_sparse_ids.txt", "sc_bad_path.txt",
        "sc_bad_tag.txt"}) {
    std::filesystem::remove(dir / n);
  }
}

}  // namespace
}  // namespace sc::workload
