// The proxy daemon, bottom-up: wire encoding, deterministic payloads,
// the serving engine's range math and session accounting, and a full
// in-process loopback integration run with concurrent clients. The
// integration test is the ISSUE's tier-1 server gate and runs under
// ASan+UBSan and TSan in CI.
#include "server/daemon.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/client.h"
#include "server/engine.h"
#include "server/payload.h"
#include "server/wire.h"
#include "util/rng.h"

namespace sc::server {
namespace {

ServiceConfig small_config() {
  ServiceConfig config;
  config.objects = 64;
  config.seed = 11;
  config.policy = "pb";
  config.estimator = "oracle";
  config.cache_fraction = 0.1;
  return config;
}

std::size_t open_fd_count() {
  return static_cast<std::size_t>(std::distance(
      std::filesystem::directory_iterator("/proc/self/fd"),
      std::filesystem::directory_iterator{}));
}

// ---------------------------------------------------------------- wire

TEST(Wire, ScalarCodecsRoundTrip) {
  std::vector<std::uint8_t> buf;
  wire::put_u32(buf, 0xDEADBEEFu);
  wire::put_u64(buf, 0x0123456789ABCDEFull);
  wire::put_f64(buf, -1234.5678);
  ASSERT_EQ(buf.size(), 4u + 8u + 8u);
  EXPECT_EQ(wire::get_u32(buf.data()), 0xDEADBEEFu);
  EXPECT_EQ(wire::get_u64(buf.data() + 4), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(wire::get_f64(buf.data() + 12), -1234.5678);
  // Little-endian on the wire, by byte.
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[3], 0xDE);
}

TEST(Wire, GetRequestRoundTrip) {
  std::vector<std::uint8_t> frame;
  wire::encode_get(frame, wire::GetRequest{42, 1000, 65536});
  ASSERT_EQ(frame.size(), wire::kGetRequestSize);
  EXPECT_EQ(frame[0], wire::kOpGet);
  wire::GetRequest out;
  ASSERT_TRUE(wire::decode_get(frame.data(), frame.size(), out));
  EXPECT_EQ(out.object, 42u);
  EXPECT_EQ(out.offset, 1000u);
  EXPECT_EQ(out.length, 65536u);
  // Truncated or oversized bodies are rejected.
  EXPECT_FALSE(wire::decode_get(frame.data(), frame.size() - 1, out));
  frame.push_back(0);
  EXPECT_FALSE(wire::decode_get(frame.data(), frame.size(), out));
}

// ---------------------------------------------------------------- payload

TEST(Payload, ByteIsDeterministicAndObjectDependent) {
  EXPECT_EQ(payload_byte(1, 0), payload_byte(1, 0));
  // Different objects produce different streams (overwhelmingly).
  int diffs = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    diffs += payload_byte(1, i) != payload_byte(2, i);
  }
  EXPECT_GT(diffs, 0);
}

TEST(Payload, FillMatchesByteAtEveryAlignment) {
  // fill_payload's block fast path must agree with the scalar
  // definition for every start alignment and ragged tail.
  for (std::uint64_t offset = 0; offset < 9; ++offset) {
    for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 31u, 64u}) {
      std::vector<std::uint8_t> buf(len, 0xAA);
      fill_payload(7, offset, buf.data(), len);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(buf[i], payload_byte(7, offset + i))
            << "offset=" << offset << " len=" << len << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------- engine

TEST(ServiceEngine, CatalogIsDeterministicForSeedAndCount) {
  const auto a = ServiceEngine::make_catalog(32, 9);
  const auto b = ServiceEngine::make_catalog(32, 9);
  const auto c = ServiceEngine::make_catalog(32, 10);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.object(i).size_bytes, b.object(i).size_bytes);
    any_diff |= a.object(i).size_bytes != c.object(i).size_bytes;
  }
  EXPECT_TRUE(any_diff);  // the seed actually matters
}

TEST(ServiceEngine, RejectsBadObjectAndBadRange) {
  ServiceEngine engine(small_config());
  EXPECT_EQ(engine.serve_range(engine.catalog().size(), 0, 1).status,
            wire::kBadObject);
  const std::uint64_t size = engine.object_size(0);
  EXPECT_EQ(engine.serve_range(0, size + 1, 0).status, wire::kBadRange);
  EXPECT_EQ(engine.serve_range(0, size - 1, 2).status, wire::kBadRange);
  EXPECT_EQ(engine.serve_range(0, 0, wire::kMaxGetLength + 1).status,
            wire::kBadRange);
  // Zero-length probes and exact-boundary ranges are valid.
  EXPECT_EQ(engine.serve_range(0, size, 0).status, wire::kOk);
  EXPECT_EQ(engine.serve_range(0, size - 1, 1).status, wire::kOk);
}

TEST(ServiceEngine, ByteSplitIsExactAndAdmissionRunsAtOffsetZero) {
  // LRU admits unconditionally; utility policies may legitimately cache
  // a zero prefix for a fast path, which would make this test vacuous.
  ServiceConfig config = small_config();
  config.policy = "lru";
  ServiceEngine engine(config);
  // Cold object: everything comes from origin, and the
  // session-opening request admits a prefix.
  const auto first = engine.serve_range(5, 0, 4096);
  ASSERT_EQ(first.status, wire::kOk);
  EXPECT_EQ(first.cache_bytes, 0u);
  EXPECT_EQ(first.origin_bytes, 4096u);
  const std::uint64_t cached = engine.cached_bytes(5);
  EXPECT_GT(cached, 0u);

  // Second session start: the cached prefix now covers the range head.
  const auto second = engine.serve_range(5, 0, 4096);
  ASSERT_EQ(second.status, wire::kOk);
  EXPECT_EQ(second.cache_bytes + second.origin_bytes, 4096u);
  EXPECT_EQ(second.cache_bytes, std::min<std::uint64_t>(cached, 4096));

  // Mid-stream chunk: the byte split is exactly the prefix clamp, and a
  // non-opening chunk must NOT re-run admission (prefix unchanged).
  const std::uint64_t before = engine.cached_bytes(5);
  const std::uint64_t far = engine.object_size(5) - 4096;
  const auto chunk = engine.serve_range(5, far, 4096);
  ASSERT_EQ(chunk.status, wire::kOk);
  const std::uint64_t expect_cache =
      before > far ? std::min<std::uint64_t>(before - far, 4096) : 0;
  EXPECT_EQ(chunk.cache_bytes, expect_cache);
  EXPECT_EQ(chunk.origin_bytes, 4096u - expect_cache);
  EXPECT_EQ(engine.cached_bytes(5), before);
}

TEST(ServiceEngine, SessionAccountingTracksViewedFraction) {
  ServiceEngine engine(small_config());
  const std::uint64_t size = engine.object_size(2);
  (void)engine.serve_range(2, 0, 1024);
  engine.end_session(2, size / 2);  // departed halfway
  const ServiceStats stats = engine.snapshot();
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_NEAR(stats.mean_viewed_fraction,
              static_cast<double>(size / 2) / static_cast<double>(size), 1e-9);
}

TEST(ServiceEngine, StatsJsonContainsTheCounters) {
  ServiceEngine engine(small_config());
  (void)engine.serve_range(0, 0, 512);
  const std::string json = engine.stats_json();
  EXPECT_NE(json.find("\"requests\": 1"), std::string::npos);
  EXPECT_NE(json.find("hit_ratio"), std::string::npos);
  EXPECT_NE(json.find("capacity_bytes"), std::string::npos);
  // Persistence/uptime fields are always present (warm_start is simply
  // false when persistence is off).
  EXPECT_NE(json.find("\"uptime_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"warm_start\": false"), std::string::npos);
  EXPECT_GE(engine.snapshot().uptime_s, 0.0);
}

TEST(ServiceEngine, AuditPassesOnALiveEngine) {
  ServiceEngine engine(small_config());
  for (std::uint64_t id = 0; id < 16; ++id) {
    (void)engine.serve_range(id, 0, 4096);
  }
  const auto report = engine.audit();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

// ---------------------------------------------------------------- daemon

TEST(ProxyDaemon, LoopbackServesConcurrentClientsByteAccurately) {
  const std::size_t fds_before = open_fd_count();
  ServiceEngine engine(small_config());
  ProxyDaemon daemon(engine);
  daemon.start();
  ASSERT_GT(daemon.port(), 0);

  // Concurrent clients stream Zipf-free deterministic schedules: each
  // walks its own object set in chunks and byte-checks every response
  // against the deterministic payload function.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kSessionsPerClient = 12;
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        ProxyClient client("127.0.0.1", daemon.port());
        util::Rng rng(100 + c);
        for (std::size_t s = 0; s < kSessionsPerClient; ++s) {
          const auto object = static_cast<std::uint64_t>(
              rng.uniform() * static_cast<double>(engine.catalog().size() / 2));
          const std::uint64_t size = engine.object_size(object);
          const std::uint64_t budget =
              std::min<std::uint64_t>(size, 48 * 1024);
          for (std::uint64_t off = 0; off < budget; off += 16 * 1024) {
            const std::uint64_t len =
                std::min<std::uint64_t>(16 * 1024, budget - off);
            const auto reply = client.get(object, off, len);
            if (reply.status != wire::kOk) {
              errors[c] = "unexpected status";
              return;
            }
            if (reply.cache_bytes + reply.origin_bytes != len ||
                reply.data.size() != len) {
              errors[c] = "byte split does not cover the range";
              return;
            }
            for (std::size_t i = 0; i < reply.data.size(); ++i) {
              if (reply.data[i] != payload_byte(object, off + i)) {
                errors[c] = "payload mismatch";
                return;
              }
            }
          }
        }
        // Exercise STAT and STATS on a live connection too.
        const auto stat = client.stat(0);
        if (stat.status != wire::kOk || stat.size_bytes == 0) {
          errors[c] = "bad STAT reply";
        }
        if (client.stats().find("requests") == std::string::npos) {
          errors[c] = "bad STATS reply";
        }
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) EXPECT_EQ(e, "");

  // With half the catalog under a 10% cache, repeat accesses hit.
  const ServiceStats stats = engine.snapshot();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.hit_ratio, 0.0);
  EXPECT_GT(stats.sessions, 0u);
  EXPECT_EQ(static_cast<std::size_t>(daemon.connections_accepted()), kClients);

  daemon.stop();
  // Clean shutdown releases every socket: fd count returns to baseline.
  EXPECT_EQ(open_fd_count(), fds_before);
}

TEST(ProxyDaemon, MalformedFramesGetBadRequestNotDisconnect) {
  ServiceEngine engine(small_config());
  ProxyDaemon daemon(engine);
  daemon.start();
  ProxyClient client("127.0.0.1", daemon.port());
  // A GET for an out-of-catalog object is answered, not dropped...
  const auto bad = client.get(1u << 20, 0, 16);
  EXPECT_EQ(bad.status, wire::kBadObject);
  // ...and the connection still works afterwards.
  const auto good = client.get(0, 0, 16);
  EXPECT_EQ(good.status, wire::kOk);
  ASSERT_EQ(good.data.size(), 16u);
  daemon.stop();
}

TEST(ProxyDaemon, StopIsIdempotentAndRestartableEngineStateSurvives) {
  ServiceEngine engine(small_config());
  {
    ProxyDaemon daemon(engine);
    daemon.start();
    ProxyClient client("127.0.0.1", daemon.port());
    (void)client.get(1, 0, 2048);
    daemon.stop();
    daemon.stop();  // idempotent
  }
  // Engine state persists across daemon lifetimes (the daemon is a
  // transport; the engine owns the cache).
  EXPECT_GT(engine.snapshot().requests, 0u);
  ProxyDaemon second(engine);
  second.start();
  ProxyClient client("127.0.0.1", second.port());
  const auto reply = client.get(1, 0, 2048);
  EXPECT_EQ(reply.status, wire::kOk);
  second.stop();
}

TEST(ProxyDaemon, AuditFrameReturnsACleanJsonReportOverTheWire) {
  ServiceEngine engine(small_config());
  ProxyDaemon daemon(engine);
  daemon.start();
  ProxyClient client("127.0.0.1", daemon.port());
  (void)client.get(2, 0, 4096);  // some state to audit
  const std::string report = client.audit();
  EXPECT_NE(report.find("\"ok\": true"), std::string::npos) << report;
  EXPECT_NE(report.find("\"violations\": []"), std::string::npos);
  daemon.stop();
}

// ---------------------------------------------------------------- chaos

TEST(ServiceEngine, OriginTimeoutMapsToTypedOriginDown) {
  // An upstream stall longer than the configured timeout is treated as
  // an unreachable origin: typed kOriginDown, not a pinned thread.
  ServiceConfig config = small_config();
  config.origin.latency_s = 0.2;   // every fetch would stall 200 ms...
  config.origin_timeout_s = 0.05;  // ...which the engine refuses to pay
  config.max_retries = 1;
  config.retry_backoff_s = 0.001;
  ServiceEngine engine(config);
  const auto res = engine.serve_range(0, 0, 4096);
  EXPECT_EQ(res.status, wire::kOriginDown);
  const ServiceStats stats = engine.snapshot();
  EXPECT_GE(stats.origin_timeouts, 1u);
  EXPECT_GE(stats.origin_down, 1u);
  EXPECT_EQ(stats.origin_retries, 1u);
  // Zero-length probes never need the origin and still answer kOk.
  EXPECT_EQ(engine.serve_range(0, 0, 0).status, wire::kOk);
}

TEST(ServiceEngine, OriginOutageDegradesGracefullyAndRecovers) {
  // One wall-clock outage window [1s, 2.5s) from engine start. Warm a
  // prefix before it opens, drill during it, verify recovery after.
  ServiceConfig config = small_config();
  config.policy = "lru";  // admits unconditionally -> a warm prefix exists
  config.origin.fault = "fault:outage=1+1.5";
  config.max_retries = 2;
  config.retry_backoff_s = 0.01;
  ServiceEngine engine(config);

  ASSERT_EQ(engine.serve_range(3, 0, 4096).status, wire::kOk);
  const std::uint64_t cached = engine.cached_bytes(3);
  ASSERT_GT(cached, 0u);

  std::this_thread::sleep_for(std::chrono::milliseconds(1300));  // t ~ 1.3s

  // Fully-cached ranges keep answering kOk (graceful degradation)...
  const std::uint64_t len = std::min<std::uint64_t>(cached, 4096);
  const auto warm = engine.serve_range(3, 0, len);
  EXPECT_EQ(warm.status, wire::kOk);
  EXPECT_EQ(warm.cache_bytes, len);
  EXPECT_EQ(warm.origin_bytes, 0u);

  // ...while ranges needing origin bytes fail typed after bounded
  // retries, and no admission runs for them (nothing to back the fill).
  const auto cold = engine.serve_range(7, 0, 4096);
  EXPECT_EQ(cold.status, wire::kOriginDown);
  EXPECT_EQ(engine.cached_bytes(7), 0u);

  const ServiceStats mid = engine.snapshot();
  EXPECT_GE(mid.origin_down, 1u);
  EXPECT_EQ(mid.origin_retries, config.max_retries);
  EXPECT_GE(mid.degraded_hits, 1u);
  EXPECT_NE(engine.stats_json().find("\"origin_down\""), std::string::npos);

  std::this_thread::sleep_for(std::chrono::milliseconds(1400));  // t ~ 2.7s

  // The window has closed: the same request succeeds and admission
  // resumes. kOriginDown is transient by contract.
  EXPECT_EQ(engine.serve_range(7, 0, 4096).status, wire::kOk);
  EXPECT_GT(engine.cached_bytes(7), 0u);
}

TEST(ProxyDaemon, OriginDownTravelsTheWireAsALoneStatusByte) {
  ServiceConfig config = small_config();
  config.origin.fault = "fault:outage=0+3600";  // down for the whole test
  config.max_retries = 1;
  config.retry_backoff_s = 0.001;
  ServiceEngine engine(config);
  ProxyDaemon daemon(engine);
  daemon.start();
  ProxyClient client("127.0.0.1", daemon.port());
  const auto reply = client.get(0, 0, 4096);
  EXPECT_EQ(reply.status, wire::kOriginDown);
  EXPECT_TRUE(reply.data.empty());
  // The connection survives the error reply: STAT still answers.
  EXPECT_EQ(client.stat(0).status, wire::kOk);
  daemon.stop();
}

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ProxyDaemon, AbruptClientCloseMidResponseDoesNotKillTheDaemon) {
  // Queue several max-length GETs and vanish without reading: the
  // daemon's response writes overflow the socket buffers and hit a dead
  // peer. With MSG_NOSIGNAL on the write path this surfaces as EPIPE on
  // that connection only; a raised SIGPIPE would kill this whole test
  // binary (default disposition — nothing here ignores it).
  const std::size_t fds_before = open_fd_count();
  ServiceEngine engine(small_config());
  ProxyDaemon daemon(engine);
  daemon.start();

  for (int round = 0; round < 3; ++round) {
    const int fd = raw_connect(daemon.port());
    ASSERT_GE(fd, 0);
    const std::uint64_t len =
        std::min<std::uint64_t>(engine.object_size(0), wire::kMaxGetLength);
    std::vector<std::uint8_t> body;
    wire::encode_get(body, wire::GetRequest{0, 0, len});
    ASSERT_TRUE(wire::write_frame(fd, body.data(), body.size()));
    for (int i = 0; i < 3; ++i) {
      // Best-effort: the daemon may already have torn the connection
      // down mid-burst, which is exactly the behaviour under test.
      (void)wire::write_frame(fd, body.data(), body.size());
    }
    ::close(fd);
  }

  // The daemon must still be serving new connections byte-accurately.
  ProxyClient client("127.0.0.1", daemon.port());
  const auto reply = client.get(1, 0, 2048);
  EXPECT_EQ(reply.status, wire::kOk);
  ASSERT_EQ(reply.data.size(), 2048u);
  for (std::size_t i = 0; i < reply.data.size(); ++i) {
    ASSERT_EQ(reply.data[i], payload_byte(1, i));
  }
  client.close();
  daemon.stop();
  // Every aborted connection's fd was reclaimed.
  EXPECT_EQ(open_fd_count(), fds_before);
}

TEST(ProxyDaemon, IdleConnectionsAreDisconnectedAfterTheTimeout) {
  ServiceEngine engine(small_config());
  DaemonConfig config;
  config.idle_timeout_s = 0.3;
  ProxyDaemon daemon(engine, config);
  daemon.start();

  ProxyClient idle("127.0.0.1", daemon.port());
  EXPECT_EQ(idle.get(0, 0, 512).status, wire::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  // The daemon closed the silent connection; the next request fails at
  // the transport layer, not with a protocol error.
  EXPECT_THROW((void)idle.get(0, 0, 512), std::runtime_error);

  // Fresh connections are unaffected, and a busy connection never
  // trips the timeout because activity resets per frame.
  ProxyClient fresh("127.0.0.1", daemon.port());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fresh.get(0, 0, 512).status, wire::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  daemon.stop();
}

TEST(ProxyDaemon, AcceptLoopSurvivesFdExhaustion) {
  // Clamp RLIMIT_NOFILE just above current usage so accept() hits
  // EMFILE, then verify the daemon rides it out (logs once, backs off)
  // and accepts again once fds return.
  ServiceEngine engine(small_config());
  ProxyDaemon daemon(engine);
  daemon.start();

  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  rlimit tight = old_limit;
  tight.rlim_cur = static_cast<rlim_t>(open_fd_count() + 8);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  {
    // Each accepted client costs two fds here (client + server end);
    // a few connections exhaust the headroom and the backlog holds the
    // rest while the accept loop backs off.
    std::vector<std::unique_ptr<ProxyClient>> clients;
    for (int i = 0; i < 8; ++i) {
      try {
        clients.push_back(
            std::make_unique<ProxyClient>("127.0.0.1", daemon.port()));
      } catch (const std::exception&) {
        break;  // the client side hit the limit first; good enough
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }  // destroying the clients returns their fds

  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // The loop never exited: a fresh connection is accepted and served.
  ProxyClient fresh("127.0.0.1", daemon.port());
  EXPECT_EQ(fresh.get(0, 0, 1024).status, wire::kOk);
  daemon.stop();
}

}  // namespace
}  // namespace sc::server
