// The proxy daemon, bottom-up: wire encoding, deterministic payloads,
// the serving engine's range math and session accounting, and a full
// in-process loopback integration run with concurrent clients. The
// integration test is the ISSUE's tier-1 server gate and runs under
// ASan+UBSan and TSan in CI.
#include "server/daemon.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/engine.h"
#include "server/payload.h"
#include "server/wire.h"
#include "util/rng.h"

namespace sc::server {
namespace {

ServiceConfig small_config() {
  ServiceConfig config;
  config.objects = 64;
  config.seed = 11;
  config.policy = "pb";
  config.estimator = "oracle";
  config.cache_fraction = 0.1;
  return config;
}

std::size_t open_fd_count() {
  return static_cast<std::size_t>(std::distance(
      std::filesystem::directory_iterator("/proc/self/fd"),
      std::filesystem::directory_iterator{}));
}

// ---------------------------------------------------------------- wire

TEST(Wire, ScalarCodecsRoundTrip) {
  std::vector<std::uint8_t> buf;
  wire::put_u32(buf, 0xDEADBEEFu);
  wire::put_u64(buf, 0x0123456789ABCDEFull);
  wire::put_f64(buf, -1234.5678);
  ASSERT_EQ(buf.size(), 4u + 8u + 8u);
  EXPECT_EQ(wire::get_u32(buf.data()), 0xDEADBEEFu);
  EXPECT_EQ(wire::get_u64(buf.data() + 4), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(wire::get_f64(buf.data() + 12), -1234.5678);
  // Little-endian on the wire, by byte.
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[3], 0xDE);
}

TEST(Wire, GetRequestRoundTrip) {
  std::vector<std::uint8_t> frame;
  wire::encode_get(frame, wire::GetRequest{42, 1000, 65536});
  ASSERT_EQ(frame.size(), wire::kGetRequestSize);
  EXPECT_EQ(frame[0], wire::kOpGet);
  wire::GetRequest out;
  ASSERT_TRUE(wire::decode_get(frame.data(), frame.size(), out));
  EXPECT_EQ(out.object, 42u);
  EXPECT_EQ(out.offset, 1000u);
  EXPECT_EQ(out.length, 65536u);
  // Truncated or oversized bodies are rejected.
  EXPECT_FALSE(wire::decode_get(frame.data(), frame.size() - 1, out));
  frame.push_back(0);
  EXPECT_FALSE(wire::decode_get(frame.data(), frame.size(), out));
}

// ---------------------------------------------------------------- payload

TEST(Payload, ByteIsDeterministicAndObjectDependent) {
  EXPECT_EQ(payload_byte(1, 0), payload_byte(1, 0));
  // Different objects produce different streams (overwhelmingly).
  int diffs = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    diffs += payload_byte(1, i) != payload_byte(2, i);
  }
  EXPECT_GT(diffs, 0);
}

TEST(Payload, FillMatchesByteAtEveryAlignment) {
  // fill_payload's block fast path must agree with the scalar
  // definition for every start alignment and ragged tail.
  for (std::uint64_t offset = 0; offset < 9; ++offset) {
    for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 31u, 64u}) {
      std::vector<std::uint8_t> buf(len, 0xAA);
      fill_payload(7, offset, buf.data(), len);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(buf[i], payload_byte(7, offset + i))
            << "offset=" << offset << " len=" << len << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------- engine

TEST(ServiceEngine, CatalogIsDeterministicForSeedAndCount) {
  const auto a = ServiceEngine::make_catalog(32, 9);
  const auto b = ServiceEngine::make_catalog(32, 9);
  const auto c = ServiceEngine::make_catalog(32, 10);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.object(i).size_bytes, b.object(i).size_bytes);
    any_diff |= a.object(i).size_bytes != c.object(i).size_bytes;
  }
  EXPECT_TRUE(any_diff);  // the seed actually matters
}

TEST(ServiceEngine, RejectsBadObjectAndBadRange) {
  ServiceEngine engine(small_config());
  EXPECT_EQ(engine.serve_range(engine.catalog().size(), 0, 1).status,
            wire::kBadObject);
  const std::uint64_t size = engine.object_size(0);
  EXPECT_EQ(engine.serve_range(0, size + 1, 0).status, wire::kBadRange);
  EXPECT_EQ(engine.serve_range(0, size - 1, 2).status, wire::kBadRange);
  EXPECT_EQ(engine.serve_range(0, 0, wire::kMaxGetLength + 1).status,
            wire::kBadRange);
  // Zero-length probes and exact-boundary ranges are valid.
  EXPECT_EQ(engine.serve_range(0, size, 0).status, wire::kOk);
  EXPECT_EQ(engine.serve_range(0, size - 1, 1).status, wire::kOk);
}

TEST(ServiceEngine, ByteSplitIsExactAndAdmissionRunsAtOffsetZero) {
  // LRU admits unconditionally; utility policies may legitimately cache
  // a zero prefix for a fast path, which would make this test vacuous.
  ServiceConfig config = small_config();
  config.policy = "lru";
  ServiceEngine engine(config);
  // Cold object: everything comes from origin, and the
  // session-opening request admits a prefix.
  const auto first = engine.serve_range(5, 0, 4096);
  ASSERT_EQ(first.status, wire::kOk);
  EXPECT_EQ(first.cache_bytes, 0u);
  EXPECT_EQ(first.origin_bytes, 4096u);
  const std::uint64_t cached = engine.cached_bytes(5);
  EXPECT_GT(cached, 0u);

  // Second session start: the cached prefix now covers the range head.
  const auto second = engine.serve_range(5, 0, 4096);
  ASSERT_EQ(second.status, wire::kOk);
  EXPECT_EQ(second.cache_bytes + second.origin_bytes, 4096u);
  EXPECT_EQ(second.cache_bytes, std::min<std::uint64_t>(cached, 4096));

  // Mid-stream chunk: the byte split is exactly the prefix clamp, and a
  // non-opening chunk must NOT re-run admission (prefix unchanged).
  const std::uint64_t before = engine.cached_bytes(5);
  const std::uint64_t far = engine.object_size(5) - 4096;
  const auto chunk = engine.serve_range(5, far, 4096);
  ASSERT_EQ(chunk.status, wire::kOk);
  const std::uint64_t expect_cache =
      before > far ? std::min<std::uint64_t>(before - far, 4096) : 0;
  EXPECT_EQ(chunk.cache_bytes, expect_cache);
  EXPECT_EQ(chunk.origin_bytes, 4096u - expect_cache);
  EXPECT_EQ(engine.cached_bytes(5), before);
}

TEST(ServiceEngine, SessionAccountingTracksViewedFraction) {
  ServiceEngine engine(small_config());
  const std::uint64_t size = engine.object_size(2);
  (void)engine.serve_range(2, 0, 1024);
  engine.end_session(2, size / 2);  // departed halfway
  const ServiceStats stats = engine.snapshot();
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_NEAR(stats.mean_viewed_fraction,
              static_cast<double>(size / 2) / static_cast<double>(size), 1e-9);
}

TEST(ServiceEngine, StatsJsonContainsTheCounters) {
  ServiceEngine engine(small_config());
  (void)engine.serve_range(0, 0, 512);
  const std::string json = engine.stats_json();
  EXPECT_NE(json.find("\"requests\": 1"), std::string::npos);
  EXPECT_NE(json.find("hit_ratio"), std::string::npos);
  EXPECT_NE(json.find("capacity_bytes"), std::string::npos);
}

// ---------------------------------------------------------------- daemon

TEST(ProxyDaemon, LoopbackServesConcurrentClientsByteAccurately) {
  const std::size_t fds_before = open_fd_count();
  ServiceEngine engine(small_config());
  ProxyDaemon daemon(engine);
  daemon.start();
  ASSERT_GT(daemon.port(), 0);

  // Concurrent clients stream Zipf-free deterministic schedules: each
  // walks its own object set in chunks and byte-checks every response
  // against the deterministic payload function.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kSessionsPerClient = 12;
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        ProxyClient client("127.0.0.1", daemon.port());
        util::Rng rng(100 + c);
        for (std::size_t s = 0; s < kSessionsPerClient; ++s) {
          const auto object = static_cast<std::uint64_t>(
              rng.uniform() * static_cast<double>(engine.catalog().size() / 2));
          const std::uint64_t size = engine.object_size(object);
          const std::uint64_t budget =
              std::min<std::uint64_t>(size, 48 * 1024);
          for (std::uint64_t off = 0; off < budget; off += 16 * 1024) {
            const std::uint64_t len =
                std::min<std::uint64_t>(16 * 1024, budget - off);
            const auto reply = client.get(object, off, len);
            if (reply.status != wire::kOk) {
              errors[c] = "unexpected status";
              return;
            }
            if (reply.cache_bytes + reply.origin_bytes != len ||
                reply.data.size() != len) {
              errors[c] = "byte split does not cover the range";
              return;
            }
            for (std::size_t i = 0; i < reply.data.size(); ++i) {
              if (reply.data[i] != payload_byte(object, off + i)) {
                errors[c] = "payload mismatch";
                return;
              }
            }
          }
        }
        // Exercise STAT and STATS on a live connection too.
        const auto stat = client.stat(0);
        if (stat.status != wire::kOk || stat.size_bytes == 0) {
          errors[c] = "bad STAT reply";
        }
        if (client.stats().find("requests") == std::string::npos) {
          errors[c] = "bad STATS reply";
        }
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) EXPECT_EQ(e, "");

  // With half the catalog under a 10% cache, repeat accesses hit.
  const ServiceStats stats = engine.snapshot();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.hit_ratio, 0.0);
  EXPECT_GT(stats.sessions, 0u);
  EXPECT_EQ(static_cast<std::size_t>(daemon.connections_accepted()), kClients);

  daemon.stop();
  // Clean shutdown releases every socket: fd count returns to baseline.
  EXPECT_EQ(open_fd_count(), fds_before);
}

TEST(ProxyDaemon, MalformedFramesGetBadRequestNotDisconnect) {
  ServiceEngine engine(small_config());
  ProxyDaemon daemon(engine);
  daemon.start();
  ProxyClient client("127.0.0.1", daemon.port());
  // A GET for an out-of-catalog object is answered, not dropped...
  const auto bad = client.get(1u << 20, 0, 16);
  EXPECT_EQ(bad.status, wire::kBadObject);
  // ...and the connection still works afterwards.
  const auto good = client.get(0, 0, 16);
  EXPECT_EQ(good.status, wire::kOk);
  ASSERT_EQ(good.data.size(), 16u);
  daemon.stop();
}

TEST(ProxyDaemon, StopIsIdempotentAndRestartableEngineStateSurvives) {
  ServiceEngine engine(small_config());
  {
    ProxyDaemon daemon(engine);
    daemon.start();
    ProxyClient client("127.0.0.1", daemon.port());
    (void)client.get(1, 0, 2048);
    daemon.stop();
    daemon.stop();  // idempotent
  }
  // Engine state persists across daemon lifetimes (the daemon is a
  // transport; the engine owns the cache).
  EXPECT_GT(engine.snapshot().requests, 0u);
  ProxyDaemon second(engine);
  second.start();
  ProxyClient client("127.0.0.1", second.port());
  const auto reply = client.get(1, 0, 2048);
  EXPECT_EQ(reply.status, wire::kOk);
  second.stop();
}

}  // namespace
}  // namespace sc::server
