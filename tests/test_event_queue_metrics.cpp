#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace sc::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreaking) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i](double) { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilRespectsHorizon) {
  EventQueue q;
  std::vector<double> fired;
  for (const double t : {0.5, 1.0, 1.5, 2.0}) {
    q.schedule(t, [&fired](double now) { fired.push_back(now); });
  }
  q.run_until(1.0);  // inclusive
  EXPECT_EQ(fired, (std::vector<double>{0.5, 1.0}));
  EXPECT_EQ(q.size(), 2u);
  q.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ActionsReceiveTheirScheduledTime) {
  EventQueue q;
  double seen = -1;
  q.schedule(7.5, [&](double now) { seen = now; });
  q.run_all();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueue, NestedSchedulingWithinHorizon) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) {
    order.push_back(1);
    q.schedule(1.5, [&](double) { order.push_back(2); });
    q.schedule(5.0, [&](double) { order.push_back(9); });
  });
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // the 5.0 event waits
  EXPECT_EQ(q.size(), 1u);
}

TEST(ObservationQueue, PodEventsDrainInTimeThenFifoOrder) {
  // Regression for the POD specialization: same-timestamp events must
  // keep insertion (FIFO) order, exactly like the callback queue.
  ObservationQueue q;
  q.reserve(8);
  q.schedule(2.0, ObservationEvent{20, 1.0});
  q.schedule(1.0, ObservationEvent{10, 1.0});
  q.schedule(1.0, ObservationEvent{11, 2.0});
  q.schedule(1.0, ObservationEvent{12, 3.0});
  q.schedule(0.5, ObservationEvent{5, 1.0});

  std::vector<std::size_t> paths;
  std::vector<double> times;
  q.run_until(1.0, [&](double now, const ObservationEvent& ev) {
    times.push_back(now);
    paths.push_back(ev.path);
  });
  EXPECT_EQ(paths, (std::vector<std::size_t>{5, 10, 11, 12}));
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.0, 1.0, 1.0}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);

  q.run_all([&](double, const ObservationEvent& ev) {
    paths.push_back(ev.path);
  });
  EXPECT_EQ(paths.back(), 20u);
  EXPECT_TRUE(q.empty());
}

TEST(ObservationQueue, PayloadsSurviveInterleavedScheduling) {
  ObservationQueue q;
  // Interleave schedule/run to exercise heap reuse of popped slots.
  std::vector<double> seen;
  q.schedule(1.0, ObservationEvent{1, 10.0});
  q.schedule(3.0, ObservationEvent{3, 30.0});
  q.run_until(1.5, [&](double, const ObservationEvent& ev) {
    seen.push_back(ev.throughput);
  });
  q.schedule(2.0, ObservationEvent{2, 20.0});
  q.run_all([&](double, const ObservationEvent& ev) {
    seen.push_back(ev.throughput);
  });
  EXPECT_EQ(seen, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(Metrics, AccumulatesPerRequestOutcomes) {
  MetricsCollector m;
  ServiceOutcome hit;
  hit.delay_s = 0.0;
  hit.quality = 1.0;
  hit.quality_continuous = 1.0;
  hit.immediate = true;
  hit.bytes_from_cache = 600.0;
  hit.bytes_from_origin = 400.0;

  ServiceOutcome miss;
  miss.delay_s = 50.0;
  miss.quality = 0.5;
  miss.quality_continuous = 0.6;
  miss.immediate = false;
  miss.bytes_from_cache = 0.0;
  miss.bytes_from_origin = 1000.0;

  m.record(hit, 5.0);
  m.record(miss, 7.0);

  EXPECT_EQ(m.requests(), 2u);
  EXPECT_DOUBLE_EQ(m.traffic_reduction_ratio(), 600.0 / 2000.0);
  EXPECT_DOUBLE_EQ(m.average_delay_s(), 25.0);
  EXPECT_DOUBLE_EQ(m.average_quality(), 0.8);             // continuous
  EXPECT_DOUBLE_EQ(m.average_quality_quantized(), 0.75);  // (1 + 0.5) / 2
  EXPECT_DOUBLE_EQ(m.total_added_value(), 5.0);  // only the immediate one
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(m.immediate_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(m.bytes_from_cache(), 600.0);
  EXPECT_DOUBLE_EQ(m.bytes_from_origin(), 1400.0);
}

TEST(Metrics, EmptyCollectorIsZero) {
  const MetricsCollector m;
  EXPECT_EQ(m.requests(), 0u);
  EXPECT_DOUBLE_EQ(m.traffic_reduction_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.immediate_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_added_value(), 0.0);
}

TEST(Metrics, FillTrafficTrackedSeparately) {
  MetricsCollector m;
  m.record_fill(123.0);
  m.record_fill(77.0);
  EXPECT_DOUBLE_EQ(m.fill_bytes(), 200.0);
  // Fill traffic must not affect the §3.3 traffic reduction ratio.
  EXPECT_DOUBLE_EQ(m.traffic_reduction_ratio(), 0.0);
}

}  // namespace
}  // namespace sc::sim
