#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sc::stats {
namespace {

TEST(RunningStats, MatchesNaiveComputation) {
  util::Rng rng(1);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-10, 10);
    xs.push_back(v);
    rs.add(v);
  }
  double mean = 0;
  for (double v : xs) mean += v;
  mean /= xs.size();
  double var = 0;
  for (double v : xs) var += (v - mean) * (v - mean);
  var /= xs.size();
  EXPECT_NEAR(rs.mean(), mean, 1e-9);
  EXPECT_NEAR(rs.variance(), var, 1e-9);
  EXPECT_NEAR(rs.stddev(), std::sqrt(var), 1e-9);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, MinMaxSum) {
  RunningStats rs;
  for (const double v : {3.0, -1.0, 7.0, 2.0}) rs.add(v);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 11.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  util::Rng rng(2);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // adopt
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 50), 1.5);  // interpolation
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101), std::invalid_argument);
}

TEST(VectorHelpers, MeanAndCov) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
  EXPECT_NEAR(cov_of({2.0, 4.0}), 1.0 / 3.0, 1e-12);
}

TEST(Autocorrelation, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(autocorrelation({5, 5, 5, 5, 5}, 1), 0.0);
}

TEST(Autocorrelation, AlternatingSeriesIsNegative) {
  std::vector<double> alt;
  for (int i = 0; i < 1000; ++i) alt.push_back(i % 2 ? 1.0 : -1.0);
  EXPECT_LT(autocorrelation(alt, 1), -0.9);
}

TEST(Autocorrelation, Ar1RecoversPhi) {
  util::Rng rng(3);
  const double phi = 0.8;
  std::vector<double> series;
  double x = 0;
  for (int i = 0; i < 50000; ++i) {
    x = phi * x + rng.normal(0.0, 1.0);
    series.push_back(x);
  }
  EXPECT_NEAR(autocorrelation(series, 1), phi, 0.03);
  EXPECT_NEAR(autocorrelation(series, 2), phi * phi, 0.04);
}

TEST(Autocorrelation, InsufficientData) {
  EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0}, 5), 0.0);
}

TEST(LatencySummary, KnownDistribution) {
  // 1..100 shuffled: the cuts land on the interpolated order
  // statistics 50.5 / 95.05 / 99.01 (same formula as percentile()).
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  util::Rng rng(9);
  for (std::size_t i = xs.size(); i > 1; --i) {
    std::swap(xs[i - 1],
              xs[static_cast<std::size_t>(rng.uniform() *
                                          static_cast<double>(i))]);
  }
  const LatencySummary s = summarize_latencies(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 50.5);
  EXPECT_DOUBLE_EQ(s.p95, 95.05);
  EXPECT_DOUBLE_EQ(s.p99, 99.01);
  // The input was sorted in place (the documented contract).
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
}

TEST(LatencySummary, AgreesWithPercentileOnRandomData) {
  util::Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  const std::vector<double> copy = xs;
  const LatencySummary s = summarize_latencies(xs);
  EXPECT_DOUBLE_EQ(s.p50, percentile(copy, 50.0));
  EXPECT_DOUBLE_EQ(s.p95, percentile(copy, 95.0));
  EXPECT_DOUBLE_EQ(s.p99, percentile(copy, 99.0));
}

TEST(LatencySummary, EmptyAndSingle) {
  std::vector<double> empty;
  const LatencySummary z = summarize_latencies(empty);
  EXPECT_EQ(z.count, 0u);
  EXPECT_DOUBLE_EQ(z.mean, 0.0);
  EXPECT_DOUBLE_EQ(z.p50, 0.0);
  EXPECT_DOUBLE_EQ(z.p99, 0.0);

  std::vector<double> one{4.2};
  const LatencySummary s = summarize_latencies(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.2);
  EXPECT_DOUBLE_EQ(s.min, 4.2);
  EXPECT_DOUBLE_EQ(s.max, 4.2);
  EXPECT_DOUBLE_EQ(s.p50, 4.2);
  EXPECT_DOUBLE_EQ(s.p95, 4.2);
  EXPECT_DOUBLE_EQ(s.p99, 4.2);
}

}  // namespace
}  // namespace sc::stats
