// Crash-safe persistence, bottom-up: the CRC primitive, snapshot +
// journal round trips at the Persistence layer, warm recovery through a
// full ServiceEngine (snapshot-only, journal replay after a no-flush
// "crash", config mismatch), the StateAuditor's invariant checks, and a
// seeded corruption fuzzer over both file kinds — a damaged persist
// directory may cost warmth, never correctness or a crash.
#include "server/persist.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <stdlib.h>

#include "cache/policy.h"
#include "cache/store.h"
#include "net/estimator.h"
#include "server/engine.h"
#include "server/wire.h"
#include "sim/state_auditor.h"
#include "util/rng.h"
#include "workload/object_catalog.h"

namespace sc::server::persist {
namespace {

/// Fresh temp directory, removed (recursively) on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/sc-persist-test-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return data;
}

void spit(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!data.empty()) {
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  }
  std::fclose(f);
}

// ----------------------------------------------------------------- crc

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char* msg = "123456789";
  EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, ChainsIncrementally) {
  const char* msg = "123456789";
  const std::uint32_t whole = crc32(msg, 9);
  const std::uint32_t part = crc32(msg + 4, 5, crc32(msg, 4));
  EXPECT_EQ(part, whole);
}

// ---------------------------------------------- persistence layer

SnapshotState sample_state() {
  SnapshotState state;
  state.objects = 8;
  state.seed = 7;
  state.policy_spec = "lru";
  state.estimator_spec = "oracle";
  state.capacity_bytes = 5000.0;
  state.engine_now_s = 12.5;
  state.store = {{1, 300.0}, {4, 700.0}};
  state.policy.freq = {0, 2, 0, 0, 5, 0, 0, 0};
  state.policy.heap = {{1, 0.25}, {4, 0.5}};
  state.policy.kernel = {3.0, 1.0, 2.0};
  state.estimator = {10.0, 20.0};
  return state;
}

TEST(Persistence, SnapshotRoundTripsEveryField) {
  TempDir dir;
  Persistence writer(PersistConfig{dir.path, 30.0});
  ASSERT_TRUE(writer.write_snapshot(sample_state()));
  EXPECT_EQ(writer.snapshots_written(), 1u);

  Persistence reader(PersistConfig{dir.path, 30.0});
  RecoveryInfo info;
  const auto got = reader.recover(&info);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(info.warm);
  const SnapshotState want = sample_state();
  EXPECT_EQ(got->objects, want.objects);
  EXPECT_EQ(got->seed, want.seed);
  EXPECT_EQ(got->policy_spec, want.policy_spec);
  EXPECT_EQ(got->estimator_spec, want.estimator_spec);
  EXPECT_DOUBLE_EQ(got->capacity_bytes, want.capacity_bytes);
  EXPECT_DOUBLE_EQ(got->engine_now_s, want.engine_now_s);
  EXPECT_EQ(got->store, want.store);
  EXPECT_EQ(got->policy.freq, want.policy.freq);
  EXPECT_EQ(got->policy.heap, want.policy.heap);
  EXPECT_EQ(got->policy.kernel, want.policy.kernel);
  EXPECT_EQ(got->estimator, want.estimator);
}

TEST(Persistence, JournalReplayIsLastWriterWins) {
  TempDir dir;
  {
    Persistence p(PersistConfig{dir.path, 30.0});
    ASSERT_TRUE(p.write_snapshot(sample_state()));
    // Object 4 shrinks twice (absolute values: the last one wins),
    // object 2 appears, object 1 is erased.
    p.append(JournalRecord{4, 500.0, 6.0, 0.4, true});
    p.append(JournalRecord{4, 400.0, 7.0, 0.3, true});
    p.append(JournalRecord{2, 100.0, 1.0, 0.9, true});
    p.append(JournalRecord{1, 0.0, 2.0, 0.0, false});
    EXPECT_EQ(p.records_appended(), 4u);
  }
  Persistence reader(PersistConfig{dir.path, 30.0});
  RecoveryInfo info;
  const auto got = reader.recover(&info);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(info.journal_records, 4u);
  const std::vector<std::pair<workload::ObjectId, double>> want_store = {
      {2, 100.0}, {4, 400.0}};
  EXPECT_EQ(got->store, want_store);
  EXPECT_DOUBLE_EQ(got->policy.freq.at(4), 7.0);
  EXPECT_DOUBLE_EQ(got->policy.freq.at(2), 1.0);
  const std::vector<std::pair<workload::ObjectId, double>> want_heap = {
      {2, 0.9}, {4, 0.3}};
  EXPECT_EQ(got->policy.heap, want_heap);
}

TEST(Persistence, TornJournalTailIsDiscarded) {
  TempDir dir;
  std::string journal;
  {
    Persistence p(PersistConfig{dir.path, 30.0});
    ASSERT_TRUE(p.write_snapshot(sample_state()));
    p.append(JournalRecord{2, 100.0, 1.0, 0.9, true});
    // write_snapshot rotated to the *other* slot before committing, so
    // the journal that replays on recovery pairs with the slot the
    // snapshot landed in.
    journal = p.journal_path(0);
    if (slurp(journal).empty()) journal = p.journal_path(1);
  }
  // A machine crash mid-append: garbage after the last intact record.
  auto bytes = slurp(journal);
  ASSERT_FALSE(bytes.empty());
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  spit(journal, bytes);

  Persistence reader(PersistConfig{dir.path, 30.0});
  RecoveryInfo info;
  const auto got = reader.recover(&info);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(info.journal_records, 1u);  // the intact prefix, nothing more
  EXPECT_DOUBLE_EQ(got->policy.freq.at(2), 1.0);
}

TEST(Persistence, CorruptSnapshotFallsBackToTheOtherSlot) {
  TempDir dir;
  Persistence writer(PersistConfig{dir.path, 30.0});
  SnapshotState first = sample_state();
  ASSERT_TRUE(writer.write_snapshot(first));  // sequence 1
  SnapshotState second = sample_state();
  second.store = {{5, 42.0}};
  second.policy.freq.assign(8, 0.0);
  second.policy.heap = {{5, 1.0}};
  ASSERT_TRUE(writer.write_snapshot(second));  // sequence 2, other slot

  // Find and corrupt the newer snapshot (the one carrying object 5).
  for (int slot = 0; slot < 2; ++slot) {
    auto bytes = slurp(writer.snapshot_path(slot));
    ASSERT_FALSE(bytes.empty());
    bool is_second = false;
    // Cheap discriminator: the second snapshot is the one whose store
    // has exactly one entry; flip a byte in the middle of each and see
    // which recovery sequence survives instead of parsing here.
    bytes[bytes.size() / 2] ^= 0xFF;
    spit(writer.snapshot_path(slot), bytes);
    Persistence reader(PersistConfig{dir.path, 30.0});
    RecoveryInfo info;
    const auto got = reader.recover(&info);
    ASSERT_TRUE(got.has_value());
    is_second = got->store == second.store;
    if (!is_second) {
      // We corrupted the newer slot: recovery fell back to the first.
      EXPECT_EQ(got->store, first.store);
      EXPECT_EQ(got->sequence, 1u);
      return;
    }
    // We corrupted the older slot; restore it and try the other.
    bytes[bytes.size() / 2] ^= 0xFF;
    spit(writer.snapshot_path(slot), bytes);
  }
  FAIL() << "corrupting either slot never forced a fallback";
}

TEST(Persistence, EmptyDirectoryIsAColdStart) {
  TempDir dir;
  Persistence p(PersistConfig{dir.path, 30.0});
  RecoveryInfo info;
  EXPECT_FALSE(p.recover(&info).has_value());
  EXPECT_FALSE(info.warm);
}

// --------------------------------------------- engine-level recovery

ServiceConfig persist_config(const std::string& dir) {
  ServiceConfig config;
  config.objects = 64;
  config.seed = 11;
  config.policy = "lru";
  config.estimator = "ewma";
  config.cache_fraction = 0.2;
  config.persist.dir = dir;
  config.persist.snapshot_interval_s = 1e9;  // only explicit flushes
  return config;
}

/// Serve offset-0 ranges for `objects` so admissions happen.
void load_engine(ServiceEngine& engine, std::size_t objects) {
  for (std::uint64_t id = 0; id < objects; ++id) {
    const std::uint64_t len =
        std::min<std::uint64_t>(engine.object_size(id), 4096);
    const ServeResult res = engine.serve_range(id, 0, len);
    ASSERT_EQ(res.status, wire::kOk);
  }
}

TEST(EngineRecovery, WarmStartAfterGracefulFlushRestoresTheCache) {
  TempDir dir;
  std::vector<std::uint64_t> cached(64, 0);
  {
    ServiceEngine engine(persist_config(dir.path));
    EXPECT_FALSE(engine.warm_start());
    load_engine(engine, 16);
    engine.flush_snapshot();
    for (std::uint64_t id = 0; id < 64; ++id) {
      cached[id] = engine.cached_bytes(id);
    }
  }
  ServiceEngine revived(persist_config(dir.path));
  EXPECT_TRUE(revived.warm_start()) << revived.recovery_detail();
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(revived.cached_bytes(id), cached[id]) << "object " << id;
  }
  EXPECT_TRUE(revived.audit().ok()) << revived.audit().to_string();
  EXPECT_TRUE(revived.snapshot().warm_start);
}

TEST(EngineRecovery, JournalAloneRecoversAfterACrashWithoutFlush) {
  TempDir dir;
  std::vector<std::uint64_t> cached(64, 0);
  {
    ServiceEngine engine(persist_config(dir.path));
    // The constructor wrote the (empty) baseline snapshot; everything
    // after lands in the journal only. No flush before destruction —
    // this is the SIGKILL case.
    load_engine(engine, 16);
    for (std::uint64_t id = 0; id < 64; ++id) {
      cached[id] = engine.cached_bytes(id);
    }
  }
  ServiceEngine revived(persist_config(dir.path));
  EXPECT_TRUE(revived.warm_start()) << revived.recovery_detail();
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(revived.cached_bytes(id), cached[id]) << "object " << id;
  }
  EXPECT_TRUE(revived.audit().ok()) << revived.audit().to_string();
}

TEST(EngineRecovery, ConfigMismatchForcesACleanColdStart) {
  TempDir dir;
  {
    ServiceEngine engine(persist_config(dir.path));
    load_engine(engine, 8);
    engine.flush_snapshot();
  }
  ServiceConfig other = persist_config(dir.path);
  other.policy = "pb";  // a pb daemon must not trust lru state
  ServiceEngine revived(other);
  EXPECT_FALSE(revived.warm_start());
  EXPECT_TRUE(revived.audit().ok());
  // And it serves fine from cold.
  const ServeResult res = revived.serve_range(0, 0, 1024);
  EXPECT_EQ(res.status, wire::kOk);
}

TEST(EngineRecovery, DisabledPersistenceIsInert) {
  ServiceConfig config = persist_config("");
  config.persist.dir.clear();
  ServiceEngine engine(config);
  load_engine(engine, 8);
  const ServiceStats stats = engine.snapshot();
  EXPECT_FALSE(stats.warm_start);
  EXPECT_EQ(stats.snapshots_written, 0u);
  EXPECT_EQ(stats.journal_records, 0u);
  EXPECT_NE(engine.stats_json().find("\"warm_start\": false"),
            std::string::npos);
}

TEST(EngineRecovery, CorruptionFuzzNeverCrashesAndAlwaysAudits) {
  // Whatever the damage — truncation or bit flips, snapshot or journal —
  // the engine must come up serving correct bytes: warm when the damage
  // spared a valid prefix, cold otherwise, crashed never.
  util::Rng rng(2026);
  for (int iter = 0; iter < 40; ++iter) {
    TempDir dir;
    {
      ServiceEngine engine(persist_config(dir.path));
      load_engine(engine, 12);
      engine.flush_snapshot();
      load_engine(engine, 24);  // post-snapshot journal tail
    }
    Persistence probe(PersistConfig{dir.path, 30.0});
    std::vector<std::string> files;
    for (int slot = 0; slot < 2; ++slot) {
      files.push_back(probe.snapshot_path(slot));
      files.push_back(probe.journal_path(slot));
    }
    // Damage 1-3 files per iteration.
    const int wounds = 1 + static_cast<int>(rng.uniform() * 3.0);
    for (int w = 0; w < wounds; ++w) {
      const auto& victim =
          files[static_cast<std::size_t>(rng.uniform() * 4.0) % 4];
      auto bytes = slurp(victim);
      if (bytes.empty()) continue;
      const auto pos =
          static_cast<std::size_t>(rng.uniform() *
                                   static_cast<double>(bytes.size()));
      if (rng.uniform() < 0.5) {
        bytes.resize(pos);  // truncate (torn write)
      } else {
        bytes[std::min(pos, bytes.size() - 1)] ^= 0xFF;  // bit rot
      }
      spit(victim, bytes);
    }
    ServiceEngine revived(persist_config(dir.path));
    const auto report = revived.audit();
    EXPECT_TRUE(report.ok())
        << "iter " << iter << ": " << report.to_string() << " ("
        << revived.recovery_detail() << ")";
    const ServeResult res = revived.serve_range(3, 0, 2048);
    EXPECT_EQ(res.status, wire::kOk) << "iter " << iter;
  }
}

// ------------------------------------------------- policy/estimator

/// Estimator with fixed per-path values (the test_policy idiom).
class FakeEstimator final : public net::BandwidthEstimator {
 public:
  explicit FakeEstimator(std::vector<double> values)
      : values_(std::move(values)) {}
  void observe(net::PathId, double, double) override {}
  double estimate(net::PathId path, double) override {
    return values_.at(path);
  }

 private:
  std::vector<double> values_;
};

workload::Catalog tiny_catalog(std::size_t n) {
  std::vector<workload::StreamObject> objects;
  for (std::size_t i = 0; i < n; ++i) {
    workload::StreamObject o;
    o.id = i;
    o.duration_s = 100.0;
    o.bitrate = 10.0;
    o.size_bytes = 1000.0;
    o.value = 1.0;
    o.path = i;
    objects.push_back(o);
  }
  return workload::Catalog::from_objects(std::move(objects));
}

TEST(PolicyState, LruSnapshotRoundTripsIncludingKernelRecency) {
  const auto catalog = tiny_catalog(4);
  FakeEstimator est({4.0, 4.0, 4.0, 4.0});
  cache::LruPolicy policy(catalog, est);
  cache::PartialStore store(10000.0);
  policy.on_access(1, 1.0, store);
  policy.on_access(2, 2.0, store);
  policy.on_access(1, 3.0, store);
  const cache::PolicySnapshot saved = policy.save_state();

  cache::LruPolicy other(catalog, est);
  ASSERT_TRUE(other.load_state(saved));
  const cache::PolicySnapshot reloaded = other.save_state();
  EXPECT_EQ(reloaded.freq, saved.freq);
  EXPECT_EQ(reloaded.heap, saved.heap);
  EXPECT_EQ(reloaded.kernel, saved.kernel);
  // The recovered policy agrees with the store it was saved against.
  EXPECT_TRUE(other.check_consistency(store, nullptr));
}

TEST(PolicyState, MalformedSnapshotsAreRejectedNotApplied) {
  const auto catalog = tiny_catalog(4);
  FakeEstimator est({4.0, 4.0, 4.0, 4.0});
  cache::LruPolicy policy(catalog, est);
  cache::PartialStore store(10000.0);
  policy.on_access(0, 1.0, store);
  const cache::PolicySnapshot good = policy.save_state();

  cache::LruPolicy target(catalog, est);
  cache::PolicySnapshot bad = good;
  bad.freq.resize(2);  // wrong shape
  EXPECT_FALSE(target.load_state(bad));
  bad = good;
  bad.heap.push_back({99, 1.0});  // id out of range
  EXPECT_FALSE(target.load_state(bad));
  bad = good;
  bad.kernel.clear();  // LRU kernel blob must carry clock + recency
  EXPECT_FALSE(target.load_state(bad));
  // After every rejection the target still loads the good state.
  EXPECT_TRUE(target.load_state(good));
}

TEST(EstimatorState, KernelsRoundTripAndRejectWrongShapes) {
  net::PassiveEwmaEstimator ewma(3, 0.2, 50.0);
  ewma.observe(1, 80.0, 0.0);
  const auto blob = ewma.save_state();
  net::PassiveEwmaEstimator other(3, 0.2, 50.0);
  ASSERT_TRUE(other.load_state(blob));
  EXPECT_DOUBLE_EQ(other.estimate(1, 0.0), ewma.estimate(1, 0.0));
  EXPECT_FALSE(other.load_state(std::vector<double>(2, 1.0)));

  net::LastSampleEstimator last(2, 10.0);
  last.observe(0, 30.0, 0.0);
  net::LastSampleEstimator last2(2, 10.0);
  ASSERT_TRUE(last2.load_state(last.save_state()));
  EXPECT_DOUBLE_EQ(last2.estimate(0, 0.0), 30.0);
}

// ------------------------------------------------------- auditor

TEST(StateAuditor, CleanStateAuditsClean) {
  cache::PartialStore store(1000.0);
  store.set_cached(1, 200.0);
  store.set_cached(2, 300.0);
  const auto report = sim::StateAuditor::audit(store);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(StateAuditor, DetectsAPolicyIndexDesync) {
  const auto catalog = tiny_catalog(4);
  FakeEstimator est({4.0, 4.0, 4.0, 4.0});
  cache::LruPolicy policy(catalog, est);
  cache::PartialStore store(10000.0);
  policy.on_access(1, 1.0, store);
  EXPECT_TRUE(sim::StateAuditor::audit(store, &policy).ok());
  // Mutate the store behind the policy's back: the index now tracks an
  // id set the store does not have.
  store.set_cached(3, 500.0);
  const auto report = sim::StateAuditor::audit(store, &policy);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_json().find("\"ok\": false"), std::string::npos);
}

TEST(StateAuditor, ReportSerializesToJson) {
  cache::PartialStore store(100.0);
  const auto report = sim::StateAuditor::audit(store);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"checks\":"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": []"), std::string::npos);
}

}  // namespace
}  // namespace sc::server::persist
