// workload::RequestStream property tests: the streaming engine's whole
// contract is that results are BYTE-IDENTICAL to the materialized path —
// for every registered (policy, estimator) pair, every chunk size, every
// thread count, every scenario mode, and for trace-file re-streaming.
// Every comparison below is exact (==) on doubles: "close" would hide
// a reordered floating-point reduction.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "workload/generator.h"
#include "workload/request_stream.h"
#include "workload/trace.h"

namespace sc::workload {
namespace {

WorkloadConfig small_config(std::size_t objects = 200,
                            std::size_t requests = 3000,
                            double alpha = 0.73) {
  WorkloadConfig cfg;
  cfg.catalog.num_objects = objects;
  cfg.trace.num_requests = requests;
  cfg.trace.zipf_alpha = alpha;
  return cfg;
}

/// The shared-RNG contract used by core::SweepRunner: catalog draws
/// first, then the trace; a synthetic stream snapshots the post-catalog
/// state.
RequestStream stream_for(const WorkloadConfig& cfg, std::uint64_t seed) {
  util::Rng rng(seed);
  auto catalog =
      std::make_shared<const Catalog>(Catalog::generate(cfg.catalog, rng));
  return RequestStream::synthetic(catalog, cfg.trace, std::move(rng));
}

TEST(RequestStream, SyntheticMatchesGenerateWorkloadExactly) {
  const auto cfg = small_config();
  util::Rng rng(7);
  const Workload w = generate_workload(cfg, rng);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}}) {
    RequestStream stream = stream_for(cfg, 7);
    ASSERT_EQ(stream.num_requests(), w.requests.size());
    RequestCursor cursor;
    cursor.bind(stream, chunk);
    std::size_t i = 0;
    while (const RequestBlock* block = cursor.next()) {
      ASSERT_EQ(block->first, i);
      for (std::size_t k = 0; k < block->size; ++k, ++i) {
        ASSERT_LT(i, w.requests.size());
        EXPECT_EQ(block->time_s[k], w.requests[i].time_s) << "chunk " << chunk;
        EXPECT_EQ(block->object[k], w.requests[i].object);
        EXPECT_EQ(block->view_s[k], w.requests[i].view_s);
      }
    }
    EXPECT_EQ(i, w.requests.size()) << "chunk " << chunk;
    // And the catalogs come from the same draws.
    ASSERT_EQ(stream.catalog().size(), w.catalog.size());
    for (std::size_t o = 0; o < w.catalog.size(); ++o) {
      EXPECT_EQ(stream.catalog().objects()[o].duration_s,
                w.catalog.objects()[o].duration_s);
      EXPECT_EQ(stream.catalog().objects()[o].bitrate,
                w.catalog.objects()[o].bitrate);
    }
  }
}

TEST(RequestStream, MaterializeRoundTripsAndRewinds) {
  const auto cfg = small_config(100, 500);
  RequestStream stream = stream_for(cfg, 11);
  const std::vector<Request> a = stream.materialize();
  const std::vector<Request> b =
      stream.materialize();  // cursors never consume the stream
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].object, b[i].object);
  }
}

TEST(RequestStream, ReplayRejectsNullAndZeroChunk) {
  EXPECT_THROW((void)RequestStream::replay(nullptr), std::invalid_argument);
  RequestStream stream = stream_for(small_config(50, 100), 3);
  RequestCursor cursor;
  EXPECT_THROW(cursor.bind(stream, 0), std::invalid_argument);
}

TEST(RequestStream, TraceFileStreamMatchesReplay) {
  util::Rng rng(13);
  const Workload w = generate_workload(small_config(80, 800), rng);
  const auto path =
      std::filesystem::temp_directory_path() / "sc_stream_roundtrip.trace";
  write_trace(w, path);

  RequestStream stream = RequestStream::trace_file(path);
  ASSERT_EQ(stream.num_requests(), w.requests.size());
  ASSERT_EQ(stream.catalog().size(), w.catalog.size());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}}) {
    RequestCursor cursor;
    cursor.bind(stream, chunk);
    std::size_t i = 0;
    while (const RequestBlock* block = cursor.next()) {
      for (std::size_t k = 0; k < block->size; ++k, ++i) {
        EXPECT_EQ(block->time_s[k], w.requests[i].time_s);
        EXPECT_EQ(block->object[k], w.requests[i].object);
        EXPECT_EQ(block->view_s[k], w.requests[i].view_s);
      }
    }
    EXPECT_EQ(i, w.requests.size()) << "chunk " << chunk;
  }
  std::filesystem::remove(path);
}

TEST(RequestStream, TraceFileValidatesUpFront) {
  const auto path =
      std::filesystem::temp_directory_path() / "sc_stream_bad.trace";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("streamcache-trace v1 2 5\n", f);  // declares 5, holds 0
    std::fputs("O 0 300 1.5e6 4.5e8\n", f);
    std::fputs("O 1 300 1.5e6 4.5e8\n", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)RequestStream::trace_file(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sc::workload

namespace sc::core {
namespace {

void expect_identical(const AveragedMetrics& a, const AveragedMetrics& b,
                      const std::string& label) {
  EXPECT_EQ(a.runs, b.runs) << label;
  EXPECT_EQ(a.traffic_reduction, b.traffic_reduction) << label;
  EXPECT_EQ(a.traffic_reduction_sd, b.traffic_reduction_sd) << label;
  EXPECT_EQ(a.delay_s, b.delay_s) << label;
  EXPECT_EQ(a.delay_s_sd, b.delay_s_sd) << label;
  EXPECT_EQ(a.quality, b.quality) << label;
  EXPECT_EQ(a.quality_sd, b.quality_sd) << label;
  EXPECT_EQ(a.added_value, b.added_value) << label;
  EXPECT_EQ(a.added_value_sd, b.added_value_sd) << label;
  EXPECT_EQ(a.hit_ratio, b.hit_ratio) << label;
  EXPECT_EQ(a.immediate_ratio, b.immediate_ratio) << label;
  EXPECT_EQ(a.fill_bytes, b.fill_bytes) << label;
  EXPECT_EQ(a.occupancy_bytes, b.occupancy_bytes) << label;
}

ExperimentConfig base_config(std::size_t threads, std::size_t chunk) {
  ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 200;
  cfg.workload.trace.num_requests = 3000;
  cfg.runs = 2;
  cfg.threads = threads;
  cfg.sim.stream_chunk = chunk;
  cfg.sim.cache_capacity_bytes =
      capacity_for_fraction(cfg.workload.catalog, 0.02);
  return cfg;
}

AveragedMetrics run_mode(ExperimentConfig cfg, const Scenario& scenario,
                         workload::StreamingMode mode) {
  cfg.streaming = mode;
  return run_experiment(cfg, scenario);
}

TEST(StreamedSimulation, MatchesMaterializedForEveryRegistryPair) {
  // The full cross: every registered (policy, estimator) pair, chunk
  // sizes {1, 7, 4096}, threads {1, 4}. Exact equality on every metric.
  const Scenario scenario = constant_scenario();
  for (const auto& policy : registry::list(registry::Kind::kPolicy)) {
    for (const auto& estimator :
         registry::list(registry::Kind::kEstimator)) {
      for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                      std::size_t{4096}}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          ExperimentConfig cfg = base_config(threads, chunk);
          cfg.sim.policy = policy.name;
          cfg.sim.estimator = estimator.name;
          const std::string label = policy.name + "/" + estimator.name +
                                    " chunk=" + std::to_string(chunk) +
                                    " threads=" + std::to_string(threads);
          expect_identical(
              run_mode(cfg, scenario, workload::StreamingMode::kMaterialize),
              run_mode(cfg, scenario, workload::StreamingMode::kStream),
              label);
        }
      }
    }
  }
}

TEST(StreamedSimulation, MatchesMaterializedUnderVariableBandwidth) {
  // The variable-bandwidth loop takes the sequential per-request
  // sampling branch instead of the batched gather; both scenario modes
  // must still be bit-identical streamed vs materialized.
  for (const Scenario& scenario :
       {measured_variability_scenario(),
        timeseries_scenario(net::MeasuredPath::kTaiwan)}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ExperimentConfig cfg = base_config(threads, 64);
      cfg.sim.policy = "pb";
      cfg.sim.estimator = "ewma";
      expect_identical(
          run_mode(cfg, scenario, workload::StreamingMode::kMaterialize),
          run_mode(cfg, scenario, workload::StreamingMode::kStream),
          scenario.name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(StreamedSimulation, MatchesMaterializedWithExtensionsEnabled) {
  // Patching re-deliveries and session dynamics read per-request fields
  // (now_s, view_s) off the block; keep them identical too.
  const Scenario scenario = constant_scenario();
  ExperimentConfig cfg = base_config(1, 37);
  cfg.sim.policy = "pb";
  cfg.sim.patching.enabled = true;
  cfg.sim.interactivity = sim::InteractivityConfig::parse("empirical");
  expect_identical(
      run_mode(cfg, scenario, workload::StreamingMode::kMaterialize),
      run_mode(cfg, scenario, workload::StreamingMode::kStream),
      "patching+interactivity");
}

TEST(StreamedSimulation, MatchesMaterializedOnRandomWorkloads) {
  // Property sweep over randomized workload shapes: seeds drive the
  // shape parameters, so failures reproduce exactly.
  const Scenario scenario = constant_scenario();
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng shape(seed * 977);
    ExperimentConfig cfg = base_config(/*threads=*/seed % 2 == 0 ? 4 : 1,
                                       /*chunk=*/static_cast<std::size_t>(shape.uniform_int(1, 512)));
    cfg.workload.catalog.num_objects = static_cast<std::size_t>(shape.uniform_int(50, 350));
    cfg.workload.trace.num_requests = static_cast<std::size_t>(shape.uniform_int(500, 4500));
    cfg.workload.trace.zipf_alpha = 0.4 + 0.1 * static_cast<double>(seed % 7);
    cfg.base_seed = seed;
    cfg.sim.policy = seed % 2 == 0 ? "pb" : "hybrid";
    const std::string label = "seed=" + std::to_string(seed);
    expect_identical(
        run_mode(cfg, scenario, workload::StreamingMode::kMaterialize),
        run_mode(cfg, scenario, workload::StreamingMode::kStream), label);
  }
}

TEST(StreamedSimulation, SweepSharesOneStreamPerAlphaRun) {
  // Under kStream the runner builds one RequestStream per (alpha, run)
  // and shares it across cells, mirroring the materialized sharing.
  ExperimentConfig cfg = base_config(1, 128);
  cfg.streaming = workload::StreamingMode::kStream;
  SweepRunner runner(cfg, constant_scenario());
  std::vector<SweepCell> cells;
  for (const char* policy : {"pb", "if"}) {
    cells.push_back(SweepCell{policy, 0.73, 0.02, {}, {}, {}});
    cells.push_back(SweepCell{policy, 1.0, 0.02, {}, {}, {}});
  }
  SweepStats stats;
  (void)runner.run(cells, &stats);
  EXPECT_EQ(stats.workloads_generated, 2 * cfg.runs);  // alphas x runs
}

}  // namespace
}  // namespace sc::core
