#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "net/bandwidth_model.h"
#include "net/variability.h"

namespace sc::sim {
namespace {

workload::Workload make_workload(std::size_t objects, std::size_t requests,
                                 std::uint64_t seed) {
  workload::WorkloadConfig cfg;
  cfg.catalog.num_objects = objects;
  cfg.trace.num_requests = requests;
  util::Rng rng(seed);
  return workload::generate_workload(cfg, rng);
}

SimulationConfig base_config(double capacity) {
  SimulationConfig cfg;
  cfg.cache_capacity_bytes = capacity;
  cfg.policy = "pb";
  cfg.seed = 9;
  return cfg;
}

TEST(Simulator, ZeroCapacityMeansNoCacheService) {
  const auto w = make_workload(200, 5000, 1);
  Simulator sim(w, net::nlanr_base_model(), net::constant_variability_model(),
                base_config(0.0));
  const auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.metrics.traffic_reduction_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(r.metrics.hit_ratio(), 0.0);
  EXPECT_GT(r.metrics.average_delay_s(), 0.0);
  EXPECT_EQ(r.final_cached_objects, 0u);
}

TEST(Simulator, CachingReducesDelayVersusNoCache) {
  const auto w = make_workload(200, 10000, 2);
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();
  Simulator no_cache(w, base, ratio, base_config(0.0));
  Simulator with_cache(w, base, ratio, base_config(20.0 * 1024 * 1024 * 1024.0));
  const double d0 = no_cache.run().metrics.average_delay_s();
  const double d1 = with_cache.run().metrics.average_delay_s();
  EXPECT_LT(d1, d0 * 0.7);
}

TEST(Simulator, DeterministicForSameSeed) {
  const auto w = make_workload(100, 4000, 3);
  auto cfg = base_config(1e9);
  cfg.path_config.mode = net::VariationMode::kIidRatio;
  Simulator a(w, net::nlanr_base_model(), net::nlanr_variability_model(), cfg);
  Simulator b(w, net::nlanr_base_model(), net::nlanr_variability_model(), cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.metrics.average_delay_s(), rb.metrics.average_delay_s());
  EXPECT_DOUBLE_EQ(ra.metrics.traffic_reduction_ratio(),
                   rb.metrics.traffic_reduction_ratio());
  EXPECT_EQ(ra.final_cached_objects, rb.final_cached_objects);
}

TEST(Simulator, DifferentSeedsDifferentPaths) {
  const auto w = make_workload(100, 4000, 3);
  auto cfg_a = base_config(1e9);
  auto cfg_b = base_config(1e9);
  cfg_b.seed = cfg_a.seed + 1;
  Simulator a(w, net::nlanr_base_model(), net::constant_variability_model(),
              cfg_a);
  Simulator b(w, net::nlanr_base_model(), net::constant_variability_model(),
              cfg_b);
  EXPECT_NE(a.run().metrics.average_delay_s(),
            b.run().metrics.average_delay_s());
}

TEST(Simulator, WarmupSplitsTrace) {
  const auto w = make_workload(100, 10000, 4);
  auto cfg = base_config(1e9);
  cfg.warmup_fraction = 0.5;
  Simulator sim(w, net::nlanr_base_model(), net::constant_variability_model(),
                cfg);
  const auto r = sim.run();
  EXPECT_EQ(r.warmup_requests, 5000u);
  EXPECT_EQ(r.measured_requests, 5000u);
  EXPECT_EQ(r.metrics.requests(), 5000u);
}

TEST(Simulator, WarmupImprovesMeasuredWindow) {
  // With warm-up, the measured half sees a populated cache; disabling
  // warm-up accounting (warmup_fraction = 0) includes the cold start.
  const auto w = make_workload(150, 10000, 5);
  auto warm = base_config(5e10);
  warm.warmup_fraction = 0.5;
  auto cold = base_config(5e10);
  cold.warmup_fraction = 0.0;
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();
  const double warm_delay =
      Simulator(w, base, ratio, warm).run().metrics.average_delay_s();
  const double cold_delay =
      Simulator(w, base, ratio, cold).run().metrics.average_delay_s();
  EXPECT_LT(warm_delay, cold_delay);
}

TEST(Simulator, VariabilityInflatesDelay) {
  const auto w = make_workload(200, 10000, 6);
  auto cfg = base_config(2e10);
  Simulator constant(w, net::nlanr_base_model(),
                     net::constant_variability_model(), cfg);
  auto var_cfg = cfg;
  var_cfg.path_config.mode = net::VariationMode::kIidRatio;
  Simulator variable(w, net::nlanr_base_model(),
                     net::nlanr_variability_model(), var_cfg);
  // The paper's §4.3 observation: variability increases service delay.
  EXPECT_GT(variable.run().metrics.average_delay_s(),
            constant.run().metrics.average_delay_s());
}

TEST(Simulator, ActiveProbeAccountsOverhead) {
  const auto w = make_workload(50, 2000, 7);
  auto cfg = base_config(1e9);
  cfg.estimator = "probe:interval_s=60";
  Simulator sim(w, net::nlanr_base_model(), net::constant_variability_model(),
                cfg);
  const auto r = sim.run();
  EXPECT_GT(r.estimator_overhead_packets, 0u);
}

TEST(Simulator, PassiveEstimatorsWork) {
  const auto w = make_workload(100, 8000, 8);
  for (const std::string spec : {"ewma:alpha=0.3,prior_kbps=50", "last"}) {
    auto cfg = base_config(2e10);
    cfg.estimator = spec;
    Simulator sim(w, net::nlanr_base_model(),
                  net::constant_variability_model(), cfg);
    const auto r = sim.run();
    EXPECT_EQ(r.estimator_overhead_packets, 0u) << spec;
    EXPECT_GT(r.metrics.traffic_reduction_ratio(), 0.0) << spec;
  }
}

TEST(Simulator, OccupancyWithinCapacity) {
  const auto w = make_workload(300, 20000, 9);
  auto cfg = base_config(8e9);
  cfg.policy = "ib";
  Simulator sim(w, net::nlanr_base_model(), net::constant_variability_model(),
                cfg);
  const auto r = sim.run();
  EXPECT_LE(r.final_occupancy_bytes, cfg.cache_capacity_bytes + 1.0);
  EXPECT_GT(r.final_cached_objects, 0u);
}

TEST(Simulator, RejectsInvalidConfig) {
  const auto w = make_workload(10, 100, 10);
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();
  EXPECT_THROW(Simulator(w, base, ratio, base_config(-1.0)),
               std::invalid_argument);
  auto bad_warm = base_config(1e9);
  bad_warm.warmup_fraction = 1.0;
  EXPECT_THROW(Simulator(w, base, ratio, bad_warm), std::invalid_argument);

  workload::Workload empty{w.catalog, {}};
  EXPECT_THROW(Simulator(empty, base, ratio, base_config(1e9)),
               std::invalid_argument);

  // Component specs are validated eagerly at construction.
  auto bad_policy = base_config(1e9);
  bad_policy.policy = "no-such-policy";
  EXPECT_THROW(Simulator(w, base, ratio, bad_policy), std::invalid_argument);
  auto bad_estimator = base_config(1e9);
  bad_estimator.estimator = "ewma:frequency=9";  // unknown parameter
  EXPECT_THROW(Simulator(w, base, ratio, bad_estimator),
               std::invalid_argument);
}

TEST(Simulator, FillTrafficRecorded) {
  // Plenty of objects relative to the trace so admissions keep happening
  // inside the measured window.
  const auto w = make_workload(2000, 6000, 11);
  auto cfg = base_config(2e10);
  cfg.warmup_fraction = 0.25;
  Simulator sim(w, net::nlanr_base_model(), net::constant_variability_model(),
                cfg);
  const auto r = sim.run();
  // Admissions during the measured window show up as fill traffic.
  EXPECT_GT(r.metrics.fill_bytes(), 0.0);
}

}  // namespace
}  // namespace sc::sim
