#!/usr/bin/env bash
# Golden-CSV regression check: re-run a bench's quick grid and assert the
# CSV is byte-identical to the committed golden, at --threads=1 and
# --threads=4 (the engine's thread-invariance guarantee, enforced).
#
# These CSVs are the repo's refactor oracle: structural changes to the
# request loop must not move a single byte of simulator output. The PR 6
# decision-kernel split (sim/run_loop.h -> sim/decision.h, reused by the
# live proxy daemon in src/server/) was landed against exactly this
# harness — if you are refactoring the sim/serve path, run these first.
#
# usage: run_golden.sh BENCH_BINARY GOLDEN_CSV [EXTRA_BENCH_FLAGS...]
#
# To regenerate a golden after a *documented* trace-affecting change
# (e.g. a ROADMAP-noted sampler update), see docs/PERF.md — in short:
#   BENCH_BINARY --quick --threads=1 --csv=tests/golden/<name>.csv
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 BENCH_BINARY GOLDEN_CSV [EXTRA_BENCH_FLAGS...]" >&2
  exit 2
fi
bin=$1
golden=$2
shift 2

if [ ! -f "$golden" ]; then
  echo "error: golden file $golden does not exist (generate it with" >&2
  echo "  $bin --quick --threads=1 --csv=$golden)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for threads in 1 4; do
  out="$tmp/out_${threads}.csv"
  "$bin" --quick --threads="$threads" --csv="$out" "$@" \
      > "$tmp/log_${threads}.txt" 2>&1 || {
    echo "error: $bin --quick --threads=$threads failed:" >&2
    tail -20 "$tmp/log_${threads}.txt" >&2
    exit 1
  }
  if ! cmp -s "$golden" "$out"; then
    echo "golden-CSV mismatch: $bin --quick --threads=$threads" >&2
    echo "  golden: $golden" >&2
    echo "  first differing lines:" >&2
    diff "$golden" "$out" | head -20 >&2 || true
    echo "If this change to the series is intended and documented," >&2
    echo "regenerate the golden (docs/PERF.md, 'Golden CSVs')." >&2
    exit 1
  fi
done
echo "golden CSV byte-identical at --threads=1 and --threads=4"
