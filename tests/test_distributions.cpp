#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace sc::stats {
namespace {

TEST(ZipfLike, PmfSumsToOne) {
  const ZipfLike z(100, 0.73);
  double sum = 0;
  for (std::size_t r = 1; r <= 100; ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfLike, PmfDecreasesWithRank) {
  const ZipfLike z(50, 0.8);
  for (std::size_t r = 2; r <= 50; ++r) {
    EXPECT_GT(z.pmf(r - 1), z.pmf(r));
  }
}

TEST(ZipfLike, AlphaZeroIsUniform) {
  const ZipfLike z(10, 0.0);
  for (std::size_t r = 1; r <= 10; ++r) EXPECT_NEAR(z.pmf(r), 0.1, 1e-12);
}

TEST(ZipfLike, RatioMatchesPowerLaw) {
  const double alpha = 0.73;
  const ZipfLike z(1000, alpha);
  // pmf(r) / pmf(2r) should equal 2^alpha.
  EXPECT_NEAR(z.pmf(1) / z.pmf(2), std::pow(2.0, alpha), 1e-9);
  EXPECT_NEAR(z.pmf(10) / z.pmf(20), std::pow(2.0, alpha), 1e-9);
}

TEST(ZipfLike, SamplingMatchesPmf) {
  const ZipfLike z(20, 1.0);
  util::Rng rng(5);
  std::vector<int> counts(21, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) counts[z.sample(rng)]++;
  for (std::size_t r = 1; r <= 20; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kN, z.pmf(r), 0.005)
        << "rank " << r;
  }
}

TEST(ZipfLike, AliasMatchesCdfBackendByChiSquare) {
  // The O(1) alias backend must draw from the same distribution as the
  // reference inverse-CDF backend. Chi-square against the exact pmf:
  // df = 49; the 99.9th percentile of chi2(49) is ~85.4, use 90.
  const std::size_t kRanks = 50;
  const ZipfLike z(kRanks, 0.73);
  constexpr int kN = 400000;
  for (const bool use_alias : {true, false}) {
    util::Rng rng(use_alias ? 17 : 18);
    std::vector<int> counts(kRanks + 1, 0);
    for (int i = 0; i < kN; ++i) {
      counts[use_alias ? z.sample(rng) : z.sample_cdf(rng)]++;
    }
    double chi2 = 0.0;
    for (std::size_t r = 1; r <= kRanks; ++r) {
      const double expected = kN * z.pmf(r);
      const double d = counts[r] - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 90.0) << (use_alias ? "alias" : "cdf") << " backend";
  }
}

TEST(ZipfLike, BothBackendsConsumeOneUniformPerSample) {
  // sample() and sample_cdf() must advance the RNG identically so that
  // downstream draws (arrival times, durations) stay aligned across
  // backends; only the returned ranks differ. (Switching the default
  // backend to alias was a documented one-time trace change; see
  // docs/PERF.md.)
  const ZipfLike z(100, 0.73);
  util::Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    (void)z.sample(a);
    (void)z.sample_cdf(b);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(AliasTable, DegenerateAndInvalidWeights) {
  util::Rng rng(7);
  const AliasTable single({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(single.sample(rng), 0u);
  const AliasTable point({0.0, 3.0, 0.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(point.sample(rng), 1u);

  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -0.5}), std::invalid_argument);
}

TEST(AliasTable, UniformAndSkewedMasses) {
  util::Rng rng(9);
  const AliasTable t({1.0, 2.0, 1.0});  // P = {0.25, 0.5, 0.25}
  constexpr int kN = 200000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < kN; ++i) counts[t.sample(rng)]++;
  EXPECT_NEAR(counts[0] / double(kN), 0.25, 0.01);
  EXPECT_NEAR(counts[1] / double(kN), 0.50, 0.01);
  EXPECT_NEAR(counts[2] / double(kN), 0.25, 0.01);
}

TEST(ZipfLike, RejectsBadParameters) {
  EXPECT_THROW(ZipfLike(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ZipfLike(10, -0.1), std::invalid_argument);
  const ZipfLike z(10, 0.5);
  EXPECT_THROW((void)z.pmf(0), std::out_of_range);
  EXPECT_THROW((void)z.pmf(11), std::out_of_range);
}

class ZipfAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweep, SampleInRangeAndRank1MostFrequent) {
  const double alpha = GetParam();
  const ZipfLike z(500, alpha);
  util::Rng rng(11);
  std::vector<int> counts(501, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto r = z.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 500u);
    counts[r]++;
  }
  if (alpha > 0) {
    const int max_count = *std::max_element(counts.begin(), counts.end());
    EXPECT_EQ(counts[1], max_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.0, 0.5, 0.73, 1.0, 1.2));

TEST(Lognormal, AnalyticMoments) {
  const Lognormal ln(3.85, 0.56);
  EXPECT_NEAR(ln.mean(), std::exp(3.85 + 0.56 * 0.56 / 2), 1e-9);
  EXPECT_GT(ln.variance(), 0.0);
}

TEST(Lognormal, SampleMeanConverges) {
  const Lognormal ln(1.0, 0.4);
  util::Rng rng(3);
  double acc = 0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) acc += ln.sample(rng);
  EXPECT_NEAR(acc / kN, ln.mean(), ln.mean() * 0.01);
}

TEST(Lognormal, PaperDurationParameters) {
  // Table 1: Lognormal(3.85, 0.56) minutes -> ~55 min mean.
  const Lognormal ln(3.85, 0.56);
  EXPECT_NEAR(ln.mean(), 55.0, 1.0);
}

TEST(Exponential, MeanAndPositivity) {
  const Exponential e(0.15);
  EXPECT_NEAR(e.mean(), 1.0 / 0.15, 1e-12);
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(e.sample(rng), 0.0);
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Pareto, TailAndMean) {
  const Pareto p(1.0, 2.5);
  EXPECT_NEAR(p.mean(), 2.5 / 1.5, 1e-12);
  util::Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(p.sample(rng), 1.0);
  const Pareto heavy(1.0, 0.9);
  EXPECT_TRUE(std::isinf(heavy.mean()));
  EXPECT_THROW(Pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Uniform, BoundsAndMean) {
  const Uniform u(1.0, 10.0);
  EXPECT_DOUBLE_EQ(u.mean(), 5.5);
  util::Rng rng(21);
  double acc = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = u.sample(rng);
    ASSERT_GE(v, 1.0);
    ASSERT_LT(v, 10.0);
    acc += v;
  }
  EXPECT_NEAR(acc / kN, 5.5, 0.05);
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sc::stats
