#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sc::util {
namespace {

TEST(ThreadPool, ResolvesThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  ThreadPool auto_pool(0);
  EXPECT_GE(auto_pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  // The destructor drains the queue; poll a little first so the test
  // also exercises concurrent execution.
  for (int spin = 0; spin < 1000 && counter.load() < 100; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForEmptyRangeReturnsImmediately) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForSingleIterationRunsInline) {
  ThreadPool pool(2);
  std::size_t seen = 99;
  pool.parallel_for(1, [&](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                          executed.fetch_add(1);
                        }),
      std::runtime_error);
  // The loop aborts remaining unstarted iterations, so not all 999
  // non-throwing indices need to have run; the pool stays usable.
  EXPECT_LE(executed.load(), 999);
  std::atomic<int> after{0};
  pool.parallel_for(64, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPool, ParallelForNestsWithoutDeadlock) {
  ThreadPool pool(2);  // fewer workers than outer iterations
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(50, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 50);
}

TEST(ThreadPool, SharedPoolIsReusedAndResizable) {
  ThreadPool::set_default_threads(2);
  ThreadPool& a = ThreadPool::shared();
  EXPECT_EQ(a.thread_count(), 2u);
  EXPECT_EQ(&a, &ThreadPool::shared());
  ThreadPool::set_default_threads(3);
  EXPECT_EQ(ThreadPool::shared().thread_count(), 3u);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ThreadPool::set_default_threads(0);  // restore auto sizing
}

}  // namespace
}  // namespace sc::util
