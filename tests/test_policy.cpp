#include "cache/policy.h"

#include <gtest/gtest.h>

#include <memory>

#include <cctype>

#include "core/registry.h"
#include "net/estimator.h"
#include "workload/object_catalog.h"

namespace sc::cache {
namespace {

using workload::StreamObject;

/// Estimator with explicitly controllable per-path values.
class FakeEstimator final : public net::BandwidthEstimator {
 public:
  explicit FakeEstimator(std::vector<double> values)
      : values_(std::move(values)) {}
  void observe(net::PathId, double, double) override {}
  double estimate(net::PathId path, double) override {
    return values_.at(path);
  }
  void set(net::PathId path, double v) { values_.at(path) = v; }

 private:
  std::vector<double> values_;
};

/// Hand-built catalog: every object 100 s long at 10 bytes/s = 1000 bytes.
workload::Catalog make_catalog(std::size_t n, double duration_s = 100.0,
                               double bitrate = 10.0) {
  std::vector<StreamObject> objects;
  for (std::size_t i = 0; i < n; ++i) {
    StreamObject o;
    o.id = i;
    o.duration_s = duration_s;
    o.bitrate = bitrate;
    o.size_bytes = duration_s * bitrate;
    o.value = 1.0 + static_cast<double>(i);
    o.path = i;
    objects.push_back(o);
  }
  return workload::Catalog::from_objects(std::move(objects));
}

TEST(PbPolicy, SkipsObjectsWithAbundantBandwidth) {
  const auto catalog = make_catalog(2);
  FakeEstimator est({20.0, 4.0});  // object 0: b > r; object 1: b < r
  PbPolicy policy(catalog, est);
  PartialStore store(10000.0);

  policy.on_access(0, 0.0, store);
  EXPECT_FALSE(store.contains(0));  // r=10 <= b=20: never cached

  policy.on_access(1, 1.0, store);
  // Cached exactly (r - b) * T = (10 - 4) * 100 = 600 bytes.
  EXPECT_DOUBLE_EQ(store.cached(1), 600.0);
}

TEST(PbPolicy, DropsObjectWhenBandwidthRecovers) {
  const auto catalog = make_catalog(1);
  FakeEstimator est({4.0});
  PbPolicy policy(catalog, est);
  PartialStore store(10000.0);

  policy.on_access(0, 0.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 600.0);
  est.set(0, 50.0);  // path improved past the bit-rate
  policy.on_access(0, 1.0, store);
  EXPECT_FALSE(store.contains(0));
}

TEST(PbPolicy, ShrinksWhenEstimateRises) {
  const auto catalog = make_catalog(1);
  FakeEstimator est({4.0});
  PbPolicy policy(catalog, est);
  PartialStore store(10000.0);

  policy.on_access(0, 0.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 600.0);
  est.set(0, 8.0);  // still needy but less so: want (10-8)*100 = 200
  policy.on_access(0, 1.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 200.0);
}

TEST(PbPolicy, GrowsWhenEstimateFalls) {
  const auto catalog = make_catalog(1);
  FakeEstimator est({8.0});
  PbPolicy policy(catalog, est);
  PartialStore store(10000.0);

  policy.on_access(0, 0.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 200.0);
  est.set(0, 2.0);  // want (10-2)*100 = 800
  policy.on_access(0, 1.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 800.0);
}

TEST(PbPolicy, EvictsOnlyStrictlyLowerUtility) {
  const auto catalog = make_catalog(2);
  FakeEstimator est({4.0, 4.0});
  PbPolicy policy(catalog, est);
  // Room for exactly one 600-byte prefix.
  PartialStore store(600.0);

  policy.on_access(0, 0.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 600.0);
  // Object 1, same utility (F=1, same b): must NOT displace object 0.
  policy.on_access(1, 1.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 600.0);
  EXPECT_FALSE(store.contains(1));
  // Second access to object 1 doubles its frequency: now it wins.
  policy.on_access(1, 2.0, store);
  EXPECT_FALSE(store.contains(0));
  EXPECT_DOUBLE_EQ(store.cached(1), 600.0);
}

TEST(PbPolicy, PartialTrimOfVictim) {
  const auto catalog = make_catalog(2);
  FakeEstimator est({4.0, 5.0});  // object 1 wants (10-5)*100 = 500
  PbPolicy policy(catalog, est);
  PartialStore store(900.0);

  policy.on_access(0, 0.0, store);  // takes 600
  policy.on_access(1, 1.0, store);  // F=1 each: utility 1/5 < 1/4, no evict
  EXPECT_DOUBLE_EQ(store.cached(1), 300.0);  // gets only the free 300
  policy.on_access(1, 2.0, store);           // now F=2: utility 2/5 > 1/4
  // Object 1 grows to its full 500 by trimming 200 off object 0.
  EXPECT_DOUBLE_EQ(store.cached(1), 500.0);
  EXPECT_DOUBLE_EQ(store.cached(0), 400.0);
  EXPECT_LE(store.used(), store.capacity());
}

TEST(IbPolicy, CachesWholeObjectsOnly) {
  const auto catalog = make_catalog(2);
  FakeEstimator est({4.0, 4.0});
  IbPolicy policy(catalog, est);
  PartialStore store(1500.0);  // room for one whole (1000) + half

  policy.on_access(0, 0.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 1000.0);
  policy.on_access(1, 1.0, store);  // would need 1000, only 500 free
  EXPECT_FALSE(store.contains(1));  // all-or-nothing
}

TEST(IbPolicy, SkipsAbundantBandwidth) {
  const auto catalog = make_catalog(1);
  FakeEstimator est({10.0});  // b == r: not needy
  IbPolicy policy(catalog, est);
  PartialStore store(10000.0);
  policy.on_access(0, 0.0, store);
  EXPECT_FALSE(store.contains(0));
}

TEST(IfPolicy, CachesByFrequencyIgnoringBandwidth) {
  const auto catalog = make_catalog(2);
  FakeEstimator est({1000.0, 1.0});  // object 0 has abundant bandwidth
  IfPolicy policy(catalog, est);
  PartialStore store(1000.0);  // room for exactly one object

  policy.on_access(0, 0.0, store);  // cached despite abundant bandwidth
  EXPECT_DOUBLE_EQ(store.cached(0), 1000.0);
  policy.on_access(1, 1.0, store);  // same frequency: no displacement
  EXPECT_TRUE(store.contains(0));
  policy.on_access(1, 2.0, store);
  policy.on_access(1, 3.0, store);  // F(1)=3 > F(0)=1: displaced
  EXPECT_FALSE(store.contains(0));
  EXPECT_DOUBLE_EQ(store.cached(1), 1000.0);
}

TEST(HybridPolicy, EndpointsMatchPbAndWholeObject) {
  const auto catalog = make_catalog(1);
  FakeEstimator est({4.0});
  PartialStore store_a(10000.0), store_b(10000.0), store_c(10000.0);

  HybridPolicy e1(catalog, est, 1.0);
  e1.on_access(0, 0.0, store_a);
  EXPECT_DOUBLE_EQ(store_a.cached(0), 600.0);  // == PB

  HybridPolicy e0(catalog, est, 0.0);
  e0.on_access(0, 0.0, store_b);
  EXPECT_DOUBLE_EQ(store_b.cached(0), 1000.0);  // whole object (IB-like)

  HybridPolicy e05(catalog, est, 0.5);
  e05.on_access(0, 0.0, store_c);
  // (r - 0.5 b) T = (10 - 2) * 100 = 800.
  EXPECT_DOUBLE_EQ(store_c.cached(0), 800.0);
}

TEST(HybridPolicy, RejectsOutOfRangeE) {
  const auto catalog = make_catalog(1);
  FakeEstimator est({4.0});
  EXPECT_THROW(HybridPolicy(catalog, est, -0.1), std::invalid_argument);
  EXPECT_THROW(HybridPolicy(catalog, est, 1.1), std::invalid_argument);
  EXPECT_THROW(PbvPolicy(catalog, est, 2.0), std::invalid_argument);
}

TEST(PbvPolicy, PrefersHighValuePerDeficitByte) {
  auto catalog = make_catalog(2);
  FakeEstimator est({4.0, 4.0});
  // Identical deficits; object 1 has value 2.0 vs object 0's 1.0.
  PbvPolicy policy(catalog, est);
  PartialStore store(600.0);  // room for one prefix

  policy.on_access(0, 0.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 600.0);
  policy.on_access(1, 1.0, store);  // same F, double value: displaces
  EXPECT_FALSE(store.contains(0));
  EXPECT_DOUBLE_EQ(store.cached(1), 600.0);
}

TEST(IbvPolicy, WholeObjectValueAware) {
  const auto catalog = make_catalog(2);
  FakeEstimator est({4.0, 4.0});
  IbvPolicy policy(catalog, est);
  PartialStore store(1000.0);

  policy.on_access(0, 0.0, store);
  EXPECT_DOUBLE_EQ(store.cached(0), 1000.0);
  policy.on_access(1, 1.0, store);  // value 2 vs 1: displaces whole object
  EXPECT_FALSE(store.contains(0));
  EXPECT_DOUBLE_EQ(store.cached(1), 1000.0);
}

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  const auto catalog = make_catalog(3);
  FakeEstimator est({4.0, 4.0, 4.0});
  LruPolicy policy(catalog, est);
  PartialStore store(2000.0);  // room for two whole objects

  policy.on_access(0, 0.0, store);
  policy.on_access(1, 1.0, store);
  policy.on_access(0, 2.0, store);  // refresh 0: now 1 is LRU
  policy.on_access(2, 3.0, store);
  EXPECT_TRUE(store.contains(0));
  EXPECT_FALSE(store.contains(1));
  EXPECT_TRUE(store.contains(2));
}

TEST(LfuPolicy, MatchesIfSelection) {
  const auto catalog = make_catalog(2);
  FakeEstimator est({1.0, 1.0});
  LfuPolicy policy(catalog, est);
  PartialStore store(1000.0);
  policy.on_access(0, 0.0, store);
  policy.on_access(0, 1.0, store);
  policy.on_access(1, 2.0, store);  // F=1 < F=2: no displacement
  EXPECT_TRUE(store.contains(0));
  EXPECT_FALSE(store.contains(1));
}

TEST(UtilityPolicy, ResetClearsLearnedState) {
  const auto catalog = make_catalog(1);
  FakeEstimator est({4.0});
  PbPolicy policy(catalog, est);
  PartialStore store(10000.0);
  policy.on_access(0, 0.0, store);
  EXPECT_DOUBLE_EQ(policy.frequency(0), 1.0);
  policy.reset();
  store.clear();
  EXPECT_DOUBLE_EQ(policy.frequency(0), 0.0);
  policy.on_access(0, 1.0, store);  // works again from scratch
  EXPECT_DOUBLE_EQ(store.cached(0), 600.0);
}

/// Property sweep: under random access patterns and volatile bandwidth
/// estimates, every policy (constructed by registry spec string) keeps
/// (1) occupancy within capacity, and (2) only prefixes of real objects
/// cached.
class PolicyInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyInvariants, CapacityAndPrefixBoundsHold) {
  const std::string spec = GetParam();
  util::Rng rng(util::fnv1a64(spec));

  // Heterogeneous catalog: durations 10..400 s.
  std::vector<StreamObject> objects;
  constexpr std::size_t kN = 60;
  for (std::size_t i = 0; i < kN; ++i) {
    StreamObject o;
    o.id = i;
    o.duration_s = rng.uniform(10.0, 400.0);
    o.bitrate = 10.0;
    o.size_bytes = o.duration_s * o.bitrate;
    o.value = rng.uniform(1.0, 10.0);
    o.path = i;
    objects.push_back(o);
  }
  const auto catalog = workload::Catalog::from_objects(std::move(objects));

  std::vector<double> bw(kN);
  for (auto& b : bw) b = rng.uniform(2.0, 20.0);
  FakeEstimator est(bw);

  auto policy = core::registry::make_policy(spec, catalog, est);
  PartialStore store(3000.0);

  for (int step = 0; step < 5000; ++step) {
    const auto id = static_cast<ObjectId>(rng.uniform_int(0, kN - 1));
    if (step % 7 == 0) {
      // Perturb this object's bandwidth estimate (variability).
      est.set(id, rng.uniform(2.0, 20.0));
    }
    policy->on_access(id, static_cast<double>(step), store);

    ASSERT_LE(store.used(), store.capacity() + 1.0);
    double sum = 0.0;
    for (const auto& [oid, bytes] : store.contents()) {
      ASSERT_GT(bytes, 0.0);
      ASSERT_LE(bytes, catalog.object(oid).size_bytes + 1.0);
      sum += bytes;
    }
    ASSERT_NEAR(sum, store.used(), 1.0);
  }
}

std::string invariant_case_name(
    const ::testing::TestParamInfo<const char*>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::Values("if", "pb", "ib", "hybrid:e=0",
                                           "hybrid:e=0.3", "hybrid:e=0.7",
                                           "pbv", "pbv:e=0.5", "ibv", "lru",
                                           "lfu"),
                         invariant_case_name);

}  // namespace
}  // namespace sc::cache
