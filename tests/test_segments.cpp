#include "cache/segments.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sc::cache {
namespace {

workload::Catalog tiny_catalog() {
  std::vector<workload::StreamObject> objects;
  for (std::size_t i = 0; i < 3; ++i) {
    workload::StreamObject o;
    o.id = i;
    o.duration_s = 100.0;
    o.bitrate = 10.0;  // size 1000
    o.size_bytes = 1000.0;
    objects.push_back(o);
  }
  return workload::Catalog::from_objects(std::move(objects));
}

TEST(SegmentMap, CountsAndTailSegment) {
  const SegmentMap m(1000.0, 300.0);  // segments: 300/300/300/100
  EXPECT_EQ(m.segment_count(), 4u);
  EXPECT_DOUBLE_EQ(m.bytes_of_segment(0), 300.0);
  EXPECT_DOUBLE_EQ(m.bytes_of_segment(3), 100.0);
  EXPECT_THROW((void)m.bytes_of_segment(4), std::out_of_range);
}

TEST(SegmentMap, SetTracksBytes) {
  SegmentMap m(1000.0, 300.0);
  EXPECT_DOUBLE_EQ(m.set(0, true), 300.0);
  EXPECT_DOUBLE_EQ(m.set(3, true), 100.0);
  EXPECT_DOUBLE_EQ(m.set(0, true), 0.0);  // idempotent
  EXPECT_DOUBLE_EQ(m.bytes_present(), 400.0);
  EXPECT_DOUBLE_EQ(m.set(0, false), -300.0);
  EXPECT_DOUBLE_EQ(m.bytes_present(), 100.0);
}

TEST(SegmentMap, PrefixStopsAtFirstGap) {
  SegmentMap m(1000.0, 250.0);  // 4 x 250
  m.set(0, true);
  m.set(1, true);
  m.set(3, true);  // hole at 2
  EXPECT_DOUBLE_EQ(m.contiguous_prefix_bytes(), 500.0);
  EXPECT_DOUBLE_EQ(m.bytes_present(), 750.0);
  EXPECT_EQ(m.hole_count(), 1u);
  m.set(2, true);
  EXPECT_DOUBLE_EQ(m.contiguous_prefix_bytes(), 1000.0);
  EXPECT_EQ(m.hole_count(), 0u);
}

TEST(SegmentMap, HoleCounting) {
  SegmentMap m(1000.0, 100.0);  // 10 segments
  for (const std::size_t i : {0ul, 2ul, 3ul, 7ul}) m.set(i, true);
  // Holes: {1}, {4,5,6}. Trailing absence (8,9) is not a hole.
  EXPECT_EQ(m.hole_count(), 2u);
  SegmentMap empty(1000.0, 100.0);
  EXPECT_EQ(empty.hole_count(), 0u);
}

TEST(SegmentMap, ResizePrefixRoundsUp) {
  SegmentMap m(1000.0, 300.0);
  EXPECT_DOUBLE_EQ(m.resize_prefix(350.0), 600.0);  // 2 segments
  EXPECT_DOUBLE_EQ(m.contiguous_prefix_bytes(), 600.0);
  EXPECT_DOUBLE_EQ(m.resize_prefix(300.0), -300.0);  // shrink to 1
  EXPECT_DOUBLE_EQ(m.resize_prefix(0.0), -300.0);    // empty
  EXPECT_DOUBLE_EQ(m.resize_prefix(1e9), 1000.0);    // clamped to object
  EXPECT_DOUBLE_EQ(m.bytes_present(), 1000.0);
}

TEST(SegmentMap, RejectsDegenerate) {
  EXPECT_THROW(SegmentMap(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(SegmentMap(100.0, 0.0), std::invalid_argument);
}

TEST(SegmentedStore, QuantizesToSegments) {
  const auto catalog = tiny_catalog();
  SegmentedStore store(10000.0, 300.0, catalog);
  // Ask for 350 bytes: get two 300-byte segments = 600.
  EXPECT_DOUBLE_EQ(store.set_prefix(0, 350.0), 600.0);
  EXPECT_DOUBLE_EQ(store.cached_prefix(0), 600.0);
  EXPECT_DOUBLE_EQ(store.used(), 600.0);
  // Fragmentation: held 600 for a 350-byte request.
  EXPECT_DOUBLE_EQ(store.fragmentation_bytes(), 250.0);
}

TEST(SegmentedStore, CapacityEnforcedOnRoundedSize) {
  const auto catalog = tiny_catalog();
  SegmentedStore store(500.0, 300.0, catalog);
  // 350 bytes rounds to 600 > 500: rejected even though raw 350 fits.
  EXPECT_THROW(store.set_prefix(0, 350.0), std::length_error);
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_DOUBLE_EQ(store.set_prefix(0, 250.0), 300.0);
}

TEST(SegmentedStore, ShrinkAndErase) {
  const auto catalog = tiny_catalog();
  SegmentedStore store(10000.0, 250.0, catalog);
  store.set_prefix(1, 1000.0);
  EXPECT_DOUBLE_EQ(store.used(), 1000.0);
  store.set_prefix(1, 400.0);  // shrink to 2 segments
  EXPECT_DOUBLE_EQ(store.cached_prefix(1), 500.0);
  store.set_prefix(1, 0.0);
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
  store.set_prefix(2, 600.0);
  store.erase(2);
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
  store.erase(2);  // double erase: no-op
}

TEST(SegmentedStore, FragmentationShrinksWithSegmentSize) {
  const auto catalog = tiny_catalog();
  util::Rng rng(5);
  double frag_coarse = 0, frag_fine = 0;
  for (int rep = 0; rep < 20; ++rep) {
    const double want = rng.uniform(1.0, 999.0);
    SegmentedStore coarse(10000.0, 400.0, catalog);
    SegmentedStore fine(10000.0, 25.0, catalog);
    coarse.set_prefix(0, want);
    fine.set_prefix(0, want);
    frag_coarse += coarse.fragmentation_bytes();
    frag_fine += fine.fragmentation_bytes();
  }
  EXPECT_LT(frag_fine, frag_coarse);
}

TEST(SegmentedStore, RejectsDegenerate) {
  const auto catalog = tiny_catalog();
  EXPECT_THROW(SegmentedStore(-1.0, 100.0, catalog), std::invalid_argument);
  EXPECT_THROW(SegmentedStore(100.0, 0.0, catalog), std::invalid_argument);
}

}  // namespace
}  // namespace sc::cache
