#include "util/spec.h"

#include <gtest/gtest.h>

namespace sc::util {
namespace {

TEST(Spec, ParsesBareName) {
  const auto spec = Spec::parse("pb");
  EXPECT_EQ(spec.name, "pb");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.to_string(), "pb");
}

TEST(Spec, ParsesParams) {
  const auto spec = Spec::parse("ewma:alpha=0.3,prior_kbps=50");
  EXPECT_EQ(spec.name, "ewma");
  ASSERT_EQ(spec.params.size(), 2u);
  EXPECT_EQ(spec.params[0].first, "alpha");
  EXPECT_EQ(spec.params[0].second, "0.3");
  EXPECT_EQ(spec.params[1].first, "prior_kbps");
  EXPECT_EQ(spec.params[1].second, "50");
}

TEST(Spec, RoundTripIsFixedPoint) {
  for (const std::string text :
       {"pb", "hybrid:e=0.5", "ewma:alpha=0.3,prior_kbps=50",
        "probe:interval_s=3600", "timeseries:path=taiwan"}) {
    const auto canonical = Spec::parse(text).to_string();
    EXPECT_EQ(canonical, text);
    EXPECT_EQ(Spec::parse(canonical).to_string(), canonical);
  }
}

TEST(Spec, CaseInsensitiveNamesAndKeys) {
  const auto spec = Spec::parse("HYBRID:E=0.5");
  EXPECT_EQ(spec.name, "hybrid");
  EXPECT_EQ(spec.to_string(), "hybrid:e=0.5");
  EXPECT_TRUE(spec.has("e"));
  EXPECT_TRUE(spec.has("E"));
  EXPECT_DOUBLE_EQ(spec.get_double("e", 0.0), 0.5);
  // Values keep their spelling.
  EXPECT_EQ(Spec::parse("timeseries:path=Taiwan").get_string("path", ""),
            "Taiwan");
}

TEST(Spec, TrimsWhitespace) {
  const auto spec = Spec::parse("  hybrid : e = 0.5 ");
  EXPECT_EQ(spec.name, "hybrid");
  EXPECT_DOUBLE_EQ(spec.get_double("e", 0.0), 0.5);
}

TEST(Spec, MalformedInputsThrow) {
  EXPECT_THROW((void)Spec::parse(""), SpecError);
  EXPECT_THROW((void)Spec::parse("  "), SpecError);
  EXPECT_THROW((void)Spec::parse(":e=1"), SpecError);
  EXPECT_THROW((void)Spec::parse("pb:"), SpecError);
  EXPECT_THROW((void)Spec::parse("pb:e"), SpecError);
  EXPECT_THROW((void)Spec::parse("pb:=1"), SpecError);
  EXPECT_THROW((void)Spec::parse("pb:e="), SpecError);
  EXPECT_THROW((void)Spec::parse("pb:e=1,,f=2"), SpecError);
  EXPECT_THROW((void)Spec::parse("pb:e=1,e=2"), SpecError);  // duplicate
}

TEST(Spec, SpecErrorIsInvalidArgument) {
  // Pre-spec call sites catch std::invalid_argument; SpecError must
  // remain catchable there.
  EXPECT_THROW((void)Spec::parse(""), std::invalid_argument);
}

TEST(Spec, TypedGetters) {
  const auto spec = Spec::parse("x:a=1.5,b=7,c=yes,d=oops");
  EXPECT_DOUBLE_EQ(spec.get_double("a", 0.0), 1.5);
  EXPECT_EQ(spec.get_int("b", 0), 7);
  EXPECT_TRUE(spec.get_bool("c", false));
  EXPECT_DOUBLE_EQ(spec.get_double("missing", 9.0), 9.0);
  EXPECT_EQ(spec.get_int("missing", 4), 4);
  EXPECT_FALSE(spec.get_bool("missing", false));
  EXPECT_THROW((void)spec.get_double("d", 0.0), SpecError);
  EXPECT_THROW((void)spec.get_int("a", 0), SpecError);  // "1.5" not integer
  EXPECT_THROW((void)spec.get_bool("b", false), SpecError);
}

TEST(Spec, RequireOnlyRejectsUnknownParams) {
  const auto spec = Spec::parse("hybrid:e=0.5,f=1");
  try {
    spec.require_only({"e"});
    FAIL() << "expected SpecError";
  } catch (const SpecError& ex) {
    const std::string message = ex.what();
    EXPECT_NE(message.find("unknown parameter \"f\""), std::string::npos);
    EXPECT_NE(message.find("valid parameters"), std::string::npos);
    EXPECT_NE(message.find("e"), std::string::npos);
  }
  EXPECT_NO_THROW(Spec::parse("hybrid:e=0.5").require_only({"e"}));
  try {
    Spec::parse("pb:e=1").require_only({});
    FAIL() << "expected SpecError";
  } catch (const SpecError& ex) {
    EXPECT_NE(std::string(ex.what()).find("takes no parameters"),
              std::string::npos);
  }
}

TEST(EditDistance, ClassicCases) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("polciy", "policy"), 2u);  // transposition
}

TEST(ClosestMatch, SuggestsWithinThreshold) {
  const std::vector<std::string> candidates = {"policy", "estimator",
                                               "scenario"};
  EXPECT_EQ(closest_match("polciy", candidates).value_or(""), "policy");
  EXPECT_EQ(closest_match("ESTIMATOR", candidates).value_or(""), "estimator");
  EXPECT_FALSE(closest_match("zzzzzz", candidates).has_value());
}

TEST(Join, FormatsLists) {
  EXPECT_EQ(join({}), "");
  EXPECT_EQ(join({"a"}), "a");
  EXPECT_EQ(join({"a", "b", "c"}), "a, b, c");
}

}  // namespace
}  // namespace sc::util
