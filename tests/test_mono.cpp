// Dispatch-path identity: the monomorphized engines (sim/arena.h) must
// be observationally indistinguishable from the virtual-fallback path.
//
// The two paths share one loop body (sim/run_loop.h) and construct their
// components with identical parameters and RNG streams, so their results
// are not merely close — they are field-identical, for every registered
// (policy, estimator) pair, and arena reuse across back-to-back
// simulations is bit-identical to fresh construction.

#include "sim/arena.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/sweep.h"
#include "workload/trace.h"

namespace sc::sim {
namespace {

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 120;
  cfg.workload.trace.num_requests = 3000;
  cfg.runs = 2;
  cfg.base_seed = 77;
  cfg.sim.cache_capacity_bytes =
      core::capacity_for_fraction(cfg.workload.catalog, 0.05);
  return cfg;
}

void expect_bit_identical(const core::AveragedMetrics& a,
                          const core::AveragedMetrics& b,
                          const std::string& label) {
  EXPECT_EQ(a.runs, b.runs) << label;
  EXPECT_EQ(a.traffic_reduction, b.traffic_reduction) << label;
  EXPECT_EQ(a.traffic_reduction_sd, b.traffic_reduction_sd) << label;
  EXPECT_EQ(a.delay_s, b.delay_s) << label;
  EXPECT_EQ(a.delay_s_sd, b.delay_s_sd) << label;
  EXPECT_EQ(a.quality, b.quality) << label;
  EXPECT_EQ(a.quality_sd, b.quality_sd) << label;
  EXPECT_EQ(a.added_value, b.added_value) << label;
  EXPECT_EQ(a.added_value_sd, b.added_value_sd) << label;
  EXPECT_EQ(a.hit_ratio, b.hit_ratio) << label;
  EXPECT_EQ(a.immediate_ratio, b.immediate_ratio) << label;
  EXPECT_EQ(a.fill_bytes, b.fill_bytes) << label;
  EXPECT_EQ(a.occupancy_bytes, b.occupancy_bytes) << label;
}

void expect_results_identical(const SimulationResult& a,
                              const SimulationResult& b,
                              const std::string& label) {
  EXPECT_EQ(a.policy_name, b.policy_name) << label;
  EXPECT_EQ(a.warmup_requests, b.warmup_requests) << label;
  EXPECT_EQ(a.measured_requests, b.measured_requests) << label;
  EXPECT_EQ(a.final_occupancy_bytes, b.final_occupancy_bytes) << label;
  EXPECT_EQ(a.final_cached_objects, b.final_cached_objects) << label;
  EXPECT_EQ(a.estimator_overhead_packets, b.estimator_overhead_packets)
      << label;
  EXPECT_EQ(a.metrics.traffic_reduction_ratio(),
            b.metrics.traffic_reduction_ratio())
      << label;
  EXPECT_EQ(a.metrics.average_delay_s(), b.metrics.average_delay_s()) << label;
  EXPECT_EQ(a.metrics.average_quality(), b.metrics.average_quality()) << label;
  EXPECT_EQ(a.metrics.total_added_value(), b.metrics.total_added_value())
      << label;
  EXPECT_EQ(a.metrics.hit_ratio(), b.metrics.hit_ratio()) << label;
  EXPECT_EQ(a.metrics.immediate_ratio(), b.metrics.immediate_ratio()) << label;
  EXPECT_EQ(a.metrics.fill_bytes(), b.metrics.fill_bytes()) << label;
}

TEST(MonoDispatch, CoversEveryBuiltinPairAndAliases) {
  // Every registered builtin spelling — canonical names AND aliases on
  // both axes — must resolve to a monomorphized engine (aliases are
  // resolved through the registry, so one added there is covered here
  // automatically).
  const auto spellings = [](core::registry::Kind kind) {
    std::vector<std::string> out;
    for (const auto& info : core::registry::list(kind)) {
      // Skip components this test binary registers itself (they are
      // out-of-table by design; see UserRegisteredSpecsFallBack).
      if (info.name.rfind("test-", 0) == 0) continue;
      out.push_back(info.name);
      out.insert(out.end(), info.aliases.begin(), info.aliases.end());
    }
    return out;
  };
  SimulationConfig cfg;
  for (const auto& policy : spellings(core::registry::Kind::kPolicy)) {
    for (const auto& estimator :
         spellings(core::registry::Kind::kEstimator)) {
      cfg.policy = policy;
      cfg.estimator = estimator;
      EXPECT_TRUE(mono_dispatchable(cfg)) << policy << " x " << estimator;
    }
  }
  cfg.policy = "pb-v:e=0.7";
  cfg.estimator = "passive-ewma";
  EXPECT_TRUE(mono_dispatchable(cfg));
  cfg.policy = "no-such-policy";
  EXPECT_FALSE(mono_dispatchable(cfg));
}

TEST(MonoDispatch, FieldIdenticalToFallbackForEveryRegisteredPair) {
  // The tentpole contract: for every registered (policy, estimator)
  // pair — parameterized variants included — the monomorphized path and
  // the virtual-fallback regression oracle produce field-identical
  // AveragedMetrics. Exercised under iid bandwidth variability so the
  // sampler stream, estimator observations, and value policies all
  // participate.
  const auto scenario = core::measured_variability_scenario();
  std::vector<std::string> policies =
      core::registry::names(core::registry::Kind::kPolicy);
  policies.push_back("hybrid:e=0.5");
  policies.push_back("pbv:e=0.7");
  std::vector<std::string> estimators =
      core::registry::names(core::registry::Kind::kEstimator);
  estimators.push_back("ewma:alpha=0.5,prior_kbps=80");
  estimators.push_back("probe:interval_s=600");

  for (const auto& policy : policies) {
    for (const auto& estimator : estimators) {
      core::ExperimentConfig cfg = small_config();
      cfg.sim.policy = policy;
      cfg.sim.estimator = estimator;

      cfg.sim.monomorphize = true;
      const auto mono = core::run_experiment(cfg, scenario);
      cfg.sim.monomorphize = false;
      const auto fallback = core::run_experiment(cfg, scenario);
      expect_bit_identical(mono, fallback, policy + " x " + estimator);
    }
  }
}

TEST(MonoDispatch, ExtensionsRunIdenticallyThroughTheMonoPath) {
  // Viewing + patching change the loop's byte accounting; both paths
  // must agree there too.
  const auto scenario = core::constant_scenario();
  core::ExperimentConfig cfg = small_config();
  cfg.sim.policy = "pb";
  cfg.sim.viewing.enabled = true;
  cfg.sim.patching.enabled = true;

  cfg.sim.monomorphize = true;
  const auto mono = core::run_experiment(cfg, scenario);
  cfg.sim.monomorphize = false;
  const auto fallback = core::run_experiment(cfg, scenario);
  expect_bit_identical(mono, fallback, "pb + viewing + patching");
}

TEST(MonoDispatch, EveryInteractivityModeRunsIdenticallyThroughTheMonoPath) {
  // Session dynamics draw inside the shared loop body; mono and
  // fallback must agree for every mode, with and without patching, and
  // across the estimator kinds (observation scheduling interacts with
  // the truncated transfers).
  const auto scenario = core::measured_variability_scenario();
  for (const char* mode : {"full", "exp:mean=900", "empirical", "trace"}) {
    for (const bool patching : {false, true}) {
      for (const char* estimator : {"oracle", "ewma:alpha=0.3"}) {
        core::ExperimentConfig cfg = small_config();
        cfg.sim.policy = "pb";
        cfg.sim.estimator = estimator;
        cfg.sim.patching.enabled = patching;
        cfg.sim.interactivity = sim::InteractivityConfig::parse(mode);

        cfg.sim.monomorphize = true;
        const auto mono = core::run_experiment(cfg, scenario);
        cfg.sim.monomorphize = false;
        const auto fallback = core::run_experiment(cfg, scenario);
        expect_bit_identical(mono, fallback,
                             std::string("interactivity=") + mode +
                                 (patching ? " + patching" : "") + " x " +
                                 estimator);
      }
    }
  }
}

TEST(MonoDispatch, TraceScenarioGridIdenticalWithAndWithoutMonomorphization) {
  // The trace-replay scenario feeds one shared workload (with recorded
  // per-session viewing durations) through the same two dispatch paths;
  // a mixed grid over policies, fractions, and interactivity modes must
  // be field-identical.
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 90;
  wcfg.trace.num_requests = 2500;
  util::Rng wl_rng(31);
  auto recorded = workload::generate_workload(wcfg, wl_rng);
  util::Rng view_rng(32);
  for (auto& r : recorded.requests) {
    if (view_rng.uniform() < 0.6) r.view_s = view_rng.uniform(15.0, 4000.0);
  }
  const auto trace_path =
      std::filesystem::temp_directory_path() / "sc_mono_trace.trace";
  workload::write_trace(recorded, trace_path);

  const auto scenario = core::registry::make_scenario(
      "trace:file=" + trace_path.string() + ",bw=measured");
  std::filesystem::remove(trace_path);
  ASSERT_NE(scenario.replay, nullptr);

  std::vector<core::SweepCell> cells;
  for (const char* policy : {"pb", "ib", "lru"}) {
    for (const char* mode : {"full", "trace", "empirical"}) {
      cells.push_back(core::SweepCell{policy, -1.0, 0.05, mode, {}, {}});
    }
  }

  core::ExperimentConfig mono_cfg = small_config();
  mono_cfg.sim.monomorphize = true;
  const auto mono = core::SweepRunner(mono_cfg, scenario).run(cells);

  core::ExperimentConfig fallback_cfg = small_config();
  fallback_cfg.sim.monomorphize = false;
  const auto fallback = core::SweepRunner(fallback_cfg, scenario).run(cells);

  ASSERT_EQ(mono.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_bit_identical(mono[i], fallback[i],
                         cells[i].policy + "/" + cells[i].interactivity);
  }
}

TEST(MonoDispatch, SweepGridIdenticalWithAndWithoutMonomorphization) {
  // Whole-grid regression: shared workloads + shared path models + the
  // per-worker arena path vs the PR-3-era fallback across a mixed grid.
  std::vector<core::SweepCell> cells;
  for (const char* policy : {"pb", "ib", "lru"}) {
    for (const double fraction : {0.01, 0.05}) {
      cells.push_back(core::SweepCell{policy, -1.0, fraction, {}, {}, {}});
    }
  }
  const auto scenario = core::measured_variability_scenario();

  core::ExperimentConfig mono_cfg = small_config();
  mono_cfg.sim.monomorphize = true;
  const auto mono = core::SweepRunner(mono_cfg, scenario).run(cells);

  core::ExperimentConfig fallback_cfg = small_config();
  fallback_cfg.sim.monomorphize = false;
  const auto fallback = core::SweepRunner(fallback_cfg, scenario).run(cells);

  ASSERT_EQ(mono.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_bit_identical(mono[i], fallback[i], cells[i].policy);
  }
}

TEST(MonoDispatch, ArenaReuseBitIdenticalToFreshConstruction) {
  // A worker's arena re-runs back-to-back simulations — different
  // workloads, seeds, capacities, interleaved (policy, estimator) pairs
  // — on rebound engines. Every rebound run must equal the run a fresh
  // arena (fresh engine, fresh state) produces.
  const auto scenario = core::measured_variability_scenario();
  const struct {
    const char* policy;
    const char* estimator;
    std::size_t objects;
    std::uint64_t seed;
    double fraction;
  } runs[] = {
      {"pb", "oracle", 150, 1, 0.05},
      {"lru", "ewma:alpha=0.3", 150, 2, 0.02},
      {"pb", "oracle", 100, 3, 0.08},  // same engine, new catalog size
      {"hybrid:e=0.5", "probe:interval_s=600", 150, 4, 0.05},
      {"pb", "oracle", 150, 1, 0.05},  // exact repeat of the first run
  };

  SimulationArena reused;
  for (const auto& r : runs) {
    workload::WorkloadConfig wcfg;
    wcfg.catalog.num_objects = r.objects;
    wcfg.trace.num_requests = 3000;
    util::Rng wl_rng(r.seed);
    const auto w = workload::generate_workload(wcfg, wl_rng);

    SimulationConfig cfg;
    cfg.policy = r.policy;
    cfg.estimator = r.estimator;
    cfg.cache_capacity_bytes =
        core::capacity_for_fraction(wcfg.catalog, r.fraction);
    cfg.path_config.mode = scenario.mode;
    cfg.seed = r.seed * 101;

    Simulator reused_sim(w, scenario.base, scenario.ratio, cfg);
    const auto via_reused = reused_sim.run(&reused);

    SimulationArena fresh;
    Simulator fresh_sim(w, scenario.base, scenario.ratio, cfg);
    const auto via_fresh = fresh_sim.run(&fresh);

    expect_results_identical(via_reused, via_fresh,
                             std::string(r.policy) + " x " + r.estimator);
  }
  // Engines were cached per distinct (policy, estimator) pair.
  EXPECT_EQ(reused.size(), 3u);
}

TEST(MonoDispatch, ArenaReuseBitIdenticalForTruncatedSessions) {
  // Session dynamics add per-run draw state (the "session" RNG stream)
  // and truncated in-flight bookkeeping; none of it may leak between a
  // rebound engine's back-to-back runs. Interleave interactivity modes
  // on one arena and compare every run against a fresh arena.
  const auto scenario = core::measured_variability_scenario();
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 120;
  wcfg.trace.num_requests = 3000;
  util::Rng wl_rng(9);
  auto w = workload::generate_workload(wcfg, wl_rng);
  util::Rng view_rng(10);
  for (auto& r : w.requests) {
    if (view_rng.uniform() < 0.5) r.view_s = view_rng.uniform(10.0, 2000.0);
  }

  SimulationArena reused;
  std::size_t run_no = 0;
  for (const char* mode :
       {"empirical", "full", "trace", "exp:mean=600", "empirical"}) {
    SimulationConfig cfg;
    cfg.policy = "pb";
    cfg.estimator = "ewma:alpha=0.3";
    cfg.cache_capacity_bytes = core::capacity_for_fraction(wcfg.catalog, 0.04);
    cfg.path_config.mode = scenario.mode;
    cfg.patching.enabled = true;
    cfg.interactivity = InteractivityConfig::parse(mode);
    cfg.seed = 500 + run_no++;

    Simulator reused_sim(w, scenario.base, scenario.ratio, cfg);
    const auto via_reused = reused_sim.run(&reused);

    SimulationArena fresh;
    Simulator fresh_sim(w, scenario.base, scenario.ratio, cfg);
    const auto via_fresh = fresh_sim.run(&fresh);

    expect_results_identical(via_reused, via_fresh,
                             std::string("interactivity=") + mode);
    EXPECT_EQ(via_reused.metrics.truncated_ratio(),
              via_fresh.metrics.truncated_ratio())
        << mode;
    EXPECT_EQ(via_reused.metrics.average_viewed_fraction(),
              via_fresh.metrics.average_viewed_fraction())
        << mode;
  }
  // One cached engine: every mode reuses the same (policy, estimator)
  // slot — interactivity is per-run config, not an engine key.
  EXPECT_EQ(reused.size(), 1u);
}

TEST(MonoDispatch, UserRegisteredSpecsFallBackAndMatchBuiltins) {
  // A self-registered policy constructing the very same PbPolicy type is
  // out of the dispatch table, so it runs on the virtual fallback — and
  // must still produce exactly the metrics the monomorphized built-in
  // "pb" produces.
  static const core::registry::PolicyRegistrar registrar(
      {"test-mono-pb", {}, "test-only PB clone (fallback path)", {}},
      [](const util::Spec&, const core::registry::PolicyContext& ctx) {
        return std::make_unique<cache::PbPolicy>(ctx.catalog, ctx.estimator);
      });
  (void)registrar;

  SimulationConfig probe_cfg;
  probe_cfg.policy = "test-mono-pb";
  EXPECT_FALSE(mono_dispatchable(probe_cfg));

  const auto scenario = core::measured_variability_scenario();
  core::ExperimentConfig cfg = small_config();
  cfg.sim.policy = "test-mono-pb";
  const auto custom = core::run_experiment(cfg, scenario);
  cfg.sim.policy = "pb";
  const auto builtin = core::run_experiment(cfg, scenario);
  expect_bit_identical(custom, builtin, "test-mono-pb vs pb");
}

}  // namespace
}  // namespace sc::sim
