#include <gtest/gtest.h>

#include "net/bandwidth_model.h"
#include "net/units.h"
#include "net/variability.h"

namespace sc::net {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(from_kb(1.0), 1024.0);
  EXPECT_DOUBLE_EQ(to_kb(2048.0), 2.0);
  EXPECT_DOUBLE_EQ(from_gb(1.0), 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(to_gb(from_gb(3.5)), 3.5);
}

TEST(NlanrBaseModel, MatchesPublishedCdfAnchors) {
  const auto model = nlanr_base_model();
  // Paper Fig 2: 37% of requests below 50 KB/s, 56% below 100 KB/s.
  EXPECT_NEAR(model.cdf(from_kb(50.0)), 0.37, 1e-9);
  EXPECT_NEAR(model.cdf(from_kb(100.0)), 0.56, 1e-9);
}

TEST(NlanrBaseModel, SupportAndTail) {
  const auto model = nlanr_base_model();
  EXPECT_GE(model.min(), from_kb(5.0));
  EXPECT_GT(model.max(), from_kb(450.0));  // long tail past 450 KB/s
  // Substantial mass both below and above the 48 KB/s object bit-rate.
  const double below_bitrate = model.cdf(from_kb(48.0));
  EXPECT_GT(below_bitrate, 0.25);
  EXPECT_LT(below_bitrate, 0.45);
}

TEST(AbundantModel, AlwaysAboveRequestedRate) {
  const auto model = abundant_base_model(1000.0);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(model.sample(rng), 1000.0, 2.0);
  }
  EXPECT_THROW((void)abundant_base_model(0.0), std::invalid_argument);
}

TEST(UniformBaseModel, Bounds) {
  const auto model = uniform_base_model(10.0, 20.0);
  EXPECT_DOUBLE_EQ(model.min(), 10.0);
  EXPECT_DOUBLE_EQ(model.max(), 20.0);
  EXPECT_NEAR(model.mean(), 15.0, 1e-9);
}

TEST(NlanrVariability, UnitMeanAndHighCov) {
  const auto model = nlanr_variability_model();
  EXPECT_NEAR(model.mean(), 1.0, 1e-9);
  EXPECT_GT(model.cov(), 0.4);  // "high variability" (paper Fig 3)
  // ~70% of mass within [0.5, 1.5] of the mean.
  const double central = model.cdf(1.5) - model.cdf(0.5);
  EXPECT_NEAR(central, 0.70, 0.06);
  // Visible tail beyond 2x the mean.
  EXPECT_GT(1.0 - model.cdf(2.0), 0.02);
}

TEST(MeasuredPaths, UnitMeanEach) {
  for (const auto p : {MeasuredPath::kInria, MeasuredPath::kTaiwan,
                       MeasuredPath::kHongKong}) {
    EXPECT_NEAR(measured_path_model(p).mean(), 1.0, 1e-9) << to_string(p);
  }
}

TEST(MeasuredPaths, CovOrderingMatchesPaper) {
  // Paper Fig 4 observation (1): INRIA has the lowest variability;
  // observation (2): all three are far below the NLANR model.
  const double inria = measured_path_model(MeasuredPath::kInria).cov();
  const double taiwan = measured_path_model(MeasuredPath::kTaiwan).cov();
  const double hk = measured_path_model(MeasuredPath::kHongKong).cov();
  const double nlanr = nlanr_variability_model().cov();
  EXPECT_LT(inria, hk);
  EXPECT_LT(hk, taiwan);
  EXPECT_LT(taiwan, nlanr * 0.6);
}

TEST(MeasuredPaths, PooledModelBetweenExtremes) {
  const auto pooled = measured_variability_model();
  EXPECT_NEAR(pooled.mean(), 1.0, 1e-9);
  EXPECT_GT(pooled.cov(), measured_path_model(MeasuredPath::kInria).cov());
  EXPECT_LT(pooled.cov(), nlanr_variability_model().cov());
}

TEST(ConstantVariability, DegenerateAtOne) {
  const auto model = constant_variability_model();
  EXPECT_NEAR(model.mean(), 1.0, 1e-3);
  EXPECT_LT(model.cov(), 1e-3);
}

TEST(WithSpread, InterpolatesCov) {
  const auto base = nlanr_variability_model();
  const auto half = with_spread(base, 0.5);
  const auto none = with_spread(base, 0.0);
  EXPECT_NEAR(half.mean(), 1.0, 1e-6);
  EXPECT_LT(half.cov(), base.cov());
  EXPECT_GT(half.cov(), 0.1);
  EXPECT_LT(none.cov(), 1e-3);
  EXPECT_THROW((void)with_spread(base, -0.5), std::invalid_argument);
}

TEST(WithSpread, IdentityAtOne) {
  const auto base = measured_path_model(MeasuredPath::kTaiwan);
  const auto same = with_spread(base, 1.0);
  EXPECT_NEAR(same.cov(), base.cov(), 1e-9);
  EXPECT_NEAR(same.mean(), 1.0, 1e-9);
}

TEST(WithSpread, ExaggerationRaisesCov) {
  const auto base = measured_path_model(MeasuredPath::kInria);
  const auto wide = with_spread(base, 2.0);
  EXPECT_GT(wide.cov(), base.cov() * 1.5);
  EXPECT_NEAR(wide.mean(), 1.0, 1e-6);
}

TEST(MeasuredPathNames, Distinct) {
  EXPECT_NE(to_string(MeasuredPath::kInria), to_string(MeasuredPath::kTaiwan));
  EXPECT_NE(to_string(MeasuredPath::kInria),
            to_string(MeasuredPath::kHongKong));
}

}  // namespace
}  // namespace sc::net
