#include "sim/delivery.h"

#include <gtest/gtest.h>

namespace sc::sim {
namespace {

workload::StreamObject make_object(double duration_s = 100.0,
                                   double bitrate = 10.0) {
  workload::StreamObject o;
  o.id = 0;
  o.duration_s = duration_s;
  o.bitrate = bitrate;
  o.size_bytes = duration_s * bitrate;
  o.value = 5.0;
  return o;
}

TEST(ServiceDelay, PaperFormula) {
  // delay = [T r - T b - x]+ / b  (paper §2.2)
  EXPECT_DOUBLE_EQ(service_delay(100, 10, 4, 0), (1000.0 - 400.0) / 4.0);
  EXPECT_DOUBLE_EQ(service_delay(100, 10, 4, 600), 0.0);
  EXPECT_DOUBLE_EQ(service_delay(100, 10, 4, 300), 300.0 / 4.0);
  EXPECT_DOUBLE_EQ(service_delay(100, 10, 20, 0), 0.0);  // abundant bw
  EXPECT_THROW((void)service_delay(100, 10, 0, 0), std::invalid_argument);
}

TEST(ServiceDelay, SubByteDeficitIsZero) {
  // An exactly-provisioned prefix computed with the same inputs must not
  // leave rounding residue (see the kByteEps rationale in delivery.cpp).
  const double T = 3301.7, r = 48.0 * 1024.0, b = 31.4 * 1024.0;
  const double x = (r - b) * T;
  EXPECT_DOUBLE_EQ(service_delay(T, r, b, x), 0.0);
}

TEST(StreamQuality, PaperFormula) {
  // quality = min(1, (T b + x) / (T r))  (paper §3.3)
  EXPECT_DOUBLE_EQ(stream_quality(100, 10, 4, 0), 0.4);
  EXPECT_DOUBLE_EQ(stream_quality(100, 10, 4, 300), 0.7);
  EXPECT_DOUBLE_EQ(stream_quality(100, 10, 4, 600), 1.0);
  EXPECT_DOUBLE_EQ(stream_quality(100, 10, 50, 0), 1.0);  // capped at 1
  EXPECT_THROW((void)stream_quality(100, 10, 0, 0), std::invalid_argument);
}

TEST(QuantizeQuality, FourLayerExample) {
  // Paper: "four layers but only three can be supported -> 0.75".
  EXPECT_DOUBLE_EQ(quantize_quality(0.80, 4), 0.75);
  EXPECT_DOUBLE_EQ(quantize_quality(0.75, 4), 0.75);
  EXPECT_DOUBLE_EQ(quantize_quality(1.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(quantize_quality(0.10, 4), 0.0);
  EXPECT_DOUBLE_EQ(quantize_quality(0.55, 2), 0.5);
  EXPECT_DOUBLE_EQ(quantize_quality(1.5, 4), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(quantize_quality(-0.5, 4), 0.0);  // clamped
  EXPECT_THROW((void)quantize_quality(0.5, 0), std::invalid_argument);
}

TEST(Deliver, SplitsBytesBetweenCacheAndOrigin) {
  const auto obj = make_object();
  const auto out = deliver(obj, 4.0, 300.0);
  EXPECT_DOUBLE_EQ(out.bytes_from_cache, 300.0);
  EXPECT_DOUBLE_EQ(out.bytes_from_origin, 700.0);
  EXPECT_DOUBLE_EQ(out.origin_transfer_s, 700.0 / 4.0);
  EXPECT_DOUBLE_EQ(out.origin_throughput, 4.0);
  EXPECT_DOUBLE_EQ(out.delay_s, 300.0 / 4.0);
  EXPECT_FALSE(out.immediate);
}

TEST(Deliver, FullyCachedObjectNeedsNoOrigin) {
  const auto obj = make_object();
  const auto out = deliver(obj, 4.0, 1000.0);
  EXPECT_DOUBLE_EQ(out.bytes_from_origin, 0.0);
  EXPECT_DOUBLE_EQ(out.origin_transfer_s, 0.0);
  EXPECT_DOUBLE_EQ(out.origin_throughput, 0.0);
  EXPECT_TRUE(out.immediate);
  EXPECT_DOUBLE_EQ(out.quality, 1.0);
  EXPECT_DOUBLE_EQ(out.quality_continuous, 1.0);
}

TEST(Deliver, ClampsOversizedPrefix) {
  const auto obj = make_object();
  const auto out = deliver(obj, 4.0, 5000.0);  // more than the object
  EXPECT_DOUBLE_EQ(out.bytes_from_cache, 1000.0);
  EXPECT_DOUBLE_EQ(out.bytes_from_origin, 0.0);
}

TEST(Deliver, QuantizedVsContinuousQuality) {
  const auto obj = make_object();
  // b = 8: continuous quality 0.8, quantized (4 layers) 0.75.
  const auto out = deliver(obj, 8.0, 0.0);
  EXPECT_DOUBLE_EQ(out.quality_continuous, 0.8);
  EXPECT_DOUBLE_EQ(out.quality, 0.75);
  // Custom layer count.
  const auto out2 = deliver(obj, 8.0, 0.0, 10);
  EXPECT_DOUBLE_EQ(out2.quality, 0.8);
}

TEST(Deliver, ImmediateIffNoDeficit) {
  const auto obj = make_object();
  EXPECT_TRUE(deliver(obj, 10.0, 0.0).immediate);   // b == r
  EXPECT_TRUE(deliver(obj, 4.0, 600.0).immediate);  // exact provisioning
  EXPECT_FALSE(deliver(obj, 4.0, 598.0).immediate);  // 2-byte deficit
  EXPECT_THROW((void)deliver(obj, 0.0, 0.0), std::invalid_argument);
}

TEST(Deliver, DelayAndQualityAreAlternativeCurrencies) {
  // A request is either delayed at full quality or immediate at reduced
  // quality; both reflect the same deficit.
  const auto obj = make_object();
  for (const double x : {0.0, 100.0, 400.0, 598.0}) {
    const auto out = deliver(obj, 4.0, x);
    EXPECT_GT(out.delay_s, 0.0);
    EXPECT_LT(out.quality_continuous, 1.0);
    // deficit consistency: delay * b == (1 - q) * S
    EXPECT_NEAR(out.delay_s * 4.0, (1.0 - out.quality_continuous) * 1000.0,
                1e-9);
  }
}

}  // namespace
}  // namespace sc::sim
