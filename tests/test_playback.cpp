#include "core/playback.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/path_process.h"
#include "util/rng.h"

namespace sc::core {
namespace {

workload::StreamObject make_object(double duration_s = 100.0,
                                   double bitrate = 10.0) {
  workload::StreamObject o;
  o.id = 0;
  o.duration_s = duration_s;
  o.bitrate = bitrate;
  o.size_bytes = duration_s * bitrate;
  return o;
}

BandwidthFn constant_bw(double b) {
  return [b](double) { return b; };
}

TEST(Playback, AbundantBandwidthPlaysImmediately) {
  const auto obj = make_object();
  const auto r = simulate_playback(obj, 0.0, constant_bw(50.0));
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 0.0);
  EXPECT_EQ(r.stall_count, 0u);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.played_s, 100.0, 1e-9);
  EXPECT_NEAR(r.wall_time_s, 100.0, 1.1);
}

TEST(Playback, StartupMatchesStaticFormulaUnderConstantBandwidth) {
  // b = 4 B/s, no prefix: static delay = (1000 - 400) / 4 = 150 s; with
  // constant bandwidth the session must then play without stalls.
  const auto obj = make_object();
  const auto r = simulate_playback(obj, 0.0, constant_bw(4.0));
  EXPECT_NEAR(r.startup_delay_s, 150.0, 1.1);  // tick resolution
  EXPECT_EQ(r.stall_count, 0u);
  EXPECT_DOUBLE_EQ(r.stall_time_s, 0.0);
  EXPECT_TRUE(r.completed);
}

TEST(Playback, ExactPrefixEliminatesStartup) {
  const auto obj = make_object();
  const auto r = simulate_playback(obj, 600.0, constant_bw(4.0));
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 0.0);
  EXPECT_EQ(r.stall_count, 0u);
  EXPECT_TRUE(r.completed);
}

TEST(Playback, FullyCachedObjectNeverTouchesOrigin) {
  const auto obj = make_object();
  // Bandwidth function would throw if consulted with bw <= 0 only; give a
  // tiny positive bandwidth -- the prefix alone must carry playback.
  const auto r = simulate_playback(obj, 1000.0, constant_bw(0.001));
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 0.0);
  EXPECT_EQ(r.stall_count, 0u);
  EXPECT_TRUE(r.completed);
}

TEST(Playback, BandwidthDropMidStreamCausesStall) {
  // Starts at b = 10 (no startup needed), then collapses at t = 20 s.
  const auto obj = make_object();
  const BandwidthFn drop = [](double now) { return now < 20.0 ? 10.0 : 2.0; };
  const auto r = simulate_playback(obj, 0.0, drop);
  EXPECT_DOUBLE_EQ(r.startup_delay_s, 0.0);  // static formula saw b = 10
  EXPECT_GE(r.stall_count, 1u);
  EXPECT_GT(r.stall_time_s, 0.0);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.wall_time_s, r.startup_delay_s + r.played_s + r.stall_time_s,
              1.1);
}

TEST(Playback, PrefixAbsorbsBandwidthDrop) {
  // The same drop, but a cached prefix covers the deficit: no stalls.
  const auto obj = make_object();
  const BandwidthFn drop = [](double now) { return now < 20.0 ? 10.0 : 8.0; };
  const auto with_prefix = simulate_playback(obj, 400.0, drop);
  EXPECT_EQ(with_prefix.stall_count, 0u);
  const auto without = simulate_playback(obj, 0.0, drop);
  EXPECT_GE(without.stall_count, 1u);
}

TEST(Playback, HeadroomTradesStartupForStalls) {
  const auto obj = make_object();
  util::Rng rng(3);
  // Volatile bandwidth around the bit-rate: stalls are likely.
  net::Ar1RatioProcess process(0.8, 0.4, 0.1, 3.0);
  std::vector<double> trace;
  for (int i = 0; i < 4000; ++i) trace.push_back(10.0 * process.step(rng));
  const BandwidthFn volatile_bw = [&trace](double now) {
    const auto idx = std::min(trace.size() - 1,
                              static_cast<std::size_t>(std::floor(now)));
    return trace[idx];
  };
  PlaybackConfig none;
  PlaybackConfig padded;
  padded.startup_headroom_s = 60.0;
  const auto r0 = simulate_playback(obj, 0.0, volatile_bw, none);
  const auto r1 = simulate_playback(obj, 0.0, volatile_bw, padded);
  // Headroom lengthens startup (capped where the download completes
  // first, at which point waiting longer would be pointless)...
  EXPECT_GT(r1.startup_delay_s, r0.startup_delay_s);
  // ...and buys stall protection.
  EXPECT_LE(r1.stall_time_s, r0.stall_time_s);
}

TEST(Playback, AbortsOnHopelessBandwidth) {
  const auto obj = make_object();
  PlaybackConfig cfg;
  cfg.max_wall_multiple = 2.0;
  // 0.01 B/s: the 1000-byte object would need 10^5 s; bounded at 200 s.
  const auto r = simulate_playback(obj, 0.0, constant_bw(0.01), cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.wall_time_s, 201.0);
}

TEST(Playback, ValidatesArguments) {
  const auto obj = make_object();
  EXPECT_THROW((void)simulate_playback(obj, 0.0, nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_playback(obj, 0.0, constant_bw(0.0)),
               std::invalid_argument);
  PlaybackConfig bad;
  bad.tick_s = 0.0;
  EXPECT_THROW((void)simulate_playback(obj, 0.0, constant_bw(1.0), bad),
               std::invalid_argument);
}

TEST(Playback, WallTimeDecomposition) {
  const auto obj = make_object(50.0, 8.0);  // 400 bytes
  const auto r = simulate_playback(obj, 100.0, constant_bw(5.0));
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.wall_time_s,
              r.startup_delay_s + r.played_s + r.stall_time_s, 1.1);
}

}  // namespace
}  // namespace sc::core
