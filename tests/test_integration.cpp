// End-to-end integration tests: miniature versions of the paper's
// experiments asserting the qualitative results (who wins) that the full
// bench harnesses reproduce at scale.

#include <gtest/gtest.h>

#include <map>

#include "cache/offline_opt.h"
#include "core/experiment.h"
#include "workload/workload_stats.h"

namespace sc::core {
namespace {

AveragedMetrics run_policy(const std::string& policy,
                           const Scenario& scenario, double fraction) {
  ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 600;
  cfg.workload.trace.num_requests = 30000;
  cfg.runs = 4;
  cfg.base_seed = 77;
  cfg.sim.policy = policy;
  cfg.sim.cache_capacity_bytes =
      capacity_for_fraction(cfg.workload.catalog, fraction);
  return run_experiment(cfg, scenario);
}

TEST(PaperShapes, Fig5ConstantBandwidthOrdering) {
  const auto scenario = constant_scenario();
  const auto fi = run_policy("if", scenario, 0.05);
  const auto pb = run_policy("pb", scenario, 0.05);
  const auto ib = run_policy("ib", scenario, 0.05);

  // (a) traffic reduction: IF > IB > PB.
  EXPECT_GT(fi.traffic_reduction, ib.traffic_reduction);
  EXPECT_GT(ib.traffic_reduction, pb.traffic_reduction);
  // (b) delay: PB < IB < IF.
  EXPECT_LT(pb.delay_s, ib.delay_s);
  EXPECT_LT(ib.delay_s, fi.delay_s);
  // (c) quality: PB > IB > IF.
  EXPECT_GT(pb.quality, ib.quality);
  EXPECT_GT(ib.quality, fi.quality);
}

TEST(PaperShapes, Fig5CacheSizeMonotonicity) {
  const auto scenario = constant_scenario();
  for (const std::string policy : {"if", "ib"}) {
    const auto small = run_policy(policy, scenario, 0.01);
    const auto large = run_policy(policy, scenario, 0.10);
    EXPECT_GT(large.traffic_reduction, small.traffic_reduction);
    EXPECT_LT(large.delay_s, small.delay_s);
  }
}

TEST(PaperShapes, Fig7HighVariabilityErasesPbEdge) {
  const auto scenario = nlanr_variability_scenario();
  const auto pb = run_policy("pb", scenario, 0.10);
  const auto ib = run_policy("ib", scenario, 0.10);
  // §4.3: "IB caching is no worse than PB caching" under high variability.
  EXPECT_LE(ib.delay_s, pb.delay_s * 1.10);
}

TEST(PaperShapes, VariabilityInflatesDelayForAllPolicies) {
  for (const std::string policy : {"if", "pb", "ib"}) {
    const auto constant = run_policy(policy, constant_scenario(), 0.05);
    const auto variable =
        run_policy(policy, nlanr_variability_scenario(), 0.05);
    EXPECT_GT(variable.delay_s, constant.delay_s) << policy;
    EXPECT_LT(variable.quality, constant.quality + 1e-9) << policy;
  }
}

TEST(PaperShapes, Fig8LowVariabilityRestoresPb) {
  const auto scenario = measured_variability_scenario();
  const auto fi = run_policy("if", scenario, 0.05);
  const auto pb = run_policy("pb", scenario, 0.05);
  EXPECT_LT(pb.delay_s, fi.delay_s);
  EXPECT_GT(pb.quality, fi.quality);
}

TEST(PaperShapes, Fig9TrafficFallsWithE) {
  const auto scenario = nlanr_variability_scenario();
  const auto e0 = run_policy("hybrid:e=0.0", scenario, 0.10);
  const auto e5 = run_policy("hybrid:e=0.5", scenario, 0.10);
  const auto e1 = run_policy("hybrid:e=1.0", scenario, 0.10);
  EXPECT_GT(e0.traffic_reduction, e5.traffic_reduction);
  EXPECT_GT(e5.traffic_reduction, e1.traffic_reduction);
}

TEST(PaperShapes, Fig10ValueOrderingConstantBandwidth) {
  const auto scenario = constant_scenario();
  const auto fi = run_policy("if", scenario, 0.05);
  const auto pbv = run_policy("pbv", scenario, 0.05);
  const auto ibv = run_policy("ibv", scenario, 0.05);
  EXPECT_GT(pbv.added_value, ibv.added_value);
  EXPECT_GT(ibv.added_value, fi.added_value);
  EXPECT_GT(fi.traffic_reduction, ibv.traffic_reduction);
  EXPECT_GT(ibv.traffic_reduction, pbv.traffic_reduction);
}

TEST(PaperShapes, NetworkObliviousBaselinesTrailOnDelay) {
  const auto scenario = constant_scenario();
  const auto pb = run_policy("pb", scenario, 0.05);
  const auto lru = run_policy("lru", scenario, 0.05);
  const auto lfu = run_policy("lfu", scenario, 0.05);
  EXPECT_LT(pb.delay_s, lru.delay_s);
  EXPECT_LT(pb.delay_s, lfu.delay_s);
}

TEST(PaperShapes, OnlinePbApproachesOfflineOptimum) {
  // §2.3/§2.4: the online PB replacement approximates the fractional-
  // knapsack optimum. Compare the achieved measured-window delay against
  // the offline bound computed with oracle rates + bandwidths.
  ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 400;
  cfg.workload.trace.num_requests = 40000;
  cfg.runs = 1;
  cfg.parallel = false;
  cfg.sim.policy = "pb";
  cfg.sim.cache_capacity_bytes =
      capacity_for_fraction(cfg.workload.catalog, 0.08);

  // Regenerate the identical workload + paths the experiment used.
  util::Rng run_rng(util::splitmix64(cfg.base_seed));
  util::Rng wl_rng = run_rng.fork("workload");
  const auto w = workload::generate_workload(cfg.workload, wl_rng);
  net::PathModelConfig pcfg;
  const net::PathModel paths(
      w.catalog.size(), constant_scenario().base, constant_scenario().ratio,
      pcfg, util::Rng(run_rng.fork("paths").seed()).fork("paths"));

  cache::OfflineInputs inputs;
  const auto counts = workload::request_counts(w);
  inputs.lambda.assign(counts.begin(), counts.end());
  inputs.bandwidth = paths.means();
  const auto opt = cache::optimal_fractional(w.catalog, inputs,
                                             cfg.sim.cache_capacity_bytes);

  const auto online = run_experiment(cfg, constant_scenario());
  // The online policy can't beat the offline optimum...
  EXPECT_GE(online.delay_s, opt.expected_delay_s * 0.9);
  // ...but should land within a small constant factor of it.
  EXPECT_LT(online.delay_s, opt.expected_delay_s * 3.0 + 5.0);
}

}  // namespace
}  // namespace sc::core
