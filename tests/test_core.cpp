#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "core/experiment.h"
#include "net/bandwidth_model.h"
#include "net/variability.h"

namespace sc::core {
namespace {

TEST(Accelerator, ServesAndAdmits) {
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 20;
  util::Rng rng(1);
  const auto catalog = workload::Catalog::generate(wcfg.catalog, rng);
  net::PassiveEwmaEstimator estimator(catalog.size(), 0.3, 30e3);

  AcceleratorConfig cfg;
  cfg.capacity_bytes = 1e10;
  cfg.policy = "pb";
  Accelerator acc(catalog, estimator, cfg);
  EXPECT_EQ(acc.policy_name(), "PB");
  EXPECT_DOUBLE_EQ(acc.occupancy_bytes(), 0.0);

  // Low-bandwidth serve: the first request sees an empty cache...
  const auto plan1 = acc.serve(0, 0.0, 10e3);
  EXPECT_DOUBLE_EQ(plan1.cached_prefix_bytes, 0.0);
  EXPECT_GT(plan1.outcome.delay_s, 0.0);
  // ...teach the estimator, then the policy admits a prefix.
  acc.observe_transfer(catalog.object(0).path, 10e3, 0.0);
  const auto plan2 = acc.serve(0, 1.0, 10e3);
  (void)plan2;
  const auto plan3 = acc.serve(0, 2.0, 10e3);
  EXPECT_GT(plan3.cached_prefix_bytes, 0.0);
  EXPECT_LT(plan3.outcome.delay_s, plan1.outcome.delay_s);
  EXPECT_GT(acc.occupancy_bytes(), 0.0);
  EXPECT_LE(acc.occupancy_bytes(), acc.capacity_bytes());
}

TEST(Accelerator, PlanReportsByteSplit) {
  workload::CatalogConfig ccfg;
  ccfg.num_objects = 5;
  util::Rng rng(2);
  const auto catalog = workload::Catalog::generate(ccfg, rng);
  net::PassiveEwmaEstimator estimator(catalog.size(), 0.3, 30e3);
  AcceleratorConfig cfg;
  cfg.capacity_bytes = 1e12;
  Accelerator acc(catalog, estimator, cfg);

  const auto plan = acc.serve(1, 0.0, 100e3);
  EXPECT_NEAR(plan.outcome.bytes_from_cache + plan.outcome.bytes_from_origin,
              catalog.object(1).size_bytes, 1e-6);
}

TEST(Scenarios, NamedScenariosHaveExpectedModes) {
  EXPECT_EQ(constant_scenario().mode, net::VariationMode::kConstant);
  EXPECT_EQ(nlanr_variability_scenario().mode, net::VariationMode::kIidRatio);
  EXPECT_EQ(measured_variability_scenario().mode,
            net::VariationMode::kIidRatio);
  EXPECT_EQ(timeseries_scenario(net::MeasuredPath::kInria).mode,
            net::VariationMode::kTimeSeries);
  // Variability ordering across scenarios.
  EXPECT_LT(measured_variability_scenario().ratio.cov(),
            nlanr_variability_scenario().ratio.cov());
}

TEST(CapacityForFraction, MatchesPaperAxis) {
  workload::CatalogConfig cfg;  // Table 1 defaults => ~790 GB corpus
  const double full = capacity_for_fraction(cfg, 1.0);
  EXPECT_NEAR(full / (1024.0 * 1024 * 1024), 790.0, 40.0);
  EXPECT_DOUBLE_EQ(capacity_for_fraction(cfg, 0.0), 0.0);
  // 0.5% of the corpus ~ 4 GB (the paper's smallest cache).
  EXPECT_NEAR(capacity_for_fraction(cfg, 0.005) / (1024.0 * 1024 * 1024),
              4.0, 0.5);
  EXPECT_THROW((void)capacity_for_fraction(cfg, -0.1),
               std::invalid_argument);
}

TEST(PaperCacheFractions, CoversPublishedRange) {
  const auto fracs = paper_cache_fractions();
  ASSERT_GE(fracs.size(), 4u);
  EXPECT_DOUBLE_EQ(fracs.front(), 0.005);  // 4 GB
  EXPECT_DOUBLE_EQ(fracs.back(), 0.169);   // 128 GB
  for (std::size_t i = 1; i < fracs.size(); ++i) {
    EXPECT_GT(fracs[i], fracs[i - 1]);
  }
}

ExperimentConfig small_experiment() {
  ExperimentConfig e;
  e.workload.catalog.num_objects = 150;
  e.workload.trace.num_requests = 6000;
  e.runs = 4;
  e.sim.policy = "pb";
  e.sim.cache_capacity_bytes =
      capacity_for_fraction(e.workload.catalog, 0.05);
  return e;
}

TEST(RunExperiment, ParallelEqualsSerial) {
  auto cfg = small_experiment();
  cfg.parallel = true;
  const auto par = run_experiment(cfg, constant_scenario());
  cfg.parallel = false;
  const auto ser = run_experiment(cfg, constant_scenario());
  EXPECT_DOUBLE_EQ(par.delay_s, ser.delay_s);
  EXPECT_DOUBLE_EQ(par.traffic_reduction, ser.traffic_reduction);
  EXPECT_DOUBLE_EQ(par.added_value, ser.added_value);
}

TEST(RunExperiment, ReportsCrossRunSpread) {
  const auto m = run_experiment(small_experiment(), constant_scenario());
  EXPECT_EQ(m.runs, 4u);
  EXPECT_GT(m.delay_s, 0.0);
  EXPECT_GT(m.delay_s_sd, 0.0);  // independent workloads per run
  EXPECT_GE(m.quality, 0.0);
  EXPECT_LE(m.quality, 1.0);
}

TEST(RunExperiment, SameSeedReproducible) {
  const auto a = run_experiment(small_experiment(), constant_scenario());
  const auto b = run_experiment(small_experiment(), constant_scenario());
  EXPECT_DOUBLE_EQ(a.delay_s, b.delay_s);
  EXPECT_DOUBLE_EQ(a.added_value, b.added_value);
}

TEST(RunExperiment, SeedChangesResults) {
  auto cfg = small_experiment();
  const auto a = run_experiment(cfg, constant_scenario());
  cfg.base_seed += 1;
  const auto b = run_experiment(cfg, constant_scenario());
  EXPECT_NE(a.delay_s, b.delay_s);
}

TEST(RunExperiment, RejectsZeroRuns) {
  auto cfg = small_experiment();
  cfg.runs = 0;
  EXPECT_THROW((void)run_experiment(cfg, constant_scenario()),
               std::invalid_argument);
}

TEST(RunExperiment, SharedSeedsPairPoliciesOnSameWorkloads) {
  // Different policies under the same base_seed see identical workloads
  // and path tables: their traffic totals must coincide.
  auto cfg_pb = small_experiment();
  auto cfg_if = small_experiment();
  cfg_if.sim.policy = "if";
  const auto pb = run_experiment(cfg_pb, constant_scenario());
  const auto fi = run_experiment(cfg_if, constant_scenario());
  // Paired design: same request byte volume, different split.
  EXPECT_NE(pb.traffic_reduction, fi.traffic_reduction);
  EXPECT_NE(pb.delay_s, fi.delay_s);
}

}  // namespace
}  // namespace sc::core
