#include <gtest/gtest.h>

#include <filesystem>

#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/spec.h"
#include "util/table.h"

namespace sc::util {
namespace {

TEST(Cli, ParsesAllFlagForms) {
  // Note: a bare flag followed by a non-flag token ("--verbose" at the
  // end here) stays boolean; "--name value" consumes the next token.
  const char* argv[] = {"prog",       "--alpha=0.5", "--runs", "10",
                        "positional", "--name",      "x y",    "--verbose"};
  const Cli cli(8, argv);
  EXPECT_EQ(cli.program(), "prog");
  EXPECT_DOUBLE_EQ(cli.get_or("alpha", 0.0), 0.5);
  EXPECT_EQ(cli.get_or("runs", 0LL), 10);
  EXPECT_TRUE(cli.get_or("verbose", false));
  EXPECT_EQ(cli.get_or("name", std::string()), "x y");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get("missing"), std::nullopt);
  EXPECT_DOUBLE_EQ(cli.get_or("missing", 1.5), 1.5);
  EXPECT_EQ(cli.get_or("missing", std::string("d")), "d");
  EXPECT_FALSE(cli.get_or("missing", false));
}

TEST(Cli, BooleanValueParsing) {
  const char* argv[] = {"prog", "--a=1", "--b=true", "--c=no", "--d=off"};
  const Cli cli(5, argv);
  EXPECT_TRUE(cli.get_or("a", false));
  EXPECT_TRUE(cli.get_or("b", false));
  EXPECT_FALSE(cli.get_or("c", true));
  EXPECT_FALSE(cli.get_or("d", true));
}

TEST(Cli, MalformedNumericFlagsNameTheFlag) {
  // Regression: the numeric getters used to call std::stod/std::stoll
  // directly, so "--threads=abc" aborted with a raw std::invalid_argument
  // naming no flag (and "1.5x" silently dropped its trailing junk).
  const char* argv[] = {"prog", "--alpha=abc", "--runs=12x",
                        "--rate=1.5x", "--huge=99999999999999999999"};
  const Cli cli(5, argv);
  try {
    (void)cli.get_or("alpha", 0.0);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("--alpha"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
  EXPECT_THROW((void)cli.get_or("rate", 0.0), SpecError);
  try {
    (void)cli.get_or("runs", 0LL);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("--runs"), std::string::npos)
        << e.what();
  }
  // Out-of-range integers get their own message, still naming the flag.
  try {
    (void)cli.get_or("huge", 0LL);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("--huge"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

TEST(Cli, WellFormedNumericFlagsStillParse) {
  const char* argv[] = {"prog", "--alpha=0.75", "--runs=-3", "--sci=1e3"};
  const Cli cli(4, argv);
  EXPECT_DOUBLE_EQ(cli.get_or("alpha", 0.0), 0.75);
  EXPECT_EQ(cli.get_or("runs", 0LL), -3);
  EXPECT_DOUBLE_EQ(cli.get_or("sci", 0.0), 1000.0);
}

TEST(Cli, DoubleDashStopsFlagParsing) {
  const char* argv[] = {"prog", "--", "--not-a-flag"};
  const Cli cli(3, argv);
  EXPECT_FALSE(cli.has("not-a-flag"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "--not-a-flag");
}

TEST(Cli, FlagNamesEnumerated) {
  const char* argv[] = {"prog", "--b=1", "--a=2"};
  const Cli cli(3, argv);
  const auto names = cli.flag_names();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(Cli, RepeatedFlagLastWinsAcrossForms) {
  // Deterministic last-wins, regardless of which form each occurrence
  // uses: --name=value then --name value, and the reverse.
  const char* argv[] = {"prog", "--runs=3", "--runs", "5", "--e", "1",
                        "--e=2"};
  const Cli cli(7, argv);
  EXPECT_EQ(cli.get_or("runs", 0LL), 5);
  EXPECT_EQ(cli.get_or("e", 0LL), 2);
}

TEST(Cli, UnknownFlagSuggestsClosest) {
  const char* argv[] = {"prog", "--polciy=pb"};
  const Cli cli(2, argv);
  try {
    cli.check_unknown({"policy", "estimator", "scenario"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string message = ex.what();
    EXPECT_NE(message.find("--polciy"), std::string::npos);
    EXPECT_NE(message.find("did you mean --policy"), std::string::npos);
  }
}

TEST(Cli, UnknownFlagWithoutCloseMatchListsKnown) {
  const char* argv[] = {"prog", "--zzzzz=1"};
  const Cli cli(2, argv);
  try {
    cli.check_unknown({"policy", "runs"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string message = ex.what();
    EXPECT_NE(message.find("--policy"), std::string::npos);
    EXPECT_NE(message.find("--runs"), std::string::npos);
  }
}

TEST(Cli, KnownFlagsPassCheck) {
  const char* argv[] = {"prog", "--policy=pb", "--runs=3"};
  const Cli cli(3, argv);
  EXPECT_NO_THROW(cli.check_unknown({"policy", "runs", "seed"}));
}

TEST(ParseCount, PlainDigitsAndSuffixes) {
  EXPECT_EQ(parse_count("0"), 0u);
  EXPECT_EQ(parse_count("50000"), 50000u);
  EXPECT_EQ(parse_count("250k"), 250000u);
  EXPECT_EQ(parse_count("250K"), 250000u);
  EXPECT_EQ(parse_count("100M"), 100000000u);
  EXPECT_EQ(parse_count("100m"), 100000000u);
  EXPECT_EQ(parse_count("2G"), 2000000000u);
  EXPECT_EQ(parse_count("1B"), 1000000000u);
  EXPECT_EQ(parse_count("2.5M"), 2500000u);
  EXPECT_EQ(parse_count("1.5k"), 1500u);
}

TEST(ParseCount, ScientificNotation) {
  EXPECT_EQ(parse_count("1e8"), 100000000u);
  EXPECT_EQ(parse_count("2.5e7"), 25000000u);
  EXPECT_EQ(parse_count("1E3"), 1000u);
}

TEST(ParseCount, RejectsNonCounts) {
  for (const char* bad : {"", "abc", "12x", "k", "--", "1.5", "0.5",
                          "2.0001k", "-5", "-1k", "1e500", "1ee8",
                          "12 34"}) {
    EXPECT_THROW((void)parse_count(bad), std::invalid_argument) << bad;
  }
}

TEST(ParseCount, ErrorNamesTheOffendingText) {
  try {
    (void)parse_count("12x");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string message = ex.what();
    EXPECT_NE(message.find("12x"), std::string::npos);
    EXPECT_NE(message.find("250k"), std::string::npos);  // examples shown
  }
}

TEST(Cli, GetCountParsesHumanizedFormsAndPrefixesErrors) {
  const char* argv[] = {"prog", "--requests=100M", "--objects=1e4"};
  const Cli cli(3, argv);
  EXPECT_EQ(cli.get_count("requests", 0), 100000000u);
  EXPECT_EQ(cli.get_count("objects", 0), 10000u);
  EXPECT_EQ(cli.get_count("runs", 7), 7u);  // absent -> fallback
  const char* bad_argv[] = {"prog", "--requests=lots"};
  const Cli bad(2, bad_argv);
  try {
    (void)bad.get_count("requests", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_EQ(std::string(ex.what()).rfind("--requests: ", 0), 0u);
  }
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriteReadRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "sc_test.csv";
  {
    CsvWriter w(path);
    w.header({"name", "value", "note"});
    w.field("alpha").field(0.73).field("plain").endrow();
    w.field("tricky, field").field(42LL).field("q\"q").endrow();
  }
  const auto table = read_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(table.header,
            (std::vector<std::string>{"name", "value", "note"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][0], "alpha");
  EXPECT_EQ(table.rows[0][1], "0.73");
  EXPECT_EQ(table.rows[1][0], "tricky, field");
  EXPECT_EQ(table.rows[1][1], "42");
  EXPECT_EQ(table.rows[1][2], "q\"q");
}

TEST(Csv, RowApiAndErrors) {
  const auto path = std::filesystem::temp_directory_path() / "sc_test2.csv";
  {
    CsvWriter w(path);
    w.row({"a", "b"});
    w.row({"1", "2"});
  }
  const auto t = read_csv(path);
  std::filesystem::remove(path);
  EXPECT_EQ(t.rows.size(), 1u);
  EXPECT_THROW(read_csv("/nonexistent/dir/x.csv"), std::runtime_error);
  EXPECT_THROW(CsvWriter("/nonexistent/dir/x.csv"), std::runtime_error);
}

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"col", "value"});
  t.add_row({"x", Table::num(1.23456, 2)});
  const auto s = t.str();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(Table::num(2.5, 0), "2");  // even-rounding via printf
  EXPECT_THROW(Table({}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  Series s1{"up", {0, 1, 2, 3}, {0, 1, 2, 3}};
  Series s2{"down", {0, 1, 2, 3}, {3, 2, 1, 0}};
  const auto chart = ascii_chart({s1, s2}, 40, 10, "title", "x", "y");
  EXPECT_NE(chart.find("title"), std::string::npos);
  EXPECT_NE(chart.find("*=up"), std::string::npos);
  EXPECT_NE(chart.find("+=down"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChart, DegenerateInputs) {
  EXPECT_TRUE(ascii_chart({}).empty());
  Series flat{"flat", {1.0, 1.0}, {5.0, 5.0}};  // zero x/y range
  EXPECT_FALSE(ascii_chart({flat}).empty());
  Series empty{"empty", {}, {}};
  EXPECT_TRUE(ascii_chart({empty}).empty());
}

TEST(Log, LevelFiltering) {
  const auto before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must be cheap no-ops; mainly checks the macros compile + run.
  SC_DEBUG << "invisible " << 42;
  SC_INFO << "invisible";
  set_log_level(LogLevel::kOff);
  SC_ERROR << "also invisible";
  set_log_level(before);
}

}  // namespace
}  // namespace sc::util
