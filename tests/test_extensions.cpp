// Tests for the simulator extensions: client interactivity (partial
// viewing) and proxy-side patching (stream sharing).

#include <gtest/gtest.h>

#include "net/bandwidth_model.h"
#include "net/variability.h"
#include "sim/simulator.h"

namespace sc::sim {
namespace {

workload::Workload make_workload(std::size_t objects, std::size_t requests,
                                 std::uint64_t seed,
                                 double arrival_rate = 0.15) {
  workload::WorkloadConfig cfg;
  cfg.catalog.num_objects = objects;
  cfg.trace.num_requests = requests;
  cfg.trace.arrival_rate_per_s = arrival_rate;
  util::Rng rng(seed);
  return workload::generate_workload(cfg, rng);
}

SimulationConfig pb_config(double capacity) {
  SimulationConfig cfg;
  cfg.cache_capacity_bytes = capacity;
  cfg.policy = "pb";
  cfg.seed = 5;
  return cfg;
}

TEST(Viewing, PartialViewingReducesDeliveredBytes) {
  const auto w = make_workload(200, 10000, 1);
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();

  auto full = pb_config(1e10);
  auto partial = pb_config(1e10);
  partial.viewing.enabled = true;
  partial.viewing.complete_probability = 0.3;

  const auto rf = Simulator(w, base, ratio, full).run();
  const auto rp = Simulator(w, base, ratio, partial).run();
  const double full_bytes =
      rf.metrics.bytes_from_cache() + rf.metrics.bytes_from_origin();
  const double partial_bytes =
      rp.metrics.bytes_from_cache() + rp.metrics.bytes_from_origin();
  EXPECT_LT(partial_bytes, full_bytes * 0.85);
  // Startup metrics are not affected by how much gets watched.
  EXPECT_DOUBLE_EQ(rf.metrics.average_delay_s(),
                   rp.metrics.average_delay_s());
  EXPECT_DOUBLE_EQ(rf.metrics.average_quality(),
                   rp.metrics.average_quality());
}

TEST(Viewing, CompleteProbabilityOneMatchesBaseline) {
  const auto w = make_workload(100, 5000, 2);
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();
  auto on = pb_config(1e10);
  on.viewing.enabled = true;
  on.viewing.complete_probability = 1.0;
  const auto r_on = Simulator(w, base, ratio, on).run();
  const auto r_off = Simulator(w, base, ratio, pb_config(1e10)).run();
  EXPECT_DOUBLE_EQ(r_on.metrics.bytes_from_origin(),
                   r_off.metrics.bytes_from_origin());
  EXPECT_DOUBLE_EQ(r_on.metrics.bytes_from_cache(),
                   r_off.metrics.bytes_from_cache());
}

TEST(Viewing, ViewingBoostsTrafficReductionForPrefixCaches) {
  // Prefix caching stores exactly the bytes early viewers watch, so the
  // cache-served *share* rises when sessions terminate early.
  const auto w = make_workload(300, 15000, 3);
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();
  auto partial = pb_config(3e10);
  partial.viewing.enabled = true;
  partial.viewing.complete_probability = 0.2;
  const auto rp = Simulator(w, base, ratio, partial).run();
  const auto rf = Simulator(w, base, ratio, pb_config(3e10)).run();
  EXPECT_GT(rp.metrics.traffic_reduction_ratio(),
            rf.metrics.traffic_reduction_ratio());
}

TEST(Patching, SharesConcurrentStreams) {
  // High arrival rate => many overlapping requests for hot objects.
  const auto w = make_workload(50, 20000, 4, /*arrival_rate=*/5.0);
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();

  auto patched = pb_config(1e9);
  patched.patching.enabled = true;
  const auto rp = Simulator(w, base, ratio, patched).run();
  const auto rn = Simulator(w, base, ratio, pb_config(1e9)).run();

  EXPECT_GT(rp.metrics.bytes_shared(), 0.0);
  EXPECT_EQ(rn.metrics.bytes_shared(), 0.0);
  // Shared bytes come out of origin traffic; totals are conserved.
  EXPECT_NEAR(rp.metrics.bytes_from_origin() + rp.metrics.bytes_shared() +
                  rp.metrics.bytes_from_cache(),
              rn.metrics.bytes_from_origin() + rn.metrics.bytes_from_cache(),
              1.0);
  // Backbone reduction strictly improves; cache-only reduction is equal
  // (mathematically: patching moves bytes between the origin and shared
  // accumulators, so the sums agree only up to summation order).
  EXPECT_GT(rp.metrics.backbone_reduction_ratio(),
            rn.metrics.backbone_reduction_ratio());
  EXPECT_NEAR(rp.metrics.traffic_reduction_ratio(),
              rn.metrics.traffic_reduction_ratio(), 1e-12);
}

TEST(Patching, NoSharingWhenRequestsNeverOverlap) {
  // Deterministic trace: requests spaced far beyond any object duration,
  // so no stream is ever still in flight when the next request lands.
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = 20;
  util::Rng rng(5);
  auto catalog = workload::Catalog::generate(wcfg.catalog, rng);
  std::vector<workload::Request> trace;
  for (std::size_t i = 0; i < 200; ++i) {
    trace.push_back(workload::Request{static_cast<double>(i) * 1e6, i % 20});
  }
  const workload::Workload w{std::move(catalog), std::move(trace)};
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();
  auto patched = pb_config(1e9);
  patched.patching.enabled = true;
  const auto r = Simulator(w, base, ratio, patched).run();
  EXPECT_DOUBLE_EQ(r.metrics.bytes_shared(), 0.0);
}

TEST(Patching, ComposesWithCaching) {
  // Caching + patching together beat either alone on backbone bytes.
  const auto w = make_workload(80, 20000, 6, /*arrival_rate=*/2.0);
  const auto base = net::nlanr_base_model();
  const auto ratio = net::constant_variability_model();

  auto neither = pb_config(0.0);
  auto cache_only = pb_config(2e10);
  auto patch_only = pb_config(0.0);
  patch_only.patching.enabled = true;
  auto both = pb_config(2e10);
  both.patching.enabled = true;

  const double r00 =
      Simulator(w, base, ratio, neither).run().metrics
          .backbone_reduction_ratio();
  const double r10 =
      Simulator(w, base, ratio, cache_only).run().metrics
          .backbone_reduction_ratio();
  const double r01 =
      Simulator(w, base, ratio, patch_only).run().metrics
          .backbone_reduction_ratio();
  const double r11 =
      Simulator(w, base, ratio, both).run().metrics
          .backbone_reduction_ratio();
  EXPECT_DOUBLE_EQ(r00, 0.0);
  EXPECT_GT(r11, r10);
  EXPECT_GT(r11, r01);
}

TEST(Patching, MetricsBackboneEqualsTrafficWhenOff) {
  const auto w = make_workload(100, 5000, 7);
  const auto r = Simulator(w, net::nlanr_base_model(),
                           net::constant_variability_model(), pb_config(1e10))
                     .run();
  EXPECT_DOUBLE_EQ(r.metrics.backbone_reduction_ratio(),
                   r.metrics.traffic_reduction_ratio());
}

}  // namespace
}  // namespace sc::sim
