// Registry + builder tests: spec-string construction of every component,
// error quality, spec-name completeness, and the end-to-end acceptance
// path ("hybrid:e=0.5" + "ewma:alpha=0.3" through a full experiment).

#include "core/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/builder.h"
#include "net/bandwidth_model.h"
#include "net/variability.h"
#include "sim/simulator.h"

namespace sc::core {
namespace {

workload::Catalog small_catalog() {
  workload::CatalogConfig cfg;
  cfg.num_objects = 16;
  util::Rng rng(3);
  return workload::Catalog::generate(cfg, rng);
}

std::shared_ptr<const net::PathModel> small_paths(std::size_t n) {
  return std::make_shared<const net::PathModel>(
      n, net::nlanr_base_model(), net::constant_variability_model(),
      net::PathModelConfig{}, util::Rng(4));
}

TEST(Registry, PolicySpecsConstructCorrectPolicies) {
  const auto catalog = small_catalog();
  const auto paths = small_paths(catalog.size());
  net::OracleEstimator estimator(*paths);

  const std::vector<std::pair<std::string, std::string>> cases = {
      {"if", "IF"},           {"pb", "PB"},
      {"ib", "IB"},           {"hybrid:e=0.5", "Hybrid(e=0.5)"},
      {"pbv", "PB-V"},        {"pbv:e=0.7", "PB-V(e=0.7)"},
      {"pb-v", "PB-V"},       {"ibv", "IB-V"},
      {"ib-v", "IB-V"},       {"lru", "LRU"},
      {"lfu", "LFU"},         {"PB", "PB"},  // case-insensitive
      {"Hybrid:E=0.5", "Hybrid(e=0.5)"},
  };
  for (const auto& [spec, name] : cases) {
    EXPECT_EQ(registry::make_policy(spec, catalog, estimator)->name(), name)
        << spec;
  }
}

TEST(Registry, UnknownPolicyListsAlternativesAndSuggests) {
  const auto catalog = small_catalog();
  const auto paths = small_paths(catalog.size());
  net::OracleEstimator estimator(*paths);
  try {
    (void)registry::make_policy("hybird:e=0.5", catalog, estimator);
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& ex) {
    const std::string message = ex.what();
    EXPECT_NE(message.find("unknown policy \"hybird\""), std::string::npos);
    // Lists the registered alternatives...
    for (const std::string name : {"hybrid", "ib", "if", "lfu", "lru", "pb",
                                   "pbv", "ibv"}) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
    // ...and suggests the closest one.
    EXPECT_NE(message.find("did you mean \"hybrid\"?"), std::string::npos);
  }
}

TEST(Registry, UnknownParameterRejected) {
  const auto catalog = small_catalog();
  const auto paths = small_paths(catalog.size());
  net::OracleEstimator estimator(*paths);
  try {
    (void)registry::make_policy("hybrid:x=1", catalog, estimator);
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& ex) {
    const std::string message = ex.what();
    EXPECT_NE(message.find("unknown parameter \"x\""), std::string::npos);
    EXPECT_NE(message.find("e"), std::string::npos);
  }
  // Parameter values are still validated by the component itself.
  EXPECT_THROW(
      (void)registry::make_policy("hybrid:e=1.5", catalog, estimator),
      std::invalid_argument);
}

TEST(Registry, EveryPolicySpecConstructsItsNamedPolicy) {
  // Paper-table completeness: each §3 policy name resolves through the
  // registry and reports the expected display name.
  const auto catalog = small_catalog();
  const auto paths = small_paths(catalog.size());
  net::OracleEstimator estimator(*paths);
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"if", "IF"},           {"pb", "PB"},
      {"ib", "IB"},           {"hybrid:e=0.5", "Hybrid(e=0.5)"},
      {"pbv:e=0.5", "PB-V(e=0.5)"}, {"ibv", "IB-V"},
      {"lru", "LRU"},         {"lfu", "LFU"},
  };
  for (const auto& [spec, name] : expected) {
    EXPECT_EQ(registry::make_policy(spec, catalog, estimator)->name(), name)
        << spec;
  }
}

TEST(Registry, EveryEstimatorSpecAndLegacyAliasResolves) {
  for (const char* spec : {"oracle", "ewma", "last", "probe",
                           // legacy display names remain registered
                           // aliases so old configs keep resolving
                           "passive-ewma", "last-sample", "active-probe"}) {
    EXPECT_NO_THROW(registry::validate(registry::Kind::kEstimator, spec))
        << spec;
  }
}
TEST(Registry, EstimatorFactoriesApplyParams) {
  const auto paths = small_paths(8);

  // Unseen paths fall back to the configured prior (KiB/s).
  auto ewma = registry::make_estimator("ewma:alpha=0.5,prior_kbps=80", *paths,
                                       util::Rng(7));
  EXPECT_DOUBLE_EQ(ewma->estimate(0, 0.0), 80.0 * 1024.0);

  auto last = registry::make_estimator("last:prior_kbps=10", *paths,
                                       util::Rng(7));
  EXPECT_DOUBLE_EQ(last->estimate(0, 0.0), 10.0 * 1024.0);

  // Probing incurs packet overhead on first estimate.
  auto probe = registry::make_estimator("probe:interval_s=60", *paths,
                                        util::Rng(7));
  (void)probe->estimate(0, 0.0);
  EXPECT_GT(probe->overhead_packets(), 0u);

  auto oracle = registry::make_estimator("oracle", *paths, util::Rng(7));
  EXPECT_DOUBLE_EQ(oracle->estimate(3, 0.0), paths->mean_bandwidth(3));

  EXPECT_THROW(
      (void)registry::make_estimator("ewma:beta=1", *paths, util::Rng(7)),
      util::SpecError);
}

TEST(Registry, ScenarioSpecs) {
  EXPECT_EQ(registry::make_scenario("constant").mode,
            net::VariationMode::kConstant);
  EXPECT_EQ(registry::make_scenario("nlanr").mode,
            net::VariationMode::kIidRatio);
  EXPECT_EQ(registry::make_scenario("measured").mode,
            net::VariationMode::kIidRatio);
  // Aliases resolve to the same scenarios.
  EXPECT_EQ(registry::make_scenario("nlanr-variability").name,
            registry::make_scenario("nlanr").name);
  EXPECT_EQ(registry::make_scenario("measured-variability").name,
            registry::make_scenario("measured").name);

  const auto by_param = registry::make_scenario("timeseries:path=taiwan");
  EXPECT_EQ(by_param.mode, net::VariationMode::kTimeSeries);
  EXPECT_EQ(by_param.name, registry::make_scenario("timeseries:path=1").name);
  EXPECT_EQ(by_param.name, registry::make_scenario("timeseries-taiwan").name);
  // Default path is INRIA.
  EXPECT_EQ(registry::make_scenario("timeseries").name,
            registry::make_scenario("timeseries-inria").name);

  EXPECT_THROW((void)registry::make_scenario("timeseries:path=mars"),
               util::SpecError);
  EXPECT_THROW((void)registry::make_scenario("timeseries-inria:path=taiwan"),
               util::SpecError);
  EXPECT_THROW((void)registry::make_scenario("constnat"), util::SpecError);
}

TEST(Registry, ListAndNamesForHelp) {
  const auto policy_names = registry::names(registry::Kind::kPolicy);
  for (const std::string name :
       {"if", "pb", "ib", "hybrid", "pbv", "ibv", "lru", "lfu"}) {
    EXPECT_NE(std::find(policy_names.begin(), policy_names.end(), name),
              policy_names.end())
        << name;
  }
  EXPECT_TRUE(std::is_sorted(policy_names.begin(), policy_names.end()));

  const auto estimators = registry::list(registry::Kind::kEstimator);
  ASSERT_GE(estimators.size(), 4u);

  const std::string help = registry::help();
  for (const std::string fragment :
       {"policy specs", "estimator specs", "scenario specs", "hybrid",
        "ewma", "timeseries"}) {
    EXPECT_NE(help.find(fragment), std::string::npos) << fragment;
  }
}

TEST(Registry, SelfRegistrationExtends) {
  // A downstream component self-registers and is immediately
  // constructible by spec, listed for help, and protected from
  // name collisions.
  static int constructed = 0;
  const registry::ScenarioRegistrar registrar(
      {"test-flat", {"test-flat-alias"}, "test-only flat scenario", {}},
      [](const util::Spec&) {
        ++constructed;
        return constant_scenario();
      });
  (void)registrar;
  const auto scenario = registry::make_scenario("test-flat-alias");
  EXPECT_EQ(scenario.mode, net::VariationMode::kConstant);
  EXPECT_EQ(constructed, 1);

  EXPECT_THROW(registry::register_scenario({"test-flat", {}, "dup", {}},
                                           [](const util::Spec&) {
                                             return constant_scenario();
                                           }),
               util::SpecError);
}

TEST(ExperimentBuilder, FluentSpecsRunEndToEnd) {
  // The acceptance path: hybrid:e=0.5 under a passive EWMA estimator,
  // end to end through a (small) multi-run experiment.
  const auto metrics = ExperimentBuilder()
                           .policy("hybrid:e=0.5")
                           .estimator("ewma:alpha=0.3")
                           .scenario("measured")
                           .cache_fraction(0.04)
                           .objects(120)
                           .requests(4000)
                           .runs(2)
                           .seed(11)
                           .run();
  EXPECT_EQ(metrics.runs, 2u);
  EXPECT_GT(metrics.delay_s, 0.0);
  EXPECT_GE(metrics.traffic_reduction, 0.0);
  EXPECT_LE(metrics.quality, 1.0);
}

TEST(ExperimentBuilder, ResolvesConfigAndScenario) {
  ExperimentBuilder builder;
  builder.policy("pbv:e=0.7")
      .estimator("oracle")
      .scenario("nlanr")
      .objects(200)
      .cache_fraction(0.1);
  const auto config = builder.config();
  EXPECT_EQ(config.sim.policy, "pbv:e=0.7");
  EXPECT_EQ(config.sim.estimator, "oracle");
  EXPECT_GT(config.sim.cache_capacity_bytes, 0.0);
  EXPECT_EQ(builder.build_scenario().name, "nlanr-variability");
}

TEST(ExperimentBuilder, RejectsBadSpecsEagerly) {
  ExperimentBuilder builder;
  EXPECT_THROW(builder.policy("no-such-policy"), util::SpecError);
  EXPECT_THROW(builder.policy("hybrid:alpha=2"), util::SpecError);
  EXPECT_THROW(builder.estimator("ewmaa"), util::SpecError);
  EXPECT_THROW(builder.scenario("martian"), util::SpecError);
  // Nothing was modified by the failed setters.
  EXPECT_EQ(builder.config().sim.policy, "pb");
  EXPECT_EQ(builder.config().sim.estimator, "oracle");
}

TEST(ExperimentBuilder, FromCliWiresSharedFlags) {
  const char* argv[] = {"prog",          "--policy=pbv",  "--e=0.7",
                        "--estimator",   "ewma:alpha=0.5", "--scenario=measured",
                        "--objects=150", "--runs=3",      "--cache-frac=0.05"};
  const util::Cli cli(9, argv);
  ExperimentBuilder builder;
  builder.from_cli(cli);
  const auto config = builder.config();
  EXPECT_EQ(config.sim.policy, "pbv:e=0.7");
  EXPECT_EQ(config.sim.estimator, "ewma:alpha=0.5");
  EXPECT_EQ(builder.scenario_spec(), "measured");
  EXPECT_EQ(config.workload.catalog.num_objects, 150u);
  EXPECT_EQ(config.runs, 3u);
  EXPECT_GT(config.sim.cache_capacity_bytes, 0.0);
}

}  // namespace
}  // namespace sc::core
