#include "net/path_process.h"

#include <gtest/gtest.h>

#include "net/bandwidth_model.h"
#include "net/variability.h"
#include "stats/summary.h"

namespace sc::net {
namespace {

TEST(Ar1RatioProcess, StationaryMomentsMatch) {
  Ar1RatioProcess process(0.7, 0.2, 0.05, 4.0);
  util::Rng rng(5);
  stats::RunningStats rs;
  std::vector<double> series;
  for (int i = 0; i < 100000; ++i) {
    const double v = process.step(rng);
    rs.add(v);
    series.push_back(v);
  }
  EXPECT_NEAR(rs.mean(), 1.0, 0.01);
  EXPECT_NEAR(rs.stddev(), 0.2, 0.02);
  EXPECT_NEAR(stats::autocorrelation(series, 1), 0.7, 0.03);
}

TEST(Ar1RatioProcess, RespectsClampBounds) {
  Ar1RatioProcess process(0.9, 1.0, 0.1, 2.0);  // violent innovations
  util::Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = process.step(rng);
    ASSERT_GE(v, 0.1);
    ASSERT_LE(v, 2.0);
  }
}

TEST(Ar1RatioProcess, RejectsBadParameters) {
  EXPECT_THROW(Ar1RatioProcess(-0.1, 0.2, 0.1, 2.0), std::invalid_argument);
  EXPECT_THROW(Ar1RatioProcess(1.0, 0.2, 0.1, 2.0), std::invalid_argument);
  EXPECT_THROW(Ar1RatioProcess(0.5, -0.2, 0.1, 2.0), std::invalid_argument);
  EXPECT_THROW(Ar1RatioProcess(0.5, 0.2, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Ar1RatioProcess(0.5, 0.2, 0.0, 1.0), std::invalid_argument);
}

/// All tests drive the path process through the split API: a shared
/// immutable model plus per-simulation samplers.
std::shared_ptr<const PathModel> make_model(
    std::size_t n_paths, const stats::EmpiricalDistribution& base,
    const stats::EmpiricalDistribution& ratio, const PathModelConfig& cfg,
    std::uint64_t seed) {
  return std::make_shared<const PathModel>(n_paths, base, ratio, cfg,
                                           util::Rng(seed));
}

TEST(PathProcess, ConstantModeReturnsMeans) {
  PathModelConfig cfg;
  cfg.mode = VariationMode::kConstant;
  const auto model = make_model(50, nlanr_base_model(),
                                constant_variability_model(), cfg, 7);
  PathSampler sampler(model);
  for (PathId p = 0; p < model->size(); ++p) {
    const double mean = model->mean_bandwidth(p);
    EXPECT_GT(mean, 0.0);
    EXPECT_DOUBLE_EQ(sampler.sample_bandwidth(p, 0.0), mean);
    EXPECT_DOUBLE_EQ(sampler.sample_bandwidth(p, 1e6), mean);
  }
}

TEST(PathProcess, IidModePreservesMeanOnAverage) {
  PathModelConfig cfg;
  cfg.mode = VariationMode::kIidRatio;
  const auto model =
      make_model(1, nlanr_base_model(), nlanr_variability_model(), cfg, 8);
  PathSampler sampler(model);
  const double mean = model->mean_bandwidth(0);
  stats::RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(sampler.sample_bandwidth(0, 0.0));
  EXPECT_NEAR(rs.mean() / mean, 1.0, 0.02);
  EXPECT_GT(rs.cov(), 0.3);  // variability flows through
}

TEST(PathProcess, IidSamplesClamped) {
  PathModelConfig cfg;
  cfg.mode = VariationMode::kIidRatio;
  cfg.min_ratio = 0.5;
  cfg.max_ratio = 1.5;
  const auto model = make_model(1, abundant_base_model(100.0),
                                nlanr_variability_model(), cfg, 9);
  PathSampler sampler(model);
  for (int i = 0; i < 5000; ++i) {
    const double b = sampler.sample_bandwidth(0, 0.0);
    ASSERT_GE(b, 100.0 * 0.5 * 0.99);
    ASSERT_LE(b, 100.0 * 1.5 * 1.01);
  }
}

TEST(PathProcess, TimeSeriesAdvancesOnTimestep) {
  PathModelConfig cfg;
  cfg.mode = VariationMode::kTimeSeries;
  cfg.timestep_s = 100.0;
  cfg.ar1_phi = 0.7;
  const auto model = make_model(1, abundant_base_model(1000.0),
                                measured_path_model(MeasuredPath::kTaiwan),
                                cfg, 10);
  PathSampler sampler(model);
  // Within one timestep the value is frozen.
  const double b0 = sampler.sample_bandwidth(0, 0.0);
  EXPECT_DOUBLE_EQ(sampler.sample_bandwidth(0, 50.0), b0);
  // Across many steps the series must actually move.
  bool moved = false;
  double prev = b0;
  for (int k = 1; k <= 50; ++k) {
    const double b = sampler.sample_bandwidth(0, k * 100.0);
    if (b != prev) moved = true;
    prev = b;
  }
  EXPECT_TRUE(moved);
}

TEST(PathProcess, TimeSeriesStationaryMeanNearPathMean) {
  PathModelConfig cfg;
  cfg.mode = VariationMode::kTimeSeries;
  cfg.timestep_s = 1.0;
  const auto model = make_model(1, abundant_base_model(500.0),
                                measured_path_model(MeasuredPath::kHongKong),
                                cfg, 11);
  PathSampler sampler(model);
  stats::RunningStats rs;
  for (int k = 0; k < 50000; ++k) {
    rs.add(sampler.sample_bandwidth(0, static_cast<double>(k)));
  }
  EXPECT_NEAR(rs.mean() / 500.0, 1.0, 0.03);
}

TEST(PathProcess, DistinctPathsGetDistinctMeans) {
  PathModelConfig cfg;
  const auto model = make_model(100, nlanr_base_model(),
                                constant_variability_model(), cfg, 12);
  stats::RunningStats rs;
  for (PathId p = 0; p < model->size(); ++p) rs.add(model->mean_bandwidth(p));
  EXPECT_GT(rs.cov(), 0.3);  // heterogeneous, as in Fig 2
}

TEST(PathProcess, RejectsEmptyAndOutOfRange) {
  PathModelConfig cfg;
  EXPECT_THROW(PathModel(0, nlanr_base_model(), constant_variability_model(),
                         cfg, util::Rng(1)),
               std::invalid_argument);
  const auto model = make_model(3, nlanr_base_model(),
                                constant_variability_model(), cfg, 1);
  PathSampler sampler(model);
  EXPECT_THROW((void)model->mean_bandwidth(3), std::out_of_range);
  EXPECT_THROW((void)sampler.sample_bandwidth(99, 0.0), std::out_of_range);
}

TEST(PathProcess, RebindReplaysAFreshSamplersStream) {
  // The arena-reuse contract: a rebound sampler draws exactly the stream
  // a freshly constructed sampler over the same model draws, for both
  // stateless (iid) and stateful (AR(1) chain) modes.
  for (const VariationMode mode :
       {VariationMode::kIidRatio, VariationMode::kTimeSeries}) {
    PathModelConfig cfg;
    cfg.mode = mode;
    cfg.timestep_s = 10.0;
    const auto first = make_model(8, nlanr_base_model(),
                                  nlanr_variability_model(), cfg, 21);
    const auto second = make_model(8, nlanr_base_model(),
                                   nlanr_variability_model(), cfg, 22);
    PathSampler reused(first);
    for (int i = 0; i < 200; ++i) {  // advance: rebind must erase this
      (void)reused.sample_bandwidth(i % 8, 10.0 * i);
    }
    reused.rebind(second);
    PathSampler fresh(second);
    for (int i = 0; i < 200; ++i) {
      const PathId p = static_cast<PathId>(i % 8);
      const double t = 10.0 * i;
      ASSERT_EQ(reused.sample_bandwidth(p, t), fresh.sample_bandwidth(p, t))
          << "mode " << static_cast<int>(mode) << " draw " << i;
    }
  }
}

TEST(PathModel, IdenticallySeededModelsReplayTheSameStream) {
  // The split's determinism contract: the model snapshots its RNG state
  // after the mean draws, so samplers over identically-seeded models
  // replay bit-identical bandwidth streams.
  PathModelConfig cfg;
  cfg.mode = VariationMode::kIidRatio;
  const auto a = std::make_shared<const PathModel>(
      20, nlanr_base_model(), nlanr_variability_model(), cfg, util::Rng(42));
  const auto b = std::make_shared<const PathModel>(
      20, nlanr_base_model(), nlanr_variability_model(), cfg, util::Rng(42));

  PathSampler sa(a);
  PathSampler sb(b);
  for (int i = 0; i < 500; ++i) {
    const PathId p = static_cast<PathId>(i % 20);
    const double t = 10.0 * i;
    ASSERT_EQ(sa.sample_bandwidth(p, t), sb.sample_bandwidth(p, t))
        << "draw " << i;
  }
}

TEST(PathModel, IndependentSamplersDoNotPerturbEachOther) {
  // Two samplers over one shared model are fully independent: advancing
  // one must not change the other's stream (each carries its own copy of
  // the snapshotted RNG). This is what makes one model safe to share
  // across concurrent simulations.
  PathModelConfig cfg;
  cfg.mode = VariationMode::kIidRatio;
  const auto model = std::make_shared<const PathModel>(
      5, nlanr_base_model(), nlanr_variability_model(), cfg, util::Rng(7));

  PathSampler alone(model);
  std::vector<double> expected;
  for (int i = 0; i < 100; ++i) {
    expected.push_back(alone.sample_bandwidth(i % 5, static_cast<double>(i)));
  }

  PathSampler a(model), b(model);
  for (int i = 0; i < 100; ++i) {
    (void)b.sample_bandwidth((i * 3) % 5, static_cast<double>(i));  // noise
    EXPECT_EQ(a.sample_bandwidth(i % 5, static_cast<double>(i)), expected[i])
        << "draw " << i;
  }
}

TEST(PathModel, ExposesContiguousMeans) {
  PathModelConfig cfg;
  const PathModel model(10, nlanr_base_model(), constant_variability_model(),
                        cfg, util::Rng(3));
  ASSERT_EQ(model.means().size(), 10u);
  for (PathId p = 0; p < model.size(); ++p) {
    EXPECT_EQ(model.means()[p], model.mean_bandwidth(p));
  }
  EXPECT_THROW(PathSampler(nullptr), std::invalid_argument);
}

TEST(PathModel, TimeSeriesSamplersRebuildAr1Chains) {
  // kTimeSeries state (the AR(1) chains) lives in the sampler, not the
  // model: two samplers advance their chains independently yet
  // identically from the shared snapshot.
  PathModelConfig cfg;
  cfg.mode = VariationMode::kTimeSeries;
  cfg.timestep_s = 10.0;
  const auto model = std::make_shared<const PathModel>(
      4, nlanr_base_model(), nlanr_variability_model(), cfg, util::Rng(11));
  PathSampler a(model), b(model);
  for (int i = 0; i < 50; ++i) {
    const double t = 10.0 * i;
    EXPECT_EQ(a.sample_bandwidth(i % 4, t), b.sample_bandwidth(i % 4, t));
  }
}

}  // namespace
}  // namespace sc::net
