// The edge-fleet layer (fleet/fleet.h, fleet/sharding.h): spec parsing
// with did-you-mean diagnostics, the single-proxy inertness oracle (a
// trivial fleet is field-identical to the single-cell simulator), the
// determinism contract (thread count never changes a fleet metric),
// sharding balance properties under Zipf skew, regional fault scoping,
// and the uplink/cooperation coupling semantics.

#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"
#include "net/fault.h"
#include "util/rng.h"
#include "util/spec.h"
#include "workload/request_stream.h"

namespace sc {
namespace {

using core::AveragedMetrics;
using core::ExperimentConfig;
using core::SweepCell;
using core::SweepRunner;
using fleet::FleetConfig;
using fleet::FleetResult;
using fleet::ShardingConfig;

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 200;
  cfg.workload.trace.num_requests = 4000;
  cfg.runs = 2;
  cfg.base_seed = 311;
  return cfg;
}

/// The shared-RNG contract used by core::SweepRunner: catalog draws
/// first, then the trace; a synthetic stream snapshots the post-catalog
/// state.
workload::RequestStream stream_for(const workload::WorkloadConfig& cfg,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  auto catalog = std::make_shared<const workload::Catalog>(
      workload::Catalog::generate(cfg.catalog, rng));
  return workload::RequestStream::synthetic(catalog, cfg.trace,
                                            std::move(rng));
}

/// Direct run_fleet call with the same seed/capacity derivation a sweep
/// cell would use.
FleetResult run_direct(const std::string& fleet_spec,
                       const std::string& fault_spec = "",
                       std::size_t requests = 20000,
                       std::size_t objects = 300) {
  workload::WorkloadConfig wl;
  wl.catalog.num_objects = objects;
  wl.trace.num_requests = requests;
  const auto stream = stream_for(wl, 97);
  sim::SimulationConfig config;
  config.policy = "pb";
  config.cache_capacity_bytes = core::capacity_for_fraction(wl.catalog, 0.05);
  config.fault = net::FaultPlan::parse(fault_spec);
  config.seed = 97;
  const auto scenario = core::constant_scenario();
  return fleet::run_fleet(stream, FleetConfig::parse(fleet_spec), config,
                          nullptr, &scenario.base, &scenario.ratio);
}

void expect_identical(const AveragedMetrics& a, const AveragedMetrics& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.traffic_reduction, b.traffic_reduction);
  EXPECT_EQ(a.traffic_reduction_sd, b.traffic_reduction_sd);
  EXPECT_EQ(a.delay_s, b.delay_s);
  EXPECT_EQ(a.delay_s_sd, b.delay_s_sd);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.quality_sd, b.quality_sd);
  EXPECT_EQ(a.added_value, b.added_value);
  EXPECT_EQ(a.added_value_sd, b.added_value_sd);
  EXPECT_EQ(a.hit_ratio, b.hit_ratio);
  EXPECT_EQ(a.immediate_ratio, b.immediate_ratio);
  EXPECT_EQ(a.fill_bytes, b.fill_bytes);
  EXPECT_EQ(a.occupancy_bytes, b.occupancy_bytes);
  EXPECT_EQ(a.denied_requests, b.denied_requests);
  EXPECT_EQ(a.denied_bytes, b.denied_bytes);
  EXPECT_EQ(a.uplink_utilization, b.uplink_utilization);
  EXPECT_EQ(a.load_imbalance, b.load_imbalance);
  EXPECT_EQ(a.peer_hit_ratio, b.peer_hit_ratio);
}

// ----------------------------------------------------------- spec parsing

TEST(FleetConfig, ParsesAndRoundTrips) {
  const FleetConfig cfg = FleetConfig::parse(
      "fleet:proxies=8,regions=4,sharding=hash:vnodes=32,uplink_mbps=200,"
      "burst_mb=16,coop=1,peer_latency_ms=3");
  EXPECT_EQ(cfg.proxies, 8u);
  EXPECT_EQ(cfg.regions, 4u);
  EXPECT_EQ(cfg.sharding.mode, ShardingConfig::Mode::kHash);
  EXPECT_EQ(cfg.sharding.vnodes, 32u);
  EXPECT_EQ(cfg.uplink_mbps, 200.0);
  EXPECT_EQ(cfg.burst_mb, 16.0);
  EXPECT_TRUE(cfg.coop);
  EXPECT_EQ(cfg.peer_latency_s, 0.003);
  const FleetConfig again = FleetConfig::parse(cfg.to_string());
  EXPECT_EQ(again.to_string(), cfg.to_string());
  EXPECT_EQ(again.proxies, cfg.proxies);
  EXPECT_EQ(again.sharding.vnodes, cfg.sharding.vnodes);
}

TEST(FleetConfig, UnknownNamesAndParamsSuggestClosest) {
  try {
    (void)FleetConfig::parse("flete:proxies=4");
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("fleet"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)FleetConfig::parse("fleet:proxys=4"), util::SpecError);
  EXPECT_THROW((void)FleetConfig::parse("fleet:sharding=hsah"),
               util::SpecError);
}

TEST(FleetConfig, RejectsInvalidShapes) {
  EXPECT_THROW((void)FleetConfig::parse("fleet:proxies=0"), util::SpecError);
  // More regions than proxies cannot partition the fleet.
  EXPECT_THROW((void)FleetConfig::parse("fleet:proxies=2,regions=3"),
               util::SpecError);
  EXPECT_THROW((void)FleetConfig::parse("fleet:uplink_mbps=-1"),
               util::SpecError);
  EXPECT_THROW((void)FleetConfig::parse("fleet:sharding=hash:vnodes=0"),
               util::SpecError);
}

TEST(FleetConfig, RegionsPartitionProxiesContiguously) {
  const FleetConfig cfg = FleetConfig::parse("fleet:proxies=8,regions=2");
  for (std::size_t p = 0; p < 4; ++p) EXPECT_EQ(cfg.region_of(p), 0u);
  for (std::size_t p = 4; p < 8; ++p) EXPECT_EQ(cfg.region_of(p), 1u);
}

// ------------------------------------------------- single-proxy inertness

TEST(Fleet, SingleProxyFleetFieldIdenticalToSimulator) {
  // A 1-proxy fleet with no uplink, no cooperation, and an unscoped
  // fault plan must execute the exact expression stream of the
  // single-cell simulator: every metric field bit-identical.
  const auto scenario = core::constant_scenario();
  std::vector<SweepCell> cells;
  cells.push_back(SweepCell{"pb", -1.0, 0.05, {}, {}, {}});
  cells.push_back(SweepCell{"pb", -1.0, 0.05, {}, {}, "fleet:proxies=1"});
  // Also under a fault plan: an unscoped plan applies to proxy 0 exactly
  // as it does standalone. The window sits inside the measured second
  // half of the ~26k-second trace so denials actually register.
  cells.push_back(
      SweepCell{"pb", -1.0, 0.05, {}, "fault:outage=15000+5000", {}});
  cells.push_back(SweepCell{"pb", -1.0, 0.05, {}, "fault:outage=15000+5000",
                            "fleet:proxies=1"});
  const auto results = SweepRunner(small_config(), scenario).run(cells);
  expect_identical(results[0], results[1]);
  expect_identical(results[2], results[3]);
  // Fleet diagnostics stay at their inert values on both sides.
  EXPECT_EQ(results[1].uplink_utilization, 0.0);
  EXPECT_EQ(results[1].load_imbalance, 1.0);
  EXPECT_EQ(results[1].peer_hit_ratio, 0.0);
  EXPECT_GT(results[2].denied_requests, 0.0);
}

// ------------------------------------------------------------ determinism

TEST(Fleet, ThreadCountNeverChangesAnyFleetMetric) {
  const auto scenario = core::constant_scenario();
  std::vector<SweepCell> cells;
  for (const char* spec :
       {"fleet:proxies=4,sharding=hash:vnodes=16",
        "fleet:proxies=4,sharding=affinity", "fleet:proxies=4,sharding=random",
        "fleet:proxies=4,regions=2,uplink_mbps=50,coop=1"}) {
    cells.push_back(SweepCell{"pb", -1.0, 0.05, {}, {}, spec});
  }
  ExperimentConfig serial = small_config();
  serial.threads = 1;
  ExperimentConfig parallel = small_config();
  parallel.threads = 4;
  const auto a = SweepRunner(serial, scenario).run(cells);
  const auto b = SweepRunner(parallel, scenario).run(cells);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);
}

// ------------------------------------------------------- sharding balance

TEST(Fleet, HashShardingBoundedImbalanceUnderZipf) {
  const FleetResult r =
      run_direct("fleet:proxies=16,sharding=hash:vnodes=64");
  ASSERT_EQ(r.per_proxy.size(), 16u);
  std::uint64_t sum = 0;
  for (const auto& p : r.per_proxy) {
    EXPECT_GT(p.requests, 0u) << "a proxy received no measured requests";
    sum += p.requests;
  }
  EXPECT_EQ(sum, r.aggregate.measured_requests);
  // Object-keyed consistent hashing concentrates each hot object on one
  // proxy, so some imbalance is expected under Zipf skew — but vnodes
  // spread the ring enough to bound it well below pathological.
  EXPECT_GE(r.load_imbalance, 1.0);
  EXPECT_LT(r.load_imbalance, 2.5);
}

TEST(Fleet, RandomShardingIsNearBalanced) {
  const FleetResult r = run_direct("fleet:proxies=16,sharding=random");
  EXPECT_GE(r.load_imbalance, 1.0);
  EXPECT_LT(r.load_imbalance, 1.2);
}

TEST(Fleet, AffinityShardingRoutesEachClientToOneProxy) {
  const FleetResult r =
      run_direct("fleet:proxies=16,sharding=affinity:clients=64");
  // 64 synthetic clients over 16 proxies: balanced within hash noise.
  EXPECT_GE(r.load_imbalance, 1.0);
  EXPECT_LT(r.load_imbalance, 3.0);
}

// --------------------------------------------------- regional fault scope

TEST(Fleet, RegionalOutageDeniesOnlyTheTargetedRegion) {
  // Proxies 0-1 are region 0, proxies 2-3 region 1. A whole-trace
  // outage scoped to region 0 must deny misses there and nowhere else.
  const FleetResult r =
      run_direct("fleet:proxies=4,regions=2,sharding=random",
                 "fault:outage=0+999999999@r0");
  ASSERT_EQ(r.per_proxy.size(), 4u);
  EXPECT_GT(r.per_proxy[0].denied_requests, 0u);
  EXPECT_GT(r.per_proxy[1].denied_requests, 0u);
  EXPECT_EQ(r.per_proxy[2].denied_requests, 0u);
  EXPECT_EQ(r.per_proxy[3].denied_requests, 0u);
  EXPECT_GT(r.aggregate.metrics.denied_requests(), 0u);
}

TEST(Fleet, ProxyScopedOutageDeniesOnlyThatProxy) {
  const FleetResult r =
      run_direct("fleet:proxies=4,sharding=random",
                 "fault:outage=0+999999999@p2");
  ASSERT_EQ(r.per_proxy.size(), 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    if (p == 2) {
      EXPECT_GT(r.per_proxy[p].denied_requests, 0u);
    } else {
      EXPECT_EQ(r.per_proxy[p].denied_requests, 0u) << "proxy " << p;
    }
  }
}

// ------------------------------------------------- uplink and cooperation

TEST(Fleet, FiniteUplinkCongestionAddsDelayAndReportsUtilization) {
  const FleetResult free =
      run_direct("fleet:proxies=4,sharding=hash:vnodes=16");
  const FleetResult tight = run_direct(
      "fleet:proxies=4,sharding=hash:vnodes=16,uplink_mbps=10,burst_mb=1");
  EXPECT_EQ(free.uplink_utilization, 0.0);
  EXPECT_GT(tight.uplink_utilization, 0.0);
  // Queueing on the shared uplink can only slow origin transfers.
  EXPECT_GE(tight.aggregate.metrics.average_delay_s(),
            free.aggregate.metrics.average_delay_s());
}

TEST(Fleet, CooperationServesPeerBytesAndLiftsTrafficReduction) {
  const FleetResult solo = run_direct("fleet:proxies=8,sharding=random");
  const FleetResult coop =
      run_direct("fleet:proxies=8,sharding=random,coop=1");
  EXPECT_EQ(solo.peer_hit_ratio, 0.0);
  EXPECT_GT(coop.peer_hit_ratio, 0.0);
  std::uint64_t assisted = 0;
  double peer_bytes = 0.0;
  for (const auto& p : coop.per_proxy) {
    assisted += p.peer_assisted;
    peer_bytes += p.peer_bytes;
  }
  EXPECT_GT(assisted, 0u);
  EXPECT_GT(peer_bytes, 0.0);
  // Peer bytes shift origin traffic to backbone-free shared traffic:
  // the cache-only reduction ratio is untouched, the backbone ratio
  // (cache + shared over total) strictly rises.
  EXPECT_GT(coop.aggregate.metrics.backbone_reduction_ratio(),
            solo.aggregate.metrics.backbone_reduction_ratio());
}

}  // namespace
}  // namespace sc
