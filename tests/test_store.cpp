#include "cache/store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace sc::cache {
namespace {

TEST(PartialStore, StartsEmpty) {
  const PartialStore store(1000.0);
  EXPECT_DOUBLE_EQ(store.capacity(), 1000.0);
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
  EXPECT_DOUBLE_EQ(store.free_space(), 1000.0);
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_DOUBLE_EQ(store.cached(42), 0.0);
  EXPECT_FALSE(store.contains(42));
}

TEST(PartialStore, SetGrowAndShrink) {
  PartialStore store(1000.0);
  store.set_cached(1, 300.0);
  EXPECT_DOUBLE_EQ(store.used(), 300.0);
  EXPECT_DOUBLE_EQ(store.cached(1), 300.0);
  store.set_cached(1, 500.0);  // grow
  EXPECT_DOUBLE_EQ(store.used(), 500.0);
  store.set_cached(1, 100.0);  // shrink
  EXPECT_DOUBLE_EQ(store.used(), 100.0);
  EXPECT_DOUBLE_EQ(store.free_space(), 900.0);
}

TEST(PartialStore, SetToZeroRemoves) {
  PartialStore store(100.0);
  store.set_cached(7, 50.0);
  store.set_cached(7, 0.0);
  EXPECT_FALSE(store.contains(7));
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
}

TEST(PartialStore, CapacityEnforced) {
  PartialStore store(100.0);
  store.set_cached(1, 60.0);
  EXPECT_THROW(store.set_cached(2, 50.0), std::length_error);
  // The failed insert must not corrupt accounting.
  EXPECT_DOUBLE_EQ(store.used(), 60.0);
  EXPECT_FALSE(store.contains(2));
  store.set_cached(2, 40.0);  // exact fit is fine
  EXPECT_DOUBLE_EQ(store.free_space(), 0.0);
}

TEST(PartialStore, GrowWithinCapacityViaShrinkOfSelf) {
  PartialStore store(100.0);
  store.set_cached(1, 100.0);
  store.set_cached(1, 100.0);  // idempotent at full capacity
  EXPECT_DOUBLE_EQ(store.used(), 100.0);
}

TEST(PartialStore, EraseAndClear) {
  PartialStore store(100.0);
  store.set_cached(1, 10.0);
  store.set_cached(2, 20.0);
  store.erase(1);
  EXPECT_DOUBLE_EQ(store.used(), 20.0);
  store.erase(1);  // double erase is a no-op
  EXPECT_DOUBLE_EQ(store.used(), 20.0);
  store.clear();
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
  EXPECT_EQ(store.object_count(), 0u);
}

TEST(PartialStore, NegativeInputsRejected) {
  EXPECT_THROW(PartialStore(-1.0), std::invalid_argument);
  PartialStore store(10.0);
  EXPECT_THROW(store.set_cached(1, -5.0), std::invalid_argument);
}

TEST(PartialStore, ZeroCapacityAcceptsNothing) {
  PartialStore store(0.0);
  // (a 1-byte insert slips under the one-byte rounding slack by design)
  EXPECT_THROW(store.set_cached(1, 2.0), std::length_error);
  store.set_cached(1, 0.0);  // storing zero bytes is a no-op
  EXPECT_EQ(store.object_count(), 0u);
}

TEST(PartialStore, ContentsIteration) {
  PartialStore store(100.0);
  store.set_cached(3, 30.0);
  store.set_cached(5, 50.0);
  double total = 0;
  for (const auto& [id, bytes] : store.contents()) total += bytes;
  EXPECT_DOUBLE_EQ(total, 80.0);
  EXPECT_EQ(store.contents().size(), 2u);
}

TEST(PartialStore, SingleObjectLargerThanCapacityIsRejectedCleanly) {
  PartialStore store(100.0);
  EXPECT_THROW(store.set_cached(1, 500.0), std::length_error);
  // The oversized insert must leave no trace: no occupancy, no entry.
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
  EXPECT_FALSE(store.contains(1));
  EXPECT_EQ(store.object_count(), 0u);
  // A capacity-sized prefix of the same object still fits.
  store.set_cached(1, 100.0);
  EXPECT_DOUBLE_EQ(store.cached(1), 100.0);
}

TEST(PartialStore, FractionalByteBudgetsStayExact) {
  PartialStore store(10.5);
  store.set_cached(1, 3.25);
  store.set_cached(2, 7.25);  // 10.5 exactly
  EXPECT_DOUBLE_EQ(store.used(), 10.5);
  EXPECT_DOUBLE_EQ(store.free_space(), 0.0);
  store.set_cached(1, 0.75);
  EXPECT_DOUBLE_EQ(store.used(), 8.0);
  // Accounting stays the exact sum, not an accumulation of drift.
  double total = 0.0;
  for (const auto& [id, bytes] : store.contents()) total += bytes;
  EXPECT_DOUBLE_EQ(total, store.used());
}

// ------------------------------------------------------- change log

TEST(PartialStore, ChangeLogRecordsAbsoluteSizes) {
  PartialStore store(1000.0);
  StoreChangeLog log;
  store.set_change_log(&log);
  store.set_cached(1, 300.0);
  store.set_cached(1, 500.0);  // grow: absolute new size, not a delta
  store.set_cached(2, 100.0);
  store.set_cached(1, 0.0);  // delegates to erase — exactly one record
  store.erase(2);
  store.erase(2);  // double erase: absent, so nothing to log
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0].id, 1u);
  EXPECT_DOUBLE_EQ(log[0].bytes, 300.0);
  EXPECT_DOUBLE_EQ(log[1].bytes, 500.0);
  EXPECT_EQ(log[2].id, 2u);
  EXPECT_DOUBLE_EQ(log[3].bytes, 0.0);
  EXPECT_EQ(log[3].id, 1u);
  EXPECT_DOUBLE_EQ(log[4].bytes, 0.0);
  EXPECT_EQ(log[4].id, 2u);
}

TEST(PartialStore, ChangeLogDetachesAndIgnoresBulkResets) {
  PartialStore store(1000.0);
  StoreChangeLog log;
  store.set_change_log(&log);
  store.set_cached(1, 10.0);
  // clear()/reset() rebuild wholesale (recovery, rebind); journaling
  // them as per-object erases would be wrong and wasteful.
  store.clear();
  store.set_cached(2, 20.0);
  store.reset(500.0);
  ASSERT_EQ(log.size(), 2u);
  store.set_change_log(nullptr);
  store.set_cached(3, 30.0);
  EXPECT_EQ(log.size(), 2u);  // detached: no further records
}

TEST(PartialStore, ContentsRoundTripRebuildsAnIdenticalStore) {
  // Property test: for random mutation histories, rebuilding a store
  // from contents() (what a snapshot persists) reproduces the original
  // byte-for-byte — occupancy, count, and every entry.
  util::Rng rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    const double capacity = 64.0 + rng.uniform() * 4096.0;
    PartialStore store(capacity);
    for (int step = 0; step < 200; ++step) {
      const auto id = static_cast<ObjectId>(rng.uniform() * 32.0);
      if (rng.uniform() < 0.25) {
        store.erase(id);
        continue;
      }
      const double bytes = rng.uniform() * (capacity / 4.0);
      if (store.used() - store.cached(id) + bytes <= capacity) {
        store.set_cached(id, bytes);
      }
    }
    PartialStore rebuilt(capacity);
    for (const auto& [id, bytes] : store.contents()) {
      rebuilt.set_cached(id, bytes);
    }
    EXPECT_EQ(rebuilt.contents(), store.contents()) << "iter " << iter;
    // used() is an incremental sum on both sides; accumulation order
    // differs, so compare to within the store's own 1-byte slack.
    EXPECT_NEAR(rebuilt.used(), store.used(), 1.0) << "iter " << iter;
    EXPECT_EQ(rebuilt.object_count(), store.object_count())
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace sc::cache
