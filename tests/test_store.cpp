#include "cache/store.h"

#include <gtest/gtest.h>

namespace sc::cache {
namespace {

TEST(PartialStore, StartsEmpty) {
  const PartialStore store(1000.0);
  EXPECT_DOUBLE_EQ(store.capacity(), 1000.0);
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
  EXPECT_DOUBLE_EQ(store.free_space(), 1000.0);
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_DOUBLE_EQ(store.cached(42), 0.0);
  EXPECT_FALSE(store.contains(42));
}

TEST(PartialStore, SetGrowAndShrink) {
  PartialStore store(1000.0);
  store.set_cached(1, 300.0);
  EXPECT_DOUBLE_EQ(store.used(), 300.0);
  EXPECT_DOUBLE_EQ(store.cached(1), 300.0);
  store.set_cached(1, 500.0);  // grow
  EXPECT_DOUBLE_EQ(store.used(), 500.0);
  store.set_cached(1, 100.0);  // shrink
  EXPECT_DOUBLE_EQ(store.used(), 100.0);
  EXPECT_DOUBLE_EQ(store.free_space(), 900.0);
}

TEST(PartialStore, SetToZeroRemoves) {
  PartialStore store(100.0);
  store.set_cached(7, 50.0);
  store.set_cached(7, 0.0);
  EXPECT_FALSE(store.contains(7));
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
}

TEST(PartialStore, CapacityEnforced) {
  PartialStore store(100.0);
  store.set_cached(1, 60.0);
  EXPECT_THROW(store.set_cached(2, 50.0), std::length_error);
  // The failed insert must not corrupt accounting.
  EXPECT_DOUBLE_EQ(store.used(), 60.0);
  EXPECT_FALSE(store.contains(2));
  store.set_cached(2, 40.0);  // exact fit is fine
  EXPECT_DOUBLE_EQ(store.free_space(), 0.0);
}

TEST(PartialStore, GrowWithinCapacityViaShrinkOfSelf) {
  PartialStore store(100.0);
  store.set_cached(1, 100.0);
  store.set_cached(1, 100.0);  // idempotent at full capacity
  EXPECT_DOUBLE_EQ(store.used(), 100.0);
}

TEST(PartialStore, EraseAndClear) {
  PartialStore store(100.0);
  store.set_cached(1, 10.0);
  store.set_cached(2, 20.0);
  store.erase(1);
  EXPECT_DOUBLE_EQ(store.used(), 20.0);
  store.erase(1);  // double erase is a no-op
  EXPECT_DOUBLE_EQ(store.used(), 20.0);
  store.clear();
  EXPECT_DOUBLE_EQ(store.used(), 0.0);
  EXPECT_EQ(store.object_count(), 0u);
}

TEST(PartialStore, NegativeInputsRejected) {
  EXPECT_THROW(PartialStore(-1.0), std::invalid_argument);
  PartialStore store(10.0);
  EXPECT_THROW(store.set_cached(1, -5.0), std::invalid_argument);
}

TEST(PartialStore, ZeroCapacityAcceptsNothing) {
  PartialStore store(0.0);
  // (a 1-byte insert slips under the one-byte rounding slack by design)
  EXPECT_THROW(store.set_cached(1, 2.0), std::length_error);
  store.set_cached(1, 0.0);  // storing zero bytes is a no-op
  EXPECT_EQ(store.object_count(), 0u);
}

TEST(PartialStore, ContentsIteration) {
  PartialStore store(100.0);
  store.set_cached(3, 30.0);
  store.set_cached(5, 50.0);
  double total = 0;
  for (const auto& [id, bytes] : store.contents()) total += bytes;
  EXPECT_DOUBLE_EQ(total, 80.0);
  EXPECT_EQ(store.contents().size(), 2u);
}

}  // namespace
}  // namespace sc::cache
