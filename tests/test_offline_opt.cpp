#include "cache/offline_opt.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sc::cache {
namespace {

using workload::StreamObject;

workload::Catalog make_catalog(const std::vector<double>& durations,
                               double bitrate = 10.0) {
  std::vector<StreamObject> objects;
  for (std::size_t i = 0; i < durations.size(); ++i) {
    StreamObject o;
    o.id = i;
    o.duration_s = durations[i];
    o.bitrate = bitrate;
    o.size_bytes = o.duration_s * o.bitrate;
    o.value = 1.0;
    o.path = i;
    objects.push_back(o);
  }
  return workload::Catalog::from_objects(std::move(objects));
}

TEST(OptimalFractional, SkipsAbundantBandwidthObjects) {
  const auto catalog = make_catalog({100.0, 100.0});
  OfflineInputs in;
  in.lambda = {5.0, 5.0};
  in.bandwidth = {20.0, 4.0};  // object 0: b > r
  const auto sol = optimal_fractional(catalog, in, 1e9);
  EXPECT_DOUBLE_EQ(sol.cached_bytes[0], 0.0);
  EXPECT_DOUBLE_EQ(sol.cached_bytes[1], (10.0 - 4.0) * 100.0);
}

TEST(OptimalFractional, FillsByLambdaOverB) {
  // Three needy objects, equal deficits, distinct lambda/b densities.
  const auto catalog = make_catalog({100.0, 100.0, 100.0});
  OfflineInputs in;
  in.lambda = {1.0, 4.0, 2.0};
  in.bandwidth = {5.0, 5.0, 5.0};  // each wants (10-5)*100 = 500 bytes
  const auto sol = optimal_fractional(catalog, in, 750.0);
  // Density order: object 1 (4/5), object 2 (2/5), object 0 (1/5).
  EXPECT_DOUBLE_EQ(sol.cached_bytes[1], 500.0);
  EXPECT_DOUBLE_EQ(sol.cached_bytes[2], 250.0);  // fractional remainder
  EXPECT_DOUBLE_EQ(sol.cached_bytes[0], 0.0);
  EXPECT_DOUBLE_EQ(sol.bytes_used, 750.0);
}

TEST(OptimalFractional, ZeroDelayWhenCapacityCoversAllDeficits) {
  const auto catalog = make_catalog({50.0, 80.0});
  OfflineInputs in;
  in.lambda = {1.0, 1.0};
  in.bandwidth = {2.0, 3.0};
  const auto sol = optimal_fractional(catalog, in, 1e9);
  EXPECT_DOUBLE_EQ(sol.expected_delay_s, 0.0);
}

TEST(OptimalFractional, BeatsOrMatchesAnyOtherAllocation) {
  // Random instances: the fractional-knapsack solution's expected delay
  // must never exceed that of random feasible allocations.
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> durations;
    OfflineInputs in;
    constexpr std::size_t kN = 12;
    for (std::size_t i = 0; i < kN; ++i) {
      durations.push_back(rng.uniform(10.0, 200.0));
      in.lambda.push_back(rng.uniform(0.0, 5.0));
      in.bandwidth.push_back(rng.uniform(2.0, 15.0));
    }
    const auto catalog = make_catalog(durations);
    const double capacity = rng.uniform(100.0, 4000.0);
    const auto opt = optimal_fractional(catalog, in, capacity);

    for (int alt = 0; alt < 30; ++alt) {
      // Random feasible allocation.
      std::vector<double> x(kN, 0.0);
      double remaining = capacity;
      for (std::size_t i = 0; i < kN && remaining > 0; ++i) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(0, kN - 1));
        const double take =
            std::min(remaining, rng.uniform(0.0, catalog.object(j).size_bytes));
        x[j] = std::min(catalog.object(j).size_bytes, x[j] + take);
        remaining -= take;
      }
      EXPECT_LE(opt.expected_delay_s,
                expected_delay(catalog, in, x) + 1e-9);
    }
    in.lambda.clear();
    in.bandwidth.clear();
  }
}

TEST(ExpectedDelay, MatchesHandComputation) {
  const auto catalog = make_catalog({100.0});  // size 1000
  OfflineInputs in;
  in.lambda = {2.0};
  in.bandwidth = {4.0};
  // deficit = 1000 - 400 - x; delay = deficit / 4.
  EXPECT_DOUBLE_EQ(expected_delay(catalog, in, {0.0}), 600.0 / 4.0);
  EXPECT_DOUBLE_EQ(expected_delay(catalog, in, {600.0}), 0.0);
  EXPECT_DOUBLE_EQ(expected_delay(catalog, in, {300.0}), 300.0 / 4.0);
}

TEST(ExpectedDelay, ValidatesInputs) {
  const auto catalog = make_catalog({100.0});
  OfflineInputs in;
  in.lambda = {1.0};
  in.bandwidth = {4.0};
  EXPECT_THROW((void)expected_delay(catalog, in, {}), std::invalid_argument);
  in.bandwidth = {0.0};
  EXPECT_THROW((void)expected_delay(catalog, in, {0.0}),
               std::invalid_argument);
  in.bandwidth = {4.0};
  in.lambda = {-1.0};
  EXPECT_THROW((void)expected_delay(catalog, in, {0.0}),
               std::invalid_argument);
  in.lambda = {1.0, 2.0};
  EXPECT_THROW((void)expected_delay(catalog, in, {0.0}),
               std::invalid_argument);
}

TEST(ValueGreedy, AlwaysIncludesZeroCostObjects) {
  const auto catalog = make_catalog({100.0, 100.0});
  OfflineInputs in;
  in.lambda = {1.0, 1.0};
  in.bandwidth = {50.0, 2.0};  // object 0 costs nothing to make immediate
  const auto sol = value_greedy(catalog, in, 0.0);
  EXPECT_TRUE(sol.selected[0]);
  EXPECT_FALSE(sol.selected[1]);  // no budget for its deficit
}

TEST(ValueGreedy, PicksByValueDensity) {
  auto objects = std::vector<double>{100.0, 100.0};
  auto catalog = make_catalog(objects);
  OfflineInputs in;
  in.lambda = {1.0, 3.0};         // object 1: triple the rate
  in.bandwidth = {5.0, 5.0};      // equal 500-byte deficits
  const auto sol = value_greedy(catalog, in, 500.0);
  EXPECT_FALSE(sol.selected[0]);
  EXPECT_TRUE(sol.selected[1]);
  EXPECT_DOUBLE_EQ(sol.total_rate_value, 3.0);
  EXPECT_DOUBLE_EQ(sol.bytes_used, 500.0);
}

TEST(ValueExact, NeverExceedsCapacityAndDominatesGreedy) {
  util::Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> durations;
    OfflineInputs in;
    constexpr std::size_t kN = 14;
    for (std::size_t i = 0; i < kN; ++i) {
      durations.push_back(rng.uniform(20.0, 150.0));
      in.lambda.push_back(rng.uniform(0.1, 5.0));
      in.bandwidth.push_back(rng.uniform(2.0, 9.0));
    }
    const auto catalog = make_catalog(durations);
    const double capacity = rng.uniform(500.0, 5000.0);

    const auto greedy = value_greedy(catalog, in, capacity);
    const auto exact = value_exact(catalog, in, capacity, 4000);
    EXPECT_LE(exact.bytes_used, capacity * 1.001);
    EXPECT_LE(greedy.bytes_used, capacity * 1.001);
    // Exact DP (weights rounded up: slightly pessimistic capacity) must
    // still come within a whisker of greedy, and usually beat it.
    EXPECT_GE(exact.total_rate_value, greedy.total_rate_value * 0.95);
    in.lambda.clear();
    in.bandwidth.clear();
  }
}

TEST(ValueExact, SolvesTinyInstanceExactly) {
  // Two items, capacity fits only one: must take the more valuable.
  const auto catalog = make_catalog({100.0, 100.0});
  OfflineInputs in;
  in.lambda = {1.0, 2.0};
  in.bandwidth = {5.0, 5.0};  // both cost 500
  const auto sol = value_exact(catalog, in, 500.0, 1000);
  EXPECT_FALSE(sol.selected[0]);
  EXPECT_TRUE(sol.selected[1]);
  EXPECT_THROW((void)value_exact(catalog, in, 500.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sc::cache
