// Goodness-of-fit checks: every continuous sampler in the library is
// validated against its analytic CDF with the Kolmogorov-Smirnov
// statistic, and the text parsers are fuzzed with byte garbage (they must
// reject, never crash).

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "net/bandwidth_model.h"
#include "net/log_analysis.h"
#include "net/variability.h"
#include "stats/distributions.h"
#include "stats/summary.h"
#include "util/rng.h"

namespace sc {
namespace {

constexpr std::size_t kSamples = 20000;
// KS critical value at alpha ~ 0.001 for n = 20000: 1.95 / sqrt(n).
const double kKsBound = 1.95 / std::sqrt(static_cast<double>(kSamples));

template <typename Sampler>
std::vector<double> draw(const Sampler& sampler, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    xs.push_back(sampler.sample(rng));
  }
  return xs;
}

TEST(GoodnessOfFit, UniformSampler) {
  const stats::Uniform u(2.0, 7.0);
  const double ks = stats::ks_statistic(draw(u, 1), [](double x) {
    return std::clamp((x - 2.0) / 5.0, 0.0, 1.0);
  });
  EXPECT_LT(ks, kKsBound);
}

TEST(GoodnessOfFit, ExponentialSampler) {
  const stats::Exponential e(0.4);
  const double ks = stats::ks_statistic(draw(e, 2), [](double x) {
    return x <= 0 ? 0.0 : 1.0 - std::exp(-0.4 * x);
  });
  EXPECT_LT(ks, kKsBound);
}

TEST(GoodnessOfFit, ParetoSampler) {
  const stats::Pareto p(1.5, 2.0);
  const double ks = stats::ks_statistic(draw(p, 3), [](double x) {
    return x <= 1.5 ? 0.0 : 1.0 - std::pow(1.5 / x, 2.0);
  });
  EXPECT_LT(ks, kKsBound);
}

TEST(GoodnessOfFit, LognormalSampler) {
  const stats::Lognormal ln(1.0, 0.5);
  const double ks = stats::ks_statistic(draw(ln, 4), [](double x) {
    if (x <= 0) return 0.0;
    return 0.5 * std::erfc(-(std::log(x) - 1.0) / (0.5 * std::sqrt(2.0)));
  });
  EXPECT_LT(ks, kKsBound);
}

class EmpiricalModelFit
    : public ::testing::TestWithParam<const char*> {};

TEST_P(EmpiricalModelFit, SamplerMatchesOwnCdf) {
  const std::string which = GetParam();
  const auto model = [&] {
    if (which == "nlanr-base") return net::nlanr_base_model();
    if (which == "nlanr-ratio") return net::nlanr_variability_model();
    if (which == "measured-pooled") return net::measured_variability_model();
    if (which == "inria") {
      return net::measured_path_model(net::MeasuredPath::kInria);
    }
    if (which == "taiwan") {
      return net::measured_path_model(net::MeasuredPath::kTaiwan);
    }
    return net::measured_path_model(net::MeasuredPath::kHongKong);
  }();
  const double ks = stats::ks_statistic(
      draw(model, util::fnv1a64(which)),
      [&model](double x) { return model.cdf(x); });
  EXPECT_LT(ks, kKsBound) << which;
}

INSTANTIATE_TEST_SUITE_P(AllModels, EmpiricalModelFit,
                         ::testing::Values("nlanr-base", "nlanr-ratio",
                                           "measured-pooled", "inria",
                                           "taiwan", "hongkong"));

TEST(GoodnessOfFit, KsValidatesArguments) {
  EXPECT_THROW((void)stats::ks_statistic({}, [](double) { return 0.5; }),
               std::invalid_argument);
  EXPECT_THROW((void)stats::ks_statistic({1.0}, nullptr),
               std::invalid_argument);
  // A blatantly wrong CDF must yield a large statistic.
  const stats::Uniform u(0.0, 1.0);
  EXPECT_GT(stats::ks_statistic(draw(u, 9), [](double) { return 0.0; }), 0.9);
}

TEST(ParserFuzz, SquidParserNeverCrashes) {
  util::Rng rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string line;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 120));
    for (std::size_t i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.uniform_int(1, 255)));
    }
    (void)net::parse_squid_line(line);  // must not throw or crash
  }
}

TEST(ParserFuzz, MutatedValidLinesParseOrReject) {
  const std::string valid =
      "987033600.1 5120 c TCP_MISS/200 524288 GET http://s/x - D t";
  util::Rng rng(78);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string line = valid;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
    line[pos] = static_cast<char>(rng.uniform_int(32, 126));
    const auto r = net::parse_squid_line(line);
    if (r) {
      // Anything accepted must carry sane fields.
      EXPECT_GE(r->timestamp_s, 0.0);
      EXPECT_GE(r->elapsed_s, 0.0);
      EXPECT_GE(r->bytes, 0.0);
    }
  }
}

}  // namespace
}  // namespace sc
