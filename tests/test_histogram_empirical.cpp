#include <gtest/gtest.h>

#include <cmath>

#include "stats/empirical.h"
#include "stats/histogram.h"

namespace sc::stats {
namespace {

TEST(Histogram, BasicCounting) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(15.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.5), 0.75);
}

TEST(Histogram, CdfEndsAtOne) {
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 100; ++i) h.add(i % 10);
  const auto cdf = h.cdf();
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Histogram, FractionBelowInterpolatesWithinBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5, 10.0);  // all mass in bin [0,1)
  EXPECT_DOUBLE_EQ(h.fraction_below(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 0.0);
}

TEST(Histogram, MeanAndCov) {
  Histogram h(0.0, 10.0, 10);
  h.add(2.2);  // center 2.5
  h.add(7.7);  // center 7.5
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_NEAR(h.cov(), 2.5 / 5.0, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 5), std::invalid_argument);
}

TEST(Empirical, RejectsMalformedBins) {
  EXPECT_THROW(EmpiricalDistribution({}), std::invalid_argument);
  EXPECT_THROW(EmpiricalDistribution({{1.0, 1.0, 1.0}}),
               std::invalid_argument);  // empty range
  EXPECT_THROW(EmpiricalDistribution({{0.0, 1.0, -1.0}}),
               std::invalid_argument);  // negative weight
  EXPECT_THROW(EmpiricalDistribution({{0.0, 2.0, 1.0}, {1.0, 3.0, 1.0}}),
               std::invalid_argument);  // overlap
  EXPECT_THROW(EmpiricalDistribution({{0.0, 1.0, 0.0}}),
               std::invalid_argument);  // zero total
}

TEST(Empirical, QuantileCdfRoundTrip) {
  const EmpiricalDistribution d(
      {{0.0, 1.0, 1.0}, {2.0, 4.0, 2.0}, {10.0, 11.0, 1.0}});
  for (const double u : {0.05, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    const double x = d.quantile(u);
    EXPECT_NEAR(d.cdf(x), u, 1e-9) << "u=" << u;
  }
}

TEST(Empirical, CdfBoundaries) {
  const EmpiricalDistribution d({{1.0, 2.0, 1.0}});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 1.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 2.0);
}

TEST(Empirical, AnalyticMeanAndCov) {
  // Uniform on [0, 2]: mean 1, var 1/3, cov = 1/sqrt(3).
  const EmpiricalDistribution d({{0.0, 2.0, 1.0}});
  EXPECT_NEAR(d.mean(), 1.0, 1e-12);
  EXPECT_NEAR(d.cov(), 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(Empirical, SamplingMatchesCdf) {
  const EmpiricalDistribution d({{0.0, 1.0, 3.0}, {1.0, 2.0, 1.0}});
  util::Rng rng(17);
  int below = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (d.sample(rng) < 1.0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / kN, 0.75, 0.01);
}

TEST(Empirical, ScaledPreservesShape) {
  const EmpiricalDistribution d({{1.0, 2.0, 1.0}, {3.0, 5.0, 2.0}});
  const auto s = d.scaled(10.0);
  EXPECT_NEAR(s.mean(), d.mean() * 10.0, 1e-9);
  EXPECT_NEAR(s.cov(), d.cov(), 1e-9);  // CoV is scale-invariant
  EXPECT_THROW(d.scaled(0.0), std::invalid_argument);
  EXPECT_THROW(d.scaled(-1.0), std::invalid_argument);
}

TEST(Empirical, FromHistogramRoundTrip) {
  Histogram h(0.0, 10.0, 100);
  util::Rng rng(23);
  for (int i = 0; i < 50000; ++i) h.add(rng.uniform(2.0, 6.0));
  const auto d = EmpiricalDistribution::from_histogram(h);
  EXPECT_NEAR(d.mean(), 4.0, 0.05);
  EXPECT_NEAR(d.cdf(2.0), 0.0, 0.02);
  EXPECT_NEAR(d.cdf(6.0), 1.0, 0.02);

  Histogram empty(0.0, 1.0, 4);
  EXPECT_THROW(EmpiricalDistribution::from_histogram(empty),
               std::invalid_argument);
}

TEST(Empirical, FromHistogramHandlesGaps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5, 1.0);
  h.add(9.5, 1.0);  // gap between bins 0 and 9
  const auto d = EmpiricalDistribution::from_histogram(h);
  EXPECT_EQ(d.bins().size(), 2u);
  EXPECT_NEAR(d.mean(), 5.0, 1e-9);
}

}  // namespace
}  // namespace sc::stats
