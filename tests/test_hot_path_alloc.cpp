// Steady-state allocation regression for the simulator hot path.
//
// The per-request path — event queue (POD observations), partial store
// (dense array), policy heap (pre-reserved), bandwidth sampling (alias
// table / empirical lookup) — must not allocate. We can't hook the
// middle of a run, but we can assert the scaling consequence: doubling
// the trace length must not add allocations, because everything that
// allocates (workload, catalog, policy, estimator, path table) is
// sized by the catalog, not the trace. Global operator new is replaced
// with a counting wrapper for this binary only.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <utility>

#include "core/experiment.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_new_bytes{0};

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_new_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sc::sim {
namespace {

workload::Workload make_workload(std::size_t requests) {
  workload::WorkloadConfig cfg;
  cfg.catalog.num_objects = 300;
  cfg.trace.num_requests = requests;
  util::Rng rng(42);
  return workload::generate_workload(cfg, rng);
}

std::uint64_t allocations_for_run(const workload::Workload& w,
                                  const std::string& policy,
                                  const std::string& estimator,
                                  bool patching = false,
                                  bool viewing = false) {
  const auto base = core::constant_scenario().base;
  const auto ratio = core::constant_scenario().ratio;
  SimulationConfig cfg;
  cfg.cache_capacity_bytes =
      core::capacity_for_fraction(workload::CatalogConfig{}, 0.001);
  cfg.policy = policy;
  cfg.estimator = estimator;
  cfg.patching.enabled = patching;
  cfg.viewing.enabled = viewing;
  Simulator simulator(w, base, ratio, cfg);
  const std::uint64_t before = g_news.load();
  (void)simulator.run();
  return g_news.load() - before;
}

TEST(HotPathAllocations, DoNotScaleWithTraceLength) {
  const auto short_trace = make_workload(5000);
  const auto long_trace = make_workload(20000);

  for (const char* policy : {"pb", "if", "lru"}) {
    // Warm once so lazy registry/static setup doesn't count.
    (void)allocations_for_run(short_trace, policy, "oracle");
    const auto a_short = allocations_for_run(short_trace, policy, "oracle");
    const auto a_long = allocations_for_run(long_trace, policy, "oracle");
    // 4x the requests may not cost more than a sliver of extra
    // allocations (event-queue storage growing to its steady size).
    EXPECT_LE(a_long, a_short + 64)
        << policy << ": " << a_short << " allocs at 5k requests vs "
        << a_long << " at 20k";
  }
}

TEST(HotPathAllocations, PatchingAndViewingScenariosAreAllocationFreeToo) {
  // The patching in-flight table is a dense per-object vector (sized by
  // the catalog, filled before the loop) and viewing only draws from a
  // pre-forked RNG, so enabling both must not reintroduce per-request
  // allocation (the old per-request std::unordered_map did).
  const auto short_trace = make_workload(5000);
  const auto long_trace = make_workload(20000);
  (void)allocations_for_run(short_trace, "pb", "oracle", /*patching=*/true,
                            /*viewing=*/true);
  const auto a_short = allocations_for_run(short_trace, "pb", "oracle", true,
                                           true);
  const auto a_long = allocations_for_run(long_trace, "pb", "oracle", true,
                                          true);
  EXPECT_LE(a_long, a_short + 64)
      << a_short << " allocs at 5k requests vs " << a_long << " at 20k";
}

TEST(HotPathAllocations, SweepAllocationsDoNotScaleWithCellCount) {
  // The arena guarantee: with per-worker engine caches, per-simulation
  // setup (event queue, store, policy heap, estimator state) is
  // reset()-reused, so quadrupling the number of sweep cells — same
  // policies, more cache fractions — must not add allocations beyond
  // fixed per-sweep bookkeeping (result vectors sized by the grid).
  core::ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 300;
  cfg.workload.trace.num_requests = 4000;
  cfg.runs = 2;
  cfg.threads = 1;
  const auto scenario = core::constant_scenario();

  const auto cells_for = [](std::size_t fractions) {
    std::vector<core::SweepCell> cells;
    for (const char* policy : {"pb", "if", "lru"}) {
      for (std::size_t f = 1; f <= fractions; ++f) {
        cells.push_back(
            core::SweepCell{policy, -1.0, 0.01 * static_cast<double>(f), {}, {}, {}});
      }
    }
    return cells;
  };
  const auto small_grid = cells_for(2);   // 6 cells
  const auto large_grid = cells_for(8);   // 24 cells

  core::SweepRunner runner(cfg, scenario);
  const auto allocations_for = [&](const std::vector<core::SweepCell>& cells) {
    (void)runner.run(cells);  // warm lazy registry/static setup
    const std::uint64_t before = g_news.load();
    (void)runner.run(cells);
    return g_news.load() - before;
  };

  const auto a_small = allocations_for(small_grid);
  const auto a_large = allocations_for(large_grid);
  EXPECT_LE(a_large, a_small + 64)
      << a_small << " allocs at " << small_grid.size() << " cells vs "
      << a_large << " at " << large_grid.size();
}

TEST(HotPathAllocations, TraceReplayLoadsOncePerGridNotPerCell) {
  // The trace scenario's contract: the file is read once per
  // make_scenario call into one immutable workload; SweepRunner shares
  // it across every cell and replication, so quadrupling the grid must
  // not add workload (or any other) allocations beyond fixed per-sweep
  // bookkeeping — and a sweep over the replay generates zero workloads.
  const auto w = make_workload(4000);
  const auto trace_path =
      std::filesystem::temp_directory_path() / "sc_alloc_trace.trace";
  workload::write_trace(w, trace_path);
  const auto scenario = core::registry::make_scenario(
      "trace:file=" + trace_path.string());
  std::filesystem::remove(trace_path);

  core::ExperimentConfig cfg;
  cfg.workload.catalog.num_objects = 300;
  cfg.runs = 2;
  cfg.threads = 1;

  const auto cells_for = [](std::size_t fractions) {
    std::vector<core::SweepCell> cells;
    for (const char* policy : {"pb", "if", "lru"}) {
      for (std::size_t f = 1; f <= fractions; ++f) {
        cells.push_back(core::SweepCell{
            policy, -1.0, 0.01 * static_cast<double>(f), {}, {}, {}});
      }
    }
    return cells;
  };
  const auto small_grid = cells_for(2);   // 6 cells
  const auto large_grid = cells_for(8);   // 24 cells

  core::SweepRunner runner(cfg, scenario);
  const auto allocations_for = [&](const std::vector<core::SweepCell>& cells) {
    core::SweepStats stats;
    (void)runner.run(cells, &stats);  // warm lazy registry/static setup
    EXPECT_EQ(stats.workloads_generated, 0u);
    const std::uint64_t before = g_news.load();
    (void)runner.run(cells);
    return g_news.load() - before;
  };

  const auto a_small = allocations_for(small_grid);
  const auto a_large = allocations_for(large_grid);
  EXPECT_LE(a_large, a_small + 64)
      << a_small << " allocs at " << small_grid.size() << " cells vs "
      << a_large << " at " << large_grid.size();
}

TEST(HotPathAllocations, SessionDynamicsAreAllocationFreeToo) {
  // The interactivity draw is a pre-forked RNG stream plus constexpr
  // inverse-CDF math: enabling it must not reintroduce per-request
  // allocation.
  const auto short_trace = make_workload(5000);
  const auto long_trace = make_workload(20000);
  const auto base = core::constant_scenario().base;
  const auto ratio = core::constant_scenario().ratio;
  const auto allocations_for = [&](const workload::Workload& w) {
    SimulationConfig cfg;
    cfg.cache_capacity_bytes =
        core::capacity_for_fraction(workload::CatalogConfig{}, 0.001);
    cfg.policy = "pb";
    cfg.estimator = "oracle";
    cfg.patching.enabled = true;
    cfg.interactivity = InteractivityConfig::parse("empirical");
    Simulator simulator(w, base, ratio, cfg);
    const std::uint64_t before = g_news.load();
    (void)simulator.run();
    return g_news.load() - before;
  };
  (void)allocations_for(short_trace);  // warm lazy setup
  const auto a_short = allocations_for(short_trace);
  const auto a_long = allocations_for(long_trace);
  EXPECT_LE(a_long, a_short + 64)
      << a_short << " allocs at 5k requests vs " << a_long << " at 20k";
}

TEST(HotPathAllocations, StreamingAllocationsDoNotScaleWithTraceLength) {
  // The O(chunk) memory claim, as an enforced scaling property: under
  // StreamingMode::kStream a 4x longer synthetic trace may not add
  // allocation *calls* or cumulative allocated *bytes* beyond a fixed
  // sliver — no materialized request vector, and the cursor's chunk
  // buffers are sized by stream_chunk, not by num_requests.
  const auto run_streamed = [](std::size_t requests) {
    core::ExperimentConfig cfg;
    cfg.workload.catalog.num_objects = 300;
    cfg.workload.trace.num_requests = requests;
    cfg.runs = 2;
    cfg.threads = 1;
    cfg.streaming = workload::StreamingMode::kStream;
    cfg.sim.cache_capacity_bytes =
        core::capacity_for_fraction(workload::CatalogConfig{}, 0.001);
    const std::uint64_t news_before = g_news.load();
    const std::uint64_t bytes_before = g_new_bytes.load();
    (void)core::run_experiment(cfg, core::constant_scenario());
    return std::pair<std::uint64_t, std::uint64_t>{
        g_news.load() - news_before, g_new_bytes.load() - bytes_before};
  };
  (void)run_streamed(20000);  // warm lazy registry/static setup
  const auto [calls_short, bytes_short] = run_streamed(20000);
  const auto [calls_long, bytes_long] = run_streamed(80000);
  EXPECT_LE(calls_long, calls_short + 64)
      << calls_short << " allocs at 20k requests vs " << calls_long
      << " at 80k";
  // 4x the requests would materialize ~60k extra Request structs
  // (~1.4 MB); a fixed 64 KiB sliver proves nothing scales with N.
  EXPECT_LE(bytes_long, bytes_short + 64 * 1024)
      << bytes_short << " bytes at 20k requests vs " << bytes_long
      << " at 80k";
}

TEST(HotPathAllocations, PassiveEstimatorPathIsAllocationFreeToo) {
  // The EWMA estimator exercises the deferred ObservationEvent path for
  // every origin transfer; it must not bring back per-event allocation.
  const auto short_trace = make_workload(5000);
  const auto long_trace = make_workload(20000);
  (void)allocations_for_run(short_trace, "pb", "ewma:alpha=0.3");
  const auto a_short = allocations_for_run(short_trace, "pb", "ewma:alpha=0.3");
  const auto a_long = allocations_for_run(long_trace, "pb", "ewma:alpha=0.3");
  EXPECT_LE(a_long, a_short + 64)
      << a_short << " allocs at 5k requests vs " << a_long << " at 20k";
}

}  // namespace
}  // namespace sc::sim
