// proxy_daemon: the live partial-caching proxy.
//
// Serves the wire protocol (src/server/wire.h, docs/SERVER.md) on a
// loopback TCP port, with the cache policy, bandwidth estimator, and
// origin bandwidth scenario selected by the same registry spec strings
// as every bench and example binary. Prints "LISTENING <port>" once
// ready (CI and scripts key on that line), then serves until SIGINT or
// SIGTERM, finishing with a stats summary.
//
//   proxy_daemon --port=4815 --policy=hybrid:e=0.5 --estimator=ewma
//                --cache=0.05 --objects=2000 --seed=42
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "core/registry.h"
#include "net/fault.h"
#include "server/daemon.h"
#include "util/cli.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int run(int argc, char** argv) {
  const sc::util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: %s [flags]\n\n"
        "  --port=N             TCP port on 127.0.0.1 (default 0 = "
        "ephemeral)\n"
        "  --objects=N --seed=S catalog shape (clients with the same pair\n"
        "                       derive identical object sizes)\n"
        "  --policy=<spec>      replacement policy (default pb)\n"
        "  --estimator=<spec>   bandwidth estimator (default oracle)\n"
        "  --scenario=<spec>    origin bandwidth scenario (default "
        "constant)\n"
        "  --cache=F            capacity as a fraction of the corpus "
        "(default 0.02)\n"
        "  --cache-bytes=N      absolute capacity, overrides --cache\n"
        "  --origin-latency-ms=F  fixed upstream stall per miss "
        "(default 0)\n"
        "  --origin-time-scale=F  wall seconds per simulated transfer "
        "second\n"
        "  --tick-ms=F          estimator ticker period (default 100)\n"
        "  --fault=<spec>       deterministic origin fault plan on the\n"
        "                       wall clock (e.g. fault:outage=10+5; see\n"
        "                       docs/CHAOS.md)\n"
        "  --origin-timeout-s=F   per-attempt origin fetch timeout\n"
        "                       (0 = none)\n"
        "  --max-retries=N      origin retries before kOriginDown "
        "(default 3)\n"
        "  --retry-backoff-ms=F initial retry backoff (default 50, "
        "doubling)\n"
        "  --idle-timeout-s=F   disconnect silent connections after F "
        "seconds\n"
        "  --persist-dir=PATH   crash-safe cache persistence directory\n"
        "                       (empty = disabled; docs/SERVER.md)\n"
        "  --snapshot-interval-s=F  background snapshot cadence "
        "(default 30)\n\n%s",
        cli.program().c_str(), sc::core::registry::help().c_str());
    return 0;
  }
  cli.check_unknown({"port", "objects", "seed", "policy", "estimator",
                     "scenario", "cache", "cache-bytes", "origin-latency-ms",
                     "origin-time-scale", "tick-ms", "fault",
                     "origin-timeout-s", "max-retries", "retry-backoff-ms",
                     "idle-timeout-s", "persist-dir", "snapshot-interval-s",
                     "help"});

  // An abruptly-closed client must surface as EPIPE on the write path
  // (handled per-connection), never as a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  sc::server::ServiceConfig config;
  config.objects = static_cast<std::size_t>(cli.get_or("objects", 2000LL));
  config.seed = static_cast<std::uint64_t>(cli.get_or("seed", 42LL));
  config.policy = cli.get_or("policy", config.policy);
  config.estimator = cli.get_or("estimator", config.estimator);
  config.origin.scenario = cli.get_or("scenario", config.origin.scenario);
  config.cache_fraction = cli.get_or("cache", config.cache_fraction);
  config.cache_capacity_bytes = cli.get_or("cache-bytes", 0.0);
  config.origin.latency_s = cli.get_or("origin-latency-ms", 0.0) / 1e3;
  config.origin.time_scale = cli.get_or("origin-time-scale", 0.0);
  config.origin.fault = cli.get_or("fault", config.origin.fault);
  (void)sc::net::FaultPlan::parse(config.origin.fault);  // fail fast
  config.origin_timeout_s =
      cli.get_or("origin-timeout-s", config.origin_timeout_s);
  config.max_retries = static_cast<std::size_t>(cli.get_or(
      "max-retries", static_cast<long long>(config.max_retries)));
  config.retry_backoff_s =
      cli.get_or("retry-backoff-ms", config.retry_backoff_s * 1e3) / 1e3;
  config.persist.dir = cli.get_or("persist-dir", std::string());
  config.persist.snapshot_interval_s =
      cli.get_or("snapshot-interval-s", config.persist.snapshot_interval_s);

  sc::core::registry::validate(sc::core::registry::Kind::kPolicy,
                               config.policy);
  sc::core::registry::validate(sc::core::registry::Kind::kEstimator,
                               config.estimator);
  sc::core::registry::validate(sc::core::registry::Kind::kScenario,
                               config.origin.scenario);

  sc::server::DaemonConfig daemon_config;
  daemon_config.port =
      static_cast<std::uint16_t>(cli.get_or("port", 0LL));
  daemon_config.tick_interval_s = cli.get_or("tick-ms", 100.0) / 1e3;
  daemon_config.idle_timeout_s =
      cli.get_or("idle-timeout-s", daemon_config.idle_timeout_s);

  sc::server::ServiceEngine engine(config);
  sc::server::ProxyDaemon daemon(engine, daemon_config);
  daemon.start();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::printf("LISTENING %u\n", daemon.port());
  std::printf("policy=%s estimator=%s scenario=%s objects=%zu "
              "capacity=%.0f bytes\n",
              config.policy.c_str(), config.estimator.c_str(),
              config.origin.scenario.c_str(), engine.catalog().size(),
              engine.snapshot().capacity_bytes);
  if (!config.persist.dir.empty()) {
    std::printf("persistence: %s (%s)\n", config.persist.dir.c_str(),
                engine.recovery_detail().c_str());
  }
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Graceful shutdown: stop() drains in-flight responses (it joins
  // every connection thread), then the final snapshot captures the
  // fully-settled state.
  daemon.stop();
  engine.flush_snapshot();
  std::printf("shutting down after %zu connections\n%s\n",
              daemon.connections_accepted(), engine.stats_json().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sc::util::guarded_main(run, argc, argv);
}
