// Extension study: mid-stream rebuffering under time-varying bandwidth.
//
// The paper's metrics capture the *startup* penalty; under an AR(1)
// bandwidth process a session can also stall later when the path dips
// below the bit-rate for longer than the buffer covers. This bench plays
// every measured-window request through the playback-buffer simulator
// and compares policies on stalls -- showing that over-provisioned
// prefixes (Hybrid e < 1) buy stall protection that the static delay
// metric does not reveal, which is exactly the §2.5 intuition.

#include "bench/harness.h"
#include "core/playback.h"
#include "core/registry.h"
#include "net/bandwidth_model.h"
#include "net/path_process.h"
#include "net/units.h"
#include "net/variability.h"
#include "sim/simulator.h"

namespace {

using namespace sc;

struct StallStats {
  double mean_startup_s = 0.0;
  double mean_stall_time_s = 0.0;
  double stall_free_fraction = 0.0;
  double sessions = 0.0;
  // Conditional on the object having a cached prefix under this policy:
  // isolates the per-object over-provisioning effect from coverage.
  double covered_stall_time_s = 0.0;
  double covered_sessions = 0.0;
};

StallStats run_policy(const std::string& policy_spec,
                      const bench::FigureConfig& cfg) {
  // Build workload and a PB-style cache state by replaying the trace.
  util::Rng rng(cfg.seed);
  workload::WorkloadConfig wcfg;
  wcfg.catalog.num_objects = cfg.objects;
  wcfg.trace.num_requests = cfg.requests;
  const auto w = workload::generate_workload(wcfg, rng);

  sim::SimulationConfig scfg;
  scfg.cache_capacity_bytes = core::capacity_for_fraction(wcfg.catalog, 0.08);
  scfg.policy = policy_spec;
  scfg.seed = cfg.seed;
  scfg.path_config.mode = net::VariationMode::kTimeSeries;

  // Fill the cache by replaying the trace directly against the policy
  // (constant paths; --estimator picks how it learns them), then play
  // sessions against fresh AR(1) processes seeded per object. --scenario
  // picks the ratio model whose spread drives those AR(1) processes
  // (default: the Taiwan measured path).
  const auto scenario = bench::scenario_for(cfg, "timeseries:path=taiwan");
  const auto& base = scenario.base;
  const auto& ratio = scenario.ratio;
  net::PathModelConfig pcfg;
  pcfg.mode = net::VariationMode::kConstant;
  const auto paths = std::make_shared<const net::PathModel>(
      w.catalog.size(), base, ratio, pcfg, util::Rng(scfg.seed).fork("paths"));
  const auto estimator = core::registry::make_estimator(
      cfg.estimator, *paths, util::Rng(scfg.seed).fork("estimator"));
  cache::PartialStore store(scfg.cache_capacity_bytes);
  auto policy =
      core::registry::make_policy(policy_spec, w.catalog, *estimator);
  for (const auto& req : w.requests) {
    policy->on_access(req.object, req.time_s, store);
  }

  // Play a sample of distinct objects through volatile paths.
  StallStats stats;
  util::Rng session_rng = rng.fork("sessions");
  const double sigma = ratio.cov();
  std::size_t stall_free = 0, sessions = 0, covered = 0;
  for (std::size_t id = 0; id < w.catalog.size() && sessions < 400; id += 7) {
    const auto& obj = w.catalog.object(id);
    const double mean_bw = paths->mean_bandwidth(obj.path);
    if (obj.bitrate <= mean_bw) continue;  // uninteresting: never stalls
    net::Ar1RatioProcess process(0.8, sigma, 0.1, 3.0);
    util::Rng prng = session_rng.fork(std::to_string(id));
    std::vector<double> trace;
    const auto ticks =
        static_cast<std::size_t>(obj.duration_s * 3.0) + 1000;
    trace.reserve(ticks);
    for (std::size_t k = 0; k < ticks; ++k) {
      trace.push_back(mean_bw * process.step(prng));
    }
    const core::BandwidthFn bw = [&trace](double now) {
      const auto idx = std::min(trace.size() - 1,
                                static_cast<std::size_t>(now));
      return trace[idx];
    };
    core::PlaybackConfig pbc;
    pbc.tick_s = 1.0;
    const auto r =
        core::simulate_playback(obj, store.cached(id), bw, pbc);
    stats.mean_startup_s += r.startup_delay_s;
    stats.mean_stall_time_s += r.stall_time_s;
    if (r.stall_count == 0) ++stall_free;
    if (store.cached(id) > 0) {
      stats.covered_stall_time_s += r.stall_time_s;
      ++covered;
    }
    ++sessions;
  }
  if (sessions > 0) {
    stats.mean_startup_s /= static_cast<double>(sessions);
    stats.mean_stall_time_s /= static_cast<double>(sessions);
    stats.stall_free_fraction =
        static_cast<double>(stall_free) / static_cast<double>(sessions);
  }
  if (covered > 0) {
    stats.covered_stall_time_s /= static_cast<double>(covered);
  }
  stats.covered_sessions = static_cast<double>(covered);
  stats.sessions = static_cast<double>(sessions);
  return stats;
}

}  // namespace

int run_main(int argc, char** argv) {
  auto cfg = bench::parse_figure_args(argc, argv, "stalls.csv");
  // Playback simulation is per-session; keep the catalog moderate.
  cfg.objects = std::min<std::size_t>(cfg.objects, 2000);
  cfg.requests = std::min<std::size_t>(cfg.requests, 40000);

  std::printf("Rebuffering under AR(1) bandwidth (Taiwan-path variability, "
              "cache = 8%%)\n\n");
  util::Table table({"policy", "mean startup (s)", "mean stall time (s)",
                     "stall-free sessions", "covered stall (s)",
                     "covered/total"});
  struct Row {
    std::string spec;
    std::string label;
  };
  std::vector<Row> rows = {
      {"pb", "PB (exact prefix)"},
      {"hybrid:e=0.6", "Hybrid e=0.6"},
      {"hybrid:e=0.3", "Hybrid e=0.3"},
      {"ib", "IB (whole objects)"},
      {"if", "IF (popularity only)"},
  };
  if (cfg.policy_override) {
    rows = {{*cfg.policy_override, *cfg.policy_override}};
  }
  util::CsvWriter csv(cfg.csv_path);
  csv.header({"policy", "mean_startup_s", "mean_stall_s", "stall_free"});
  double pb_stall = 0, hybrid_stall = 0;
  for (const auto& row : rows) {
    const auto s = run_policy(row.spec, cfg);
    table.add_row({row.label, util::Table::num(s.mean_startup_s, 1),
                   util::Table::num(s.mean_stall_time_s, 1),
                   util::Table::num(s.stall_free_fraction, 3),
                   util::Table::num(s.covered_stall_time_s, 1),
                   util::Table::num(s.covered_sessions, 0) + "/" +
                       util::Table::num(s.sessions, 0)});
    csv.field(row.label)
        .field(s.mean_startup_s)
        .field(s.mean_stall_time_s)
        .field(s.stall_free_fraction);
    csv.endrow();
    if (row.label.rfind("PB", 0) == 0) pb_stall = s.covered_stall_time_s;
    if (row.label == "Hybrid e=0.3") hybrid_stall = s.covered_stall_time_s;
  }
  table.print();
  std::printf("\n[series written to %s]\n", cfg.csv_path.c_str());

  // The shape check assumes the default policy rows and scenario.
  if (cfg.policy_override || cfg.scenario_override) return 0;

  // Shape check: for objects a policy actually covers, over-provisioned
  // prefixes (e = 0.3) must stall less than exactly-provisioned PB --
  // §2.5's rationale made visible. (Unconditionally, PB can still win by
  // sheer coverage: its prefixes are cheap, so it protects more objects.)
  const bool ok = hybrid_stall < pb_stall;
  std::printf("shape check (over-provisioning cuts stalls on covered "
              "objects): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int main(int argc, char** argv) {
  return sc::util::guarded_main(run_main, argc, argv);
}
