// Figure 12: the over-provisioning spectrum for the revenue objective --
// PB-V with bandwidth underestimated by e in [0, 1] under variable
// bandwidth, against IB-V.
//
// Paper shape targets (§4.4): moderate e (around 0.5) yields the highest
// total added value; "PB-V caching (with e = 0.5) outperforms IB-V
// caching by as much as 30% with respect to total value added".

#include "bench/harness.h"

int run_main(int argc, char** argv) {
  using namespace sc;
  const auto cfg = bench::parse_figure_args(argc, argv, "fig12.csv");
  const auto scenario = bench::scenario_for(cfg, "measured");

  const std::vector<double> es = {0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0};
  const std::vector<double> fractions = {0.02, 0.05, 0.10, 0.169};

  std::vector<bench::PolicySpec> specs;
  for (const double e : es) {
    specs.push_back(bench::spec("pbv:e=" + util::Table::num(e, 1),
                                "e=" + util::Table::num(e, 1)));
  }
  specs.push_back(bench::spec("ibv", "IB-V"));
  specs = bench::policies_for(cfg, std::move(specs));
  const auto points = bench::sweep_cache_sizes(cfg, scenario, specs, fractions);

  std::printf("Figure 12: value-based partial caching with estimator e "
              "(measured variability)\n(runs=%zu, requests=%zu, "
              "objects=%zu)\n\n",
              cfg.runs, cfg.requests, cfg.objects);

  for (const auto metric :
       {bench::Metric::kTrafficReduction, bench::Metric::kAddedValue}) {
    std::printf("== %s (rows policy, cols cache fraction) ==\n",
                bench::metric_name(metric).c_str());
    std::vector<std::string> cols = {"policy"};
    for (const double f : fractions) cols.push_back(util::Table::num(f, 3));
    util::Table table(cols);
    for (const auto& s : specs) {
      std::vector<std::string> row = {s.label};
      for (const double f : fractions) {
        for (const auto& p : points) {
          if (p.policy == s.label && p.cache_fraction == f) {
            row.push_back(
                util::Table::num(bench::metric_value(p.metrics, metric), 4));
          }
        }
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }
  bench::write_points_csv(points, cfg.csv_path);

  // The shape check assumes the default PB-V sweep and scenario.
  if (cfg.policy_override || cfg.scenario_override) return 0;

  // Shape check at the largest cache size: the best moderate-e PB-V
  // added value beats both PB-V(e=1) and IB-V.
  auto at = [&](const std::string& name) -> const core::AveragedMetrics& {
    for (const auto& p : points) {
      if (p.policy == name && p.cache_fraction == 0.169) return p.metrics;
    }
    throw std::logic_error("missing point");
  };
  double best_mid = 0.0;
  for (const std::string e : {"e=0.2", "e=0.4", "e=0.5", "e=0.6", "e=0.8"}) {
    best_mid = std::max(best_mid, at(e).added_value);
  }
  const bool ok = best_mid >= at("e=1.0").added_value &&
                  best_mid >= at("IB-V").added_value;
  std::printf("shape check (moderate e maximizes added value): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int main(int argc, char** argv) {
  return sc::util::guarded_main(run_main, argc, argv);
}
